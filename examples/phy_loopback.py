#!/usr/bin/env python
"""Functional PHY loopback: the real uplink chain, bit for bit.

Runs the complete encode -> channel -> decode pipeline (OFDM, MRC,
max-log LLR demapping, descrambling, rate dematching, turbo decoding
with CRC-gated early stopping) on a small 1.4 MHz carrier and reports
the measured turbo iteration counts and block error rate per SNR — the
physical phenomenon behind Eq. (1)'s stochastic L term.

Run:  python examples/phy_loopback.py [trials_per_point]
"""

import sys

import numpy as np

from repro.analysis.report import Table
from repro.lte.grid import GridConfig
from repro.lte.subframe import UplinkGrant
from repro.phy.chain import UplinkReceiver, UplinkTransmitter
from repro.phy.channel import AwgnChannel


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    grid = GridConfig(1.4)  # 6 PRBs keeps the turbo blocks small and fast
    rng = np.random.default_rng(2016)

    table = Table(
        ["MCS", "SNR (dB)", "mean iterations", "max iterations", "BLER", "bit errors"]
    )
    for mcs in (4, 10, 16):
        grant = UplinkGrant(mcs=mcs, num_prbs=grid.num_prbs, num_antennas=2)
        for snr_db in (6.0, 12.0, 20.0):
            tx = UplinkTransmitter(grid=grid)
            rx = UplinkReceiver(grid=grid)
            iterations, block_errors, bit_errors = [], 0, 0
            for trial in range(trials):
                enc = tx.encode(grant, subframe_index=trial, rng=rng)
                channel = AwgnChannel(snr_db=snr_db, num_antennas=2, rng=rng)
                observed = channel.apply(enc.waveform)
                signal_power = float(np.mean(np.abs(enc.waveform) ** 2))
                result = rx.decode(
                    observed,
                    grant,
                    noise_var=channel.noise_variance(signal_power),
                    subframe_index=trial,
                )
                iterations.extend(result.iterations)
                if not result.crc_ok:
                    block_errors += 1
                bit_errors += int(np.sum(result.bits != enc.payload))
            table.add_row(
                [
                    mcs,
                    snr_db,
                    float(np.mean(iterations)),
                    int(np.max(iterations)),
                    block_errors / trials,
                    bit_errors,
                ]
            )
    print(f"Functional LTE uplink loopback ({trials} subframes per point, 1.4 MHz):")
    print(table.render())
    print(
        "\nNote how iteration counts fall as the SNR margin grows — the "
        "variability the RT-OPEX schedulers are built around."
    )


if __name__ == "__main__":
    main()
