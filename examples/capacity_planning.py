#!/usr/bin/env python
"""Capacity planning: how many basestations fit on one compute node?

The operator question behind the paper's Fig. 13 tooling note: given a
deadline-miss budget (1e-2 is typical for real-time systems), how many
basestations can a fixed core pool host under each scheduler?  RT-OPEX's
fine-grained resource pooling lets the same hardware carry more cells.

Run:  python examples/capacity_planning.py [num_subframes]
"""

import sys

import numpy as np

from repro import CRanConfig, build_workload, run_scheduler
from repro.analysis.report import Table
from repro.workload.traces import BasestationTraceConfig, CellularTraceGenerator

MISS_BUDGET = 1e-2


def trace_for(num_bs: int, num_subframes: int, seed: int) -> np.ndarray:
    """Load traces for ``num_bs`` cells cycling through the default mix."""
    base = [
        BasestationTraceConfig(mean=0.62, slow_std=0.18, fast_std=0.12),
        BasestationTraceConfig(mean=0.52, slow_std=0.16, fast_std=0.11),
        BasestationTraceConfig(mean=0.42, slow_std=0.15, fast_std=0.10),
        BasestationTraceConfig(mean=0.33, slow_std=0.13, fast_std=0.09),
    ]
    configs = [base[i % len(base)] for i in range(num_bs)]
    return CellularTraceGenerator(configs, seed=seed).generate(num_subframes)


def main() -> None:
    num_subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    seed = 2016
    table = Table(
        ["basestations", "cores", "partitioned", "global", "rt-opex"],
        title=f"Deadline-miss rate at RTT/2=500 us ({num_subframes} subframes/BS)",
    )
    capacity = {"partitioned": 0, "global": 0, "rt-opex": 0}
    for num_bs in (2, 3, 4, 5, 6):
        cores = num_bs * 2
        cfg = CRanConfig(
            num_basestations=num_bs, transport_latency_us=500.0, cores_per_bs=2
        )
        loads = trace_for(num_bs, num_subframes, seed)
        jobs = build_workload(cfg, num_subframes, seed=seed, loads=loads)
        row = [num_bs, cores]
        for name in ("partitioned", "global", "rt-opex"):
            run_cfg = cfg if name != "global" else CRanConfig(
                num_basestations=num_bs,
                transport_latency_us=500.0,
                cores_per_bs=2,
                num_cores=cores,
            )
            rate = run_scheduler(name, run_cfg, jobs).miss_rate()
            row.append(rate)
            if rate <= MISS_BUDGET:
                capacity[name] = max(capacity[name], num_bs)
        table.add_row(row)
    print(table.render())
    print(
        f"\nCells hosted within the {MISS_BUDGET:.0e} miss budget: "
        + ", ".join(f"{k}={v}" for k, v in capacity.items())
    )


if __name__ == "__main__":
    main()
