#!/usr/bin/env python
"""Heterogeneous deployments: macro cells pooled with IoT small cells.

The paper's discussion (sec. 5 D) argues RT-OPEX shines "for a
heterogeneous set of basestations and standards (e.g., cellular-IoT)
where the traffic and channel conditions vary widely": lightly loaded
IoT cells leave long gaps that the hot macro cell's decode subtasks can
migrate into.  This example pairs one saturated macro cell with three
near-idle IoT cells and shows where each scheduler's misses land.

Run:  python examples/heterogeneous_cells.py [num_subframes]
"""

import sys

from repro import CRanConfig, build_workload, run_scheduler
from repro.analysis.report import Table
from repro.workload.traces import BasestationTraceConfig, CellularTraceGenerator


def main() -> None:
    num_subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    seed = 42
    configs = [
        BasestationTraceConfig(mean=0.85, slow_std=0.10, fast_std=0.08),  # hot macro
        BasestationTraceConfig(mean=0.10, slow_std=0.05, fast_std=0.05),  # IoT
        BasestationTraceConfig(mean=0.10, slow_std=0.05, fast_std=0.05),  # IoT
        BasestationTraceConfig(mean=0.15, slow_std=0.06, fast_std=0.05),  # IoT
    ]
    loads = CellularTraceGenerator(configs, seed=seed).generate(num_subframes)
    cfg = CRanConfig(transport_latency_us=550.0)
    jobs = build_workload(cfg, num_subframes, seed=seed, loads=loads)

    table = Table(
        ["scheduler", "overall miss", "macro (BS0) miss", "IoT miss (max)"],
        title=f"One hot macro + three IoT cells, RTT/2=550 us ({num_subframes} subframes/BS)",
    )
    for name in ("partitioned", "global", "rt-opex"):
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=550.0, num_cores=8
        )
        result = run_scheduler(name, run_cfg, jobs)
        by_bs = result.miss_rate_by_bs()
        table.add_row(
            [
                result.scheduler_name,
                result.miss_rate(),
                by_bs.get(0, 0.0),
                max(by_bs.get(b, 0.0) for b in (1, 2, 3)),
            ]
        )
        if name == "rt-opex":
            counts = result.migration_counts()
            macro_migrations = sum(
                m.num_subtasks
                for r in result.records
                if r.bs_id == 0
                for m in r.migrations
            )
            detail = (
                f"  rt-opex migrations: fft={counts['fft']}, decode={counts['decode']}; "
                f"{macro_migrations} subtasks migrated off the macro cell alone"
            )
    print(table.render())
    print(detail)
    print(
        "\nThe macro cell monopolizes the IoT cells' idle cycles under "
        "RT-OPEX — resource pooling at the subframe timescale."
    )


if __name__ == "__main__":
    main()
