#!/usr/bin/env python
"""Render the paper's schedule examples (Figs. 9-11) from real runs.

Drives the simulator over a tiny two-basestation scenario and prints
ASCII timelines: the partitioned schedule with its idle gaps and a
deadline miss (Fig. 9), the global schedule with queueing (Fig. 10),
and RT-OPEX migrating a decode subtask into another core's gap
(Fig. 11).

Run:  python examples/schedule_traces.py
"""

from repro import CRanConfig, run_scheduler
from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, UplinkGrant
from repro.sched.base import SubframeJob
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work

US_PER_CHAR = 50.0
SPAN_US = 8000.0


def make_job(bs: int, index: int, mcs: int, iters, rtt: float) -> SubframeJob:
    grant = UplinkGrant(mcs=mcs, num_prbs=50, num_antennas=2)
    work = build_subframe_work(
        LinearTimingModel(), grant, list(iters)[: grant.code_blocks] or [1], max_iterations=4
    )
    sf = Subframe(
        bs_id=bs, index=index, grant=grant, transport_latency_us=rtt, grid=GridConfig(10.0)
    )
    return SubframeJob(subframe=sf, work=work, noise_us=5.0, load=mcs / 27.0)


def timeline(records, num_cores: int, title: str) -> str:
    chars = int(SPAN_US / US_PER_CHAR)
    rows = [[" "] * chars for _ in range(num_cores)]
    for r in records:
        if r.core_id < 0 or r.finish_us != r.finish_us:
            continue
        a = int(r.start_us / US_PER_CHAR)
        b = max(a + 1, int(r.finish_us / US_PER_CHAR))
        glyph = "X" if (r.missed or r.dropped) else str(r.bs_id)
        for col in range(a, min(b, chars)):
            rows[r.core_id][col] = glyph
    lines = [title]
    axis = "".join("|" if i % 20 == 0 else "-" for i in range(chars))
    lines.append("time    " + axis + "  (| = 1 ms)")
    for c in range(num_cores):
        lines.append(f"core {c}  " + "".join(rows[c]))
    return "\n".join(lines)


def main() -> None:
    rtt = 600.0
    # Basestation 0 alternates heavy subframes; basestation 1 stays light.
    jobs = []
    for j in range(6):
        heavy = j % 2 == 0
        mcs = 27 if heavy else 6
        iters = [4, 4, 3, 4, 3, 4] if heavy else [1]
        jobs.append(make_job(0, j, mcs, iters, rtt))
        jobs.append(make_job(1, j, 6, [1], rtt))

    cfg = CRanConfig(num_basestations=2, cores_per_bs=2, transport_latency_us=rtt)

    part = run_scheduler("partitioned", cfg, jobs)
    print(timeline(part.records, 4, "Fig. 9-style: partitioned (X = deadline miss)"))
    print(f"  misses: {part.miss_count()} of {len(part)}\n")

    cfg_g = CRanConfig(num_basestations=2, cores_per_bs=2, transport_latency_us=rtt, num_cores=2)
    glob = run_scheduler("global", cfg_g, jobs)
    print(timeline(glob.records, 2, "Fig. 10-style: global on 2 cores (queueing visible)"))
    print(f"  misses: {glob.miss_count()} of {len(glob)}\n")

    opex = run_scheduler("rt-opex", cfg, jobs)
    print(timeline(opex.records, 4, "Fig. 11-style: RT-OPEX (same workload as Fig. 9)"))
    migrations = sum(len(r.migrations) for r in opex.records)
    print(f"  misses: {opex.miss_count()} of {len(opex)}; migration batches: {migrations}")
    for r in opex.records:
        for m in r.migrations:
            if m.task == "decode" and m.num_subtasks:
                print(
                    f"  subframe ({r.bs_id},{r.index}) migrated {m.num_subtasks} decode "
                    f"subtask(s) to core {m.target_core}"
                )


if __name__ == "__main__":
    main()
