#!/usr/bin/env python
"""Operator workflow: own traces, calibrated decoder, exported results.

The end-to-end loop an operator adopting this library would run:

1. capture/estimate per-cell load traces (here: synthesized, then
   persisted and reloaded through the CSV interchange format);
2. calibrate the iteration model against their decoder — here the
   bundled functional turbo chain stands in for it;
3. run the candidate schedulers over the calibrated workload;
4. export per-subframe results to CSV for offline analysis.

Run:  python examples/operator_workflow.py [num_subframes]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.calibration import fit_iteration_model, log_chain_iterations
from repro.analysis.report import Table
from repro.analysis.results_io import load_result_csv, save_result_csv
from repro.lte.grid import GridConfig
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.workload.io import load_traces_csv, save_traces_csv
from repro.workload.traces import CellularTraceGenerator


def main() -> None:
    num_subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    rng = np.random.default_rng(2016)
    workdir = Path(tempfile.mkdtemp(prefix="rtopex-operator-"))

    # 1. Traces: generate, persist, reload (the CSV is the hand-off
    #    point for traces captured with real equipment).
    traces = CellularTraceGenerator(seed=77).generate(num_subframes)
    trace_path = workdir / "cell_loads.csv"
    save_traces_csv(trace_path, traces)
    loads = load_traces_csv(trace_path)
    print(f"traces: {loads.shape[0]} cells x {loads.shape[1]} subframes -> {trace_path}")

    # 2. Calibration: log iteration counts from the (real) turbo decoder
    #    on a small carrier and refit the iteration model.
    print("calibrating iteration model from the functional chain "
          "(small grid, this takes a few seconds)...")
    mcs, snr, iters = log_chain_iterations(
        GridConfig(1.4),
        mcs_values=(2, 6, 10, 14),
        snr_values=(6.0, 10.0, 16.0, 22.0),
        trials_per_point=4,
        rng=rng,
    )
    try:
        calibration = fit_iteration_model(mcs, snr, iters, max_iterations=4)
        model = calibration.model
        print(
            f"  fitted over {calibration.num_bins} bins, rmse={calibration.rmse:.2f} "
            f"(offset={model.effort_offset:.1f}, slope={model.effort_slope:.2f})"
        )
    except (ValueError, RuntimeError) as exc:
        # With very few samples the fit can be unidentifiable; the
        # published-figure calibration is the documented fallback.
        from repro.timing.iterations import IterationModel

        model = IterationModel()
        print(f"  calibration skipped ({exc}); using default model")

    # 3. Run schedulers over the calibrated workload.
    cfg = CRanConfig(transport_latency_us=550.0)
    jobs = build_workload(cfg, num_subframes, seed=77, loads=loads, iteration_model=model)
    table = Table(["scheduler", "miss rate", "ACK rate"])
    exported = {}
    for name in ("partitioned", "rt-opex"):
        result = run_scheduler(name, cfg, jobs)
        table.add_row([result.scheduler_name, result.miss_rate(), result.ack_rate()])
        # 4. Export per-subframe records.
        out = workdir / f"{name}.csv"
        save_result_csv(out, result)
        exported[name] = out
    print(table.render())

    # Round-trip sanity: the exported CSV reloads to the same metrics.
    reloaded = load_result_csv(exported["rt-opex"])
    print(f"exported results reload cleanly: miss rate {reloaded.miss_rate():.2e}")
    print(f"artifacts in {workdir}")


if __name__ == "__main__":
    main()
