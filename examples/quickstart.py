#!/usr/bin/env python
"""Quickstart: compare C-RAN schedulers on a realistic cellular workload.

Builds the paper's evaluation setup — four basestations, two antennas
each, 10 MHz, loads driven by synthetic metropolitan traces — and runs
the three schedulers over the identical workload at a 500 us transport
latency.  RT-OPEX should come out one to two orders of magnitude below
the partitioned and global schedulers in deadline-miss rate.

Run:  python examples/quickstart.py [num_subframes]
"""

import sys

from repro import CRanConfig, build_workload, run_scheduler
from repro.analysis.report import Table


def main() -> None:
    num_subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    config = CRanConfig(transport_latency_us=500.0)
    print(
        f"Building workload: {config.num_basestations} basestations x "
        f"{num_subframes} subframes (N={config.num_antennas}, 10 MHz, "
        f"RTT/2={config.transport_latency_us:.0f} us, "
        f"Tmax={config.processing_budget_us:.0f} us)"
    )
    jobs = build_workload(config, num_subframes)

    table = Table(
        ["scheduler", "miss rate", "ACK rate", "mean Trxproc (us)", "p99 Trxproc (us)"]
    )
    for name in ("partitioned", "global", "rt-opex"):
        cfg = config if name != "global" else CRanConfig(
            transport_latency_us=config.transport_latency_us, num_cores=8
        )
        result = run_scheduler(name, cfg, jobs)
        s = result.summary()
        table.add_row(
            [result.scheduler_name, s["miss_rate"], s["ack_rate"],
             s["mean_proc_us"], s["p99_proc_us"]]
        )
        if name == "rt-opex":
            counts = result.migration_counts()
            migrated = f"  (migrated subtasks: fft={counts['fft']}, decode={counts['decode']})"
    print(table.render())
    print(migrated)


if __name__ == "__main__":
    main()
