"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, which the PEP 660
editable-install path requires; ``pip install -e . --no-use-pep517
--no-build-isolation`` falls back to ``setup.py develop`` and works
without it.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
