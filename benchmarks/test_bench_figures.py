"""Benchmarks: one regeneration benchmark per remaining paper figure.

Each benchmark regenerates the artifact at a reduced scale through the
same driver the CLI uses and asserts the reproduced shape.
"""

import pytest

from repro.experiments import run_experiment

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def regenerate(experiment_id, scale=BENCH_SCALE):
    return run_experiment(experiment_id, scale=scale, seed=BENCH_SEED)


@pytest.mark.benchmark(group="figures")
def test_bench_fig1_traces(benchmark):
    output = benchmark(regenerate, "fig1")
    # Fig. 1 shape: visible subframe-to-subframe variation.
    assert min(output.data["mean_abs_delta"]) > 0.03


@pytest.mark.benchmark(group="figures")
def test_bench_fig3_processing_variability(benchmark):
    output = benchmark(regenerate, "fig3")
    l2 = output.data["vs_iterations"][2]
    assert l2[-1] / l2[0] == pytest.approx(2.8, abs=0.4)  # 0.5 -> 1.4 ms


@pytest.mark.benchmark(group="figures")
def test_bench_fig4_two_core_split(benchmark):
    output = benchmark(regenerate, "fig4")
    decode = output.data["decode"]
    assert decode["serial"] - decode["two_core"] == pytest.approx(310, abs=60)


@pytest.mark.benchmark(group="figures")
def test_bench_fig6_cloud_delay(benchmark):
    output = benchmark(regenerate, "fig6")
    for key in ("1gbe", "10gbe"):
        assert output.data[key]["mean"] == pytest.approx(150.0, rel=0.1)
        assert output.data[key]["tail_250us"] < 1e-3


@pytest.mark.benchmark(group="figures")
def test_bench_fig7_warp_transport(benchmark):
    output = benchmark(regenerate, "fig7")
    assert output.data["limits"]["10.0"] == 8
    ten_mhz = output.data["series"]["10.0"]
    assert ten_mhz[-1] > 1000.0  # 16 antennas exceed one subframe period


@pytest.mark.benchmark(group="figures")
def test_bench_fig14_load_cdf(benchmark):
    output = benchmark(regenerate, "fig14")
    means = output.data["means"]
    assert max(means) - min(means) > 0.1  # cells fan out


@pytest.mark.benchmark(group="figures")
def test_bench_fig16_gaps_and_migrations(benchmark):
    output = benchmark(regenerate, "fig16")
    assert min(output.data["fft_migration_fraction"]) > 0.75
    # The paper: large gaps are plentiful at low RTT.
    assert output.data["gap_tail_500us"][0] > 0.5


@pytest.mark.benchmark(group="figures")
def test_bench_fig17_load_sweep(benchmark):
    output = benchmark(regenerate, "fig17")
    supported = output.data["supported"]
    assert supported["rt-opex"] >= supported["partitioned"]
    # Full saturation only shows at scale 1; at bench scale the top
    # reported bucket must simply not miss less than the bottom one.
    assert output.data["partitioned"][-1] >= output.data["partitioned"][0]


@pytest.mark.benchmark(group="figures")
def test_bench_fig18_migration_overhead(benchmark):
    output = benchmark(regenerate, "fig18")
    fft = output.data["fft"]
    assert fft["migrated_median"] - fft["local_median"] == pytest.approx(20, abs=5)


@pytest.mark.benchmark(group="figures")
def test_bench_fig19_global_scaling(benchmark):
    output = benchmark(regenerate, "fig19")
    by_cores = dict(zip(output.data["cores"], output.data["miss_rates"]))
    assert by_cores[16] >= by_cores[8] - 0.01
    assert by_cores[2] > by_cores[8]
