"""Microbenchmarks for the discrete-event engine hot path.

The profile at ``--scale 1.0`` is dominated by heap traffic in
``sim/engine.py`` (``Event`` comparisons, per-event pops) and by the
RT-OPEX planner.  These benchmarks isolate the engine patterns the
schedulers actually generate so the baseline comparator
(``benchmarks/baseline.py``) can catch regressions in each one:

* **churn** — schedule-then-run over a pseudo-random arrival pattern,
  the partitioned/global scheduler shape;
* **tie-groups** — many same-instant events (subframe boundaries where
  every basestation's arrival lands on the same microsecond), the
  pattern batch-popping accelerates;
* **cancel** — schedule/cancel timeout churn exercising lazy-cancel
  compaction;
* **feed-forward** — callbacks that schedule more work, the
  arrive -> start_decode chain.

Asserts pin behavioural contracts (event counts, final clock) so the
benchmarks double as correctness checks at full speed.
"""

import pytest

from repro.sim.engine import Simulator

#: Events per benchmark round; small enough for CI, large enough that
#: per-event costs dominate fixture overhead.
N_EVENTS = 20_000
#: Tie-group width for the same-instant benchmark (16 radios' arrivals
#: landing on one subframe boundary).
TIE_WIDTH = 16


@pytest.mark.benchmark(group="engine")
def test_bench_engine_churn(benchmark):
    def churn():
        sim = Simulator()
        count = [0]
        for i in range(N_EVENTS):
            sim.schedule(float((i * 7919) % N_EVENTS), lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return sim, count[0]

    sim, executed = benchmark(churn)
    assert executed == N_EVENTS
    assert sim.stats()["executed"] == N_EVENTS


@pytest.mark.benchmark(group="engine")
def test_bench_engine_tie_groups(benchmark):
    def tie_groups():
        sim = Simulator()
        count = [0]
        bump = lambda: count.__setitem__(0, count[0] + 1)  # noqa: E731
        for boundary in range(N_EVENTS // TIE_WIDTH):
            for radio in range(TIE_WIDTH):
                sim.schedule(boundary * 1000.0, bump, priority=radio % 3)
        sim.run()
        return sim, count[0]

    sim, executed = benchmark(tie_groups)
    assert executed == (N_EVENTS // TIE_WIDTH) * TIE_WIDTH
    assert sim.now == (N_EVENTS // TIE_WIDTH - 1) * 1000.0


@pytest.mark.benchmark(group="engine")
def test_bench_engine_cancel_churn(benchmark):
    def cancel_churn():
        sim = Simulator()
        fired = [0]
        for i in range(N_EVENTS):
            event = sim.schedule(1000.0 + i, lambda: fired.__setitem__(0, fired[0] + 1))
            if i % 4:
                event.cancel()
        sim.run()
        return sim, fired[0]

    sim, executed = benchmark(cancel_churn)
    assert executed == (N_EVENTS + 3) // 4
    assert sim.pending() == 0


@pytest.mark.benchmark(group="engine")
def test_bench_engine_feed_forward(benchmark):
    def feed_forward():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < N_EVENTS:
                sim.schedule_in(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim, count[0]

    sim, executed = benchmark(feed_forward)
    assert executed == N_EVENTS
    assert sim.now == float(N_EVENTS - 1)
