"""Throughput benchmarks for the substrates the simulation rests on.

Not paper artifacts, but the knobs that determine how large an
experiment the harness can regenerate per second: the functional PHY,
the workload builder, the DES engine, and Algorithm 1 itself.
"""

import numpy as np
import pytest

from repro.lte.grid import GridConfig
from repro.lte.subframe import UplinkGrant
from repro.phy.chain import UplinkReceiver, UplinkTransmitter
from repro.phy.channel import AwgnChannel
from repro.phy.turbo import TurboCodec, bpsk_llrs
from repro.sched import CRanConfig, build_workload
from repro.sched.migration import plan_migration
from repro.sim.engine import Simulator

from benchmarks.conftest import BENCH_SEED


@pytest.mark.benchmark(group="substrate-phy")
def test_bench_turbo_decode(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    codec = TurboCodec(256, max_iterations=4)
    bits = rng.integers(0, 2, 256).astype(np.uint8)
    llrs = bpsk_llrs(codec.encode(bits), 2.0, rng)

    result = benchmark(codec.decode, llrs)
    assert np.array_equal(result.bits, bits)


@pytest.mark.benchmark(group="substrate-phy")
def test_bench_uplink_chain_loopback(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    grid = GridConfig(1.4)
    grant = UplinkGrant(mcs=8, num_prbs=grid.num_prbs, num_antennas=2)
    tx = UplinkTransmitter(grid=grid)
    rx = UplinkReceiver(grid=grid)
    enc = tx.encode(grant, rng=rng)
    channel = AwgnChannel(snr_db=25.0, num_antennas=2, rng=rng)
    obs = channel.apply(enc.waveform)
    power = float(np.mean(np.abs(enc.waveform) ** 2))
    nvar = channel.noise_variance(power)

    result = benchmark(rx.decode, obs, grant, nvar)
    assert result.crc_ok


@pytest.mark.benchmark(group="substrate-workload")
def test_bench_build_workload(benchmark):
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = benchmark.pedantic(
        build_workload, args=(cfg, 500), kwargs={"seed": BENCH_SEED}, rounds=3, iterations=1
    )
    assert len(jobs) == 2000


@pytest.mark.benchmark(group="substrate-sim")
def test_bench_event_engine(benchmark):
    def run_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.schedule_in(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_events) == 20_000


@pytest.mark.benchmark(group="substrate-alg1")
def test_bench_algorithm_one(benchmark):
    windows = [(c, 500.0 + 100.0 * c) for c in range(8)]

    def plan_many():
        total = 0
        for _ in range(1000):
            total += plan_migration(6, 230.0, 25.0, windows).migrated_subtasks
        return total

    assert benchmark(plan_many) > 0
