"""Benchmark: the parallel runtime — serial vs parallel fan-out, and
cold vs warm result-cache timings.

Wall-clock speedup from ``jobs > 1`` depends on the host's core count
(CI boxes may have one), so the asserts pin the *contracts* — parallel
output byte-identical to serial, warm cache executes nothing — while
pytest-benchmark records the timings for comparison on real hardware.

Every benchmark builds its cache under a tmp dir, keeping the suite
parallel-safe and the user's real cache untouched.
"""

import shutil

import pytest

from repro.experiments import run_experiment
from repro.runtime import ExperimentRunner, ResultCache, outputs_match

#: fig15 at this scale: 7 RTT/2 units x 4 schedulers over 500 subframes/BS.
RUNNER_SCALE = 0.01
RUNNER_SEED = 2016


@pytest.mark.benchmark(group="runner-fanout")
def test_bench_runner_serial(benchmark):
    def serial():
        results, _ = ExperimentRunner(jobs=1).run(
            ["fig15"], scale=RUNNER_SCALE, seed=RUNNER_SEED
        )
        return results

    results = benchmark.pedantic(serial, rounds=1, iterations=1)
    assert results[0].ok


@pytest.mark.benchmark(group="runner-fanout")
def test_bench_runner_parallel(benchmark):
    def parallel():
        results, _ = ExperimentRunner(jobs=4).run(
            ["fig15"], scale=RUNNER_SCALE, seed=RUNNER_SEED
        )
        return results

    results = benchmark.pedantic(parallel, rounds=1, iterations=1)
    serial = run_experiment("fig15", scale=RUNNER_SCALE, seed=RUNNER_SEED)
    assert outputs_match(results[0].output, serial)


@pytest.mark.benchmark(group="runner-cache")
def test_bench_runner_cold_cache(benchmark, tmp_path):
    root = tmp_path / "cold"

    def fresh_dir():
        shutil.rmtree(root, ignore_errors=True)
        return (), {}

    def cold():
        results, report = ExperimentRunner(jobs=1, cache=ResultCache(root)).run(
            ["fig15"], scale=RUNNER_SCALE, seed=RUNNER_SEED
        )
        return results, report

    (results, report) = benchmark.pedantic(cold, setup=fresh_dir, rounds=1, iterations=1)
    assert results[0].ok and not results[0].cached
    assert report.cache_hits == 0


@pytest.mark.benchmark(group="runner-cache")
def test_bench_runner_warm_cache(benchmark, tmp_path):
    root = tmp_path / "warm"
    cache = ResultCache(root)
    cold, _ = ExperimentRunner(jobs=1, cache=cache).run(
        ["fig15"], scale=RUNNER_SCALE, seed=RUNNER_SEED
    )

    def warm():
        results, report = ExperimentRunner(jobs=1, cache=ResultCache(root)).run(
            ["fig15"], scale=RUNNER_SCALE, seed=RUNNER_SEED
        )
        return results, report

    (results, report) = benchmark(warm)
    assert results[0].cached  # served without executing the driver
    assert report.cache_hits >= 1
    assert results[0].output.text == cold[0].output.text
