"""Ablation benchmarks for the design choices DESIGN.md calls out.

* migration overhead delta sensitivity;
* Algorithm 1's dominance guards (R2/R3) vs a migrate-all variant;
* the slack-check task dropping of sec. 4.1;
* the recovery path under inflated helper noise;
* FFT-only vs decode-only migration.
"""

import numpy as np
import pytest

from repro.sched import CRanConfig, PartitionedScheduler, RtOpexScheduler
from repro.sched.migration import plan_migration
from repro.timing.platform import PlatformNoiseModel


def run_opex(jobs, **kwargs):
    cfg = CRanConfig(transport_latency_us=500.0)
    return RtOpexScheduler(cfg, rng=np.random.default_rng(1), **kwargs).run(jobs)


@pytest.mark.benchmark(group="ablation-delta")
@pytest.mark.parametrize("delta", [0.0, 20.0, 100.0, 400.0])
def test_bench_delta_sensitivity(benchmark, delta, bench_workload):
    result = benchmark.pedantic(
        run_opex, args=(bench_workload,), kwargs={"batch_overhead_us": delta},
        rounds=1, iterations=1,
    )
    # Larger migration cost can only reduce the harvest.
    if delta >= 400.0:
        cheap = run_opex(bench_workload, batch_overhead_us=0.0)
        assert (
            sum(r.migrated_subtasks for r in result.records)
            <= sum(r.migrated_subtasks for r in cheap.records)
        )


@pytest.mark.benchmark(group="ablation-guards")
def test_bench_migrate_all_violates_dominance(benchmark):
    """Why R2/R3 exist: without them one helper takes everything.

    A migrate-all plan puts all P-1 subtasks on the largest window; the
    local core then idles while the helper serializes them — the planned
    parallel time degenerates to (almost) the serial time plus overhead.
    """

    def compare():
        tp, delta, p = 230.0, 25.0, 6
        windows = [(0, 10_000.0), (1, 10_000.0)]
        guarded = plan_migration(p, tp, delta, windows)
        guarded_makespan = max(
            guarded.local_subtasks * tp,
            max((c * (tp + delta) for _, c in guarded.assignments), default=0.0),
        )
        all_out_makespan = max(1 * tp, (p - 1) * (tp + delta))
        return guarded_makespan, all_out_makespan

    guarded, migrate_all = benchmark(compare)
    assert guarded < migrate_all


@pytest.mark.benchmark(group="ablation-slack")
@pytest.mark.parametrize("drop", [True, False])
def test_bench_slack_check(benchmark, drop, bench_workload):
    cfg = CRanConfig(transport_latency_us=500.0, drop_on_slack_check=drop)
    result = benchmark.pedantic(
        PartitionedScheduler(cfg).run, args=(bench_workload,), rounds=1, iterations=1
    )
    # Dropping and terminating give the same miss accounting; dropping
    # just frees the core earlier (gap bookkeeping).
    assert result.miss_rate() >= 0.0


def test_bench_slack_check_equivalent_misses(bench_workload):
    on = PartitionedScheduler(CRanConfig(transport_latency_us=500.0)).run(bench_workload)
    off = PartitionedScheduler(
        CRanConfig(transport_latency_us=500.0, drop_on_slack_check=False)
    ).run(bench_workload)
    assert abs(on.miss_count() - off.miss_count()) <= 0.05 * max(1, on.miss_count())


@pytest.mark.benchmark(group="ablation-recovery")
def test_bench_recovery_under_noise(benchmark, bench_workload):
    noisy = PlatformNoiseModel(
        base_mean_us=200.0, base_shape=1.0,
        spike_probability=0.3, spike_low_us=200.0, spike_high_us=800.0,
    )
    result = benchmark.pedantic(
        run_opex, args=(bench_workload,), kwargs={"remote_noise": noisy},
        rounds=1, iterations=1,
    )
    recovered = sum(m.recovered_subtasks for r in result.records for m in r.migrations)
    assert recovered > 0  # the noise actually triggers recoveries
    # Even with recoveries, RT-OPEX stays no worse than partitioned.
    part = PartitionedScheduler(CRanConfig(transport_latency_us=500.0)).run(bench_workload)
    assert result.miss_count() <= part.miss_count()


@pytest.mark.benchmark(group="ablation-tasks")
@pytest.mark.parametrize("fft,decode", [(True, False), (False, True), (True, True)])
def test_bench_task_type_contribution(benchmark, fft, decode, bench_workload):
    result = benchmark.pedantic(
        run_opex,
        args=(bench_workload,),
        kwargs={"migrate_fft": fft, "migrate_decode": decode},
        rounds=1,
        iterations=1,
    )
    both = run_opex(bench_workload)
    # Decode migration provides the deadline rescues; FFT alone cannot
    # beat the combined policy.
    assert both.miss_count() <= result.miss_count()
