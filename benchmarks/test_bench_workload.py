"""Benchmarks for the array-native workload pipeline.

Two groups, matching the two halves of the SoA fast path:

* **workload** — end-to-end job construction through the SoA pipeline
  vs. the retained scalar reference (``build_workload_legacy``), plus
  the columnar build alone (no dataclass materialization) to expose
  how much of the remaining cost is the lazy legacy-object creation;
* **duration_oracle** — the memoized Eq. (1) oracle: cold table
  construction (a fresh oracle per round) vs. the steady-state batch
  gather over a whole MCS trace.

The asserts pin equivalence invariants (SoA == legacy job lists, batch
totals == scalar Eq. (1)) so a faster pipeline cannot silently drift.
"""

import numpy as np
import pytest

from repro.sched import CRanConfig
from repro.sched.runner import build_workload, build_workload_legacy
from repro.timing.model import DurationOracle, LinearTimingModel, duration_oracle
from repro.workload.soa import build_workload_arrays, materialize_jobs

#: Subframes per basestation for the build benchmarks (4 basestations).
BUILD_SUBFRAMES = 500
BENCH_SEED = 2016


@pytest.mark.benchmark(group="workload")
def test_bench_workload_arrays(benchmark):
    """Columnar build alone: trace -> MCS -> draws -> duration columns."""
    cfg = CRanConfig(transport_latency_us=500.0)
    arrays = benchmark.pedantic(
        lambda: build_workload_arrays(cfg, BUILD_SUBFRAMES, seed=BENCH_SEED),
        rounds=3, iterations=1,
    )
    assert arrays.num_jobs == cfg.num_basestations * BUILD_SUBFRAMES
    assert arrays.subtasks.num_subtasks == int(
        arrays.block_offsets[-1]
    ) + 2 * arrays.num_jobs


@pytest.mark.benchmark(group="workload")
def test_bench_workload_materialize(benchmark):
    """Lazy dataclass materialization from a prebuilt columnar workload."""
    cfg = CRanConfig(transport_latency_us=500.0)
    arrays = build_workload_arrays(cfg, BUILD_SUBFRAMES, seed=BENCH_SEED)
    jobs = benchmark.pedantic(lambda: materialize_jobs(arrays), rounds=3, iterations=1)
    assert len(jobs) == arrays.num_jobs


@pytest.mark.benchmark(group="workload")
def test_bench_workload_build_legacy(benchmark):
    """The scalar reference builder — the SoA pipeline's control."""
    cfg = CRanConfig(transport_latency_us=500.0)
    legacy = benchmark.pedantic(
        lambda: build_workload_legacy(cfg, BUILD_SUBFRAMES, seed=BENCH_SEED),
        rounds=3, iterations=1,
    )
    # Equivalence pin: the fast path must agree job for job.
    fast = build_workload(cfg, BUILD_SUBFRAMES, seed=BENCH_SEED)
    assert legacy == fast


@pytest.mark.benchmark(group="duration_oracle")
def test_bench_duration_tables_cold(benchmark):
    """Cold oracle: compute every per-MCS duration table from scratch."""
    model = LinearTimingModel()

    def build_tables():
        return DurationOracle(model, max_iterations=8).tables()

    tables = benchmark(build_tables)
    assert tables.decode_cb_us.shape == (28, 8)


@pytest.mark.benchmark(group="duration_oracle")
def test_bench_duration_oracle_batch(benchmark):
    """Steady state: vectorized Eq. (1) gather over a whole MCS trace."""
    model = LinearTimingModel()
    tables = duration_oracle(model, 8).tables()
    rng = np.random.default_rng(BENCH_SEED)
    mcs = rng.integers(0, 28, size=100_000)
    mean_l = rng.uniform(1.0, 8.0, size=mcs.size)

    totals = benchmark(lambda: tables.total_us(mcs, mean_l))
    assert totals.shape == mcs.shape
    # Equivalence pin against the scalar model on a sample.
    for i in range(0, mcs.size, 20_000):
        m = int(mcs[i])
        serial = (
            tables.fft_subtask_us * tables.num_antennas
            + float(tables.demod_us[m])
            + float(tables.prologue_us[m])
        )
        per_block = float(tables.decode_cb_us[m, 0]) * int(tables.code_blocks[m])
        assert totals[i] == serial + per_block * float(mean_l[i])
