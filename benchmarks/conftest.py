"""Shared benchmark fixtures.

Every paper artifact has a benchmark that regenerates it at a reduced
scale (pytest-benchmark measures the regeneration cost and the asserts
check the reproduced shape).  Run with::

    pytest benchmarks/ --benchmark-only

Scale knobs: BENCH_SCALE shrinks sample counts so a full pass stays in
CI-friendly territory; ``python -m repro <id> --scale 1.0`` runs any
experiment at paper size.
"""

import pytest

from repro.sched import CRanConfig, build_workload

#: Sample-size scale for benchmarked experiment runs.
BENCH_SCALE = 0.02
#: Seed shared by all benchmarks (paired workloads across schedulers).
BENCH_SEED = 2016


@pytest.fixture(scope="session")
def bench_config():
    return CRanConfig(transport_latency_us=500.0)


@pytest.fixture(scope="session")
def bench_workload(bench_config):
    """A 4-basestation workload reused across scheduler benchmarks."""
    return build_workload(bench_config, 1000, seed=BENCH_SEED)
