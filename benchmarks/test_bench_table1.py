"""Benchmark: Table 1 — Eq. (1) regression over simulated measurements."""

import pytest

from repro.experiments.table1 import generate_measurements
from repro.timing.model import fit_linear_model

from benchmarks.conftest import BENCH_SEED


@pytest.mark.benchmark(group="table1")
def test_bench_table1_regression(benchmark):
    antennas, q_m, load_iters, times = generate_measurements(50_000, BENCH_SEED)

    fit = benchmark(fit_linear_model, antennas, q_m, load_iters, times)

    # Shape check against the paper's Table 1.
    assert fit.coefficients.w0 == pytest.approx(31.4, abs=6.0)
    assert fit.coefficients.w1 == pytest.approx(169.1, rel=0.05)
    assert fit.coefficients.w2 == pytest.approx(49.7, rel=0.05)
    assert fit.coefficients.w3 == pytest.approx(93.0, rel=0.05)
    assert fit.r_squared > 0.99


@pytest.mark.benchmark(group="table1")
def test_bench_table1_measurement_generation(benchmark):
    antennas, _, _, _ = benchmark(generate_measurements, 20_000, BENCH_SEED)
    assert antennas.size == 20_000
