"""Benchmark: Fig. 15 — the headline deadline-miss comparison.

Each scheduler is benchmarked over the identical paired workload at
RTT/2 = 500 us, and a reduced RTT sweep asserts the figure's shape:
RT-OPEX at least an order of magnitude below partitioned, global no
better than partitioned and not improved by doubling its cores.
"""

import pytest

from repro.sched import CRanConfig, build_workload, run_scheduler

from benchmarks.conftest import BENCH_SEED


@pytest.mark.benchmark(group="fig15-schedulers")
@pytest.mark.parametrize("name", ["partitioned", "rt-opex"])
def test_bench_fig15_scheduler(benchmark, name, bench_config, bench_workload):
    result = benchmark(run_scheduler, name, bench_config, bench_workload)
    assert len(result.records) == len(bench_workload)


@pytest.mark.benchmark(group="fig15-schedulers")
@pytest.mark.parametrize("cores", [8, 16])
def test_bench_fig15_global(benchmark, cores, bench_workload):
    cfg = CRanConfig(transport_latency_us=500.0, num_cores=cores)
    result = benchmark(run_scheduler, "global", cfg, bench_workload)
    assert len(result.records) == len(bench_workload)


@pytest.mark.benchmark(group="fig15-sweep")
def test_bench_fig15_shape(benchmark):
    def sweep():
        rates = {}
        for rtt in (450.0, 650.0):
            cfg = CRanConfig(transport_latency_us=rtt)
            jobs = build_workload(cfg, 2500, seed=BENCH_SEED)
            rates[rtt] = {
                "partitioned": run_scheduler("partitioned", cfg, jobs).miss_rate(),
                "rt-opex": run_scheduler("rt-opex", cfg, jobs).miss_rate(),
                "global": run_scheduler(
                    "global", CRanConfig(transport_latency_us=rtt, num_cores=8), jobs
                ).miss_rate(),
            }
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    low, high = rates[450.0], rates[650.0]
    # RT-OPEX virtually zero below 500 us.
    assert low["rt-opex"] < 1e-3
    # Order-of-magnitude improvement at higher latency.
    assert high["rt-opex"] * 5 <= high["partitioned"]
    # Global no better than partitioned.
    assert high["global"] >= high["partitioned"] * 0.9
    # Partitioned worsens with latency.
    assert high["partitioned"] > low["partitioned"]
