"""Benchmarks for the executable Table 2 and the extension experiments."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.sched import CRanConfig, RtOpexScheduler, run_scheduler
from repro.sched.migration import plan_migrate_all, plan_steal_half

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name", ["pran", "cloudiq"])
def test_bench_table2_baselines(benchmark, name, bench_config, bench_workload):
    result = benchmark(run_scheduler, name, bench_config, bench_workload)
    assert len(result.records) == len(bench_workload)


@pytest.mark.benchmark(group="table2")
def test_bench_table2_ordering(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("table2",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    rates = {name: d["miss_rate"] for name, d in output.data.items()}
    assert rates["rt-opex"] == min(rates.values())
    assert rates["cloudiq"] == max(rates.values())


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_pooling(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("ext-pooling",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    # The paper's pooling claim (sec. 1): tens-of-percent savings.
    savings = [row["saving"] for row in output.data["rows"]]
    assert max(savings) >= 0.2


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_harq(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("ext-harq",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    goodputs = {n: d["goodput"] for n, d in output.data.items()}
    assert goodputs["rt-opex"] >= goodputs["partitioned"]


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_virtualization(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("ext-virt",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    for sched in ("partitioned", "global", "rt-opex"):
        assert output.data["vm"][sched] >= output.data["native"][sched]


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_txload(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("ext-txload",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    assert output.data["rt-opex"]["rx_mixed"] <= output.data["partitioned"]["rx_mixed"]


@pytest.mark.benchmark(group="ablation-planner")
@pytest.mark.parametrize(
    "label,planner",
    [("alg1", None), ("steal-half", plan_steal_half), ("migrate-all", plan_migrate_all)],
)
def test_bench_planner_ablation(benchmark, label, planner, bench_workload):
    cfg = CRanConfig(transport_latency_us=600.0)

    def run():
        kwargs = {} if planner is None else {"planner": planner}
        return RtOpexScheduler(cfg, rng=np.random.default_rng(0), **kwargs).run(bench_workload)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.records) == len(bench_workload)


@pytest.mark.benchmark(group="extensions")
def test_bench_ext_multiuser(benchmark):
    output = benchmark.pedantic(
        run_experiment, args=("ext-multiuser",), kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
        rounds=1, iterations=1,
    )
    for label in ("single-user", "multi-user"):
        assert output.data[label]["rt-opex"] <= output.data[label]["partitioned"]
