"""Benchmark baseline exporter + regression comparator.

Two subcommands glue pytest-benchmark to a committed perf baseline::

    # Measure the engine + planner benchmarks and write BENCH_<n>.json
    PYTHONPATH=src python benchmarks/baseline.py capture [--out BENCH_1.json]

    # CI: compare a fresh capture against the committed baseline
    PYTHONPATH=src python benchmarks/baseline.py compare BENCH_1.json fresh.json

A baseline file records, per benchmark, the pytest-benchmark **median**
in nanoseconds (the statistic least sensitive to CI-box noise), plus the
engine's ``Simulator.stats()`` counters from a canonical RT-OPEX run
(so structural regressions — heap growth, purge storms — are visible
even when medians pass) and the git SHA the numbers were taken at.

``compare`` fails (exit 1) when any benchmark present in the baseline
regresses by more than ``--threshold`` (default 30%) or disappeared
from the fresh run; new benchmarks in the fresh run are reported but
never fail the gate.  Faster-than-baseline results print as
improvements — commit a fresh capture to ratchet the baseline forward.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

#: Benchmark files the baseline tracks: engine + planner + workload pipeline.
BENCH_FILES = (
    "benchmarks/test_bench_engine.py",
    "benchmarks/test_bench_planner.py",
    "benchmarks/test_bench_workload.py",
)
#: Default regression gate: fail on >30% median slowdown.
DEFAULT_THRESHOLD = 0.30
#: Canonical engine-stats workload (subframes per basestation).
STATS_SUBFRAMES = 500
STATS_SEED = 2016

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _engine_stats() -> Dict[str, int]:
    """Engine counters from a canonical traced RT-OPEX run."""
    from repro.sched import CRanConfig, build_workload
    from repro.sched.runner import run_scheduler

    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, STATS_SUBFRAMES, seed=STATS_SEED)
    result = run_scheduler(
        "rt-opex", cfg, jobs, seed=STATS_SEED, capture_trace=("deadline",)
    )
    stats = result.trace_run.meta.get("sim", {}) if result.trace_run else {}
    return {key: int(value) for key, value in sorted(stats.items())}


def run_benchmarks(extra_args: Optional[List[str]] = None) -> Dict[str, object]:
    """Run the tracked benchmark files; return pytest-benchmark's JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    cmd = [
        sys.executable, "-m", "pytest", *BENCH_FILES,
        "--benchmark-only", f"--benchmark-json={json_path}",
        "-q", "--no-header", "-p", "no:cacheprovider",
    ] + (extra_args or [])
    try:
        proc = subprocess.run(cmd, cwd=REPO_ROOT)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {proc.returncode})")
        with open(json_path) as fh:
            return json.load(fh)
    finally:
        json_path.unlink(missing_ok=True)


def summarize(bench_json: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Per-benchmark medians (ns) keyed ``group/name`` from raw pytest JSON."""
    table: Dict[str, Dict[str, object]] = {}
    for entry in bench_json.get("benchmarks", []):
        name = str(entry.get("name", "?"))
        group = str(entry.get("group") or "ungrouped")
        stats = entry.get("stats", {})
        table[f"{group}/{name}"] = {
            "group": group,
            "median_ns": float(stats["median"]) * 1e9,
            "rounds": int(stats.get("rounds", 0)),
        }
    return table


def group_medians(table: Dict[str, Dict[str, object]]) -> Dict[str, float]:
    """Median-of-medians per benchmark group (ns)."""
    by_group: Dict[str, List[float]] = {}
    for entry in table.values():
        by_group.setdefault(str(entry["group"]), []).append(float(entry["median_ns"]))
    out: Dict[str, float] = {}
    for group, values in by_group.items():
        values.sort()
        mid = len(values) // 2
        if len(values) % 2:
            out[group] = values[mid]
        else:
            out[group] = 0.5 * (values[mid - 1] + values[mid])
    return out


def write_delta_table(
    path: str,
    base_table: Dict[str, Dict[str, object]],
    fresh_table: Dict[str, Dict[str, object]],
    threshold: float,
) -> None:
    """Write the per-benchmark and per-group delta table as markdown."""
    lines = [
        "# Benchmark delta",
        "",
        f"Gate: median regression > {threshold:.0%} fails.",
        "",
        "## Per benchmark",
        "",
        "| benchmark | baseline (ms) | fresh (ms) | ratio | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for key in sorted(set(base_table) | set(fresh_table)):
        base = base_table.get(key)
        entry = fresh_table.get(key)
        if base is None:
            fresh_ns = float(entry["median_ns"])
            lines.append(f"| {key} | — | {fresh_ns / 1e6:.3f} | — | new |")
            continue
        base_ns = float(base["median_ns"])
        if entry is None:
            lines.append(f"| {key} | {base_ns / 1e6:.3f} | — | — | MISSING |")
            continue
        fresh_ns = float(entry["median_ns"])
        ratio = fresh_ns / base_ns if base_ns else float("inf")
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
        elif ratio < 1.0 - threshold:
            verdict = "improvement"
        else:
            verdict = "ok"
        lines.append(
            f"| {key} | {base_ns / 1e6:.3f} | {fresh_ns / 1e6:.3f} "
            f"| {ratio:.2f}x | {verdict} |"
        )
    lines += [
        "",
        "## Per group (median of medians)",
        "",
        "| group | baseline (ms) | fresh (ms) | ratio |",
        "|---|---:|---:|---:|",
    ]
    base_groups = group_medians(base_table)
    fresh_groups = group_medians(fresh_table)
    for group in sorted(set(base_groups) | set(fresh_groups)):
        base_ns = base_groups.get(group)
        fresh_ns = fresh_groups.get(group)
        base_ms = f"{base_ns / 1e6:.3f}" if base_ns is not None else "—"
        fresh_ms = f"{fresh_ns / 1e6:.3f}" if fresh_ns is not None else "—"
        ratio = (
            f"{fresh_ns / base_ns:.2f}x" if base_ns and fresh_ns is not None else "—"
        )
        lines.append(f"| {group} | {base_ms} | {fresh_ms} | {ratio} |")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"delta table written to {path}")


def next_baseline_path() -> Path:
    """First unused BENCH_<n>.json slot in the repo root."""
    n = 0
    while (REPO_ROOT / f"BENCH_{n}.json").exists():
        n += 1
    return REPO_ROOT / f"BENCH_{n}.json"


def capture(out: Optional[str], pytest_args: Optional[List[str]] = None) -> Path:
    bench_json = run_benchmarks(pytest_args)
    baseline = {
        "schema": 1,
        "git_sha": _git_sha(),
        "machine": bench_json.get("machine_info", {}).get("node", "unknown"),
        "benchmarks": summarize(bench_json),
        "engine_stats": _engine_stats(),
    }
    path = Path(out) if out else next_baseline_path()
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {path} ({len(baseline['benchmarks'])} benchmarks)")
    return path


def compare(
    baseline_path: str,
    fresh_path: str,
    threshold: float,
    delta_out: Optional[str] = None,
) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    base_table = baseline.get("benchmarks", {})
    fresh_table = fresh.get("benchmarks", {})
    if delta_out:
        write_delta_table(delta_out, base_table, fresh_table, threshold)

    failures: List[str] = []
    for key in sorted(base_table):
        base_ns = float(base_table[key]["median_ns"])
        entry = fresh_table.get(key)
        if entry is None:
            failures.append(f"{key}: present in baseline but missing from fresh run")
            continue
        fresh_ns = float(entry["median_ns"])
        ratio = fresh_ns / base_ns if base_ns else float("inf")
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{key}: {fresh_ns / 1e6:.3f} ms vs baseline "
                f"{base_ns / 1e6:.3f} ms ({ratio:.2f}x > {1.0 + threshold:.2f}x)"
            )
        elif ratio < 1.0 - threshold:
            verdict = "improvement"
        print(f"{verdict:12s} {key}: {base_ns / 1e6:.3f} ms -> {fresh_ns / 1e6:.3f} ms "
              f"({ratio:.2f}x)")
    for key in sorted(set(fresh_table) - set(base_table)):
        print(f"{'new':12s} {key}: {float(fresh_table[key]['median_ns']) / 1e6:.3f} ms "
              "(not in baseline)")

    base_groups = group_medians(base_table)
    fresh_groups = group_medians(fresh_table)
    for group in sorted(base_groups):
        base_ns = base_groups[group]
        fresh_ns = fresh_groups.get(group)
        if fresh_ns is None or not base_ns:
            continue
        print(f"{'group':12s} {group}: {base_ns / 1e6:.3f} ms -> "
              f"{fresh_ns / 1e6:.3f} ms ({fresh_ns / base_ns:.2f}x median-of-medians)")

    if failures:
        print(f"\n{len(failures)} regression(s) beyond the "
              f"{threshold:.0%} gate:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nall {len(base_table)} baseline benchmarks within the "
          f"{threshold:.0%} gate")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="baseline", description="benchmark baseline exporter/comparator"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cap = sub.add_parser("capture", help="run benchmarks, write BENCH_<n>.json")
    cap.add_argument("--out", default=None, metavar="PATH",
                     help="output path (default: next free BENCH_<n>.json)")

    cmp_parser = sub.add_parser("compare", help="gate a fresh run against a baseline")
    cmp_parser.add_argument("baseline", help="committed BENCH_<n>.json")
    cmp_parser.add_argument("fresh", help="freshly captured json")
    cmp_parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                            help="allowed median slowdown fraction (default 0.30)")
    cmp_parser.add_argument("--delta-out", default=None, metavar="PATH",
                            help="write a markdown delta table (per benchmark + group)")

    args = parser.parse_args(argv)
    if args.command == "capture":
        capture(args.out)
        return 0
    return compare(args.baseline, args.fresh, args.threshold, args.delta_out)


if __name__ == "__main__":
    sys.exit(main())
