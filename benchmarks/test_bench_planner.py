"""Benchmarks for the RT-OPEX planning hot path.

Three altitudes, matching where the ``--scale 1.0`` profile spends its
time:

* **Algorithm 1 alone** (``plan_migration`` over a window table) — the
  inner decision the scheduler takes at every parallelizable boundary;
* **one full RT-OPEX run** over the shared bench workload — free-window
  computation + planning + batch execution, the planner in situ;
* **the partitioned baseline** over the same workload — the no-planner
  control, so planner cost reads as the delta between the two groups.

The asserts pin decision invariants (R1-R3 hold, runs produce the same
record population) so a faster planner cannot silently change policy.
"""

import numpy as np
import pytest

from repro.sched import CRanConfig, PartitionedScheduler, RtOpexScheduler
from repro.sched.migration import plan_migration

#: A realistic window table: 7 helper cores, mixed budgets (us).
WINDOWS = [
    (0, 310.0), (1, 45.0), (2, 0.0), (3, 1210.0),
    (5, 90.0), (6, 445.0), (7, 12.0),
]
#: Decode fan-out at high MCS: ~8 code blocks, WCET ~140 us each.
NUM_SUBTASKS = 8
SUBTASK_US = 140.0
DELTA_US = 20.0
#: Planner invocations per benchmark round (two boundaries per
#: subframe; this is ~2000 subframes' worth of decisions).
PLAN_ROUNDS = 4000


@pytest.mark.benchmark(group="planner")
def test_bench_plan_migration(benchmark):
    def plan_many():
        decision = None
        for _ in range(PLAN_ROUNDS):
            decision = plan_migration(NUM_SUBTASKS, SUBTASK_US, DELTA_US, WINDOWS)
        return decision

    decision = benchmark(plan_many)
    assert decision is not None
    assert decision.migrated_subtasks + decision.local_subtasks == NUM_SUBTASKS
    # R3: no single core holds more than half the subtasks.
    assert all(count <= NUM_SUBTASKS // 2 for _, count in decision.assignments)


@pytest.mark.benchmark(group="planner")
def test_bench_rtopex_run(benchmark, bench_config, bench_workload):
    def run_opex():
        scheduler = RtOpexScheduler(bench_config, rng=np.random.default_rng(1))
        return scheduler.run(bench_workload)

    result = benchmark.pedantic(run_opex, rounds=3, iterations=1, warmup_rounds=1)
    assert len(result.records) == len(bench_workload)
    assert sum(r.migrated_subtasks for r in result.records) > 0


@pytest.mark.benchmark(group="planner")
def test_bench_partitioned_control(benchmark, bench_config, bench_workload):
    def run_partitioned():
        return PartitionedScheduler(bench_config).run(bench_workload)

    result = benchmark.pedantic(run_partitioned, rounds=3, iterations=1, warmup_rounds=1)
    assert len(result.records) == len(bench_workload)
    # RT-OPEX's dominance guard: it can never miss more than partitioned.
    opex = RtOpexScheduler(bench_config, rng=np.random.default_rng(1)).run(bench_workload)
    assert opex.miss_count() <= result.miss_count()


@pytest.mark.benchmark(group="planner")
def test_bench_workload_build(benchmark):
    from repro.sched import build_workload

    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = benchmark.pedantic(
        lambda: build_workload(cfg, 500, seed=2016), rounds=3, iterations=1
    )
    assert len(jobs) == cfg.num_basestations * 500
