"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def cache_args(tmp_path):
    """Isolated cache dir so CLI tests never touch the user's cache."""
    return ["--cache-dir", str(tmp_path / "cli-cache")]


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "table1" in out

    def test_run_single_experiment(self, capsys, cache_args):
        assert main(["fig4"] + cache_args) == 0
        out = capsys.readouterr().out
        assert "decode" in out
        assert "finished in" in out

    def test_scale_and_seed_flags(self, capsys, cache_args):
        assert main(["table1", "--scale", "0.01", "--seed", "3"] + cache_args) == 0
        out = capsys.readouterr().out
        assert "GPP (ours)" in out

    def test_unknown_experiment_lists_and_exits_nonzero(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "fig15" in err  # the known-experiment listing

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig15"])
        assert args.scale == 0.2
        assert args.experiment == "fig15"
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert args.json_path is None

    def test_invalid_jobs(self, capsys):
        assert main(["fig4", "--jobs", "0", "--no-cache"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_invalid_scale(self, capsys):
        assert main(["fig4", "--scale", "0", "--no-cache"]) == 2
        assert "--scale" in capsys.readouterr().err

    def test_no_cache_flag(self, capsys):
        assert main(["fig7", "--scale", "0.01", "--no-cache"]) == 0
        assert "cache off" in capsys.readouterr().out

    def test_warm_cache_rerun(self, capsys, cache_args):
        assert main(["fig7", "--scale", "0.01"] + cache_args) == 0
        assert "cache 0 hits / 1 misses" in capsys.readouterr().out
        assert main(["fig7", "--scale", "0.01"] + cache_args) == 0
        out = capsys.readouterr().out
        assert "(cached)" in out
        assert "cache 1 hits / 0 misses" in out

    def test_cache_dir_env_fallback(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("RTOPEX_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["fig7", "--scale", "0.01"]) == 0
        assert (tmp_path / "env-cache").is_dir()

    def test_json_report(self, capsys, cache_args, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["fig7", "--scale", "0.01", "--json", str(report_path)] + cache_args) == 0
        payload = json.loads(report_path.read_text())
        assert payload["jobs"] == 1
        assert [u["experiment_id"] for u in payload["units"]] == ["fig7"]
        assert payload["failures"] == {}

    def test_parallel_run_matches_serial(self, capsys, tmp_path):
        from repro.experiments import run_experiment

        assert main(["fig7", "--scale", "0.01", "--jobs", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert run_experiment("fig7", scale=0.01).text in out

    def test_profile_hotspots_in_json_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert (
            main(["fig7", "--scale", "0.01", "--no-cache", "--profile",
                  "--json", str(report_path)])
            == 0
        )
        assert "profiled" in capsys.readouterr().out
        payload = json.loads(report_path.read_text())
        profile = payload["profile"]
        assert profile["total_calls"] > 0
        assert 0 < len(profile["top"]) <= 20
        top = profile["top"][0]
        assert set(top) == {
            "function", "calls", "primitive_calls", "tottime_s", "cumtime_s"
        }
        # Sorted by cumulative time, the view the flag promises.
        cumtimes = [row["cumtime_s"] for row in profile["top"]]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_profile_refused_with_parallel_jobs(self, capsys):
        assert main(["fig7", "--scale", "0.01", "--no-cache", "--profile",
                     "--jobs", "2"]) == 2
        assert "--profile requires --jobs 1" in capsys.readouterr().err

    def test_unprofiled_report_has_null_profile(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["fig7", "--scale", "0.01", "--no-cache",
                     "--json", str(report_path)]) == 0
        assert json.loads(report_path.read_text())["profile"] is None

    def test_invalid_classes_spec_is_a_usage_error(self, capsys):
        assert main(
            ["ext_mixed", "--no-cache", "--classes", "volte:1.0"]
        ) == 2
        err = capsys.readouterr().err
        assert "invalid --classes spec" in err
        assert "volte" in err

    def test_classes_on_classless_experiment_rejected(self, capsys):
        assert main(["fig4", "--no-cache", "--classes", "embb:1.0"]) == 2
        assert "does not take" in capsys.readouterr().err

    def test_classes_flag_reaches_the_experiment(self, capsys):
        assert main(
            [
                "ext_mixed", "--scale", "0.01", "--no-cache",
                "--classes", "urllc:0.5,mmtc:0.5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "urllc:0.5,mmtc:0.5" in out
        assert "urllc miss" in out and "mmtc miss" in out

    def test_run_form_is_equivalent_to_bare_experiment(self, capsys, cache_args):
        assert main(["run", "fig7", "--scale", "0.01"] + cache_args) == 0
        assert "finished in" in capsys.readouterr().out

    def test_run_form_requires_an_experiment_id(self, capsys):
        assert main(["run"]) == 2
        assert "experiment id" in capsys.readouterr().err

    def test_stray_second_positional_rejected(self, capsys):
        assert main(["fig7", "fig4", "--no-cache"]) == 2
        assert "unexpected extra argument" in capsys.readouterr().err

    def test_fleet_flags_reach_the_experiment(self, capsys):
        assert main(
            [
                "run", "ext-fleet", "--scale", "0.02", "--no-cache",
                "--fleet-cells", "8", "--nodes", "6", "--placer", "greedy",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gap vs opt" in out
        assert "8 cells" in out

    def test_loads_and_schedulers_flags_reach_the_experiment(self, capsys):
        assert main(
            [
                "run", "ext-fleet", "--scale", "0.02", "--no-cache",
                "--fleet-cells", "8", "--nodes", "6", "--loads", "0.9",
                "--schedulers", "global", "--placer", "greedy",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "| 0.9  | global" in out
        assert "rt-opex" not in out  # scheduler axis really narrowed

    def test_invalid_loads_spec_is_a_usage_error(self, capsys):
        assert main(
            ["run", "ext-fleet", "--no-cache", "--loads", "9.9"]
        ) == 2
        assert "invalid --loads spec" in capsys.readouterr().err

    def test_invalid_schedulers_spec_is_a_usage_error(self, capsys):
        assert main(
            ["run", "ext-fleet", "--no-cache", "--schedulers", "bogus"]
        ) == 2
        assert "invalid --schedulers spec" in capsys.readouterr().err

    def test_invalid_nodes_spec_is_a_usage_error(self, capsys):
        assert main(
            ["run", "ext-fleet", "--no-cache", "--nodes", "6,6"]
        ) == 2
        err = capsys.readouterr().err
        assert "invalid --nodes spec" in err

    def test_invalid_placer_choice_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "ext-fleet", "--no-cache", "--placer", "ilp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_fleet_flags_on_non_fleet_experiment_rejected(self, capsys):
        assert main(["fig4", "--no-cache", "--fleet-cells", "8"]) == 2
        assert "does not take --fleet-cells" in capsys.readouterr().err

    def test_options_exported_in_json_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(
            [
                "run", "ext-fleet", "--scale", "0.02", "--no-cache",
                "--fleet-cells", "8", "--nodes", "6", "--placer", "greedy",
                "--json", str(report_path),
            ]
        ) == 0
        payload = json.loads(report_path.read_text())
        assert payload["options"] == {
            "fleet_cells": "8", "nodes": "6", "placer": "greedy"
        }

    def test_optionless_report_has_empty_options(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["fig7", "--scale", "0.01", "--no-cache",
                     "--json", str(report_path)]) == 0
        assert json.loads(report_path.read_text())["options"] == {}

    def test_failing_driver_reported_and_exits_nonzero(self, capsys):
        from repro.experiments.base import _REGISTRY, register

        @register("_t-cli-bad", "always fails")
        def _run(scale, seed):
            raise RuntimeError("driver exploded")

        try:
            assert main(["_t-cli-bad", "--no-cache"]) == 1
            captured = capsys.readouterr()
            assert "FAILED" in captured.err
            assert "_t-cli-bad" in captured.out  # runtime summary names it
        finally:
            del _REGISTRY["_t-cli-bad"]
