"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "table1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "decode" in out
        assert "finished in" in out

    def test_scale_and_seed_flags(self, capsys):
        assert main(["table1", "--scale", "0.01", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "GPP (ours)" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig15"])
        assert args.scale == 0.2
        assert args.experiment == "fig15"
