"""Tests for link-level transport primitives."""

import pytest

from repro.transport.link import (
    cpri_line_rate_gbps,
    propagation_delay_us,
    serialization_delay_us,
)


class TestSerialization:
    def test_zero_payload(self):
        assert serialization_delay_us(0, 1.0) == 0.0

    def test_one_gbe_anchor(self):
        # 15360 samples x 4 B at 1 GbE: ~0.5 ms (the paper's 10 MHz
        # per-radio transfer that dominates Fig. 7).
        delay = serialization_delay_us(61440, 1.0)
        assert delay == pytest.approx(500, abs=15)

    def test_ten_gbe_is_ten_times_faster(self):
        d1 = serialization_delay_us(100_000, 1.0)
        d10 = serialization_delay_us(100_000, 10.0)
        assert d1 == pytest.approx(10 * d10, rel=0.01)

    def test_includes_packet_overhead(self):
        # Two MTU-size payloads carry twice the framing overhead of one.
        one = serialization_delay_us(1500, 1.0)
        two = serialization_delay_us(3000, 1.0)
        assert two == pytest.approx(2 * one, rel=1e-6)

    def test_monotone_in_payload(self):
        delays = [serialization_delay_us(n, 10.0) for n in (0, 100, 10_000, 1_000_000)]
        assert delays == sorted(delays)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            serialization_delay_us(-1, 1.0)
        with pytest.raises(ValueError):
            serialization_delay_us(100, 0.0)


class TestPropagation:
    def test_5us_per_km(self):
        # Paper sec. 2.3: ~5 us/km in fiber.
        assert propagation_delay_us(20.0) == pytest.approx(100.0)

    def test_fronthaul_range_anchor(self):
        # 20-40 km -> 0.1-0.2 ms one-way.
        assert 100.0 <= propagation_delay_us(25.0) <= 200.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            propagation_delay_us(-1.0)


class TestCpri:
    def test_10mhz_2ant_rate(self):
        # Raw IQ fronthaul for 10 MHz x 2 antennas: ~1 Gbps class.
        rate = cpri_line_rate_gbps(10.0, 2)
        assert 0.9 < rate < 1.2

    def test_scales_with_antennas(self):
        assert cpri_line_rate_gbps(10.0, 4) == pytest.approx(
            2 * cpri_line_rate_gbps(10.0, 2)
        )

    def test_scales_with_bandwidth(self):
        assert cpri_line_rate_gbps(20.0, 1) == pytest.approx(
            2 * cpri_line_rate_gbps(10.0, 1)
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            cpri_line_rate_gbps(7.0, 1)
        with pytest.raises(ValueError):
            cpri_line_rate_gbps(10.0, 0)
