"""Tests for the WARP testbed transport model (Fig. 7 anchors)."""

import pytest

from repro.lte.grid import GridConfig
from repro.transport.warp import WarpTransportModel


@pytest.fixture
def model():
    return WarpTransportModel()


class TestWarpModel:
    def test_10mhz_8ant_near_09ms(self, model):
        # Paper sec. 4.2: "the one-way latency ... at 10MHz bandwidth is
        # as high as 0.9 ms" for the 8-antenna testbed.
        latency = model.one_way_latency_us(GridConfig(10.0), 8)
        assert latency == pytest.approx(900, abs=80)

    def test_10mhz_16ant_exceeds_1ms(self, model):
        # Fig. 7: 10 MHz exceeds 1 ms at full radio count.
        assert model.one_way_latency_us(GridConfig(10.0), 16) > 1000.0

    def test_5mhz_16ant_well_below_1ms(self, model):
        # Fig. 7: 5 MHz maxes out around 620 us.
        latency = model.one_way_latency_us(GridConfig(5.0), 16)
        assert latency < 800.0

    def test_max_8_antennas_at_10mhz(self, model):
        # "at most 8 antennas at 10 MHz can be supported on the GPP".
        assert model.max_supported_antennas(GridConfig(10.0)) == 8

    def test_more_antennas_supported_at_5mhz(self, model):
        assert model.max_supported_antennas(GridConfig(5.0)) >= 16

    def test_monotone_in_antennas(self, model):
        grid = GridConfig(10.0)
        latencies = [model.one_way_latency_us(grid, n) for n in range(1, 17)]
        assert latencies == sorted(latencies)

    def test_monotone_in_bandwidth(self, model):
        for n in (1, 8):
            assert model.one_way_latency_us(GridConfig(10.0), n) > model.one_way_latency_us(
                GridConfig(5.0), n
            )

    def test_rejects_zero_antennas(self, model):
        with pytest.raises(ValueError):
            model.one_way_latency_us(GridConfig(10.0), 0)

    def test_draw_adds_bounded_jitter(self, model, rng):
        grid = GridConfig(10.0)
        base = model.one_way_latency_us(grid, 4)
        draws = [model.draw(grid, 4, rng) for _ in range(200)]
        assert all(base <= d <= base + model.jitter_us for d in draws)
