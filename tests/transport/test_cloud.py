"""Tests for the cloud-network latency model (Fig. 6 anchors)."""

import numpy as np
import pytest

from repro.transport.cloud import CloudNetworkModel
from repro.transport.fronthaul import FronthaulModel


class TestCloudModel:
    @pytest.mark.parametrize("rate", [1.0, 10.0])
    def test_mean_near_150us(self, rate, rng):
        samples = CloudNetworkModel(rate_gbps=rate).measure(rng, 200_000)
        assert samples.mean() == pytest.approx(150.0, rel=0.05)

    @pytest.mark.parametrize("rate", [1.0, 10.0])
    def test_tail_rate_matches_paper(self, rate, rng):
        # ~1 in 1e4 packets above 0.25 ms.
        samples = CloudNetworkModel(rate_gbps=rate).measure(rng, 1_000_000)
        frac = np.mean(samples > 250.0)
        assert 1e-5 < frac < 1e-3

    def test_one_gbe_has_wider_body(self, rng):
        one = CloudNetworkModel(rate_gbps=1.0).measure(rng, 100_000)
        ten = CloudNetworkModel(rate_gbps=10.0).measure(rng, 100_000)
        assert one.std() > ten.std()

    def test_positive(self, rng):
        samples = CloudNetworkModel().measure(rng, 10_000)
        assert (samples > 0).all()

    def test_payload_adds_serialization(self, rng):
        model = CloudNetworkModel(rate_gbps=1.0)
        plain = model.draw(rng, 10_000).mean()
        loaded = model.draw(rng, 10_000, payload_bytes=61_440).mean()
        assert loaded - plain == pytest.approx(500, abs=30)

    def test_draw_one(self, rng):
        assert CloudNetworkModel().draw_one(rng) > 0


class TestFronthaul:
    def test_fixed_latency(self):
        model = FronthaulModel(distance_km=20.0, switch_overhead_us=10.0)
        assert model.one_way_latency_us() == pytest.approx(110.0)

    def test_serialization_optional(self):
        model = FronthaulModel(distance_km=20.0, switch_overhead_us=10.0, rate_gbps=10.0)
        with_payload = model.one_way_latency_us(payload_bytes=61_440)
        assert with_payload > model.one_way_latency_us()

    def test_negligible_jitter(self, rng):
        # Paper: the fronthaul has "almost negligible jitter".
        model = FronthaulModel()
        draws = np.array([model.draw(rng) for _ in range(1000)])
        assert draws.std() < 1.0

    def test_paper_distance_range(self):
        # 20-40 km fronthaul -> 0.1-0.2 ms one-way propagation.
        model = FronthaulModel(distance_km=30.0, switch_overhead_us=0.0)
        assert 100.0 <= model.one_way_latency_us() <= 200.0
