"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.lte.grid import GridConfig
from repro.sched import CRanConfig, build_workload
from repro.timing.model import LinearTimingModel


@pytest.fixture
def rng():
    """Deterministic RNG for tests that draw random data."""
    return np.random.default_rng(12345)


@pytest.fixture
def grid_10mhz():
    return GridConfig(10.0)


@pytest.fixture
def grid_small():
    """1.4 MHz grid: 6 PRBs — keeps functional-chain tests fast."""
    return GridConfig(1.4)


@pytest.fixture
def timing_model():
    return LinearTimingModel()


@pytest.fixture(scope="session")
def small_config():
    return CRanConfig(transport_latency_us=500.0)


@pytest.fixture(scope="session")
def small_workload(small_config):
    """A modest paired workload reused by the scheduler tests."""
    return build_workload(small_config, 600, seed=99)
