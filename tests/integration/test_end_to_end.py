"""Cross-module integration tests.

These tie the substrates together: the functional PHY grounds the task
decomposition the timing model assumes; the workload, timing and
scheduler layers must agree on identities and budgets; and the paired
scheduler comparison must reproduce the paper's ordering.
"""

import numpy as np
import pytest

from repro.lte.subframe import UplinkGrant
from repro.phy.chain import UplinkReceiver, UplinkTransmitter
from repro.phy.channel import AwgnChannel
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.sched.runner import compare_schedulers
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work


class TestPhyGroundsTaskModel:
    """The functional chain and the task graph must agree structurally."""

    def test_code_block_counts_agree(self, grid_10mhz, rng):
        # The decode subtask count in the task graph equals the number of
        # code blocks the real receiver decodes.
        grant = UplinkGrant(mcs=21, num_prbs=50, num_antennas=1)
        tx = UplinkTransmitter(grid=grid_10mhz)
        rx = UplinkReceiver(grid=grid_10mhz)
        enc = tx.encode(grant, rng=rng)
        channel = AwgnChannel(snr_db=35.0, num_antennas=1, rng=rng)
        obs = channel.apply(enc.waveform)
        power = float(np.mean(np.abs(enc.waveform) ** 2))
        result = rx.decode(obs, grant, channel.noise_variance(power))

        work = build_subframe_work(
            LinearTimingModel(), grant, result.iterations, max_iterations=4
        )
        assert work.task("decode").num_subtasks == result.code_blocks

    def test_real_iterations_feed_timing_model(self, grid_small, rng):
        # Iteration counts logged from the real decoder are valid input
        # to the timing model (the calibration loop of DESIGN.md).
        grant = UplinkGrant(mcs=10, num_prbs=grid_small.num_prbs, num_antennas=2)
        tx = UplinkTransmitter(grid=grid_small)
        rx = UplinkReceiver(grid=grid_small)
        enc = tx.encode(grant, rng=rng)
        channel = AwgnChannel(snr_db=18.0, num_antennas=2, rng=rng)
        obs = channel.apply(enc.waveform)
        power = float(np.mean(np.abs(enc.waveform) ** 2))
        result = rx.decode(obs, grant, channel.noise_variance(power))
        model = LinearTimingModel()
        t = model.total_time_for_grant(grant, float(np.mean(result.iterations)))
        assert t > 0

    def test_fft_subtask_count_matches_antennas(self):
        grant = UplinkGrant(mcs=13, num_antennas=4)
        work = build_subframe_work(
            LinearTimingModel(), grant, [1] * grant.code_blocks, max_iterations=4
        )
        assert work.task("fft").num_subtasks == 4


class TestWorkloadSchedulerContract:
    def test_every_job_scheduled_exactly_once(self, small_config, small_workload):
        for name in ("partitioned", "global", "rt-opex"):
            result = run_scheduler(name, small_config, small_workload)
            keys = sorted((r.bs_id, r.index) for r in result.records)
            expected = sorted(
                (j.subframe.bs_id, j.subframe.index) for j in small_workload
            )
            assert keys == expected

    def test_no_finish_before_start(self, small_config, small_workload):
        for name in ("partitioned", "global", "rt-opex"):
            result = run_scheduler(name, small_config, small_workload)
            for r in result.records:
                if not np.isnan(r.finish_us):
                    assert r.finish_us >= r.start_us - 1e-9

    def test_non_missed_meet_deadline(self, small_config, small_workload):
        for name in ("partitioned", "global", "rt-opex"):
            result = run_scheduler(name, small_config, small_workload)
            for r in result.records:
                if not (r.missed or r.dropped):
                    assert r.finish_us <= r.deadline_us + 1e-6

    def test_budget_identity(self, small_workload):
        for job in small_workload[:50]:
            sf = job.subframe
            assert sf.deadline_us - sf.arrival_us == pytest.approx(
                sf.processing_budget_us
            )


class TestPaperOrdering:
    @pytest.fixture(scope="class")
    def results(self):
        cfg = CRanConfig(transport_latency_us=550.0)
        jobs = build_workload(cfg, 1500, seed=3)
        return compare_schedulers(cfg, jobs), cfg, jobs

    def test_rtopex_at_least_5x_better(self, results):
        res, _, _ = results
        part = res["partitioned"].miss_count()
        opex = res["rt-opex"].miss_count()
        assert part >= 10  # the workload must actually stress the node
        assert opex * 5 <= part

    def test_global_not_better_than_partitioned(self, results):
        res, _, _ = results
        assert res["global"].miss_rate() >= res["partitioned"].miss_rate() * 0.9

    def test_rtopex_mean_processing_not_worse(self, results):
        res, _, _ = results
        opex = res["rt-opex"].processing_times().mean()
        part = res["partitioned"].processing_times().mean()
        assert opex <= part * 1.02

    def test_misses_concentrate_at_high_mcs(self, results):
        res, _, _ = results
        by_mcs = res["partitioned"].miss_rate_by_mcs()
        low = np.mean([v for m, v in by_mcs.items() if m <= 13])
        high = np.mean([v for m, v in by_mcs.items() if m >= 24])
        assert high > low

    def test_migrations_target_other_cores(self, results):
        res, _, _ = results
        for r in res["rt-opex"].records:
            for m in r.migrations:
                assert m.target_core != r.core_id


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def run_once():
            cfg = CRanConfig(transport_latency_us=500.0)
            jobs = build_workload(cfg, 300, seed=11)
            result = run_scheduler("rt-opex", cfg, jobs, seed=11)
            return (result.miss_count(), sum(r.migrated_subtasks for r in result.records))

        assert run_once() == run_once()
