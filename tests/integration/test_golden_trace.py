"""Golden-trace identity: the perf work must not move a single byte.

The engine batching, planner memoization, and the array-native workload
pipeline are pure optimizations — the acceptance bar is that every
scheduler's observable output is *byte-identical* to the
pre-optimization tree.  This test pins that: all six schedulers (the
paper's five ``table2`` policies plus ``das``) run at scale 0.2 over
the paper workload with full JSONL tracing, and both the streamed trace
and the ``SubframeRecord`` CSV are hashed against goldens captured
before the optimization landed.

Regenerate (only for a change that is *supposed* to alter results)::

    PYTHONPATH=src python tests/integration/test_golden_trace.py

which rewrites ``golden_table2_scale02.json`` from the current tree.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.results_io import save_result_csv
from repro.experiments.base import scaled_subframes
from repro.obs import Tracer, tracing
from repro.obs.export import JsonlTraceSink
from repro.sched import CRanConfig, build_workload
from repro.sched.runner import run_scheduler

GOLDEN_PATH = Path(__file__).parent / "golden_table2_scale02.json"
SCALE = 0.2
SEED = 2016
SCHEDULERS = ("pran", "cloudiq", "partitioned", "global", "rt-opex", "das")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _build_workload():
    cfg = CRanConfig(transport_latency_us=500.0)
    return cfg, build_workload(cfg, scaled_subframes(SCALE), seed=SEED)


def _run_fingerprint(name: str, cfg, jobs, out_dir: Path) -> dict:
    """Run one scheduler fully traced; fingerprint the JSONL + CSV."""
    run_cfg = cfg if name not in ("global", "das") else CRanConfig(
        transport_latency_us=500.0, num_cores=8
    )
    jsonl_path = out_dir / f"{name.replace('-', '')}.jsonl"
    csv_path = out_dir / f"{name.replace('-', '')}.csv"
    sink = JsonlTraceSink(jsonl_path)
    tracer = Tracer(sink=sink)
    with tracing(tracer):
        result = run_scheduler(name, run_cfg, jobs, seed=SEED)
    sink.close()
    save_result_csv(csv_path, result)
    fingerprint = {
        "events": tracer.num_events(),
        "jsonl_sha256": _sha256(jsonl_path),
        "csv_sha256": _sha256(csv_path),
        "miss_count": result.miss_count(),
    }
    # The multi-megabyte streams only existed for hashing.
    jsonl_path.unlink()
    csv_path.unlink()
    return fingerprint


@pytest.fixture(scope="module")
def golden_workload():
    return _build_workload()


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; regenerate with "
        "`PYTHONPATH=src python tests/integration/test_golden_trace.py`"
    )
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_scheduler_outputs_byte_identical(scheduler, golden_workload, golden, tmp_path):
    cfg, jobs = golden_workload
    fingerprint = _run_fingerprint(scheduler, cfg, jobs, tmp_path)
    expected = golden["schedulers"][scheduler]
    assert fingerprint == expected, (
        f"{scheduler} output diverged from the golden capture: "
        f"{fingerprint} != {expected}"
    )


def test_golden_covers_all_six(golden):
    assert sorted(golden["schedulers"]) == sorted(SCHEDULERS)
    assert golden["scale"] == SCALE
    assert golden["seed"] == SEED


def regenerate() -> None:
    import tempfile

    cfg, jobs = _build_workload()
    payload = {
        "scale": SCALE,
        "seed": SEED,
        "subframes_per_bs": scaled_subframes(SCALE),
        "schedulers": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        for name in SCHEDULERS:
            payload["schedulers"][name] = _run_fingerprint(name, cfg, jobs, Path(tmp))
            print(f"{name}: {payload['schedulers'][name]}")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"golden written to {GOLDEN_PATH}")


if __name__ == "__main__":
    regenerate()
