"""SoA-vs-legacy golden identity: both builder paths, same bytes out.

The golden-trace suite pins the fast path against captures from before
the optimization; this suite closes the loop *within* one tree by
running every scheduler over the legacy-built and the SoA-built job
lists and hashing the full JSONL trace + record CSV of each.  The two
fingerprints must match byte for byte — if a future change breaks the
equivalence of either builder, this fails without any golden refresh.
"""

import hashlib
from pathlib import Path

import pytest

from repro.analysis.results_io import save_result_csv
from repro.obs import Tracer, tracing
from repro.obs.export import JsonlTraceSink
from repro.sched import CRanConfig
from repro.sched.runner import build_workload, build_workload_legacy, run_scheduler

SEED = 2016
SUBFRAMES = 150
SCHEDULERS = ("pran", "cloudiq", "partitioned", "global", "rt-opex", "das")


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fingerprint(name: str, jobs, out_dir: Path, tag: str) -> dict:
    cfg = CRanConfig(transport_latency_us=500.0)
    if name in ("global", "das"):
        cfg = CRanConfig(transport_latency_us=500.0, num_cores=8)
    jsonl_path = out_dir / f"{tag}.jsonl"
    csv_path = out_dir / f"{tag}.csv"
    sink = JsonlTraceSink(jsonl_path)
    with tracing(Tracer(sink=sink)):
        result = run_scheduler(name, cfg, jobs, seed=SEED)
    sink.close()
    save_result_csv(csv_path, result)
    fingerprint = {
        "jsonl_sha256": _sha256(jsonl_path),
        "csv_sha256": _sha256(csv_path),
        "miss_count": result.miss_count(),
    }
    jsonl_path.unlink()
    csv_path.unlink()
    return fingerprint


@pytest.fixture(scope="module")
def both_workloads():
    cfg = CRanConfig(transport_latency_us=500.0)
    fast = build_workload(cfg, SUBFRAMES, seed=SEED)
    legacy = build_workload_legacy(cfg, SUBFRAMES, seed=SEED)
    return fast, legacy


def test_job_lists_compare_equal(both_workloads):
    fast, legacy = both_workloads
    assert fast == legacy


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_soa_and_legacy_traces_byte_identical(scheduler, both_workloads, tmp_path):
    fast, legacy = both_workloads
    via_fast = _fingerprint(scheduler, fast, tmp_path, f"{scheduler}-fast")
    via_legacy = _fingerprint(scheduler, legacy, tmp_path, f"{scheduler}-legacy")
    assert via_fast == via_legacy, (
        f"{scheduler}: SoA-built and legacy-built workloads produced "
        f"different bytes: {via_fast} != {via_legacy}"
    )
