"""Integration: stochastic transport jitter through the full pipeline.

The paper's fixed-RTT runs replace the live transport; this checks the
stochastic path too — per-subframe cloud latencies drawn from the Fig. 6
model feed the workload builder, and all schedulers stay correct when
arrivals are no longer exactly periodic.
"""

import numpy as np
import pytest

from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.transport.cloud import CloudNetworkModel


@pytest.fixture(scope="module")
def jittered():
    cfg = CRanConfig(transport_latency_us=400.0)
    rng = np.random.default_rng(5)
    cloud = CloudNetworkModel(rate_gbps=10.0)
    # Jitter = cloud latency beyond its mean, per (bs, subframe).
    jitter = cloud.draw(rng, size=4 * 400).reshape(4, 400) - cloud.mean_us
    jitter = np.maximum(jitter, -cfg.transport_latency_us)
    jobs = build_workload(cfg, 400, seed=5, transport_jitter=jitter)
    return cfg, jobs


class TestJitteredTransport:
    def test_arrivals_are_jittered(self, jittered):
        _, jobs = jittered
        offsets = {round(j.arrival_us - j.subframe.index * 1000.0, 3) for j in jobs}
        assert len(offsets) > 100  # genuinely per-subframe latencies

    @pytest.mark.parametrize("name", ["partitioned", "global", "rt-opex", "pran"])
    def test_schedulers_stay_sound_under_jitter(self, jittered, name):
        cfg, jobs = jittered
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=400.0, num_cores=8
        )
        result = run_scheduler(name, run_cfg, jobs)
        assert len(result.records) == len(jobs)
        for r in result.records:
            if not np.isnan(r.finish_us):
                assert r.finish_us <= r.deadline_us + 1e-6

    def test_budget_shrinks_with_latency(self, jittered):
        _, jobs = jittered
        for job in jobs[:100]:
            assert job.subframe.processing_budget_us == pytest.approx(
                2000.0 - job.subframe.transport_latency_us
            )

    def test_rtopex_still_ahead_under_jitter(self, jittered):
        cfg, jobs = jittered
        part = run_scheduler("partitioned", cfg, jobs)
        opex = run_scheduler("rt-opex", cfg, jobs)
        assert opex.miss_count() <= part.miss_count()
