"""Tests for ``python -m repro.check replay`` — offline trace validation."""

import subprocess
import sys

import pytest

from repro.check.cli import main
from repro.obs.export import write_jsonl_trace
from repro.obs.trace import Tracer, tracing
from repro.sched import run_scheduler


@pytest.fixture(scope="module")
def real_trace(tmp_path_factory, small_config, small_workload):
    """A genuine two-scheduler trace streamed to JSONL."""
    tracer = Tracer()
    with tracing(tracer):
        for name in ("rt-opex", "partitioned"):
            run_scheduler(name, small_config, small_workload, seed=99)
    path = tmp_path_factory.mktemp("replay") / "trace.jsonl"
    write_jsonl_trace(path, tracer)
    return path


class TestReplay:
    def test_real_trace_validates(self, real_trace, capsys):
        assert main(["replay", str(real_trace)]) == 0
        out = capsys.readouterr().out
        assert "replay ok" in out
        assert "2 run(s)" in out

    def test_counts_cover_every_event_line(self, real_trace, capsys):
        event_lines = sum(
            1 for line in real_trace.read_text().splitlines()
            if '"type":"event"' in line
        )
        assert event_lines > 0
        assert main(["replay", str(real_trace)]) == 0
        assert f"{event_lines} event(s) checked" in capsys.readouterr().out

    def test_corrupted_trace_exits_one(self, real_trace, tmp_path, capsys):
        lines = real_trace.read_text().splitlines()
        # Duplicate a busy task span: the copy starts before the original
        # ends, which the overlap check must catch.
        span = next(
            i for i, line in enumerate(lines)
            if '"kind":"task"' in line and '"dur_us"' in line
        )
        lines.insert(span + 1, lines[span])
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert main(["replay", str(bad)]) == 1
        assert "sanitizer check" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["replay", "no/such/trace.jsonl"]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_event_before_header_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "headless.jsonl"
        bad.write_text('{"type":"event","run":0,"kind":"task","ts_us":0.0,"core":0}\n')
        assert main(["replay", str(bad)]) == 2
        assert "malformed trace" in capsys.readouterr().err

    def test_unparseable_line_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "garbage.jsonl"
        bad.write_text("not json\n")
        assert main(["replay", str(bad)]) == 2

    def test_allow_partial_forgives_truncated_tail(self, real_trace, tmp_path):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(real_trace.read_text() + '{"type":"event","run":0,')
        assert main(["replay", str(truncated)]) == 2
        assert main(["replay", "--allow-partial", str(truncated)]) == 0

    def test_module_entry_point(self, real_trace):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "replay", str(real_trace)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "replay ok" in proc.stdout
