"""Tests for the project graph builder (repro.check.graph)."""

from pathlib import Path

from repro.check.graph import build_graph
from repro.check.parse import load_modules, parse_source

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def module(source, path):
    """Parse ``source`` as if it lived at ``path`` under src/repro."""
    return parse_source(source, path=path)


class TestSymbolResolution:
    def test_direct_function_resolves(self):
        graph = build_graph([
            module("def helper():\n    return 1\n", "src/repro/util.py"),
        ])
        info = graph.resolve_function("repro.util", "helper")
        assert info is not None and info.qualname == "repro.util:helper"

    def test_import_chain_resolves_across_modules(self):
        graph = build_graph([
            module("def helper():\n    return 1\n", "src/repro/impl.py"),
            module(
                "from repro.impl import helper\n\ndef use():\n    return helper()\n",
                "src/repro/app.py",
            ),
        ])
        info = graph.resolve_function("repro.app", "helper")
        assert info is not None and info.qualname == "repro.impl:helper"
        assert "repro.impl:helper" in graph.edges.get("repro.app:use", set())

    def test_reexport_through_package_init(self):
        graph = build_graph([
            module("def helper():\n    return 1\n", "src/repro/util/impl.py"),
            module(
                "from repro.util.impl import helper\n",
                "src/repro/util/__init__.py",
            ),
            module(
                "from repro.util import helper\n\ndef use():\n    return helper()\n",
                "src/repro/app.py",
            ),
        ])
        info = graph.resolve_function("repro.app", "helper")
        assert info is not None and info.qualname == "repro.util.impl:helper"

    def test_relative_reexport_through_package_init(self):
        graph = build_graph([
            module("def helper():\n    return 1\n", "src/repro/util/impl.py"),
            module("from .impl import helper\n", "src/repro/util/__init__.py"),
            module(
                "from repro.util import helper as h\n\ndef use():\n    return h()\n",
                "src/repro/app.py",
            ),
        ])
        info = graph.resolve_function("repro.app", "h")
        assert info is not None and info.qualname == "repro.util.impl:helper"

    def test_import_cycle_terminates(self):
        graph = build_graph([
            module("from repro.cyc_b import beta as alpha\n", "src/repro/cyc_a.py"),
            module("from repro.cyc_a import alpha as beta\n", "src/repro/cyc_b.py"),
        ])
        # Neither name ever reaches a def: resolution must give up
        # (None) instead of recursing forever.
        assert graph.resolve_function("repro.cyc_a", "alpha") is None
        assert graph.resolve_function("repro.cyc_b", "beta") is None

    def test_mutable_resolves_through_import(self):
        graph = build_graph([
            module("CACHE = {}\n", "src/repro/state.py"),
            module(
                "from repro.state import CACHE\n\ndef f(k):\n    return CACHE\n",
                "src/repro/user.py",
            ),
        ])
        resolved = graph.resolve_mutable("repro.user", "CACHE")
        assert resolved is not None
        owner_module, owner_name, _ = resolved
        assert (owner_module, owner_name) == ("repro.state", "CACHE")

    def test_non_mutable_binding_is_not_a_mutable(self):
        graph = build_graph([
            module("LIMIT = 3\n", "src/repro/state.py"),
        ])
        assert graph.resolve_mutable("repro.state", "LIMIT") is None


REGISTRY_SRC = """
from repro.experiments.base import SweepSpec, WorkUnit, attach_sweep, register


@register("exp-a", "A", options=("alpha",))
def run_a(scale, seed, options=None):
    return {}


def _units(scale, seed, options):
    return [WorkUnit("exp-a", "k", params={"alpha": options.get("alpha")}, seed=seed)]


def _run_unit(unit):
    return {}


def _combine(results, scale, seed):
    return {}


attach_sweep(
    "exp-a",
    SweepSpec(units=_units, run_unit=_run_unit, combine=_combine, takes_options=True),
)
"""

DISPATCH_SRC = """
def dispatch_driver(exp):
    return exp.fn(1.0, 0, None)


def dispatch_sweep(spec, unit):
    return spec.run_unit(unit)


def plain(x):
    return x
"""


class TestRegistryExtraction:
    def build(self):
        return build_graph([
            module(REGISTRY_SRC, "src/repro/experiments/ext_demo.py"),
            module(DISPATCH_SRC, "src/repro/runtime/dispatch.py"),
        ])

    def test_register_site_recorded_with_options(self):
        graph = self.build()
        exp = graph.experiments["exp-a"]
        assert exp.options == ("alpha",)
        assert exp.driver == "repro.experiments.ext_demo:run_a"

    def test_sweep_slots_resolved_to_qualnames(self):
        graph = self.build()
        sweep = graph.sweeps["exp-a"]
        assert sweep.takes_options is True
        assert sweep.units == "repro.experiments.ext_demo:_units"
        assert sweep.run_unit == "repro.experiments.ext_demo:_run_unit"
        assert sweep.combine == "repro.experiments.ext_demo:_combine"

    def test_fn_attr_reaches_registered_drivers(self):
        graph = self.build()
        reachable = graph.reachable_from(["repro.runtime.dispatch:dispatch_driver"])
        assert "repro.experiments.ext_demo:run_a" in reachable

    def test_run_unit_attr_reaches_sweep_callbacks(self):
        graph = self.build()
        reachable = graph.reachable_from(["repro.runtime.dispatch:dispatch_sweep"])
        assert "repro.experiments.ext_demo:_run_unit" in reachable

    def test_registry_dispatch_can_be_disabled(self):
        graph = self.build()
        reachable = graph.reachable_from(
            ["repro.runtime.dispatch:dispatch_driver"], follow_registry=False
        )
        assert "repro.experiments.ext_demo:run_a" not in reachable

    def test_plain_function_reaches_nothing_dynamic(self):
        graph = self.build()
        reachable = graph.reachable_from(["repro.runtime.dispatch:plain"])
        assert reachable == {"repro.runtime.dispatch:plain"}


FLAGS_SRC = """
from repro.experiments.ext_demo import parse_alpha

_OPTION_FLAGS = (
    ("--alpha", "alpha", parse_alpha, "comma list"),
    ("--beta", "beta", None, "plain"),
)
"""


class TestOptionFlags:
    def test_rows_and_validator_resolved(self):
        graph = build_graph([
            module("def parse_alpha(spec):\n    return spec\n",
                   "src/repro/experiments/ext_demo.py"),
            module(FLAGS_SRC, "src/repro/cli.py"),
        ])
        flags = {f.flag: f for f in graph.option_flags}
        assert set(flags) == {"--alpha", "--beta"}
        assert flags["--alpha"].option == "alpha"
        assert flags["--alpha"].validator == "repro.experiments.ext_demo:parse_alpha"
        assert flags["--beta"].validator is None


class TestPoolRoots:
    def test_submit_argument_becomes_root(self):
        graph = build_graph([
            module(
                "def worker(unit):\n    return unit\n\n"
                "def drive(pool, units):\n"
                "    return [pool.submit(worker, u) for u in units]\n",
                "src/repro/runtime/engine.py",
            ),
        ])
        assert graph.pool_roots == {"repro.runtime.engine:worker"}


class TestRealTree:
    """The graph against the actual repo: the idioms it must reify."""

    def build(self):
        return build_graph(load_modules([REPO_SRC]))

    def test_experiment_registry_recovered(self):
        graph = self.build()
        exp = graph.experiments["ext-fleet"]
        assert set(exp.options) == {
            "fleet_cells", "nodes", "loads", "schedulers", "placer",
        }
        assert exp.driver is not None and exp.driver.startswith(
            "repro.experiments.ext_fleet:"
        )

    def test_sweep_callbacks_recovered(self):
        graph = self.build()
        sweep = graph.sweeps["ext-fleet"]
        assert sweep.takes_options is True
        assert sweep.units == "repro.experiments.ext_fleet:_units"

    def test_cli_option_flags_recovered(self):
        graph = self.build()
        options = {f.option for f in graph.option_flags}
        assert {"classes", "fleet_cells", "nodes", "loads", "schedulers",
                "placer"} <= options

    def test_pool_submission_roots_are_the_engine_workers(self):
        graph = self.build()
        assert graph.pool_roots == {
            "repro.runtime.engine:_worker_whole",
            "repro.runtime.engine:_worker_unit",
        }

    def test_workers_reach_sweep_callbacks_through_registry(self):
        graph = self.build()
        reachable = graph.reachable_from(sorted(graph.pool_roots))
        assert "repro.experiments.ext_fleet:_run_unit" in reachable
        assert "repro.experiments.ext_mixed:_run_unit" in reachable
