"""Tests for the shared parse-once module loader (repro.check.parse)."""

import ast

from repro.check.analyze import analyze_modules
from repro.check.lint import lint_modules
from repro.check.parse import (
    iter_python_files,
    load_modules,
    module_name_for,
    modules_by_name,
    parse_source,
)


class TestModuleNaming:
    def test_anchored_at_repro_package(self):
        assert module_name_for("src/repro/sched/rtopex.py") == "repro.sched.rtopex"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_loose_file_uses_its_stem(self):
        assert module_name_for("tests/scratch/fixture_a.py") == "fixture_a"

    def test_modules_by_name_last_wins(self):
        first = parse_source("A = 1\n", path="a/mod.py")
        second = parse_source("A = 2\n", path="b/mod.py")
        index = modules_by_name([first, second])
        assert index["mod"] is second


class TestFileDiscovery:
    def test_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("B = 1\n")
        (tmp_path / "a.py").write_text("A = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("boom(\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_explicit_file_passes_through(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("X = 1\n")
        assert iter_python_files([target]) == [target]


class TestParseOnce:
    """lint + analyze over the same tree must cost one parse per file."""

    def test_lint_and_analyze_share_parsed_modules(self, tmp_path, monkeypatch):
        (tmp_path / "first.py").write_text("import random\n\nVALUE = 1\n")
        (tmp_path / "second.py").write_text("def f(delay_us):\n    return delay_us\n")

        calls = []
        real_parse = ast.parse

        def counting_parse(source, *args, **kwargs):
            calls.append(kwargs.get("filename") or (args[0] if args else "?"))
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)

        modules = load_modules([tmp_path])
        assert len(calls) == 2

        lint_modules(modules)
        lint_modules(modules, select={"RTX001"})
        analyze_modules(modules)
        assert len(calls) == 2  # no consumer re-parsed anything
