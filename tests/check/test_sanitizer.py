"""Tests for the virtual-time sanitizer (repro.check.sanitizer)."""

import pytest

from repro.check import (
    ALL_CHECKS,
    SanitizerError,
    SanitizingSink,
    SanitizingTrace,
    TraceSanitizer,
    checks_for_scheduler,
    sanitize_enabled,
)
from repro.obs.events import (
    ARRIVAL,
    DEADLINE,
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SUBTASK,
    TASK,
    TraceEvent,
)
from repro.obs.trace import RunTrace
from repro.sched.base import CRanConfig
from repro.sched.runner import build_workload, run_scheduler


def ev(kind, ts, core=0, dur=0.0, **args):
    return TraceEvent(kind, ts, core, dur_us=dur, args=args)


def feed(events, scheduler=""):
    checks, unordered = checks_for_scheduler(scheduler)
    sanitizer = TraceSanitizer(checks, unordered)
    for event in events:
        sanitizer.observe(event)
    sanitizer.finish()
    return sanitizer


class TestNegativePaths:
    def test_overlapping_spans_raise(self):
        first = ev(TASK, 0.0, core=0, dur=10.0)
        second = ev(TASK, 5.0, core=0, dur=10.0)
        with pytest.raises(SanitizerError) as excinfo:
            feed([first, second])
        err = excinfo.value
        assert err.check == "overlap"
        assert err.events == (first, second)
        assert "core 0" in str(err) and "task" in str(err)

    def test_time_regression_raises(self):
        first = ev(ARRIVAL, 10.0, core=2)
        second = ev(ARRIVAL, 5.0, core=2)
        with pytest.raises(SanitizerError) as excinfo:
            feed([first, second])
        err = excinfo.value
        assert err.check == "monotone"
        assert err.events == (first, second)
        assert "regressed" in str(err)

    def test_dangling_migration_planned_raises(self):
        planned = ev(MIGRATION_PLANNED, 1.0, core=0, shipped=2, batches=[7])
        with pytest.raises(SanitizerError) as excinfo:
            feed([planned])
        err = excinfo.value
        assert err.check == "conservation"
        assert err.events == (planned,)
        assert "never closed" in str(err)

    def test_returned_without_planned_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            feed([ev(MIGRATION_RETURNED, 5.0, core=0, batch=3)])
        assert excinfo.value.check == "conservation"

    def test_executed_twice_raises(self):
        events = [
            ev(MIGRATION_PLANNED, 0.0, core=0, batches=[1]),
            ev(MIGRATION_EXECUTED, 1.0, core=1, dur=2.0, batch=1),
            ev(MIGRATION_EXECUTED, 4.0, core=1, dur=2.0, batch=1),
        ]
        with pytest.raises(SanitizerError) as excinfo:
            feed(events)
        assert excinfo.value.check == "conservation"
        assert "twice" in str(excinfo.value)

    def test_negative_gap_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            feed([ev(GAP, 10.0, core=0, dur=-2.0)])
        err = excinfo.value
        assert err.check == "nonnegative"
        assert "gap" in str(err)

    def test_subtask_outside_batch_raises(self):
        with pytest.raises(SanitizerError) as excinfo:
            feed([ev(SUBTASK, 3.0, core=1, dur=1.0)])
        assert excinfo.value.check == "nesting"

    def test_subtask_escaping_batch_raises(self):
        events = [
            ev(MIGRATION_PLANNED, 0.0, core=0, batches=[1]),
            ev(MIGRATION_EXECUTED, 1.0, core=1, dur=4.0, batch=1),
            ev(SUBTASK, 4.0, core=1, dur=3.0),
        ]
        with pytest.raises(SanitizerError) as excinfo:
            feed(events)
        assert excinfo.value.check == "nesting"
        assert "escapes" in str(excinfo.value)

    def test_verdict_before_span_end_raises(self):
        events = [
            ev(TASK, 0.0, core=0, dur=100.0),
            ev(DEADLINE, 50.0, core=0, missed=False),
        ]
        with pytest.raises(SanitizerError) as excinfo:
            feed(events)
        assert excinfo.value.check == "verdict"


class TestCleanStreams:
    def test_well_formed_migration_lifecycle_passes(self):
        events = [
            ev(ARRIVAL, 0.0, core=0),
            ev(TASK, 0.0, core=0, dur=10.0),
            ev(MIGRATION_PLANNED, 10.0, core=0, shipped=2, batches=[1]),
            ev(MIGRATION_EXECUTED, 11.0, core=1, dur=5.0, batch=1),
            ev(SUBTASK, 11.5, core=1, dur=2.0),
            ev(SUBTASK, 13.5, core=1, dur=2.0),
            ev(MIGRATION_RETURNED, 17.0, core=0, batch=1),
            ev(DEADLINE, 17.0, core=0, missed=False),
            ev(GAP, 17.0, core=0, dur=983.0),
        ]
        sanitizer = feed(events)
        assert sanitizer.events_checked == len(events)
        assert sanitizer.batches_closed == 1

    def test_back_to_back_spans_pass(self):
        events = [
            ev(TASK, 0.0, core=0, dur=10.0),
            ev(TASK, 10.0, core=0, dur=10.0),
        ]
        assert feed(events).events_checked == 2

    def test_returned_out_of_order_is_exempt(self):
        events = [
            ev(MIGRATION_PLANNED, 0.0, core=0, batches=[1, 2]),
            ev(MIGRATION_EXECUTED, 1.0, core=1, dur=5.0, batch=1),
            ev(MIGRATION_EXECUTED, 1.0, core=2, dur=2.0, batch=2),
            ev(MIGRATION_RETURNED, 8.0, core=0, batch=1),
            ev(MIGRATION_RETURNED, 4.0, core=0, batch=2),
        ]
        assert feed(events).batches_closed == 2


class TestSchedulerProfiles:
    def test_main_schedulers_get_all_checks(self):
        for name in ("partitioned", "global", "rt-opex"):
            checks, unordered = checks_for_scheduler(name)
            assert checks == ALL_CHECKS
            assert unordered == frozenset()

    def test_pran_relaxes_verdicts(self):
        checks, unordered = checks_for_scheduler("pran")
        assert "verdict" not in checks
        assert DEADLINE in unordered

    def test_cloudiq_relaxes_arrivals_and_verdicts(self):
        checks, unordered = checks_for_scheduler("cloudiq")
        assert "verdict" not in checks
        assert ARRIVAL in unordered and DEADLINE in unordered

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            TraceSanitizer(frozenset({"bogus"}))


class TestEnvGate:
    def test_default_off(self):
        assert not sanitize_enabled({})

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_truthy_values(self, value):
        assert sanitize_enabled({"RTOPEX_SANITIZE": value})

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " 0 "])
    def test_falsy_values(self, value):
        assert not sanitize_enabled({"RTOPEX_SANITIZE": value})


class TestSanitizingTrace:
    def test_validates_without_buffering(self):
        trace = SanitizingTrace("run", scheduler="rt-opex")
        trace.task(0, "fft", 0.0, 10.0)
        trace.task(0, "demod", 10.0, 20.0)
        assert len(trace) == 0  # nothing buffered
        trace.finish()
        assert trace.report()["events_checked"] == 2

    def test_raises_at_emit_time(self):
        trace = SanitizingTrace("run", scheduler="rt-opex")
        trace.task(0, "fft", 0.0, 10.0)
        with pytest.raises(SanitizerError):
            trace.task(0, "demod", 5.0, 20.0)


class _RecordingSink:
    def __init__(self):
        self.begun = []
        self.events = []
        self.closed = False

    def begin_run(self, run):
        self.begun.append(run.label)

    def event(self, run, event):
        self.events.append(event)

    def close(self):
        self.closed = True


class TestSanitizingSink:
    def test_forwards_to_inner_sink(self):
        inner = _RecordingSink()
        sink = SanitizingSink(inner)
        run = RunTrace("r1", scheduler="partitioned", sink=sink)
        sink.begin_run(run)
        run.task(0, "fft", 0.0, 5.0)
        sink.close()
        assert inner.begun == ["r1"]
        assert len(inner.events) == 1
        assert inner.closed
        assert sink.summary() == {
            "runs": 1, "events_checked": 1, "batches_closed": 0,
        }

    def test_close_detects_dangling_batches_and_still_closes_inner(self):
        inner = _RecordingSink()
        sink = SanitizingSink(inner)
        run = RunTrace("r1", scheduler="rt-opex", sink=sink)
        sink.begin_run(run)
        run.migration_planned(0.0, 0, "decode", 2, targets=[1], batches=[9])
        with pytest.raises(SanitizerError):
            sink.close()
        assert inner.closed

    def test_per_run_profiles(self):
        sink = SanitizingSink()
        strict = RunTrace("a", scheduler="rt-opex", sink=sink)
        relaxed = RunTrace("b", scheduler="pran", sink=sink)
        sink.begin_run(strict)
        sink.begin_run(relaxed)
        # Out-of-order deadline verdicts: fine for pran, fatal for rt-opex.
        relaxed.deadline(10.0, 0, missed=False)
        relaxed.deadline(5.0, 0, missed=False)
        strict.deadline(10.0, 0, missed=False)
        with pytest.raises(SanitizerError):
            strict.deadline(5.0, 0, missed=False)


class TestRealSchedulerRuns:
    def test_clean_rtopex_run_at_scale_02_passes(self):
        from repro.experiments.base import scaled_subframes

        config = CRanConfig(transport_latency_us=500.0)
        jobs = build_workload(config, scaled_subframes(0.2), seed=2016)
        result = run_scheduler("rt-opex", config, jobs, seed=2016, sanitize=True)
        report = result.sanitizer_report
        assert report is not None
        assert report["events_checked"] > 0
        assert report["batches_closed"] > 0  # migrations actually validated

    @pytest.mark.parametrize(
        "name", ["partitioned", "global", "pran", "cloudiq"]
    )
    def test_all_baselines_pass_sanitized(self, name, small_config, small_workload):
        result = run_scheduler(
            name, small_config, small_workload, seed=99, sanitize=True
        )
        assert result.sanitizer_report is not None
        assert result.sanitizer_report["events_checked"] > 0

    def test_sanitized_results_identical_to_unsanitized(
        self, small_config, small_workload
    ):
        plain = run_scheduler(
            "rt-opex", small_config, small_workload, seed=99, sanitize=False
        )
        checked = run_scheduler(
            "rt-opex", small_config, small_workload, seed=99, sanitize=True
        )
        assert plain.miss_count() == checked.miss_count()
        assert plain.core_busy_us == checked.core_busy_us
        assert plain.sanitizer_report is None

    def test_env_var_enables_sanitizer(
        self, small_config, small_workload, monkeypatch
    ):
        monkeypatch.setenv("RTOPEX_SANITIZE", "1")
        result = run_scheduler("rt-opex", small_config, small_workload, seed=99)
        assert result.sanitizer_report is not None

    def test_env_var_off_leaves_runs_unsanitized(
        self, small_config, small_workload, monkeypatch
    ):
        monkeypatch.setenv("RTOPEX_SANITIZE", "0")
        result = run_scheduler("rt-opex", small_config, small_workload, seed=99)
        assert result.sanitizer_report is None

    def test_sanitizer_composes_with_capture_trace(
        self, small_config, small_workload
    ):
        result = run_scheduler(
            "rt-opex", small_config, small_workload, seed=99,
            sanitize=True, capture_trace=True,
        )
        assert result.sanitizer_report is not None
        assert result.trace_run is not None
        assert result.sanitizer_report["events_checked"] == len(result.trace_run)
