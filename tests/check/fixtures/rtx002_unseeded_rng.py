"""Lint fixture: global / unseeded RNG use (RTX002)."""

import random

import numpy as np


def draw():
    np.random.seed(0)
    rng = np.random.default_rng()
    return random.random() + rng.random()
