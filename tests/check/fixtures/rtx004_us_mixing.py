"""Lint fixture: int/float microsecond mixing (RTX004)."""

TIMEOUT_US = 30


def halve(dur_us: float) -> float:
    return dur_us // 2


def book(start_us: int) -> int:
    return start_us
