"""Lint fixture: environment read outside repro.runtime/repro.check (RTX006)."""

import os
from os import getenv


def cache_dir():
    return os.environ.get("REPRO_CACHE_DIR", "/tmp/repro")


def debug_level():
    return os.environ["REPRO_DEBUG"]


def verbosity():
    return getenv("REPRO_VERBOSE", "0")


def snapshot():
    return dict(os.environ)
