"""Lint fixture: wall-clock read outside repro.runtime (RTX001)."""

import time


def stamp():
    return time.time()
