"""RTX007 fixture: a declared option that never reaches the cache key.

``alpha`` flows into ``WorkUnit.params`` (negative case: no finding);
``beta`` is read from the options mapping but only steers logging, so
two runs with different ``beta`` values share a cache key (positive
case: one finding, anchored at the ``register`` decorator).
"""

from repro.experiments.base import SweepSpec, WorkUnit, attach_sweep, register


@register("fixture-sweep", "Cache-key fixture", options=("alpha", "beta"))
def run_whole(scale, seed, options=None):
    return {}


def _units(scale, seed, options):
    alpha = options.get("alpha", "1")
    beta = options.get("beta", "0")
    chatty = bool(beta)  # control only: never lands in params or key
    units = []
    for index in range(2):
        if chatty:
            print("fixture sweep unit", index)
        units.append(
            WorkUnit(
                experiment_id="fixture-sweep",
                key=f"unit-{index}",
                params={"alpha": alpha, "index": index},
                seed=seed,
            )
        )
    return units


def _run_unit(unit):
    return {"value": unit.params["alpha"]}


def _combine(results, scale, seed):
    return {"units": results}


attach_sweep(
    "fixture-sweep",
    SweepSpec(units=_units, run_unit=_run_unit, combine=_combine, takes_options=True),
)
