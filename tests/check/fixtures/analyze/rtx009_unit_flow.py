"""RTX009 fixture: time-unit mixing that only dataflow can see.

``delay_budget_ms`` returns milliseconds which hide in the unsuffixed
local ``budget``; adding it to a microsecond quantity is the first
finding, and assigning a microsecond call result to a ``*_ms`` name is
the second.  The explicit ``* 1000.0`` conversion is the negative case
and stays silent.
"""

SUBFRAME_US = 1000.0


def air_time_us(num_subframes):
    return num_subframes * SUBFRAME_US


def delay_budget_ms(service):
    return 2.0 if service == "urllc" else 10.0


def deadline_for(service, num_subframes):
    budget = delay_budget_ms(service)
    air = air_time_us(num_subframes)
    deadline_us = air + budget
    window_ms = air_time_us(num_subframes)
    converted_us = delay_budget_ms(service) * 1000.0  # negative: explicit conversion
    return deadline_us + converted_us, window_ms
