"""RTX008 fixture: pool-reachable functions mutating shared state.

``_worker`` is handed to ``pool.submit`` and (1) writes into a
module-level dict, (2) appends to a module-level list, and (3) stores
through a default argument aliasing a module global — three findings.
Mutating a fresh local container (``_locally_clean``) is the negative
case and stays silent.
"""

_RESULTS = {}
_SEEN = []
_DEFAULTS = {"scale": 1.0}


def _locally_clean(unit):
    local = {}
    local[unit] = 1  # negative: locals never leak across work units
    return local


def _worker(unit, registry=_DEFAULTS):
    _RESULTS[unit] = _locally_clean(unit)
    _SEEN.append(unit)
    registry["last"] = unit
    return unit


def run_all(pool, units):
    return [pool.submit(_worker, unit) for unit in units]
