"""RTX010 fixture: emit sites that fall outside the typed vocabulary.

The first three emits conform (negative cases); then a misspelled
helper keyword, a payload key missing from ``EVENT_ARG_FIELDS``, and a
``TraceEvent`` with an unknown kind — three findings.
"""

from repro.obs.events import TraceEvent


def emit_all(trace, core, now_us):
    trace.deadline(now_us, core, missed=True)
    trace.task(core, "fft", now_us, now_us + 10.0, cache_penalty_us=1.5)
    trace.subtask(core, "decode", now_us, now_us + 5.0, preempted=True)
    trace.deadline(now_us, core, missedd=True)
    trace.task(core, "fft", now_us, now_us + 10.0, cache_pnlty_us=1.5)
    return TraceEvent("deadlnie", now_us, core)
