"""Lint fixture: mutable default argument (RTX005)."""


def collect(values=[]):
    values.append(1)
    return values
