"""Lint fixture: unordered iteration in a scheduling module (RTX003).

Lives under a ``repro/sched`` directory pair so the path-scoped rule
fires exactly as it would on a real scheduler module.
"""


def drain(queues):
    total = 0
    for queue in queues.values():
        total += len(queue)
    return total
