"""Tests for the AST determinism lint (repro.check.lint)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import (
    Finding,
    RULES,
    RULES_BY_ID,
    lint_file,
    lint_module,
    lint_paths,
    lint_source,
    parse_source,
)
from repro.check.cli import main
from repro.check.rules import LINT_RULE_IDS, explain, rule_table

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: fixture file -> the rule id every finding in it must carry.
FIXTURE_RULES = {
    FIXTURES / "rtx001_wallclock.py": "RTX001",
    FIXTURES / "rtx002_unseeded_rng.py": "RTX002",
    FIXTURES / "repro" / "sched" / "rtx003_unordered.py": "RTX003",
    FIXTURES / "rtx004_us_mixing.py": "RTX004",
    FIXTURES / "rtx005_mutable_default.py": "RTX005",
    FIXTURES / "rtx006_env_read.py": "RTX006",
}


def rule_ids(findings):
    return [f.rule.rule_id for f in findings]


class TestWallclockRule:
    def test_time_time_flagged(self):
        findings = lint_source("import time\n\nt = time.time()\n")
        assert rule_ids(findings) == ["RTX001"]

    def test_aliased_perf_counter_flagged(self):
        src = "from time import perf_counter as pc\n\nt = pc()\n"
        assert rule_ids(lint_source(src)) == ["RTX001"]

    def test_datetime_now_flagged(self):
        src = "import datetime\n\nnow = datetime.datetime.now()\n"
        assert rule_ids(lint_source(src)) == ["RTX001"]

    def test_runtime_layer_allowlisted(self):
        src = "import time\n\nt = time.perf_counter()\n"
        findings = lint_source(
            src, path="src/repro/runtime/engine.py",
            module_parts=("src", "repro", "runtime", "engine.py"),
        )
        assert findings == []

    def test_virtual_time_not_flagged(self):
        assert lint_source("def advance(now_us):\n    return now_us + 1.0\n") == []


class TestUnseededRngRule:
    def test_stdlib_random_import_flagged(self):
        assert rule_ids(lint_source("import random\n")) == ["RTX002"]

    def test_from_random_import_flagged(self):
        assert rule_ids(lint_source("from random import shuffle\n")) == ["RTX002"]

    def test_numpy_global_state_flagged(self):
        src = "import numpy as np\n\nnp.random.seed(3)\nx = np.random.normal()\n"
        assert rule_ids(lint_source(src)) == ["RTX002", "RTX002"]

    def test_argless_default_rng_flagged(self):
        src = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert rule_ids(lint_source(src)) == ["RTX002"]

    def test_seeded_default_rng_clean(self):
        src = "import numpy as np\n\nrng = np.random.default_rng(2016)\n"
        assert lint_source(src) == []

    def test_bare_default_rng_reference_flagged(self):
        src = (
            "from dataclasses import field\n"
            "import numpy as np\n\n"
            "factory = field(default_factory=np.random.default_rng)\n"
        )
        assert rule_ids(lint_source(src)) == ["RTX002"]


SCHED_PARTS = ("src", "repro", "sched", "mod.py")


def lint_sched(src):
    return lint_source(src, path="src/repro/sched/mod.py", module_parts=SCHED_PARTS)


class TestUnorderedIterationRule:
    def test_dict_values_flagged_in_sched(self):
        src = "def f(d):\n    for v in d.values():\n        print(v)\n"
        assert rule_ids(lint_sched(src)) == ["RTX003"]

    def test_set_literal_flagged_in_sched(self):
        src = "def f():\n    for x in {1, 2, 3}:\n        print(x)\n"
        assert rule_ids(lint_sched(src)) == ["RTX003"]

    def test_comprehension_over_keys_flagged(self):
        src = "def f(d):\n    return [k for k in d.keys()]\n"
        assert rule_ids(lint_sched(src)) == ["RTX003"]

    def test_enumerate_wrapper_is_transparent(self):
        src = "def f(d):\n    for i, v in enumerate(d.values()):\n        print(i, v)\n"
        assert rule_ids(lint_sched(src)) == ["RTX003"]

    def test_sorted_iteration_clean(self):
        src = "def f(d):\n    for k in sorted(d):\n        print(d[k])\n"
        assert lint_sched(src) == []

    def test_rule_scoped_to_scheduling_modules(self):
        src = "def f(d):\n    for v in d.values():\n        print(v)\n"
        assert lint_source(src, path="src/repro/analysis/x.py") == []


class TestUsUnitRule:
    def test_int_annotation_flagged(self):
        assert rule_ids(lint_source("start_us: int = 0\n")) == ["RTX004"]

    def test_int_argument_annotation_flagged(self):
        src = "def book(start_us: int) -> None:\n    pass\n"
        assert rule_ids(lint_source(src)) == ["RTX004"]

    def test_int_literal_constant_flagged(self):
        assert rule_ids(lint_source("TTI_US = 1000\n")) == ["RTX004"]

    def test_float_constant_clean(self):
        assert lint_source("TTI_US = 1000.0\n") == []

    def test_floor_division_flagged(self):
        src = "def half(dur_us):\n    return dur_us // 2\n"
        assert rule_ids(lint_source(src)) == ["RTX004"]

    def test_float_annotation_clean(self):
        assert lint_source("start_us: float = 0.0\n") == []


class TestMutableDefaultRule:
    def test_list_default_flagged(self):
        assert rule_ids(lint_source("def f(xs=[]):\n    return xs\n")) == ["RTX005"]

    def test_dict_constructor_default_flagged(self):
        src = "def f(opts=dict()):\n    return opts\n"
        assert rule_ids(lint_source(src)) == ["RTX005"]

    def test_lambda_default_flagged(self):
        assert rule_ids(lint_source("f = lambda xs=[]: xs\n")) == ["RTX005"]

    def test_none_default_clean(self):
        assert lint_source("def f(xs=None):\n    return xs or []\n") == []

    def test_tuple_default_clean(self):
        assert lint_source("def f(xs=()):\n    return xs\n") == []


class TestEnvReadRule:
    def test_environ_get_flagged(self):
        src = "import os\n\nd = os.environ.get('REPRO_CACHE_DIR')\n"
        assert rule_ids(lint_source(src)) == ["RTX006"]

    def test_environ_subscript_flagged(self):
        src = "import os\n\nd = os.environ['REPRO_DEBUG']\n"
        assert rule_ids(lint_source(src)) == ["RTX006"]

    def test_getenv_flagged_through_alias(self):
        src = "from os import getenv as ge\n\nd = ge('REPRO_VERBOSE')\n"
        assert rule_ids(lint_source(src)) == ["RTX006"]

    def test_bare_environ_reference_flagged(self):
        src = "import os\n\nsnapshot = dict(os.environ)\n"
        assert rule_ids(lint_source(src)) == ["RTX006"]

    def test_imported_environ_subscript_flagged(self):
        src = "from os import environ\n\nd = environ['REPRO_DEBUG']\n"
        assert rule_ids(lint_source(src)) == ["RTX006"]

    def test_runtime_layer_allowlisted(self):
        src = "import os\n\nd = os.environ.get('REPRO_CACHE_DIR')\n"
        findings = lint_source(
            src, path="src/repro/runtime/cache.py",
            module_parts=("src", "repro", "runtime", "cache.py"),
        )
        assert findings == []

    def test_check_layer_allowlisted(self):
        src = "import os\n\nenv = dict(os.environ)\n"
        findings = lint_source(
            src, path="src/repro/check/sanitizer.py",
            module_parts=("src", "repro", "check", "sanitizer.py"),
        )
        assert findings == []

    def test_unrelated_environ_attribute_clean(self):
        src = "def f(cfg):\n    return cfg.environ\n"
        assert lint_source(src) == []


class TestWaivers:
    def test_inline_waiver_silences_finding(self):
        src = "import time\n\nt = time.time()  # repro-check: allow RTX001\n"
        assert lint_source(src) == []

    def test_bare_waiver_silences_all_rules_on_line(self):
        src = "import time\n\nt = time.time()  # repro-check: allow\n"
        assert lint_source(src) == []

    def test_waiver_for_other_rule_keeps_finding(self):
        src = "import time\n\nt = time.time()  # repro-check: allow RTX005\n"
        assert rule_ids(lint_source(src)) == ["RTX001"]


MIXED_SRC = "import random\nimport time\n\nt = time.time()\n"


class TestRuleFiltering:
    def test_select_keeps_only_listed_rules(self):
        module = parse_source(MIXED_SRC, path="pkg/mod.py")
        assert rule_ids(lint_module(module, select={"RTX001"})) == ["RTX001"]

    def test_ignore_drops_listed_rules(self):
        module = parse_source(MIXED_SRC, path="pkg/mod.py")
        assert rule_ids(lint_module(module, ignore={"RTX001"})) == ["RTX002"]

    def test_cli_select_and_ignore(self, tmp_path, capsys):
        target = tmp_path / "mixed.py"
        target.write_text(MIXED_SRC)
        assert main(["lint", "--select", "RTX002", str(target)]) == 1
        out = capsys.readouterr().out
        assert "RTX002" in out and "RTX001" not in out
        assert main(["lint", "--ignore", "RTX001,RTX002", str(target)]) == 0

    def test_cli_unknown_rule_id_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "mixed.py"
        target.write_text(MIXED_SRC)
        assert main(["lint", "--select", "RTX042", str(target)]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestFindingRendering:
    def test_render_is_ruff_shaped(self):
        finding = lint_source("import random\n", path="pkg/mod.py")[0]
        assert finding.render() == (
            "pkg/mod.py:1:0 RTX002 stdlib `random` uses hidden global state; "
            "draw from repro.sim.rng.RngStreams instead"
        )

    def test_findings_sorted_by_location(self):
        src = "import random\nimport time\n\nt = time.time()\n"
        findings = lint_source(src)
        assert findings == sorted(findings, key=lambda f: f.sort_key)
        assert isinstance(findings[0], Finding)


class TestRuleTable:
    def test_all_rules_listed(self):
        table = rule_table()
        for rule in RULES:
            assert rule.rule_id in table

    def test_explain_known_rule(self):
        text = explain("rtx003")
        assert "RTX003" in text and "sorted()" in text

    def test_explain_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            explain("RTX999")

    def test_ids_unique_and_sequential(self):
        assert list(RULES_BY_ID) == [f"RTX{i:03d}" for i in range(1, len(RULES) + 1)]


class TestFixtureFiles:
    @pytest.mark.parametrize(
        "path,rule_id", sorted(FIXTURE_RULES.items()), ids=lambda v: str(v)[-20:]
    )
    def test_each_fixture_trips_exactly_its_rule(self, path, rule_id):
        findings = lint_file(path)
        assert findings, f"{path} produced no findings"
        assert set(rule_ids(findings)) == {rule_id}

    def test_merged_tree_is_clean(self):
        assert lint_paths([REPO_SRC]) == []


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(REPO_SRC)]) == 0
        assert capsys.readouterr().out == ""

    @pytest.mark.parametrize(
        "path,rule_id", sorted(FIXTURE_RULES.items()), ids=lambda v: str(v)[-20:]
    )
    def test_lint_fixture_exits_nonzero_with_rule_and_location(
        self, capsys, path, rule_id
    ):
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert rule_id in out
        assert f"{path}:" in out

    def test_lint_directory_recurses(self, capsys):
        # The tree includes the analyze/ fixtures, which are lint-clean:
        # only the per-file lint rules (RTX001-006) may appear.
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        for rule_id in LINT_RULE_IDS:
            assert rule_id in out
        fired = {line.split()[1] for line in out.splitlines() if " RTX" in line}
        assert fired == set(LINT_RULE_IDS)

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_syntax_error_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_rules_subcommand(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.rule_id in out

    def test_rules_explain(self, capsys):
        assert main(["rules", "--explain", "RTX001"]) == 0
        assert "repro.runtime" in capsys.readouterr().out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "lint", str(REPO_SRC)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
