"""Tests for the whole-program flow analysis (repro.check analyze)."""

import json
from pathlib import Path

import pytest

from repro.check.analyze import (
    analyze_modules,
    analyze_paths,
    finding_key,
    load_baseline,
    report_json,
    split_by_baseline,
    write_baseline,
)
from repro.check.cli import main
from repro.check.parse import parse_source
from repro.check.rules import ANALYZE_RULE_IDS

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "fixtures" / "analyze"
REPO_SRC = TESTS_DIR.parents[1] / "src" / "repro"

#: fixture file -> exact (line, col, rule_id) findings it must produce.
FIXTURE_FINDINGS = {
    "rtx007_cache_key.py": [(12, 1, "RTX007")],
    "rtx008_shared_state.py": [
        (22, 4, "RTX008"),
        (23, 4, "RTX008"),
        (24, 4, "RTX008"),
    ],
    "rtx009_unit_flow.py": [(24, 18, "RTX009"), (25, 4, "RTX009")],
    "rtx010_trace_emit.py": [
        (15, 41, "RTX010"),
        (16, 66, "RTX010"),
        (17, 22, "RTX010"),
    ],
}


def analyze_fixture(name, **kwargs):
    return analyze_paths([FIXTURES / name], **kwargs)


def analyze_source(source, path="src/repro/snippet.py", **kwargs):
    return analyze_modules([parse_source(source, path=path)], **kwargs)


class TestFixtureFiles:
    @pytest.mark.parametrize("name", sorted(FIXTURE_FINDINGS))
    def test_fixture_fires_exactly_its_rule(self, name):
        findings = analyze_fixture(name)
        got = [(f.line, f.col, f.rule.rule_id) for f in findings]
        assert got == FIXTURE_FINDINGS[name]

    def test_every_analyze_rule_has_a_fixture(self):
        covered = {
            rule_id
            for locs in FIXTURE_FINDINGS.values()
            for (_, _, rule_id) in locs
        }
        assert covered == set(ANALYZE_RULE_IDS)

    def test_fixture_list_matches_directory(self):
        on_disk = {p.name for p in FIXTURES.glob("*.py")}
        assert on_disk == set(FIXTURE_FINDINGS)

    def test_messages_name_the_offending_symbols(self):
        (finding,) = analyze_fixture("rtx007_cache_key.py")
        assert "'beta'" in finding.message
        assert "WorkUnit.params" in finding.message
        messages = [f.message for f in analyze_fixture("rtx008_shared_state.py")]
        assert any("_RESULTS" in m for m in messages)
        assert any("_SEEN" in m for m in messages)
        assert any("_DEFAULTS" in m for m in messages)


class TestTreeClean:
    """The real tree must analyze clean — fixing findings is part of the
    contract, so a new finding here is a regression, not noise."""

    def test_src_tree_has_no_findings(self):
        assert analyze_paths([REPO_SRC]) == []


class TestRuleFiltering:
    def test_select_limits_to_one_rule(self):
        findings = analyze_fixture("rtx008_shared_state.py", select={"RTX009"})
        assert findings == []

    def test_ignore_drops_a_rule(self):
        findings = analyze_fixture("rtx008_shared_state.py", ignore={"RTX008"})
        assert findings == []

    def test_select_keeps_the_selected_rule(self):
        findings = analyze_fixture("rtx008_shared_state.py", select={"RTX008"})
        assert len(findings) == 3


WAIVED_SHARED_STATE = '''\
_CACHE = {}


def _worker(unit):
    _CACHE[unit] = 1  # repro-check: allow RTX008
    return unit


def run(pool, units):
    return [pool.submit(_worker, u) for u in units]
'''


class TestWaivers:
    def test_inline_allow_suppresses_analyze_findings(self):
        assert analyze_source(WAIVED_SHARED_STATE) == []

    def test_without_waiver_the_same_code_is_flagged(self):
        source = WAIVED_SHARED_STATE.replace("  # repro-check: allow RTX008", "")
        findings = analyze_source(source)
        assert [f.rule.rule_id for f in findings] == ["RTX008"]


class TestCacheKeyPass:
    def test_takes_options_false_is_flagged_at_the_sweep(self):
        source = FIXTURES.joinpath("rtx007_cache_key.py").read_text()
        source = source.replace("takes_options=True", "takes_options=False")
        findings = analyze_source(source, path="src/repro/experiments/ext_fx.py")
        assert [f.rule.rule_id for f in findings] == ["RTX007"]
        assert "takes_options=False" in findings[0].message

    def test_dead_cli_flag_and_unflagged_option(self):
        experiments = parse_source(
            "from repro.experiments.base import SweepSpec, WorkUnit, "
            "attach_sweep, register\n"
            "\n"
            "\n"
            '@register("exp-x", "X", options=("alpha", "delta"))\n'
            "def run_x(scale, seed, options=None):\n"
            "    return {}\n"
            "\n"
            "\n"
            "def _units(scale, seed, options):\n"
            "    return [\n"
            '        WorkUnit("exp-x", "k", '
            'params={"alpha": options.get("alpha"), '
            '"delta": options.get("delta")}, seed=seed)\n'
            "    ]\n"
            "\n"
            "\n"
            "def _run_unit(unit):\n"
            "    return {}\n"
            "\n"
            "\n"
            "def _combine(results, scale, seed):\n"
            "    return {}\n"
            "\n"
            "\n"
            'attach_sweep("exp-x", SweepSpec(units=_units, run_unit=_run_unit, '
            "combine=_combine, takes_options=True))\n",
            path="src/repro/experiments/ext_x.py",
        )
        cli = parse_source(
            "_OPTION_FLAGS = (\n"
            '    ("--alpha", "alpha", None, "used"),\n'
            '    ("--gamma", "gamma", None, "dead"),\n'
            ")\n",
            path="src/repro/cli.py",
        )
        findings = analyze_modules([experiments, cli])
        messages = {f.message for f in findings}
        assert any("--gamma" in m and "dead" in m for m in messages)
        assert any(
            "'delta'" in m and "_OPTION_FLAGS" in m for m in messages
        )
        assert all(f.rule.rule_id == "RTX007" for f in findings)
        assert len(findings) == 2

    def test_taint_follows_helper_calls(self):
        source = (
            "from repro.experiments.base import SweepSpec, WorkUnit, "
            "attach_sweep, register\n"
            "\n"
            "\n"
            '@register("exp-h", "H", options=("alpha",))\n'
            "def run_h(scale, seed, options=None):\n"
            "    return {}\n"
            "\n"
            "\n"
            "def _expand(spec):\n"
            "    return [spec, spec]\n"
            "\n"
            "\n"
            "def _units(scale, seed, options):\n"
            '    values = _expand(options.get("alpha"))\n'
            "    return [\n"
            '        WorkUnit("exp-h", str(v), params={"alpha": v}, seed=seed)\n'
            "        for v in values\n"
            "    ]\n"
            "\n"
            "\n"
            "def _run_unit(unit):\n"
            "    return {}\n"
            "\n"
            "\n"
            "def _combine(results, scale, seed):\n"
            "    return {}\n"
            "\n"
            "\n"
            'attach_sweep("exp-h", SweepSpec(units=_units, run_unit=_run_unit, '
            "combine=_combine, takes_options=True))\n"
        )
        assert analyze_source(source, path="src/repro/experiments/ext_h.py") == []


class TestUnitFlowPass:
    def test_comparison_mixing(self):
        findings = analyze_source(
            "def late(elapsed_ms, budget_us):\n"
            "    return elapsed_ms > budget_us\n"
        )
        assert [f.rule.rule_id for f in findings] == ["RTX009"]
        assert "comparison mixes" in findings[0].message

    def test_call_boundary_argument_mismatch(self):
        findings = analyze_source(
            "def wait(timeout_us):\n"
            "    return timeout_us\n"
            "\n"
            "\n"
            "def go(delay_ms):\n"
            "    return wait(delay_ms)\n"
        )
        assert [f.rule.rule_id for f in findings] == ["RTX009"]
        assert "`timeout_us`" in findings[0].message

    def test_known_wall_clock_calls_return_seconds(self):
        findings = analyze_source(
            "import time\n"
            "\n"
            "\n"
            "def measure():\n"
            "    start = time.perf_counter()\n"
            "    elapsed_us = time.perf_counter() - start\n"
            "    return elapsed_us\n"
        )
        assert [f.rule.rule_id for f in findings] == ["RTX009"]
        assert "seconds" in findings[0].message

    def test_explicit_conversion_is_silent(self):
        assert analyze_source(
            "def convert(delay_ms):\n"
            "    delay_us = delay_ms * 1000.0\n"
            "    back_ms = delay_us * 0.001\n"
            "    return delay_us + 1.0, back_ms\n"
        ) == []

    def test_min_max_mixing(self):
        findings = analyze_source(
            "def clamp(slack_us, budget_ms):\n"
            "    return min(slack_us, budget_ms)\n"
        )
        assert [f.rule.rule_id for f in findings] == ["RTX009"]
        assert "min() mixes" in findings[0].message

    def test_inferred_return_unit_crosses_modules(self):
        helper = parse_source(
            "SUBFRAME_US = 1000.0\n"
            "\n"
            "\n"
            "def air_time(num):\n"
            "    return num * SUBFRAME_US\n",
            path="src/repro/lte/timing.py",
        )
        # air_time has no suffix: its µs return is *inferred*, and the
        # mismatch only exists across the module boundary.
        user = parse_source(
            "from repro.lte.timing import air_time\n"
            "\n"
            "\n"
            "def window(num):\n"
            "    span_ms = air_time(num)\n"
            "    return span_ms\n",
            path="src/repro/sched/windows.py",
        )
        findings = analyze_modules([helper, user])
        assert [f.rule.rule_id for f in findings] == ["RTX009"]
        assert "`span_ms`" in findings[0].message


class TestTraceEmitPass:
    def test_resolved_constant_kind_is_accepted(self):
        assert analyze_source(
            "from repro.obs.events import DEADLINE, TraceEvent\n"
            "\n"
            "\n"
            "def emit(now_us, core):\n"
            "    return TraceEvent(DEADLINE, now_us, core, "
            'args={"missed": True})\n'
        ) == []

    def test_args_dict_keys_are_checked(self):
        findings = analyze_source(
            "from repro.obs.events import TraceEvent\n"
            "\n"
            "\n"
            "def emit(now_us, core):\n"
            '    return TraceEvent("deadline", now_us, core, '
            'args={"mised": True})\n'
        )
        assert [f.rule.rule_id for f in findings] == ["RTX010"]
        assert "'mised'" in findings[0].message

    def test_vocab_modules_are_exempt(self):
        assert analyze_source(
            "from repro.obs.events import TraceEvent\n"
            "\n"
            "\n"
            "def make(now_us, core):\n"
            '    return TraceEvent("not-a-kind", now_us, core)\n',
            path="src/repro/obs/helpers.py",
        ) == []


class TestBaseline:
    def findings(self):
        return analyze_fixture("rtx008_shared_state.py")

    def test_roundtrip_suppresses_everything(self, tmp_path):
        findings = self.findings()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        entries = load_baseline(baseline)
        new, baselined, stale = split_by_baseline(findings, entries)
        assert new == [] and stale == []
        assert len(baselined) == len(findings)

    def test_partial_baseline_reports_the_rest_as_new(self):
        findings = self.findings()
        entries = [finding_key(findings[0])]
        new, baselined, stale = split_by_baseline(findings, entries)
        assert len(new) == len(findings) - 1
        assert len(baselined) == 1 and stale == []

    def test_fixed_findings_surface_as_stale_entries(self):
        findings = self.findings()
        ghost = dict(finding_key(findings[0]))
        ghost["message"] = "a finding that no longer exists"
        new, baselined, stale = split_by_baseline(findings, [ghost])
        assert len(new) == len(findings)
        assert baselined == [] and stale == [ghost]

    def test_baseline_key_ignores_line_numbers(self):
        findings = self.findings()
        key = finding_key(findings[0])
        assert set(key) == {"path", "rule", "message"}

    def test_report_json_shape(self):
        findings = self.findings()
        report = report_json(
            findings[1:], baselined=findings[:1], stale=[],
            baseline_path="b.json",
        )
        assert report["tool"] == "repro.check analyze"
        assert report["counts"] == {"RTX008": 2}
        assert len(report["findings"]) == 2
        assert report["baseline"]["suppressed"] == 1
        first = report["findings"][0]
        assert set(first) == {"path", "line", "col", "rule", "name", "message"}


class TestCli:
    def test_fixture_exits_nonzero(self, capsys):
        code = main(
            ["analyze", "--no-baseline", str(FIXTURES / "rtx009_unit_flow.py")]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RTX009" in out

    def test_tree_exits_zero(self, capsys):
        assert main(["analyze", "--no-baseline", str(REPO_SRC)]) == 0
        assert capsys.readouterr().out == ""

    def test_json_format_is_parseable(self, capsys):
        code = main(
            [
                "analyze", "--no-baseline", "--format", "json",
                str(FIXTURES / "rtx010_trace_emit.py"),
            ]
        )
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"] == {"RTX010": 3}

    def test_select_filters_on_analyze(self, capsys):
        code = main(
            [
                "analyze", "--no-baseline", "--select", "RTX007",
                str(FIXTURES / "rtx008_shared_state.py"),
            ]
        )
        assert code == 0

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        code = main(["analyze", "--select", "RTX999", str(FIXTURES)])
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["analyze", "no/such/path.py"]) == 2

    def test_syntax_error_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main(["analyze", "--no-baseline", str(bad)]) == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        fixture = FIXTURES / "rtx008_shared_state.py"
        baseline = tmp_path / "accepted.json"
        code = main(
            ["analyze", "--baseline", str(baseline), "--write-baseline",
             str(fixture)]
        )
        assert code == 0 and baseline.is_file()
        # With the baseline in force the same findings are suppressed...
        code = main(["analyze", "--baseline", str(baseline), str(fixture)])
        assert code == 0
        err = capsys.readouterr().err
        assert "baselined finding(s) suppressed" in err
        # ...and --no-baseline surfaces them again.
        assert main(["analyze", "--no-baseline", str(fixture)]) == 1

    def test_default_baseline_picked_up_from_cwd(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        fixture = FIXTURES / "rtx009_unit_flow.py"
        assert main(["analyze", "--write-baseline", str(fixture)]) == 0
        assert (tmp_path / ".repro-check-baseline.json").is_file()
        assert main(["analyze", str(fixture)]) == 0

    def test_stale_entries_reported(self, tmp_path, capsys):
        baseline = tmp_path / "stale.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"path": "gone.py", "rule": "RTX008",
                         "message": "was fixed"},
                    ],
                }
            )
        )
        clean = tmp_path / "clean.py"
        clean.write_text("def ok():\n    return 1\n")
        code = main(["analyze", "--baseline", str(baseline), str(clean)])
        assert code == 0
        assert "stale baseline entr" in capsys.readouterr().err

    def test_committed_repo_baseline_is_empty(self):
        committed = TESTS_DIR.parents[1] / ".repro-check-baseline.json"
        payload = json.loads(committed.read_text())
        assert payload["entries"] == []
