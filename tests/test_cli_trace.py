"""End-to-end --trace smoke tests (pytest -m trace_smoke selects them).

Runs a tiny fig15 through the real CLI with tracing on and freezes the
external contract: the emitted file is schema-valid Chrome trace JSON,
Perfetto-loadable (one process per scheduler run, per-core threads), and
its deadline verdict events reproduce the run's miss counts exactly.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.base import scaled_subframes
from repro.obs.events import DEADLINE
from repro.obs.export import iter_jsonl_lines, read_jsonl_trace
from repro.obs.schema import assert_valid_chrome_trace, validate_jsonl_trace

pytestmark = pytest.mark.trace_smoke

SCALE = "0.01"


class TestTraceSmoke:
    @pytest.fixture(scope="class")
    def chrome_doc(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "fig15.json"
        capture = {}
        assert main(
            ["fig15", "--scale", SCALE, "--no-cache", "--trace", str(path)]
        ) == 0
        capture["document"] = json.loads(path.read_text())
        return capture["document"]

    def test_chrome_trace_is_schema_valid(self, chrome_doc):
        assert_valid_chrome_trace(chrome_doc)

    def test_one_process_per_scheduler_run(self, chrome_doc):
        runs = chrome_doc["otherData"]["runs"]
        assert len(runs) == 28  # 7 RTT points x 4 scheduler invocations
        assert any("partitioned" in label for label in runs)
        assert any("rt-opex" in label for label in runs)
        assert any("global" in label for label in runs)
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in chrome_doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert [process_names[pid] for pid in sorted(process_names)] == runs

    def test_deadline_misses_reproduce_experiment_counts(self, chrome_doc):
        from repro.experiments import run_experiment

        traced_misses = sum(
            1
            for e in chrome_doc["traceEvents"]
            if e.get("cat") == DEADLINE and e["args"].get("missed")
        )
        output = run_experiment("fig15", scale=float(SCALE), seed=2016)
        num_subframes = scaled_subframes(float(SCALE))
        records_per_run = 4 * num_subframes  # 4 basestations
        expected = round(
            sum(
                rate * records_per_run
                for name in ("partitioned", "global-8", "global-16", "rt-opex")
                for rate in output.data[name]
            )
        )
        assert traced_misses == expected

    def test_spans_within_deadline_budget(self, chrome_doc):
        spans = [
            e for e in chrome_doc["traceEvents"]
            if e["ph"] == "X" and e["cat"] in ("task", "migration_executed")
        ]
        assert spans
        assert all(e["dur"] <= 2000.0 + 1e-6 for e in spans)  # Tmax budget

    def test_jsonl_format_round_trips(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(
            ["fig4", "--no-cache", "--trace", str(path), "--trace-format", "jsonl"]
        ) == 0
        out = capsys.readouterr().out
        assert "trace" in out and str(path) in out
        tracer = read_jsonl_trace(path)
        # fig4 exercises no schedulers, so the trace is present but empty.
        assert tracer.runs == []

    def test_trace_summary_in_json_report(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        report_path = tmp_path / "report.json"
        assert main(
            [
                "fig4", "--no-cache",
                "--trace", str(trace_path), "--json", str(report_path),
            ]
        ) == 0
        report = json.loads(report_path.read_text())
        trace = report["trace"]
        assert trace["runs"] == 0  # fig4 invokes no schedulers
        assert trace["path"] == str(trace_path)
        assert trace["format"] == "chrome"
        assert trace["deadline_misses"] == 0


class TestTable2AllSchedulersTraced:
    def test_all_five_baselines_emit_schema_valid_traces(self, tmp_path):
        path = tmp_path / "table2.jsonl"
        assert main(
            [
                "table2", "--scale", SCALE, "--no-cache",
                "--trace", str(path), "--trace-format", "jsonl",
            ]
        ) == 0
        lines = list(iter_jsonl_lines(path))
        assert validate_jsonl_trace(lines) == []
        headers = [line for line in lines if line["type"] == "run"]
        assert {h["scheduler"] for h in headers} == {
            "pran", "cloudiq", "partitioned", "global", "rt-opex",
        }
        # Every scheduler run put real events on the timeline.
        populated = {line["run"] for line in lines if line["type"] == "event"}
        assert populated == {h["index"] for h in headers}


class TestMixedServiceAllSchedulersTraced:
    def test_all_six_schedulers_emit_class_tagged_traces(self, tmp_path):
        # The mixed-service scenario across every scheduler — the
        # paper's five plus das — streamed to JSONL.  In CI this runs
        # under RTOPEX_SANITIZE=1, so each of the six timelines is also
        # validated against the full virtual-time invariant profile.
        path = tmp_path / "ext_mixed.jsonl"
        assert main(
            [
                "ext_mixed", "--scale", SCALE, "--no-cache",
                "--classes", "urllc:0.2,embb:0.5,mmtc:0.3",
                "--trace", str(path), "--trace-format", "jsonl",
            ]
        ) == 0
        lines = list(iter_jsonl_lines(path))
        assert validate_jsonl_trace(lines) == []
        headers = [line for line in lines if line["type"] == "run"]
        assert {h["scheduler"] for h in headers} == {
            "pran", "cloudiq", "partitioned", "global", "rt-opex", "das",
        }
        # Deadline verdicts carry the class tags of the mixed workload.
        services = {
            line["args"]["service"]
            for line in lines
            if line["type"] == "event"
            and line["kind"] == "deadline"
            and "service" in line.get("args", {})
        }
        assert services >= {"urllc", "mmtc"}


class TestTraceKinds:
    def test_kind_filter_reaches_the_file(self, tmp_path):
        path = tmp_path / "filtered.jsonl"
        assert main(
            [
                "fig15", "--scale", SCALE, "--no-cache",
                "--trace", str(path), "--trace-format", "jsonl",
                "--trace-kinds", "deadline,gap",
            ]
        ) == 0
        tracer = read_jsonl_trace(path)
        kinds = {e.kind for run in tracer.runs for e in run.events}
        assert kinds == {"deadline", "gap"}

    def test_migration_alias_expands_to_triple(self, tmp_path):
        path = tmp_path / "migrations.jsonl"
        assert main(
            [
                "fig15", "--scale", SCALE, "--no-cache",
                "--trace", str(path), "--trace-format", "jsonl",
                "--trace-kinds", "migration",
            ]
        ) == 0
        tracer = read_jsonl_trace(path)
        kinds = {e.kind for run in tracer.runs for e in run.events}
        assert kinds == {
            "migration_planned", "migration_executed", "migration_returned",
        }

    def test_unknown_kind_is_a_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "fig4", "--no-cache",
                "--trace", str(tmp_path / "t.json"),
                "--trace-kinds", "deadline,bogus",
            ]
        )
        assert code == 2
        assert "bogus" in capsys.readouterr().err
        assert not (tmp_path / "t.json").exists()  # rejected before opening

    def test_trace_kinds_without_trace_is_a_usage_error(self, capsys):
        assert main(["fig4", "--no-cache", "--trace-kinds", "deadline"]) == 2
        assert "--trace-kinds requires --trace" in capsys.readouterr().err


class TestTraceCacheInteraction:
    def test_trace_warns_that_the_cache_is_disabled(self, tmp_path, capsys):
        assert main(["fig4", "--trace", str(tmp_path / "t.json")]) == 0
        err = capsys.readouterr().err
        assert "warning:" in err and "disables the result cache" in err

    def test_no_cache_suppresses_the_warning(self, tmp_path, capsys):
        assert main(
            ["fig4", "--no-cache", "--trace", str(tmp_path / "t.json")]
        ) == 0
        assert "warning:" not in capsys.readouterr().err

    def test_disabled_reason_lands_in_json_telemetry(self, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(
            [
                "fig4", "--trace", str(tmp_path / "t.json"),
                "--json", str(report_path),
            ]
        ) == 0
        report = json.loads(report_path.read_text())
        reason = report["cache"]["disabled_reason"]
        assert reason is not None and "--trace" in reason

    def test_disabled_reason_is_null_without_trace(self, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(["fig4", "--no-cache", "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["cache"]["disabled_reason"] is None


class TestSanitize:
    def test_sanitized_run_attests_in_summary(self, capsys):
        assert main(["fig4", "--no-cache", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer OK" in out

    def test_sanitizer_summary_in_json_report(self, tmp_path):
        report_path = tmp_path / "report.json"
        assert main(
            ["fig16", "--scale", SCALE, "--no-cache", "--sanitize",
             "--json", str(report_path)]
        ) == 0
        report = json.loads(report_path.read_text())
        sanitizer = report["sanitizer"]
        assert sanitizer["runs"] > 0
        assert sanitizer["events_checked"] > 0

    def test_sanitize_composes_with_trace(self, tmp_path):
        path = tmp_path / "sanitized.jsonl"
        report_path = tmp_path / "report.json"
        assert main(
            [
                "fig16", "--scale", SCALE, "--no-cache", "--sanitize",
                "--trace", str(path), "--trace-format", "jsonl",
                "--json", str(report_path),
            ]
        ) == 0
        report = json.loads(report_path.read_text())
        # The sanitizer validated exactly the stream that was exported.
        assert report["sanitizer"]["events_checked"] == report["trace"]["events"]
        tracer = read_jsonl_trace(path)
        assert len(tracer.runs) == report["sanitizer"]["runs"]

    def test_sanitize_with_trace_kinds_is_a_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "fig4", "--no-cache", "--sanitize",
                "--trace", str(tmp_path / "t.json"),
                "--trace-kinds", "deadline",
            ]
        )
        assert code == 2
        assert "--sanitize is incompatible with --trace-kinds" in (
            capsys.readouterr().err
        )
        assert not (tmp_path / "t.json").exists()  # rejected before opening

    def test_sanitize_disables_the_cache_with_warning(self, capsys):
        assert main(["fig4", "--sanitize"]) == 0
        err = capsys.readouterr().err
        assert "warning:" in err and "--sanitize disables the result cache" in err

    def test_sanitize_parallel_matches_serial(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(
            ["fig16", "--scale", SCALE, "--no-cache", "--sanitize",
             "--json", str(serial)]
        ) == 0
        assert main(
            ["fig16", "--scale", SCALE, "--no-cache", "--sanitize",
             "--jobs", "2", "--json", str(parallel)]
        ) == 0
        a = json.loads(serial.read_text())["sanitizer"]
        b = json.loads(parallel.read_text())["sanitizer"]
        assert a == b
