"""Smoke tests: every example script must run clean at a small scale."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "400")
        assert "rt-opex" in out
        assert "miss rate" in out

    def test_phy_loopback(self):
        out = run_example("phy_loopback.py", "2")
        assert "BLER" in out
        assert "iteration" in out.lower()

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py", "400")
        assert "miss budget" in out

    def test_heterogeneous_cells(self):
        out = run_example("heterogeneous_cells.py", "400")
        assert "macro" in out

    def test_schedule_traces(self):
        out = run_example("schedule_traces.py")
        assert "Fig. 9-style" in out
        assert "Fig. 11-style" in out
        # RT-OPEX rescues the workload the partitioned trace misses.
        assert "misses: 0 of 12" in out

    def test_operator_workflow(self):
        out = run_example("operator_workflow.py", "400")
        assert "reload cleanly" in out
