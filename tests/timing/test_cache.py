"""Tests for the cache-affinity and migration-cost models."""

from repro.timing.cache import CacheAffinityModel, MigrationCostModel


class TestCacheAffinity:
    def test_first_touch_is_cold(self, rng):
        model = CacheAffinityModel()
        assert model.penalty(0, 1, 0, rng) > 0

    def test_repeat_same_bs_is_warm(self, rng):
        model = CacheAffinityModel()
        model.penalty(0, 1, 0, rng)
        assert model.penalty(0, 1, 1, rng) == 0.0

    def test_switching_bs_is_cold(self, rng):
        model = CacheAffinityModel()
        model.penalty(0, 1, 0, rng)
        assert model.penalty(0, 2, 1, rng) > 0

    def test_staleness_evicts(self, rng):
        model = CacheAffinityModel(decay_subframes=3)
        model.penalty(0, 1, 0, rng)
        assert model.penalty(0, 1, 10, rng) > 0

    def test_within_decay_window_warm(self, rng):
        model = CacheAffinityModel(decay_subframes=3)
        model.penalty(0, 1, 0, rng)
        assert model.penalty(0, 1, 3, rng) == 0.0

    def test_cores_independent(self, rng):
        model = CacheAffinityModel()
        model.penalty(0, 1, 0, rng)
        assert model.penalty(1, 1, 0, rng) > 0  # different core still cold

    def test_penalty_in_configured_range(self, rng):
        model = CacheAffinityModel(cold_penalty_low_us=50.0, cold_penalty_high_us=60.0)
        for i in range(50):
            p = model.penalty(0, i + 10, i, rng)  # always a new BS
            assert 50.0 <= p <= 60.0

    def test_peek_is_warm(self, rng):
        model = CacheAffinityModel()
        model.penalty(3, 7, 0, rng)
        assert model.peek_is_warm(3, 7)
        assert not model.peek_is_warm(3, 8)

    def test_reset(self, rng):
        model = CacheAffinityModel()
        model.penalty(0, 1, 0, rng)
        model.reset()
        assert model.penalty(0, 1, 1, rng) > 0  # cold again


class TestMigrationCost:
    def test_planning_cost_is_mean(self):
        assert MigrationCostModel(mean_us=20.0).planning_cost() == 20.0

    def test_draw_without_rng_is_deterministic(self):
        model = MigrationCostModel(mean_us=18.0, jitter_us=5.0)
        assert model.draw() == 18.0

    def test_draw_with_rng_jitters_within_bounds(self, rng):
        model = MigrationCostModel(mean_us=20.0, jitter_us=2.0)
        draws = [model.draw(rng) for _ in range(200)]
        assert all(18.0 <= d <= 22.0 for d in draws)
        assert len(set(round(d, 6) for d in draws)) > 1

    def test_zero_jitter(self, rng):
        model = MigrationCostModel(mean_us=20.0, jitter_us=0.0)
        assert model.draw(rng) == 20.0

    def test_matches_paper_overhead(self):
        # Paper sec. 4.4: ~18-20 us per migrated task.
        assert 15.0 <= MigrationCostModel().mean_us <= 25.0
