"""Tests for the Eq. (1) timing model and its regression."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import W0_US, W1_US, W2_US, W3_US
from repro.lte.subframe import UplinkGrant
from repro.timing.model import (
    FFT_PER_ANTENNA_US,
    LinearTimingModel,
    ModelCoefficients,
    fit_linear_model,
)


@pytest.fixture
def model():
    return LinearTimingModel()


class TestEq1:
    def test_paper_anchor_mcs27_two_iterations(self, model):
        # Fig. 3(a): ~1.4 ms at MCS 27 with two iterations, N = 2.
        grant = UplinkGrant(mcs=27)
        assert model.total_time_for_grant(grant, 2) == pytest.approx(1370, abs=30)

    def test_paper_anchor_mcs0(self, model):
        # Fig. 3(a): ~0.5 ms at MCS 0.
        grant = UplinkGrant(mcs=0)
        assert model.total_time_for_grant(grant, 2) == pytest.approx(500, abs=30)

    def test_per_antenna_cost_is_w1(self, model):
        t1 = model.total_time(1, 6, 3.7, 2)
        t2 = model.total_time(2, 6, 3.7, 2)
        assert t2 - t1 == pytest.approx(W1_US)

    def test_per_iteration_cost_at_mcs27(self, model):
        # Paper: each turbo iteration at MCS 27 adds ~345 us.
        grant = UplinkGrant(mcs=27)
        delta = model.total_time_for_grant(grant, 3) - model.total_time_for_grant(grant, 2)
        assert delta == pytest.approx(345, abs=15)

    @given(
        st.integers(1, 4),
        st.sampled_from([2, 4, 6]),
        st.floats(0.1, 4.0),
        st.integers(1, 4),
    )
    def test_monotone_in_all_arguments(self, n, k, d, l):
        model = LinearTimingModel()
        base = model.total_time(n, k, d, l)
        assert model.total_time(n + 1, k, d, l) > base
        assert model.total_time(n, k, d * 1.5, l) > base
        assert model.total_time(n, k, d, l + 1) > base

    def test_wcet_uses_max_iterations(self, model):
        grant = UplinkGrant(mcs=20)
        assert model.worst_case_time(grant, 4) == model.total_time_for_grant(grant, 4)
        assert model.best_case_time(grant) == model.total_time_for_grant(grant, 1)


class TestDecomposition:
    def test_tasks_sum_to_eq1(self, model):
        # The FFT/demod/decode split must re-sum to Eq. (1) exactly.
        for mcs in (0, 13, 27):
            grant = UplinkGrant(mcs=mcs, num_antennas=2)
            l = 3
            total = (
                model.fft_task_time(2)
                + model.demod_task_time(2, grant.modulation_order)
                + model.decode_prologue_time(grant.modulation_order)
                + model.decode_subtask_time(grant.subcarrier_load, l, grant.code_blocks)
                * grant.code_blocks
            )
            assert total == pytest.approx(model.total_time_for_grant(grant, l), rel=1e-9)

    def test_fft_matches_fig18_median(self, model):
        # Fig. 18: the FFT task at N = 2 has a ~108 us median.
        assert model.fft_task_time(2) == pytest.approx(108.0)
        assert model.fft_subtask_time() == FFT_PER_ANTENNA_US

    def test_decode_subtasks_split_evenly(self, model):
        per_block = model.decode_subtask_time(3.77, 4, 6)
        assert 6 * per_block == pytest.approx(W3_US * 3.77 * 4)

    def test_decode_subtask_rejects_zero_blocks(self, model):
        with pytest.raises(ValueError):
            model.decode_subtask_time(1.0, 2, 0)

    def test_decode_task_time(self, model):
        t = model.decode_task_time(3.77, 6, [2, 2, 2, 2, 2, 2])
        expected = model.decode_prologue_time(6) + W3_US * 3.77 * 2
        assert t == pytest.approx(expected)


class TestRegression:
    def _synthetic(self, n, rng, noise=0.0):
        antennas = rng.choice([1, 2, 4], size=n)
        q_m = rng.choice([2, 4, 6], size=n)
        dl = rng.uniform(0.1, 15.0, size=n)
        times = W0_US + W1_US * antennas + W2_US * q_m + W3_US * dl
        if noise:
            times = times + rng.normal(scale=noise, size=n)
        return antennas, q_m, dl, times

    def test_exact_recovery_noiseless(self, rng):
        fit = fit_linear_model(*self._synthetic(500, rng))
        assert fit.coefficients.w0 == pytest.approx(W0_US, abs=1e-6)
        assert fit.coefficients.w1 == pytest.approx(W1_US, abs=1e-6)
        assert fit.coefficients.w2 == pytest.approx(W2_US, abs=1e-6)
        assert fit.coefficients.w3 == pytest.approx(W3_US, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery_close(self, rng):
        fit = fit_linear_model(*self._synthetic(20_000, rng, noise=20.0))
        assert fit.coefficients.w1 == pytest.approx(W1_US, rel=0.05)
        assert fit.coefficients.w3 == pytest.approx(W3_US, rel=0.05)
        assert fit.r_squared > 0.98

    def test_rejects_mismatched_lengths(self, rng):
        a, k, dl, t = self._synthetic(10, rng)
        with pytest.raises(ValueError):
            fit_linear_model(a[:5], k, dl, t)

    def test_rejects_degenerate_design(self):
        n = 10
        ones = np.ones(n)
        with pytest.raises(ValueError):
            fit_linear_model(ones, ones, ones, ones * 100)

    def test_rejects_too_few_samples(self, rng):
        a, k, dl, t = self._synthetic(3, rng)
        with pytest.raises(ValueError):
            fit_linear_model(a, k, dl, t)

    def test_custom_coefficients(self):
        model = LinearTimingModel(ModelCoefficients(10.0, 100.0, 50.0, 80.0))
        assert model.total_time(1, 2, 1.0, 1) == pytest.approx(10 + 100 + 100 + 80)
