"""Tests for the turbo iteration-count model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.timing.iterations import IterationModel


@pytest.fixture
def model():
    return IterationModel(max_iterations=4)


class TestMeanIterations:
    def test_bounds(self, model):
        for mcs in range(28):
            for snr in (0.0, 15.0, 30.0):
                mean = model.mean_iterations(mcs, snr)
                assert 1.0 <= mean <= 4.0

    def test_monotone_in_snr(self, model):
        for mcs in (5, 13, 27):
            means = [model.mean_iterations(mcs, snr) for snr in (0, 10, 20, 30)]
            assert all(a >= b for a, b in zip(means, means[1:]))

    def test_monotone_in_mcs(self, model):
        means = [model.mean_iterations(mcs, 30.0) for mcs in range(28)]
        assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))

    def test_low_mcs_high_snr_fast(self, model):
        assert model.mean_iterations(5, 30.0) < 1.2

    def test_top_mcs_iteration_hungry_at_30db(self, model):
        # Paper sec. 4.3: high-MCS subframes often need 3-4 iterations
        # even at the 30 dB evaluation SNR.
        assert model.mean_iterations(27, 30.0) > 2.5

    def test_fig3b_anchor_mid_mcs(self, model):
        # Fig. 3(b): 20 dB -> 10 dB adds >50% processing time for mid
        # MCS, i.e. a meaningful iteration increase.
        at_20 = model.mean_iterations(16, 20.0)
        at_10 = model.mean_iterations(16, 10.0)
        assert at_10 > 1.4 * at_20


class TestDraws:
    def test_draw_bounds(self, model, rng):
        draws = model.draw(20, 15.0, rng, num_blocks=50)
        assert all(1 <= l <= 4 for l in draws)
        assert len(draws) == 50

    def test_draw_rejects_zero_blocks(self, model, rng):
        with pytest.raises(ValueError):
            model.draw(5, 20.0, rng, num_blocks=0)

    def test_draw_mean_tracks_model_mean(self, model, rng):
        draws = model.draw(24, 30.0, rng, num_blocks=5000)
        assert np.mean(draws) == pytest.approx(model.mean_iterations(24, 30.0), abs=0.35)

    def test_nondeterministic_at_fixed_snr(self, model, rng):
        # Paper sec. 2.1: L is non-deterministic even for fixed SNR.
        draws = model.draw(20, 25.0, rng, num_blocks=300)
        assert len(set(draws)) > 1

    def test_draw_array_matches_scalar_distribution(self, model):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        mcs = np.full(4000, 22)
        snr = np.full(4000, 30.0)
        vec = model.draw_array(mcs, snr, rng1)
        scalar = model.draw(22, 30.0, rng2, num_blocks=4000)
        assert np.mean(vec) == pytest.approx(np.mean(scalar), abs=0.15)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 27), st.floats(0, 35), st.integers(0, 999))
    def test_property_draws_in_range(self, mcs, snr, seed):
        model = IterationModel(max_iterations=4)
        rng = np.random.default_rng(seed)
        draw = model.draw_subframe(mcs, snr, rng, num_blocks=3)
        assert all(1 <= l <= 4 for l in draw.iterations)
        assert len(draw.iterations) == 3

    def test_subframe_failure_burns_full_budget(self, model):
        rng = np.random.default_rng(1)
        # At deeply negative margins decoding always fails and one block
        # hits the iteration cap.
        draw = model.draw_subframe(27, 0.0, rng, num_blocks=6)
        assert not draw.crc_pass
        assert max(draw.iterations) == 4

    def test_success_probability_monotone(self, model):
        probs = [model.success_probability(27, snr) for snr in (0, 10, 20, 30)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))
        assert probs[-1] > 0.99

    def test_draw_statistics_helpers(self, model):
        rng = np.random.default_rng(2)
        draw = model.draw_subframe(10, 30.0, rng, num_blocks=4)
        assert draw.total == sum(draw.iterations)
        assert draw.mean == pytest.approx(draw.total / 4)


class TestCustomParameters:
    def test_max_iterations_respected(self):
        model = IterationModel(max_iterations=8)
        rng = np.random.default_rng(3)
        draws = model.draw(27, 0.0, rng, num_blocks=200)
        assert max(draws) <= 8
        assert max(draws) > 4  # low margin pushes toward the cap

    def test_zero_spike_probability(self):
        model = IterationModel(spike_probability=0.0, jitter_scale=1e-9)
        rng = np.random.default_rng(4)
        draws = model.draw(5, 30.0, rng, num_blocks=100)
        assert set(draws) == {1}
