"""Tests for the platform-noise and cyclictest models."""

import numpy as np
import pytest

from repro.timing.platform import CyclictestEmulator, PlatformNoiseModel


class TestPlatformNoise:
    def test_nonnegative(self, rng):
        noise = PlatformNoiseModel().draw(rng, 50_000)
        assert (noise >= 0).all()

    def test_order_statistics_match_paper(self, rng):
        # Fig. 3(d): 99.9% of errors below 0.15 ms; maxima ~0.7 ms.
        noise = PlatformNoiseModel().draw(rng, 500_000)
        assert np.percentile(noise, 99.9) < 150.0
        assert noise.max() < 800.0

    def test_rare_long_tail_exists(self, rng):
        # ~1 in 1e5 above a few hundred microseconds.
        noise = PlatformNoiseModel().draw(rng, 1_000_000)
        frac = np.mean(noise > 300.0)
        assert 0 < frac < 1e-3

    def test_mean_is_small(self, rng):
        noise = PlatformNoiseModel().draw(rng, 100_000)
        assert 5.0 < noise.mean() < 40.0

    def test_draw_one(self, rng):
        value = PlatformNoiseModel().draw_one(rng)
        assert value >= 0.0

    def test_quantile_helper(self, rng):
        model = PlatformNoiseModel()
        q50 = model.quantile(0.5, rng, samples=50_000)
        q99 = model.quantile(0.99, rng, samples=50_000)
        assert q50 < q99

    def test_disabled_tails(self, rng):
        model = PlatformNoiseModel(spike_probability=0.0, tail_probability=0.0)
        noise = model.draw(rng, 200_000)
        assert noise.max() < 200.0


class TestCyclictest:
    def test_mean_near_02ms(self, rng):
        # Paper: mean latency ~0.2 ms under the hackbench load.
        samples = CyclictestEmulator().run(rng, 100_000)
        assert samples.mean() == pytest.approx(200.0, rel=0.05)

    def test_excursions_above_04ms(self, rng):
        samples = CyclictestEmulator().run(rng, 2_000_000)
        assert (samples > 400.0).any()

    def test_tail_rate_order(self, rng):
        # ~1 in 1e5 above a few hundred microseconds.
        samples = CyclictestEmulator().run(rng, 2_000_000)
        frac = np.mean(samples > 450.0)
        assert frac < 1e-4

    def test_positive(self, rng):
        samples = CyclictestEmulator().run(rng, 10_000)
        assert (samples > 0).all()
