"""Tests for the virtualization platform profiles."""

import pytest

from repro.lte.subframe import UplinkGrant
from repro.timing.virtualization import (
    VirtualizationProfile,
    container_profile,
    native_profile,
    standard_profiles,
    vm_profile,
)
from repro.timing.platform import PlatformNoiseModel


class TestProfiles:
    def test_native_is_identity(self):
        model = native_profile().scaled_timing_model()
        grant = UplinkGrant(mcs=13)
        from repro.timing.model import LinearTimingModel

        assert model.total_time_for_grant(grant, 2) == pytest.approx(
            LinearTimingModel().total_time_for_grant(grant, 2)
        )

    def test_overhead_ordering(self):
        grant = UplinkGrant(mcs=20)
        times = {
            name: p.scaled_timing_model().total_time_for_grant(grant, 2)
            for name, p in standard_profiles().items()
        }
        assert times["native"] < times["container"] < times["vm"]

    def test_container_close_to_native(self):
        # The cited result: containers are only slightly behind native.
        assert container_profile().time_multiplier < 1.05

    def test_vm_noise_heavier(self, rng):
        native_noise = native_profile().noise.draw(rng, 100_000).mean()
        vm_noise = vm_profile().noise.draw(rng, 100_000).mean()
        assert vm_noise > native_noise

    def test_scaling_preserves_linearity(self):
        grant = UplinkGrant(mcs=27)
        base = native_profile().scaled_timing_model()
        vm = vm_profile().scaled_timing_model()
        ratio = vm.total_time_for_grant(grant, 3) / base.total_time_for_grant(grant, 3)
        assert ratio == pytest.approx(vm_profile().time_multiplier)

    def test_faster_than_native_rejected(self):
        with pytest.raises(ValueError):
            VirtualizationProfile(
                name="magic", time_multiplier=0.9, noise=PlatformNoiseModel()
            )

    def test_standard_profiles_keys(self):
        assert set(standard_profiles()) == {"native", "container", "vm"}
