"""Tests for the task-graph construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.subframe import UplinkGrant
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import SubtaskSpec, TaskSpec, build_subframe_work


@pytest.fixture
def model():
    return LinearTimingModel()


def make_work(model, mcs=27, iters=None, **kwargs):
    grant = UplinkGrant(mcs=mcs)
    iters = iters if iters is not None else [2] * grant.code_blocks
    return grant, build_subframe_work(model, grant, iters, max_iterations=4, **kwargs)


class TestTaskGraph:
    def test_three_tasks_in_order(self, model):
        _, work = make_work(model)
        assert [t.name for t in work.tasks] == ["fft", "demod", "decode"]

    def test_total_matches_eq1(self, model):
        grant, work = make_work(model, iters=[3] * 6)
        assert work.total_serial_us == pytest.approx(model.total_time_for_grant(grant, 3))

    def test_total_with_mixed_iterations(self, model):
        grant, work = make_work(model, iters=[1, 2, 3, 4, 1, 2])
        mean_l = sum([1, 2, 3, 4, 1, 2]) / 6
        assert work.total_serial_us == pytest.approx(
            model.total_time_for_grant(grant, mean_l)
        )

    def test_fft_subtasks_per_antenna(self, model):
        _, work = make_work(model)
        fft = work.task("fft")
        assert fft.num_subtasks == 2  # N = 2 antennas
        assert fft.parallelizable

    def test_decode_subtasks_per_code_block(self, model):
        grant, work = make_work(model)
        assert work.task("decode").num_subtasks == grant.code_blocks

    def test_demod_is_serial(self, model):
        _, work = make_work(model)
        demod = work.task("demod")
        assert demod.num_subtasks == 0
        assert not demod.parallelizable

    def test_planned_durations_use_wcet(self, model):
        grant, work = make_work(model, iters=[1] * 6)
        decode = work.task("decode")
        for sub in decode.subtasks:
            # Planned with Lm = 4, actual with L = 1.
            assert sub.planned_us == pytest.approx(4 * sub.duration_us)

    def test_serial_variants(self, model):
        grant, work = make_work(model, parallelize_fft=False, parallelize_decode=False)
        assert work.task("fft").num_subtasks == 0
        assert work.task("decode").num_subtasks == 0
        assert work.total_serial_us == pytest.approx(model.total_time_for_grant(grant, 2))

    def test_iteration_count_mismatch_rejected(self, model):
        grant = UplinkGrant(mcs=27)
        with pytest.raises(ValueError):
            build_subframe_work(model, grant, [2, 2], max_iterations=4)

    def test_crc_flag_propagates(self, model):
        _, work = make_work(model, crc_pass=False)
        assert not work.crc_pass

    def test_unknown_task_raises(self, model):
        _, work = make_work(model)
        with pytest.raises(KeyError):
            work.task("fourier")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 27), st.lists(st.integers(1, 4), min_size=1, max_size=8))
    def test_property_total_positive_and_consistent(self, mcs, iters):
        model = LinearTimingModel()
        grant = UplinkGrant(mcs=mcs)
        iters = (iters * 8)[: grant.code_blocks]
        work = build_subframe_work(model, grant, iters, max_iterations=4)
        assert work.total_serial_us > 0
        mean_l = sum(iters) / len(iters)
        assert work.total_serial_us == pytest.approx(
            model.total_time_for_grant(grant, mean_l), rel=1e-9
        )


class TestSpecValidation:
    def test_negative_subtask_duration_rejected(self):
        with pytest.raises(ValueError):
            SubtaskSpec(name="x", duration_us=-1.0, planned_us=1.0)

    def test_task_serial_duration(self):
        task = TaskSpec(
            name="t",
            serial_us=10.0,
            subtasks=(
                SubtaskSpec("a", 5.0, 5.0),
                SubtaskSpec("b", 7.0, 7.0),
            ),
            parallelizable=True,
        )
        assert task.serial_duration_us == pytest.approx(22.0)
