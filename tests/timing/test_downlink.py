"""Tests for the downlink (Tx) timing model."""

import pytest

from repro.lte.subframe import UplinkGrant
from repro.timing.downlink import (
    DownlinkCoefficients,
    DownlinkTimingModel,
    build_tx_work,
    tx_budget_us,
)
from repro.timing.model import LinearTimingModel


@pytest.fixture
def model():
    return DownlinkTimingModel()


class TestDownlinkModel:
    def test_encode_cheaper_than_decode(self, model):
        # The paper's premise: uplink is significantly more expensive.
        uplink = LinearTimingModel()
        for mcs in (0, 13, 27):
            grant = UplinkGrant(mcs=mcs)
            tx = model.total_time_for_grant(grant)
            rx = uplink.total_time_for_grant(grant, 2)
            assert tx < 0.5 * rx

    def test_monotone_in_mcs(self, model):
        times = [model.total_time_for_grant(UplinkGrant(mcs=m)) for m in range(28)]
        assert times == sorted(times)

    def test_scales_with_antennas(self, model):
        t1 = model.total_time(1, 6, 3.7)
        t2 = model.total_time(2, 6, 3.7)
        assert t2 - t1 == pytest.approx(model.coefficients.v1)

    def test_fits_tx_budget_at_typical_rtt(self, model):
        # Every encode must fit 1 ms - RTT/2 at the sweep's worst point.
        worst = model.total_time_for_grant(UplinkGrant(mcs=27))
        assert worst < tx_budget_us(550.0)

    def test_custom_coefficients(self):
        model = DownlinkTimingModel(DownlinkCoefficients(v0=1, v1=2, v2=3, v3=4))
        assert model.total_time(2, 6, 1.0) == pytest.approx(1 + 4 + 18 + 4)


class TestTxWork:
    def test_single_serial_task(self, model):
        work = build_tx_work(model, UplinkGrant(mcs=13))
        assert len(work.tasks) == 1
        assert work.tasks[0].num_subtasks == 0
        assert work.iterations == ()

    def test_noise_folded_in(self, model):
        grant = UplinkGrant(mcs=13)
        quiet = build_tx_work(model, grant).total_serial_us
        noisy = build_tx_work(model, grant, noise_us=50.0).total_serial_us
        assert noisy - quiet == pytest.approx(50.0)


class TestTxBudget:
    def test_budget_formula(self):
        assert tx_budget_us(400.0) == 600.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            tx_budget_us(-1.0)
