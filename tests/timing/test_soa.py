"""SoA pipeline equivalence: arrays ↔ legacy dataclasses, bit for bit.

The structure-of-arrays fast path is only admissible because every
piece of it is provably identical to the scalar reference:

* :func:`build_subtask_arrays` + :class:`WorkMaterializer` must
  round-trip to exactly the :class:`SubframeWork` the legacy
  :func:`build_subframe_work` constructs (hypothesis-driven over the
  whole (MCS, iterations, CRC) space);
* :meth:`IterationModel.draw_trace` must consume the RNG bitstream
  exactly as per-subframe :meth:`draw_subframe` calls, leaving the
  generator in the same end state;
* :meth:`GrantMapper.mcs_for_trace` must agree elementwise with
  :meth:`mcs_for_load`.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lte.subframe import interned_grant
from repro.sched.base import CRanConfig
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel, duration_oracle
from repro.timing.tasks import (
    KIND_DECODE,
    KIND_FFT,
    WorkMaterializer,
    build_subframe_work,
    build_subtask_arrays,
)
from repro.workload.mapping import GrantMapper

MODEL = LinearTimingModel()
MAX_ITERATIONS = 8


def _arrays_for(mcs_list, iterations_flat, tables):
    mcs = np.asarray(mcs_list, dtype=np.int64)
    blocks = tables.code_blocks[mcs]
    offsets = np.zeros(mcs.size + 1, dtype=np.int64)
    np.cumsum(blocks, out=offsets[1:])
    return build_subtask_arrays(
        tables,
        mcs,
        np.zeros(mcs.size, dtype=np.int64),
        np.arange(mcs.size, dtype=np.int64),
        np.asarray(iterations_flat, dtype=np.int64),
        offsets,
    ), offsets


@st.composite
def subframe_batches(draw):
    """A batch of (mcs, per-block iterations, crc) subframe specs."""
    oracle = duration_oracle(MODEL, MAX_ITERATIONS)
    tables = oracle.tables()
    n = draw(st.integers(min_value=1, max_value=12))
    mcs = draw(st.lists(st.integers(0, 27), min_size=n, max_size=n))
    iterations = []
    for m in mcs:
        blocks = int(tables.code_blocks[m])
        iterations.append(
            draw(
                st.lists(
                    st.integers(1, MAX_ITERATIONS), min_size=blocks, max_size=blocks
                )
            )
        )
    crc = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return mcs, iterations, crc


@settings(max_examples=60, deadline=None)
@given(subframe_batches())
def test_soa_round_trips_to_legacy_specs(batch):
    """SubtaskArrays → materialize == build_subframe_work, field for field."""
    mcs, iterations, crc = batch
    tables = duration_oracle(MODEL, MAX_ITERATIONS).tables()
    flat = [l for its in iterations for l in its]
    arrays, offsets = _arrays_for(mcs, flat, tables)
    works = arrays.materialize_works(WorkMaterializer(tables), crc)
    assert len(works) == len(mcs)
    for i, work in enumerate(works):
        legacy = build_subframe_work(
            MODEL,
            interned_grant(mcs[i]),
            iterations[i],
            max_iterations=MAX_ITERATIONS,
            crc_pass=crc[i],
        )
        # Dataclass equality covers names, durations (exact floats),
        # planned WCETs, parallelizability, iterations, and CRC.
        assert work == legacy
        # And the columnar view must agree with the specs row by row.
        lo, hi = arrays.offsets[i], arrays.offsets[i + 1]
        fft, _, decode = legacy.tasks
        flat_specs = [(KIND_FFT, s) for s in fft.subtasks]
        flat_specs += [(KIND_DECODE, s) for s in decode.subtasks]
        assert hi - lo == len(flat_specs)
        for row, (kind, spec) in zip(range(lo, hi), flat_specs):
            assert arrays.kind[row] == kind
            assert arrays.duration_us[row] == spec.duration_us
            assert arrays.planned_us[row] == spec.planned_us


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 27), min_size=1, max_size=40),
    st.integers(0, 2**31 - 1),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
)
def test_draw_trace_matches_scalar_stream(mcs_list, seed, snr_db):
    """draw_trace == per-subframe draw_subframe calls, same end state."""
    model = IterationModel(max_iterations=MAX_ITERATIONS)
    tables = duration_oracle(MODEL, MAX_ITERATIONS).tables()
    mcs = np.asarray(mcs_list, dtype=np.int64)
    blocks = tables.code_blocks[mcs]
    offsets = np.zeros(mcs.size + 1, dtype=np.int64)
    np.cumsum(blocks, out=offsets[1:])

    batch_rng = np.random.default_rng(seed)
    scalar_rng = np.random.default_rng(seed)
    draw = model.draw_trace(mcs, snr_db, batch_rng, offsets)

    scalar_iterations, scalar_crc = [], []
    for i, m in enumerate(mcs_list):
        d = model.draw_subframe(m, snr_db, scalar_rng, num_blocks=int(blocks[i]))
        scalar_iterations.extend(d.iterations)
        scalar_crc.append(d.crc_pass)
    assert draw.iterations.tolist() == scalar_iterations
    assert draw.crc_pass.tolist() == scalar_crc
    # The generators consumed the exact same bitstream.
    assert batch_rng.bit_generator.state == scalar_rng.bit_generator.state


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=1, max_size=64))
def test_mcs_for_trace_matches_scalar(loads):
    mapper = GrantMapper()
    vec = mapper.mcs_for_trace(np.array(loads))
    assert vec.tolist() == [mapper.mcs_for_load(l) for l in loads]


def test_mcs_for_trace_rejects_out_of_range():
    mapper = GrantMapper()
    for bad in ([-0.1], [1.1], [0.5, float("nan")]):
        try:
            mapper.mcs_for_trace(np.array(bad))
        except ValueError as exc:
            assert "load must be in [0, 1]" in str(exc)
        else:
            raise AssertionError(f"{bad} should have raised")


def test_workload_fast_path_equals_legacy():
    """End-to-end: the runner's SoA dispatch returns the legacy job list."""
    from repro.sched.runner import build_workload, build_workload_legacy

    cfg = CRanConfig(transport_latency_us=500.0)
    fast = build_workload(cfg, 120, seed=2016)
    legacy = build_workload_legacy(cfg, 120, seed=2016)
    assert fast == legacy


def test_workload_fast_path_interns_value_objects():
    """Equal subframes share grant/work instances on the fast path."""
    from repro.sched.runner import build_workload

    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, 200, seed=2016)
    grants = {id(j.subframe.grant) for j in jobs}
    mcs_values = {j.subframe.grant.mcs for j in jobs}
    assert len(grants) == len(mcs_values)  # one instance per MCS
    works = {id(j.work) for j in jobs}
    assert len(works) < len(jobs)  # repeated draws collapse


def test_custom_models_fall_back_to_legacy_builder():
    """Subclassed models must bypass the SoA fast path (and still work)."""
    from repro.sched.runner import build_workload, build_workload_legacy

    class SlowMapper(GrantMapper):
        def mcs_for_load(self, load):
            return max(0, super().mcs_for_load(load) - 1)

    cfg = CRanConfig(transport_latency_us=500.0)
    mapper = SlowMapper()
    fast = build_workload(cfg, 40, seed=2016, mapper=mapper)
    legacy = build_workload_legacy(cfg, 40, seed=2016, mapper=mapper)
    assert fast == legacy
    assert all(j.subframe.grant.mcs <= 26 for j in fast)
