"""Tests for multi-user subframe task graphs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lte.subframe import UplinkGrant
from repro.timing.model import LinearTimingModel
from repro.timing.multiuser import build_multiuser_work
from repro.timing.tasks import build_subframe_work


@pytest.fixture
def model():
    return LinearTimingModel()


def grants_for(prb_shares, mcs=20):
    return [UplinkGrant(mcs=mcs, num_prbs=p, num_antennas=2) for p in prb_shares]


class TestMultiUserWork:
    def test_single_full_user_matches_eq1(self, model):
        # One user at 100% PRBs must reduce exactly to Eq. (1).
        grant = UplinkGrant(mcs=27, num_prbs=50, num_antennas=2)
        iters = [3] * grant.code_blocks
        multi = build_multiuser_work(model, [grant], [iters], max_iterations=4)
        single = build_subframe_work(model, grant, iters, max_iterations=4)
        assert multi.total_serial_us == pytest.approx(single.total_serial_us, rel=1e-9)

    def test_decode_subtasks_are_per_user_code_blocks(self, model):
        grants = grants_for([25, 25], mcs=20)
        iters = [[2] * g.code_blocks for g in grants]
        work = build_multiuser_work(model, grants, iters, max_iterations=4)
        expected = sum(g.code_blocks for g in grants)
        assert work.task("decode").num_subtasks == expected

    def test_more_users_finer_subtasks(self, model):
        one = build_multiuser_work(
            model, grants_for([50], 24), [[2] * grants_for([50], 24)[0].code_blocks],
            max_iterations=4,
        )
        grants = grants_for([13, 13, 12, 12], 24)
        four = build_multiuser_work(
            model, grants, [[2] * g.code_blocks for g in grants], max_iterations=4
        )
        max_one = max(s.duration_us for s in one.task("decode").subtasks)
        max_four = max(s.duration_us for s in four.task("decode").subtasks)
        assert max_four < max_one

    def test_total_time_split_invariant(self, model):
        # Splitting the same PRBs/MCS across users conserves the decode
        # bits, so the total time stays within the TBS-quantization slop.
        whole = grants_for([50], 16)
        halves = grants_for([25, 25], 16)
        w_whole = build_multiuser_work(
            model, whole, [[2] * whole[0].code_blocks], max_iterations=4
        )
        w_half = build_multiuser_work(
            model, halves, [[2] * g.code_blocks for g in halves], max_iterations=4
        )
        assert w_half.total_serial_us == pytest.approx(w_whole.total_serial_us, rel=0.05)

    def test_validation(self, model):
        grants = grants_for([30, 30])
        with pytest.raises(ValueError):
            build_multiuser_work(model, grants, [[2], [2]], max_iterations=4)  # PRBs > 50
        with pytest.raises(ValueError):
            build_multiuser_work(model, [], [], max_iterations=4)
        mixed = [UplinkGrant(mcs=5, num_prbs=10, num_antennas=1),
                 UplinkGrant(mcs=5, num_prbs=10, num_antennas=2)]
        with pytest.raises(ValueError):
            build_multiuser_work(model, mixed, [[2], [2]], max_iterations=4)

    def test_iteration_list_mismatch(self, model):
        grants = grants_for([25, 25])
        with pytest.raises(ValueError):
            build_multiuser_work(model, grants, [[2]], max_iterations=4)


class TestMultiUserWorkload:
    def test_build_and_schedule(self):
        from repro.sched import CRanConfig, run_scheduler
        from repro.workload.multiuser import build_multiuser_workload

        cfg = CRanConfig(transport_latency_us=600.0)
        jobs = build_multiuser_workload(cfg, 200, seed=3)
        assert len(jobs) == 800
        result = run_scheduler("rt-opex", cfg, jobs)
        assert len(result.records) == len(jobs)

    def test_full_prb_mode_occupies_everything(self):
        from repro.sched import CRanConfig
        from repro.workload.multiuser import build_multiuser_workload

        cfg = CRanConfig(transport_latency_us=600.0)
        jobs = build_multiuser_workload(cfg, 50, seed=3, full_prb=True, max_users=1)
        for job in jobs:
            assert job.subframe.grant.num_prbs == 50


class TestPrbSplit:
    @given(st.integers(8, 50), st.integers(1, 4), st.integers(0, 500))
    @settings(max_examples=200, deadline=None)
    def test_split_partitions_total(self, total, users, seed):
        import numpy as np

        from repro.workload.multiuser import MIN_USER_PRBS, split_prbs

        rng = np.random.default_rng(seed)
        shares = split_prbs(total, users, rng)
        assert sum(shares) == total
        assert all(s >= MIN_USER_PRBS for s in shares)

    @given(st.integers(1, 50), st.integers(1, 8), st.integers(0, 500))
    @settings(max_examples=300, deadline=None)
    def test_min_share_invariant_full_domain(self, total, users, seed):
        # Regression: tiny grants used to leak sub-minimum shares (or a
        # zero share) out of the composition.  Over the whole input
        # domain the invariant is: shares partition the total, and every
        # share meets MIN_USER_PRBS except the documented degenerate
        # case — a grant too small to host even one minimum allocation
        # goes whole to a single user.
        import numpy as np

        from repro.workload.multiuser import MIN_USER_PRBS, split_prbs

        rng = np.random.default_rng(seed)
        shares = split_prbs(total, users, rng)
        assert sum(shares) == total
        assert all(s >= 1 for s in shares)
        if total >= MIN_USER_PRBS:
            assert all(s >= MIN_USER_PRBS for s in shares)
        else:
            assert shares == [total]

    def test_degenerate_small_grant_goes_whole(self, rng):
        from repro.workload.multiuser import MIN_USER_PRBS, split_prbs

        for total in range(1, MIN_USER_PRBS):
            assert split_prbs(total, 3, rng) == [total]

    def test_invalid_inputs_raise(self, rng):
        from repro.workload.multiuser import split_prbs

        with pytest.raises(ValueError, match="at least 1"):
            split_prbs(0, 2, rng)
        with pytest.raises(ValueError, match="at least 1"):
            split_prbs(-5, 2, rng)
        with pytest.raises(ValueError, match="num_users"):
            split_prbs(10, 0, rng)


class TestMultiUserMix:
    def test_mix_tags_users_and_tightens_deadline(self):
        from repro.sched import CRanConfig
        from repro.workload.classes import parse_class_spec
        from repro.workload.multiuser import build_multiuser_workload

        cfg = CRanConfig(transport_latency_us=600.0)
        mix = parse_class_spec("urllc:0.5,mmtc:0.5")
        jobs = build_multiuser_workload(cfg, 150, seed=3, mix=mix)
        services = {j.service for j in jobs}
        assert services == {"urllc", "mmtc"}
        for job in jobs:
            budget = mix.by_name(job.service).delay_budget_us
            assert job.deadline_us == pytest.approx(
                job.subframe.air_time_us + budget
            )

    def test_no_mix_stays_byte_identical(self):
        # The mix hook must not perturb the default workload: same
        # streams, same draws, same jobs.
        from repro.sched import CRanConfig
        from repro.workload.multiuser import build_multiuser_workload

        cfg = CRanConfig(transport_latency_us=600.0)
        assert build_multiuser_workload(cfg, 60, seed=3) == (
            build_multiuser_workload(cfg, 60, seed=3, mix=None)
        )

    def test_single_class_mix_keeps_timing(self):
        from repro.sched import CRanConfig
        from repro.workload.classes import single_class_mix
        from repro.workload.multiuser import build_multiuser_workload

        cfg = CRanConfig(transport_latency_us=600.0)
        plain = build_multiuser_workload(cfg, 60, seed=3)
        single = build_multiuser_workload(
            cfg, 60, seed=3, mix=single_class_mix()
        )
        # The explicit single-class mix materializes the same timing
        # (the embb budget IS the default 2 ms deadline) even though the
        # override field is now populated.
        assert [j.deadline_us for j in single] == [j.deadline_us for j in plain]
        assert [j.work for j in single] == [j.work for j in plain]
        assert all(j.service == "embb" for j in single)
