"""Coverage for smaller utility paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.experiments.base import (
    ExperimentOutput,
    get_experiment,
    list_experiments,
    register,
    scaled_subframes,
)
from repro.lte.subframe import Subframe, UplinkGrant
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.sched.base import SubframeJob
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work


class TestExperimentBase:
    def test_scaled_subframes_floor(self):
        assert scaled_subframes(1.0) == 30_000
        assert scaled_subframes(0.001) == 500  # clamped at the minimum

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("table1", "again")(lambda scale, seed: None)

    def test_experiment_output_str(self):
        output = ExperimentOutput("x1", "demo", "body")
        assert "x1" in str(output)
        assert "body" in str(output)

    def test_listing_is_sorted(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert ids == sorted(ids)

    def test_get_experiment_returns_registered(self):
        exp = get_experiment("fig15")
        assert exp.experiment_id == "fig15"


class TestOfdmSingleSymbol:
    def test_demodulate_symbol_matches_full(self, grid_small, rng):
        mod = OfdmModulator(grid_small)
        demod = OfdmDemodulator(grid_small)
        grid = rng.normal(size=(14, grid_small.num_subcarriers)) + 0j
        time = mod.modulate(grid)
        one = demod.demodulate_symbol(time[5])
        # The per-symbol path exists for subtask-level use; it must agree
        # with the batch demodulation of the same samples.
        assert np.allclose(one, demod.demodulate(np.tile(time[5], (14, 1)))[0])

    def test_symbol_samples_property(self, grid_small):
        demod = OfdmDemodulator(grid_small)
        assert demod.symbol_samples == grid_small.fft_size + grid_small.fft_size // 16


class TestJobBounds:
    def make_job(self, iters):
        grant = UplinkGrant(mcs=27)
        work = build_subframe_work(LinearTimingModel(), grant, iters, max_iterations=4)
        sf = Subframe(bs_id=0, index=0, grant=grant, transport_latency_us=500.0)
        return SubframeJob(subframe=sf, work=work, noise_us=12.0, load=1.0)

    def test_optimistic_below_serial(self):
        job = self.make_job([4] * 6)
        assert job.optimistic_time_us < job.serial_time_us

    def test_optimistic_equals_serial_at_one_iteration(self):
        job = self.make_job([1] * 6)
        # Best case realized: the bound is tight up to the noise term.
        assert job.optimistic_time_us == pytest.approx(job.serial_time_us - 12.0)

    def test_serial_time_includes_noise(self):
        job = self.make_job([2] * 6)
        assert job.serial_time_us == pytest.approx(job.work.total_serial_us + 12.0)

    def test_job_override_roundtrip(self):
        job = self.make_job([2] * 6)
        assert job.kind == "rx"
        assert job.arrival_us == job.subframe.arrival_us
        import dataclasses

        tx_like = dataclasses.replace(
            job, kind="tx", arrival_override_us=123.0, deadline_override_us=456.0
        )
        assert tx_like.arrival_us == 123.0
        assert tx_like.deadline_us == 456.0


class TestTableFormatting:
    def test_huge_numbers_scientific(self):
        from repro.analysis.report import Table

        table = Table(["v"])
        table.add_row([1.5e7])
        assert "1.50e+07" in table.render()

    def test_mid_range_floats(self):
        from repro.analysis.report import Table

        table = Table(["v"])
        table.add_row([123.456])
        assert "123.5" in table.render()
