"""Streaming-export guarantees: bounded memory, kill-safety, identity.

Three properties the streaming trace pipeline promises:

* **O(1) exporter memory** — with a sink attached nothing is buffered,
  even for a 10^5-event run (the property that makes paper-scale runs
  traceable);
* **kill-safety** — a writer killed mid-run (SIGKILL, no cleanup)
  leaves a valid, schema-checkable JSONL prefix behind;
* **stream == replay byte-identity** — the same events streamed live
  and buffered-then-replayed produce identical files, in both formats.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.events import resolve_kinds
from repro.obs.export import (
    ChromeTraceSink,
    JsonlTraceSink,
    iter_jsonl_lines,
    read_jsonl_trace,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.obs.schema import validate_jsonl_trace
from repro.obs.trace import Tracer
from repro.sched import CRanConfig, build_workload, run_scheduler

NUM_SYNTHETIC_EVENTS = 100_000


def _emit_synthetic(tracer: Tracer, count: int) -> None:
    """A deterministic mixed-kind event stream over two sequential runs
    (sequential like real scheduler runs, so stream order == replay
    order)."""
    for label in ("synthetic A", "synthetic B"):
        run = tracer.begin_run(label, scheduler="synthetic")
        for i in range(count // 2):
            kind = i % 4
            ts = float(i)
            if kind == 0:
                run.task(i % 8, "decode", ts, ts + 1.5, bs_id=i % 4, sf_index=i)
            elif kind == 1:
                run.gap(i % 8, ts, 2.0)
            elif kind == 2:
                run.arrival(ts, i % 8, i % 4, i)
            else:
                run.deadline(
                    ts, i % 8, missed=(i % 10 == 0), bs_id=i % 4, sf_index=i
                )


class TestBoundedMemory:
    @pytest.mark.parametrize("sink_cls,name", [
        (JsonlTraceSink, "t.jsonl"), (ChromeTraceSink, "t.json"),
    ])
    def test_streaming_buffers_nothing(self, tmp_path, sink_cls, name):
        sink = sink_cls(tmp_path / name)
        tracer = Tracer(sink=sink)
        _emit_synthetic(tracer, NUM_SYNTHETIC_EVENTS)
        # The O(1)-memory contract: every run's buffer stays empty no
        # matter how many events passed through, and the counters (the
        # only per-event state) are exact.
        peak_buffered = max(len(run.events) for run in tracer.runs)
        assert peak_buffered == 0
        assert tracer.num_events() == NUM_SYNTHETIC_EVENTS
        sink.close()
        assert (tmp_path / name).stat().st_size > 0

    def test_jsonl_streams_every_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        tracer = Tracer(sink=sink)
        _emit_synthetic(tracer, NUM_SYNTHETIC_EVENTS)
        sink.close()
        lines = list(iter_jsonl_lines(path))
        assert len(lines) == NUM_SYNTHETIC_EVENTS + 2  # + 2 run headers
        assert validate_jsonl_trace(lines) == []

    def test_kind_filter_applies_at_emit_time(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        tracer = Tracer(kinds=resolve_kinds("gap,deadline"), sink=sink)
        _emit_synthetic(tracer, 1000)
        sink.close()
        kinds = {
            line["kind"]
            for line in iter_jsonl_lines(path)
            if line["type"] == "event"
        }
        assert kinds == {"gap", "deadline"}
        assert tracer.num_events() == 500  # half the synthetic stream


class TestStreamEqualsReplay:
    def _buffered(self) -> Tracer:
        tracer = Tracer()
        _emit_synthetic(tracer, 2000)
        return tracer

    def test_jsonl_byte_identity(self, tmp_path):
        streamed_path = tmp_path / "streamed.jsonl"
        sink = JsonlTraceSink(streamed_path)
        _emit_synthetic(Tracer(sink=sink), 2000)
        sink.close()
        replayed_path = tmp_path / "replayed.jsonl"
        write_jsonl_trace(replayed_path, self._buffered())
        assert streamed_path.read_bytes() == replayed_path.read_bytes()

    def test_chrome_byte_identity(self, tmp_path):
        streamed_path = tmp_path / "streamed.json"
        sink = ChromeTraceSink(streamed_path)
        _emit_synthetic(Tracer(sink=sink), 2000)
        sink.close()
        replayed_path = tmp_path / "replayed.json"
        write_chrome_trace(replayed_path, self._buffered())
        assert streamed_path.read_bytes() == replayed_path.read_bytes()

    def test_scheduler_run_streams_identically(self, tmp_path):
        """A real scheduler run streamed live == buffered then replayed."""
        config = CRanConfig(transport_latency_us=500.0)
        jobs = build_workload(config, 100, seed=7)

        streamed_path = tmp_path / "live.jsonl"
        sink = JsonlTraceSink(streamed_path)
        from repro.obs.trace import tracing

        with tracing(Tracer(sink=sink)):
            run_scheduler("rt-opex", config, jobs, seed=7)
        sink.close()

        buffered = Tracer()
        with tracing(buffered):
            run_scheduler("rt-opex", config, jobs, seed=7)
        replayed_path = tmp_path / "replayed.jsonl"
        write_jsonl_trace(replayed_path, buffered)

        assert streamed_path.read_bytes() == replayed_path.read_bytes()


_KILL_SCRIPT = """
import sys
from repro.obs.trace import Tracer
from repro.obs.export import JsonlTraceSink

sink = JsonlTraceSink(sys.argv[1])
tracer = Tracer(sink=sink)
run = tracer.begin_run("kill victim", scheduler="synthetic")
i = 0
while True:  # no close(), no flush: only SIGKILL ends this
    run.gap(i % 4, float(i), 1.0, bs_id=i % 2, sf_index=i)
    i += 1
"""


class TestKillMidRun:
    def test_killed_writer_leaves_loadable_prefix(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(path)], env=env
        )
        try:
            deadline = time.monotonic() + 30.0
            # Wait until the writer has flushed a real chunk to disk.
            while time.monotonic() < deadline:
                if path.exists() and path.stat().st_size > 64 * 1024:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("writer produced no output to kill")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()

        lines = list(iter_jsonl_lines(path, allow_partial=True))
        # A meaningful prefix survived, every surviving line is schema
        # valid, and the stream reloads into a Tracer.
        assert len(lines) > 1000
        assert validate_jsonl_trace(lines) == []
        tracer = read_jsonl_trace(path, allow_partial=True)
        assert tracer.num_events() == len(lines) - 1  # minus the header
