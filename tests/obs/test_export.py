"""Tests for the Chrome / JSONL exporters and the schema validator."""

import json

from repro.obs.export import (
    GAP_TID_OFFSET,
    QUEUE_TID,
    chrome_trace_dict,
    chrome_trace_json,
    read_jsonl_trace,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.obs.schema import assert_valid_chrome_trace, validate_chrome_trace
from repro.obs.trace import Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    run = tracer.begin_run("partitioned rtt=500us", scheduler="partitioned")
    run.arrival(0.0, 1, 0, 0)
    run.task(1, "fft", 0.0, 30.0, 0, 0)
    run.gap(1, 30.0, 970.0, 0, 0)
    run.deadline(30.0, 1, False, 0, 0)
    other = tracer.begin_run("global-8 rtt=500us", scheduler="global")
    other.arrival(0.0, -1, 1, 0)
    other.task(4, "process", 12.0, 60.0, 1, 0, cache_penalty_us=5.0)
    return tracer


class TestChromeExport:
    def test_document_validates(self):
        document = chrome_trace_dict(make_tracer())
        assert validate_chrome_trace(document) == []

    def test_one_process_per_run(self):
        document = chrome_trace_dict(make_tracer())
        names = [
            e for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert [(e["pid"], e["args"]["name"]) for e in names] == [
            (0, "partitioned rtt=500us"),
            (1, "global-8 rtt=500us"),
        ]
        assert document["otherData"]["runs"] == [
            "partitioned rtt=500us", "global-8 rtt=500us",
        ]

    def test_track_assignment(self):
        document = chrome_trace_dict(make_tracer())
        spans = {
            (e["pid"], e["cat"]): e["tid"]
            for e in document["traceEvents"] if e["ph"] != "M"
        }
        assert spans[(0, "task")] == 1
        assert spans[(0, "gap")] == GAP_TID_OFFSET + 1  # parallel gap track
        assert spans[(1, "arrival")] == QUEUE_TID  # core == -1
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names[(0, 1)] == "core 1"
        assert thread_names[(0, GAP_TID_OFFSET + 1)] == "core 1 gaps"
        assert thread_names[(1, QUEUE_TID)] == "queue"

    def test_spans_vs_instants(self):
        document = chrome_trace_dict(make_tracer())
        by_cat = {}
        for e in document["traceEvents"]:
            if e["ph"] != "M":
                by_cat.setdefault(e["cat"], e)
        assert by_cat["task"]["ph"] == "X"
        assert by_cat["task"]["dur"] == 30.0
        assert by_cat["arrival"]["ph"] == "i"
        assert by_cat["arrival"]["s"] == "t"
        assert by_cat["deadline"]["ph"] == "i"

    def test_bs_sf_land_in_args(self):
        document = chrome_trace_dict(make_tracer())
        task = next(
            e for e in document["traceEvents"]
            if e.get("cat") == "task" and e["pid"] == 1
        )
        assert task["args"] == {"bs": 1, "sf": 0, "cache_penalty_us": 5.0}

    def test_serialization_deterministic(self):
        assert chrome_trace_json(make_tracer()) == chrome_trace_json(make_tracer())

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, make_tracer())
        document = json.loads(path.read_text())
        assert_valid_chrome_trace(document)


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        source = make_tracer()
        write_jsonl_trace(path, source)
        restored = read_jsonl_trace(path)
        assert [r.label for r in restored.runs] == [r.label for r in source.runs]
        for a, b in zip(restored.runs, source.runs):
            assert a.scheduler == b.scheduler
            assert a.meta == b.meta
            assert a.events == b.events

    def test_line_structure(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(path, make_tracer())
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["type"] == "run" and lines[0]["index"] == 0
        assert all(l["type"] in ("run", "event") for l in lines)
        assert sum(1 for l in lines if l["type"] == "run") == 2
        # Events reference the run header they follow.
        current = -1
        for l in lines:
            if l["type"] == "run":
                current = l["index"]
            else:
                assert l["run"] == current


class TestSchemaValidator:
    def test_accepts_minimal_document(self):
        assert validate_chrome_trace({"traceEvents": []}) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not an array"]

    def test_rejects_bad_phase(self):
        errors = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0}]}
        )
        assert any("phase" in e for e in errors)

    def test_rejects_negative_duration(self):
        event = {
            "name": "x", "ph": "X", "cat": "task",
            "ts": 1.0, "dur": -5.0, "pid": 0, "tid": 0,
        }
        errors = validate_chrome_trace({"traceEvents": [event]})
        assert any("dur" in e for e in errors)

    def test_rejects_unknown_category(self):
        event = {
            "name": "x", "ph": "i", "cat": "bogus",
            "ts": 1.0, "s": "t", "pid": 0, "tid": 0,
        }
        errors = validate_chrome_trace({"traceEvents": [event]})
        assert any("category" in e for e in errors)

    def test_rejects_bool_pid(self):
        event = {"name": "x", "ph": "M", "pid": True, "tid": 0}
        errors = validate_chrome_trace({"traceEvents": [event]})
        assert any("pid" in e for e in errors)

    def test_assert_raises_with_preview(self):
        import pytest

        with pytest.raises(ValueError, match="invalid Chrome trace"):
            assert_valid_chrome_trace({"traceEvents": [{}]})
