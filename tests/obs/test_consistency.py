"""Scheduler <-> trace consistency, and serial-vs-parallel trace identity.

Two cross-checks between the simulation and its timeline export:

* per-core busy time derived from the emitted busy spans equals the
  scheduler's own ``core_busy_us`` accounting to within 1e-6, per-core
  timelines never overlap, and the deadline verdict events reproduce
  ``miss_count()`` exactly;
* a fig15 run traced under ``jobs=1`` and ``jobs=2`` produces
  byte-identical trace files in both formats (the workers ship their
  events back through the pool and the parent reassembles them in
  deterministic order).
"""

import pytest

from repro.analysis import tracestats
from repro.obs.export import chrome_trace_json, write_chrome_trace, write_jsonl_trace
from repro.obs.schema import validate_chrome_trace
from repro.obs.trace import Tracer, tracing
from repro.runtime import ExperimentRunner
from repro.sched import run_scheduler

SCHEDULERS = ("partitioned", "global", "rt-opex", "pran", "cloudiq")


@pytest.fixture(scope="module")
def traced_runs(small_config, small_workload):
    """One traced run per scheduler, with its result, over the shared workload."""
    runs = {}
    tracer = Tracer()
    with tracing(tracer):
        for name in SCHEDULERS:
            result = run_scheduler(name, small_config, small_workload, seed=99)
            runs[name] = (result, tracer.runs[-1])
    return runs


class TestSchedulerTraceConsistency:
    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_busy_time_matches_reported(self, traced_runs, name):
        result, run = traced_runs[name]
        derived = tracestats.core_busy_us(run)
        assert set(derived) == set(result.core_busy_us)
        for core, busy in result.core_busy_us.items():
            assert derived[core] == pytest.approx(busy, abs=1e-6)

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_utilization_matches_reported(self, traced_runs, name):
        result, run = traced_runs[name]
        horizon = 1_000_000.0
        derived = tracestats.core_utilization(run, horizon_us=horizon)
        reported = result.utilization(horizon_us=horizon)
        assert derived.keys() == reported.keys()
        for core in reported:
            assert derived[core] == pytest.approx(reported[core], abs=1e-9)

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_no_overlapping_busy_spans(self, traced_runs, name):
        _, run = traced_runs[name]
        assert tracestats.find_overlaps(run) == []

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_deadline_events_reproduce_miss_count(self, traced_runs, name):
        result, run = traced_runs[name]
        assert tracestats.deadline_miss_count(run) == result.miss_count()
        hits, misses = tracestats.deadline_verdicts(run)
        assert hits + misses == len(result.records)  # one verdict per subframe

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_tracing_does_not_change_results(
        self, traced_runs, name, small_config, small_workload
    ):
        traced_result, _ = traced_runs[name]
        bare = run_scheduler(name, small_config, small_workload, seed=99)
        assert bare.miss_count() == traced_result.miss_count()
        assert [r.finish_us for r in bare.records] == [
            r.finish_us for r in traced_result.records
        ]
        assert bare.core_busy_us == traced_result.core_busy_us

    def test_partitioned_gap_samples_match_records(self, traced_runs):
        result, run = traced_runs["partitioned"]
        expected = sorted(r.gap_us for r in result.records if r.gap_us > 0)
        assert sorted(tracestats.gap_samples(run)) == pytest.approx(expected)

    def test_cloudiq_admission_drops_are_deadline_events(self, traced_runs):
        result, run = traced_runs["cloudiq"]
        dropped = sum(1 for r in result.records if r.drop_stage == "admission")
        traced_drops = sum(
            1 for e in run.events
            if e.kind == "deadline" and e.args.get("drop_stage") == "admission"
        )
        assert traced_drops == dropped

    def test_rtopex_migration_flows_are_complete_triples(self, traced_runs):
        _, run = traced_runs["rt-opex"]
        flows = tracestats.migration_flows(run)
        assert flows, "expected at least one migration batch at rtt=500us"
        for batch, stages in flows.items():
            # Planned always exists; executed implies the span landed on
            # the planned target; returned closes the flow.
            assert set(stages) == {"planned", "executed", "returned"}, batch
            assert stages["executed"].core in stages["planned"].args["targets"]
            assert (
                stages["planned"].ts_us
                <= stages["executed"].ts_us
                <= stages["returned"].ts_us
            )


class TestSerialParallelTraceIdentity:
    @staticmethod
    def _traced_fig15(jobs: int) -> Tracer:
        tracer = Tracer()
        with tracing(tracer):
            runner = ExperimentRunner(jobs=jobs, cache=None)
            results, _ = runner.run(["fig15"], scale=0.01, seed=11)
        assert results[0].ok, results[0].error
        return tracer

    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        return self._traced_fig15(1), self._traced_fig15(2)

    def test_chrome_files_byte_identical(self, serial_and_parallel, tmp_path):
        serial, parallel = serial_and_parallel
        assert serial.num_events() > 0
        a, b = tmp_path / "serial.json", tmp_path / "parallel.json"
        write_chrome_trace(a, serial)
        write_chrome_trace(b, parallel)
        assert a.read_bytes() == b.read_bytes()

    def test_jsonl_files_byte_identical(self, serial_and_parallel, tmp_path):
        serial, parallel = serial_and_parallel
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        write_jsonl_trace(a, serial)
        write_jsonl_trace(b, parallel)
        assert a.read_bytes() == b.read_bytes()

    def test_run_sequence_matches_serial_execution_order(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        labels = [run.label for run in serial.runs]
        # 7 RTT points x 4 scheduler runs, in sweep order.
        assert len(labels) == 28
        assert labels == [run.label for run in parallel.runs]
        assert "rtt=400" in labels[0]

    def test_trace_validates(self, serial_and_parallel):
        import json

        serial, _ = serial_and_parallel
        document = json.loads(chrome_trace_json(serial))
        assert validate_chrome_trace(document) == []
