"""Tests for the trace event vocabulary and collection layer."""

import pytest

from repro.obs.events import (
    ARRIVAL,
    BUSY_KINDS,
    DEADLINE,
    EVENT_KINDS,
    GAP,
    MIGRATION_EXECUTED,
    SPAN_KINDS,
    SUBTASK,
    TASK,
    TraceEvent,
)
from repro.obs.trace import RunTrace, Tracer, get_tracer, set_tracer, tracing


class TestTraceEvent:
    def test_end_us(self):
        event = TraceEvent(TASK, 10.0, 0, dur_us=5.0)
        assert event.end_us == 15.0

    def test_dict_round_trip(self):
        event = TraceEvent(
            MIGRATION_EXECUTED, 123.5, 3, name="decode", dur_us=40.25,
            bs_id=1, sf_index=17, args={"owner": 2, "shipped": 3, "completed": 2},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_to_dict_omits_defaults(self):
        event = TraceEvent(ARRIVAL, 1.0, -1)
        payload = event.to_dict()
        assert payload == {"kind": ARRIVAL, "ts_us": 1.0, "core": -1}

    def test_kind_sets_consistent(self):
        assert set(BUSY_KINDS) <= set(SPAN_KINDS) <= set(EVENT_KINDS)
        assert SUBTASK in SPAN_KINDS and SUBTASK not in BUSY_KINDS


class TestRunTrace:
    def test_task_span(self):
        run = RunTrace("r")
        run.task(2, "fft", 10.0, 25.0, 1, 4)
        (event,) = run.events
        assert event.kind == TASK
        assert (event.core, event.name, event.ts_us, event.dur_us) == (2, "fft", 10.0, 15.0)
        assert (event.bs_id, event.sf_index) == (1, 4)

    def test_empty_spans_skipped(self):
        run = RunTrace("r")
        run.task(0, "fft", 10.0, 10.0)
        run.subtask(0, "decode[0]", 5.0, 4.0)
        run.gap(0, 10.0, 0.0)
        assert run.events == []

    def test_deadline_verdict(self):
        run = RunTrace("r")
        run.deadline(100.0, 1, False, 0, 0)
        run.deadline(200.0, 1, True, 0, 1, drop_stage="decode")
        hit, miss = run.events
        assert (hit.name, hit.args["missed"]) == ("hit", False)
        assert (miss.name, miss.args["missed"]) == ("miss", True)
        assert miss.args["drop_stage"] == "decode"
        assert "drop_stage" not in hit.args

    def test_gap_usable_flag(self):
        run = RunTrace("r")
        run.gap(3, 50.0, 100.0, usable=False)
        assert run.events[0].kind == GAP
        assert run.events[0].args == {"usable": False}

    def test_payload_round_trip(self):
        run = RunTrace("label", scheduler="rt-opex", meta={"rtt_us": 500.0})
        run.arrival(1.0, 2, 0, 0)
        run.migration_planned(3.0, 2, "fft", 2, [4, 5], 0, 0)
        run.migration_executed(4, "fft", 5.0, 30.0, owner_core=2, shipped=2, completed=2)
        run.migration_returned(31.0, 2, "fft", completed=2, recovered=0)
        restored = RunTrace.from_payload(run.to_payload())
        assert restored.label == run.label
        assert restored.scheduler == run.scheduler
        assert restored.meta == run.meta
        assert restored.events == run.events


class TestTracer:
    def test_begin_run_appends(self):
        tracer = Tracer()
        a = tracer.begin_run("a")
        b = tracer.begin_run("b", scheduler="global")
        assert tracer.runs == [a, b]
        assert len(tracer) == 2

    def test_summary_counts_kinds_and_misses(self):
        tracer = Tracer()
        run = tracer.begin_run("r")
        run.task(0, "fft", 0.0, 10.0)
        run.deadline(10.0, 0, True, 0, 0)
        run.deadline(20.0, 0, False, 0, 1)
        summary = tracer.summary()
        assert summary["runs"] == 1
        assert summary["events"] == 3
        assert summary["deadline_misses"] == 1
        assert summary["kinds"] == {DEADLINE: 2, TASK: 1}

    def test_drain_and_ingest_round_trip(self):
        source = Tracer()
        source.begin_run("one").task(0, "fft", 0.0, 5.0)
        source.begin_run("two").arrival(1.0, -1, 0, 0)
        payload = source.drain_payload()
        assert source.runs == []  # drained
        sink = Tracer()
        sink.ingest_payload(payload)
        assert [run.label for run in sink.runs] == ["one", "two"]
        assert sink.num_events() == 2

    def test_clear(self):
        tracer = Tracer()
        tracer.begin_run("r").task(0, "fft", 0.0, 1.0)
        tracer.clear()
        assert tracer.runs == [] and tracer.num_events() == 0


class TestAmbientTracer:
    @pytest.fixture(autouse=True)
    def no_leak(self):
        yield
        set_tracer(None)

    def test_disabled_by_default(self):
        assert get_tracer() is None

    def test_tracing_context_installs_and_restores(self):
        outer = Tracer()
        inner = Tracer()
        with tracing(outer):
            assert get_tracer() is outer
            with tracing(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is None

    def test_tracing_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                raise RuntimeError("boom")
        assert get_tracer() is None

    def test_tracing_none_disables(self):
        with tracing(Tracer()):
            with tracing(None):
                assert get_tracer() is None
