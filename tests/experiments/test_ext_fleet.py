"""Structure, placement, and decomposition tests for the fleet sweep."""

import json

import pytest

from repro.experiments import get_experiment, run_experiment
from repro.experiments.ext_fleet import (
    MIN_PARTITIONED_CORES,
    parse_fleet_cells,
    parse_loads,
    parse_nodes,
    parse_placer,
    parse_schedulers,
)
from repro.runtime import ExperimentRunner
from repro.runtime.engine import outputs_match

SCALE = 0.02
SEED = 7
OPTIONS = {
    "fleet_cells": "8",
    "nodes": "6",
    "loads": "0.8",
    "schedulers": "rt-opex,global",
    "placer": "both",
}


@pytest.fixture(scope="module")
def fleet():
    return run_experiment("ext-fleet", scale=SCALE, seed=SEED, options=OPTIONS)


class TestExtFleet:
    def test_grid_covers_the_cross_product(self, fleet):
        grid = fleet.data["grid"]
        assert len(grid) == 4  # 1 node size x 1 load x 2 schedulers x 2 placers
        combos = {(g["scheduler"], g["placer"]) for g in grid}
        assert combos == {
            ("rt-opex", "greedy"),
            ("rt-opex", "opt"),
            ("global", "greedy"),
            ("global", "opt"),
        }

    def test_rollups_are_sane(self, fleet):
        for point in fleet.data["grid"]:
            assert point["node_count"] >= 1
            assert point["cores_total"] == point["node_count"] * 6
            assert 0.0 <= point["miss_rate"] <= 1.0
            assert point["subframes"] == 8 * point["num_subframes"]
            assert 0.0 <= point["util_mean"] <= 1.0 + 1e-9

    def test_every_cell_lands_on_exactly_one_node(self, fleet):
        for point in fleet.data["grid"]:
            cells = sorted(c for node in point["nodes"] for c in node["cells"])
            assert cells == list(range(8))

    def test_gap_reported_per_triple(self, fleet):
        gaps = fleet.data["gaps"]
        assert len(gaps) == 2  # one per (cores, load, scheduler) triple
        assert all(gap >= 0.0 for gap in gaps.values())

    def test_milp_never_beaten_by_greedy(self, fleet):
        by_key = {(g["scheduler"], g["placer"]): g for g in fleet.data["grid"]}
        for scheduler in ("rt-opex", "global"):
            greedy = by_key[(scheduler, "greedy")]
            opt = by_key[(scheduler, "opt")]
            assert opt["node_count"] <= greedy["node_count"]
            assert opt["solver"]["optimal"]

    def test_partitioned_core_floor(self, fleet):
        # rt-opex cells pack at >= MIN_PARTITIONED_CORES integral cores,
        # so no node hosts more than cores_per_node // 2 cells and every
        # cell gets at least two dedicated cores.
        for point in fleet.data["grid"]:
            if point["scheduler"] != "rt-opex":
                continue
            assert point["weights_integral"]
            assert point["weight_sum"] >= MIN_PARTITIONED_CORES * 8
            for node in point["nodes"]:
                assert len(node["cells"]) <= 6 // MIN_PARTITIONED_CORES

    def test_shared_queue_packs_fractionally(self, fleet):
        for point in fleet.data["grid"]:
            if point["scheduler"] == "global":
                assert not point["weights_integral"]

    def test_renders_gap_column(self, fleet):
        assert "gap vs opt" in fleet.text
        assert "rt-opex" in fleet.text


class TestDecomposition:
    def test_options_declared(self):
        assert get_experiment("ext-fleet").options == (
            "fleet_cells",
            "nodes",
            "loads",
            "schedulers",
            "placer",
        )

    def test_serial_matches_parallel_byte_for_byte(self):
        serial, _ = ExperimentRunner(jobs=1).run(
            ["ext-fleet"], scale=SCALE, seed=SEED, options=OPTIONS
        )
        parallel, _ = ExperimentRunner(jobs=2).run(
            ["ext-fleet"], scale=SCALE, seed=SEED, options=OPTIONS
        )
        assert serial[0].ok and parallel[0].ok
        a, b = serial[0].output, parallel[0].output
        assert outputs_match(a, b)
        assert a.text == b.text
        assert json.dumps(a.data, sort_keys=True) == json.dumps(b.data, sort_keys=True)

    def test_sweep_output_matches_plain_run(self, fleet):
        serial, _ = ExperimentRunner(jobs=1).run(
            ["ext-fleet"], scale=SCALE, seed=SEED, options=OPTIONS
        )
        assert serial[0].ok
        assert serial[0].output.text == fleet.text


class TestOptionParsing:
    def test_fleet_cells_floor(self):
        assert parse_fleet_cells("100") == 100
        with pytest.raises(ValueError):
            parse_fleet_cells("0")

    def test_nodes_reject_duplicates_and_zeros(self):
        assert parse_nodes("6,8") == [6, 8]
        with pytest.raises(ValueError):
            parse_nodes("6,6")
        with pytest.raises(ValueError):
            parse_nodes("0")

    def test_loads_bounded(self):
        assert parse_loads("0.8,1.0") == [0.8, 1.0]
        with pytest.raises(ValueError):
            parse_loads("2.5")

    def test_schedulers_known(self):
        assert parse_schedulers("rt-opex,global") == ["rt-opex", "global"]
        with pytest.raises(ValueError):
            parse_schedulers("bogus")

    def test_placer_expands_both(self):
        assert parse_placer("both") == ["greedy", "opt"]
        assert parse_placer("opt") == ["opt"]
        with pytest.raises(ValueError):
            parse_placer("bogus")
