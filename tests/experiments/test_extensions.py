"""Shape tests for the extension experiments (table2, pooling, HARQ, virt)."""

import pytest

from repro.experiments import run_experiment

SCALE = 0.02
SEED = 7


@pytest.fixture(scope="module")
def table2():
    return run_experiment("table2", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def pooling():
    return run_experiment("ext-pooling", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def harq():
    return run_experiment("ext-harq", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def virt():
    return run_experiment("ext-virt", scale=SCALE, seed=SEED)


class TestTable2:
    def test_all_five_schedulers_present(self, table2):
        assert set(table2.data) == {"pran", "cloudiq", "partitioned", "global", "rt-opex"}

    def test_rtopex_wins(self, table2):
        best = min(table2.data, key=lambda n: table2.data[n]["miss_rate"])
        assert best == "rt-opex"

    def test_cloudiq_most_conservative(self, table2):
        worst = max(table2.data, key=lambda n: table2.data[n]["miss_rate"])
        assert worst == "cloudiq"

    def test_qualitative_rows_render(self, table2):
        assert "Fixed/Dynamic" in table2.text
        assert "Subtask" in table2.text


class TestPooling:
    def test_savings_positive_everywhere(self, pooling):
        for row in pooling.data["rows"]:
            assert row["saving"] > 0.0

    def test_pooled_leq_peak(self, pooling):
        for row in pooling.data["rows"]:
            assert row["pooled"] <= row["peak"]

    def test_larger_fleet_pools_at_least_as_well(self, pooling):
        rows = {(r["bs"], r["quantile"]): r["saving"] for r in pooling.data["rows"]}
        assert rows[(16, 0.999)] >= rows[(4, 0.999)] - 0.05


class TestHarq:
    def test_rtopex_best_goodput(self, harq):
        goodputs = {n: d["goodput"] for n, d in harq.data.items()}
        assert goodputs["rt-opex"] >= max(goodputs.values()) - 1e-12

    def test_retx_tracks_miss_rate(self, harq):
        for d in harq.data.values():
            assert d["retx_rate"] >= d["miss_rate"] * 0.5

    def test_goodput_bounded(self, harq):
        for d in harq.data.values():
            assert 0.0 <= d["goodput"] <= 1.0


class TestVirtualization:
    def test_platform_ordering(self, virt):
        # VM worse than native for every scheduler.
        for sched in ("partitioned", "global", "rt-opex"):
            assert virt.data["vm"][sched] >= virt.data["native"][sched]

    def test_rtopex_advantage_survives_virtualization(self, virt):
        for platform in ("native", "container", "vm"):
            assert virt.data[platform]["rt-opex"] <= virt.data[platform]["partitioned"]


@pytest.fixture(scope="module")
def multiuser():
    return run_experiment("ext-multiuser", scale=SCALE, seed=SEED)


class TestMultiUser:
    def test_both_workloads_present(self, multiuser):
        assert set(multiuser.data) == {"single-user", "multi-user"}

    def test_rtopex_still_ahead_in_both(self, multiuser):
        for label in ("single-user", "multi-user"):
            assert multiuser.data[label]["rt-opex"] <= multiuser.data[label]["partitioned"]

    def test_multiuser_not_worse_for_rtopex(self, multiuser):
        # The paper's conservatism argument: finer granularity should
        # help (or at least not hurt) RT-OPEX.
        single = multiuser.data["single-user"]["rt-opex"]
        multi = multiuser.data["multi-user"]["rt-opex"]
        assert multi <= single + 2e-3
