"""Smoke and shape tests for the experiment drivers.

Each experiment runs at a tiny scale and is checked against the *shape*
criteria of DESIGN.md — not the paper's absolute numbers.
"""

import pytest

from repro.experiments import get_experiment, list_experiments, run_experiment

SCALE = 0.01
SEED = 7


@pytest.fixture(scope="module")
def outputs():
    """Run every registered experiment once at a small scale."""
    return {
        exp.experiment_id: run_experiment(exp.experiment_id, scale=SCALE, seed=SEED)
        for exp in list_experiments()
    }


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {e.experiment_id for e in list_experiments()}
        expected = {
            "table1", "fig1", "fig3", "fig4", "fig6", "fig7",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        }
        assert expected <= ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            run_experiment("table1", scale=0.0)

    def test_outputs_render(self, outputs):
        for output in outputs.values():
            assert output.text
            assert str(output).startswith("==")


class TestTable1:
    def test_coefficients_close_to_paper(self, outputs):
        w = outputs["table1"].data["w"]
        paper = outputs["table1"].data["paper_w"]
        for ours, theirs in zip(w, paper):
            assert ours == pytest.approx(theirs, rel=0.15, abs=8.0)

    def test_fit_quality(self, outputs):
        assert outputs["table1"].data["r_squared"] > 0.99


class TestFig3:
    def test_processing_time_spread(self, outputs):
        # MCS 0 -> 27 spans roughly 0.5 -> 1.4 ms at L = 2.
        by_l = outputs["fig3"].data["vs_iterations"]
        l2 = by_l[2]
        assert l2[0] == pytest.approx(500, abs=40)
        assert l2[-1] == pytest.approx(1400, abs=60)

    def test_lower_snr_is_slower(self, outputs):
        by_snr = outputs["fig3"].data["vs_snr"]
        assert sum(by_snr["10.0"]) > sum(by_snr["30.0"])

    def test_error_order_statistics(self, outputs):
        assert outputs["fig3"].data["error_p999"] < 160.0


class TestFig4:
    def test_decode_saving_near_paper(self, outputs):
        decode = outputs["fig4"].data["decode"]
        saved = decode["serial"] - decode["two_core"]
        assert saved == pytest.approx(310, abs=60)

    def test_fft_nearly_halves(self, outputs):
        fft = outputs["fig4"].data["fft"]
        assert fft["two_core"] <= 0.62 * fft["serial"]


class TestFig6:
    def test_means(self, outputs):
        for key in ("1gbe", "10gbe"):
            assert outputs["fig6"].data[key]["mean"] == pytest.approx(150, rel=0.08)


class TestFig7:
    def test_limits(self, outputs):
        limits = outputs["fig7"].data["limits"]
        assert limits["10.0"] == 8


class TestFig14:
    def test_cdfs_monotone(self, outputs):
        for cdf in outputs["fig14"].data["cdfs"]:
            assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))


class TestFig15:
    def test_rtopex_beats_partitioned_everywhere(self, outputs):
        data = outputs["fig15"].data
        for opex, part in zip(data["rt-opex"], data["partitioned"]):
            assert opex <= part

    def test_rtopex_near_zero_below_500(self, outputs):
        data = outputs["fig15"].data
        for rtt, rate in zip(data["rtt_us"], data["rt-opex"]):
            if rtt <= 500.0:
                assert rate < 2e-3

    def test_global_does_not_improve_with_cores(self, outputs):
        data = outputs["fig15"].data
        for g8, g16 in zip(data["global-8"], data["global-16"]):
            assert g16 >= g8 - 0.01

    def test_partitioned_rises_with_rtt(self, outputs):
        rates = outputs["fig15"].data["partitioned"]
        assert rates[-1] > rates[0]


class TestFig16:
    def test_gaps_shrink_with_rtt(self, outputs):
        tail = outputs["fig16"].data["gap_tail_500us"]
        assert tail[0] >= tail[-1] - 0.05

    def test_fft_migrations_persist(self, outputs):
        fracs = outputs["fig16"].data["fft_migration_fraction"]
        assert min(fracs) > 0.75

    def test_trace_derived_gap_stats_match_records(self):
        """The fig16 gap CDF now comes from the trace; it must agree with
        the scheduler records it replaced to well under 1e-6."""
        import numpy as np

        from repro.analysis.stats import tail_fraction
        from repro.analysis.tracestats import gap_cdf
        from repro.experiments.fig16_gaps import _cdf_tail_fraction
        from repro.sched import CRanConfig, build_workload, run_scheduler

        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = build_workload(cfg, 60, seed=SEED)
        part = run_scheduler("partitioned", cfg, jobs, capture_trace=("gap",))
        xs, ps = gap_cdf(part.trace_run)
        samples = np.sort(
            np.asarray([r.gap_us for r in part.records if r.gap_us > 0])
        )
        assert xs == pytest.approx(samples, abs=1e-9)
        trace_tail = _cdf_tail_fraction(xs, ps, 500.0)
        assert trace_tail == pytest.approx(
            tail_fraction(samples, 500.0), abs=1e-9
        )
        assert float(np.median(xs)) == pytest.approx(
            float(np.median(samples)), abs=1e-9
        )


class TestFig17:
    def test_rtopex_supports_higher_load(self, outputs):
        supported = outputs["fig17"].data["supported"]
        assert supported["rt-opex"] >= supported["partitioned"]

    def test_misses_concentrate_at_high_loads(self, outputs):
        # At this tiny scale only the mid-load buckets clear the
        # reporting threshold; the highest reported bucket must not
        # miss less than the lowest (full saturation shows at scale 1).
        part = outputs["fig17"].data["partitioned"]
        assert part[-1] >= part[0]


class TestFig18:
    def test_overhead_near_20us(self, outputs):
        for task in ("fft", "decode"):
            d = outputs["fig18"].data[task]
            overhead = d["migrated_median"] - d["local_median"]
            assert overhead == pytest.approx(20.0, abs=5.0)


class TestFig19:
    def test_saturation_beyond_8_cores(self, outputs):
        data = outputs["fig19"].data
        by_cores = dict(zip(data["cores"], data["miss_rates"]))
        assert by_cores[16] >= by_cores[8] - 0.01

    def test_few_cores_much_worse(self, outputs):
        data = outputs["fig19"].data
        by_cores = dict(zip(data["cores"], data["miss_rates"]))
        assert by_cores[2] > by_cores[8]

    def test_16_core_cache_penalty_higher(self, outputs):
        mcs27 = outputs["fig19"].data["high_mcs"]
        assert mcs27["16"]["mean_penalty"] >= mcs27["8"]["mean_penalty"]
