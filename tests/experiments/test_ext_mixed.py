"""Shape and options-threading tests for the mixed-service experiment."""

import pytest

from repro.experiments import get_experiment, run_experiment
from repro.runtime import ExperimentRunner

SCALE = 0.02
SEED = 7
ALL_SCHEDULERS = {"pran", "cloudiq", "partitioned", "global", "rt-opex", "das"}


@pytest.fixture(scope="module")
def mixed():
    return run_experiment("ext_mixed", scale=SCALE, seed=SEED)


class TestExtMixed:
    def test_all_six_schedulers_present(self, mixed):
        assert set(mixed.data["schedulers"]) == ALL_SCHEDULERS

    def test_per_class_rollups_complete(self, mixed):
        for row in mixed.data["schedulers"].values():
            by_class = row["by_class"]
            assert set(by_class) == {"urllc", "embb", "mmtc"}
            for stats in by_class.values():
                assert 0.0 <= stats["miss_rate"] <= 1.0
                assert stats["subframes"] > 0
                assert stats["budget_us"] > 0
                cdf = stats["lateness_cdf"]
                assert len(cdf["xs"]) == len(cdf["ps"])

    def test_class_subframes_partition_workload(self, mixed):
        for row in mixed.data["schedulers"].values():
            totals = [c["subframes"] for c in row["by_class"].values()]
            # 4 basestations x (scaled subframes // 2) each.
            assert sum(totals) % 4 == 0

    def test_budgets_follow_class_table(self, mixed):
        row = next(iter(mixed.data["schedulers"].values()))
        budgets = {c: s["budget_us"] for c, s in row["by_class"].items()}
        assert budgets["urllc"] < budgets["embb"] < budgets["mmtc"]

    def test_lateness_cdf_monotone(self, mixed):
        for row in mixed.data["schedulers"].values():
            for stats in row["by_class"].values():
                xs = stats["lateness_cdf"]["xs"]
                assert xs == sorted(xs)

    def test_delay_awareness_pays_on_urllc(self, mixed):
        # The extension's headline: on the same cores, ordering by
        # budget criticality must not lose to plain EDF on the class
        # the criticality term exists for.
        sched = mixed.data["schedulers"]
        das_urllc = sched["das"]["by_class"]["urllc"]["miss_rate"]
        glob_urllc = sched["global"]["by_class"]["urllc"]["miss_rate"]
        assert das_urllc <= glob_urllc + 0.02

    def test_renders_class_columns(self, mixed):
        assert "urllc miss" in mixed.text
        assert "per-class budgets" in mixed.text


class TestClassesOption:
    def test_declared_on_experiment(self):
        assert get_experiment("ext_mixed").options == ("classes",)

    def test_option_changes_the_mix(self):
        out = run_experiment(
            "ext_mixed", scale=SCALE, seed=SEED,
            options={"classes": "urllc:0.5,embb:0.5"},
        )
        assert out.data["classes"] == "urllc:0.5,embb:0.5"
        row = next(iter(out.data["schedulers"].values()))
        assert set(row["by_class"]) == {"urllc", "embb"}

    def test_undeclared_option_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            run_experiment(
                "fig15", scale=SCALE, seed=SEED,
                options={"classes": "embb:1.0"},
            )

    def test_parallel_matches_serial_with_options(self):
        options = {"classes": "urllc:0.4,embb:0.6"}
        serial = run_experiment(
            "ext_mixed", scale=SCALE, seed=SEED, options=options
        )
        runner = ExperimentRunner(jobs=2, cache=None)
        results, _ = runner.run(
            ["ext_mixed"], scale=SCALE, seed=SEED, options=options
        )
        assert results[0].error is None
        assert results[0].output.text == serial.text
        assert results[0].output.data == serial.data
