"""Tests for code-block segmentation (TS 36.212 sec. 5.1.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.constants import MAX_CODE_BLOCK_BITS
from repro.lte.mcs import transport_block_size
from repro.lte.segmentation import (
    TURBO_BLOCK_SIZES,
    largest_block_size_below,
    num_code_blocks,
    segment_transport_block,
    smallest_block_size_at_least,
)


class TestBlockSizeTable:
    def test_table_bounds(self):
        assert TURBO_BLOCK_SIZES[0] == 40
        assert TURBO_BLOCK_SIZES[-1] == 6144

    def test_table_has_188_sizes(self):
        # 60 + 32 + 32 + 64 entries per the four strides of Table 5.1.3-3.
        assert len(TURBO_BLOCK_SIZES) == 188

    def test_table_strictly_increasing(self):
        assert all(a < b for a, b in zip(TURBO_BLOCK_SIZES, TURBO_BLOCK_SIZES[1:]))

    def test_smallest_at_least(self):
        assert smallest_block_size_at_least(40) == 40
        assert smallest_block_size_at_least(41) == 48
        assert smallest_block_size_at_least(6144) == 6144

    def test_smallest_at_least_rejects_oversize(self):
        with pytest.raises(ValueError):
            smallest_block_size_at_least(6145)

    def test_largest_below(self):
        assert largest_block_size_below(48) == 40
        assert largest_block_size_below(6144) == 6080

    def test_largest_below_rejects_minimum(self):
        with pytest.raises(ValueError):
            largest_block_size_below(40)


class TestSegmentation:
    def test_single_block_below_z(self):
        result = segment_transport_block(1000)
        assert result.num_code_blocks == 1
        assert result.k_minus == 0
        assert result.c_plus == 1

    def test_mcs27_has_6_code_blocks(self):
        # Paper sec. 2.2: "at MCS 27, LTE utilizes 6 code-blocks".
        tbs = transport_block_size(27, 50)
        assert num_code_blocks(tbs) == 6

    def test_boundary_exactly_z(self):
        result = segment_transport_block(MAX_CODE_BLOCK_BITS - 24)
        assert result.num_code_blocks == 1

    def test_boundary_just_above_z(self):
        result = segment_transport_block(MAX_CODE_BLOCK_BITS - 24 + 1)
        assert result.num_code_blocks == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            segment_transport_block(0)

    @given(st.integers(min_value=16, max_value=200_000))
    def test_block_sizes_cover_payload(self, tbs):
        result = segment_transport_block(tbs)
        total = sum(result.block_sizes)
        assert total == result.payload_bits + result.filler_bits

    @given(st.integers(min_value=16, max_value=200_000))
    def test_filler_bits_bounded(self, tbs):
        result = segment_transport_block(tbs)
        assert 0 <= result.filler_bits < 6144

    @given(st.integers(min_value=16, max_value=200_000))
    def test_all_block_sizes_valid(self, tbs):
        result = segment_transport_block(tbs)
        for size in result.block_sizes:
            assert size in TURBO_BLOCK_SIZES

    @given(st.integers(min_value=16, max_value=200_000))
    def test_payload_accounting(self, tbs):
        result = segment_transport_block(tbs)
        crc_bits = 24  # transport block CRC
        if result.num_code_blocks > 1:
            crc_bits += result.num_code_blocks * 24
        assert result.payload_bits == tbs + crc_bits

    @given(st.integers(min_value=7000, max_value=200_000))
    def test_k_minus_adjacent_to_k_plus(self, tbs):
        result = segment_transport_block(tbs)
        if result.c_minus:
            assert result.k_minus < result.k_plus
            idx = TURBO_BLOCK_SIZES.index(result.k_plus)
            assert TURBO_BLOCK_SIZES[idx - 1] == result.k_minus

    def test_paper_tbs_values_across_mcs(self):
        # C must be non-decreasing in MCS for a fixed allocation.
        counts = [num_code_blocks(transport_block_size(m, 50)) for m in range(28)]
        assert counts == sorted(counts)
        assert counts[0] == 1
