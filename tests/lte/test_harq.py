"""Tests for HARQ retransmission accounting."""

import math

import numpy as np
import pytest

from repro.lte.harq import simulate_harq
from repro.sched import CRanConfig, SchedulerResult
from repro.sched.base import SubframeRecord


def make_result(outcomes):
    """Build a SchedulerResult from (mcs, acked) tuples."""
    records = []
    for i, (mcs, acked) in enumerate(outcomes):
        records.append(
            SubframeRecord(
                bs_id=0,
                index=i,
                mcs=mcs,
                load=0.5,
                arrival_us=500.0,
                deadline_us=2000.0,
                start_us=500.0,
                finish_us=1500.0,
                missed=not acked,
                crc_pass=True,
            )
        )
    return SchedulerResult("test", CRanConfig(), records)


class TestHarq:
    def test_all_acked_first_attempt(self):
        result = make_result([(10, True)] * 20)
        outcome = simulate_harq(result)
        assert outcome.first_attempt_acks == 20
        assert outcome.retransmissions == 0
        assert outcome.residual_bler == 0.0
        assert outcome.goodput_fraction == 1.0
        assert outcome.mean_delivery_delay_ms == pytest.approx(1.0)

    def test_missed_subframes_retransmit(self):
        result = make_result([(10, False)] * 20)
        # No further misses on retries (empty miss map) and a high SNR:
        # every block is recovered on the second attempt.
        outcome = simulate_harq(result, snr_db=30.0, miss_rate_by_mcs={10: 0.0})
        assert outcome.retransmissions == 20
        assert outcome.residual_bler == 0.0
        assert outcome.mean_delivery_delay_ms == pytest.approx(9.0)  # 1 + 8 ms

    def test_persistent_misses_become_residual_loss(self):
        result = make_result([(27, False)] * 50)
        outcome = simulate_harq(
            result, snr_db=30.0, miss_rate_by_mcs={27: 1.0}  # node stays overloaded
        )
        assert outcome.residual_bler == 1.0
        assert outcome.goodput_fraction == 0.0
        assert math.isnan(outcome.mean_delivery_delay_ms)

    def test_retry_cap_respected(self):
        result = make_result([(27, False)] * 10)
        outcome = simulate_harq(result, miss_rate_by_mcs={27: 1.0}, max_transmissions=3)
        # attempts: 1 initial + 2 retries per block.
        assert outcome.retransmissions == 20

    def test_goodput_counts_bits_not_blocks(self):
        # One big acked block outweighs several small lost ones.
        result = make_result([(27, True)] + [(0, False)] * 3)
        outcome = simulate_harq(result, miss_rate_by_mcs={0: 1.0})
        assert outcome.goodput_fraction > 0.8

    def test_invalid_max_transmissions(self):
        result = make_result([(10, True)])
        with pytest.raises(ValueError):
            simulate_harq(result, max_transmissions=0)

    def test_deterministic_with_seeded_rng(self):
        result = make_result([(20, False)] * 30)
        a = simulate_harq(result, rng=np.random.default_rng(3), miss_rate_by_mcs={20: 0.3})
        b = simulate_harq(result, rng=np.random.default_rng(3), miss_rate_by_mcs={20: 0.3})
        assert a == b

    def test_empty_result(self):
        outcome = simulate_harq(make_result([]))
        assert outcome.transport_blocks == 0
        assert outcome.residual_bler == 0.0
        assert outcome.goodput_fraction == 0.0
