"""Tests for subframe and grant dataclasses."""

import pytest

from repro.constants import RX_BUDGET_US
from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, UplinkGrant


class TestUplinkGrant:
    def test_default_grant(self):
        grant = UplinkGrant(mcs=13)
        assert grant.num_prbs == 50
        assert grant.num_antennas == 2

    def test_tbs_and_load_derived(self):
        grant = UplinkGrant(mcs=27)
        assert grant.tbs_bits == 31704
        assert grant.modulation_order == 6
        assert grant.subcarrier_load == pytest.approx(31704 / 8400)

    def test_code_blocks(self):
        assert UplinkGrant(mcs=27).code_blocks == 6
        assert UplinkGrant(mcs=0).code_blocks == 1

    def test_invalid_mcs_rejected_eagerly(self):
        with pytest.raises(ValueError):
            UplinkGrant(mcs=40)

    def test_invalid_antennas_rejected(self):
        with pytest.raises(ValueError):
            UplinkGrant(mcs=0, num_antennas=0)

    def test_invalid_prbs_rejected(self):
        with pytest.raises(ValueError):
            UplinkGrant(mcs=0, num_prbs=0)


class TestSubframe:
    def make(self, index=3, latency=500.0):
        return Subframe(
            bs_id=1,
            index=index,
            grant=UplinkGrant(mcs=10),
            transport_latency_us=latency,
            grid=GridConfig(10.0),
        )

    def test_air_time_is_subframe_boundary(self):
        assert self.make(index=7).air_time_us == 7000.0

    def test_arrival_includes_transport(self):
        sf = self.make(index=2, latency=450.0)
        assert sf.arrival_us == 2450.0

    def test_deadline_is_2ms_after_air_time(self):
        sf = self.make(index=5)
        assert sf.deadline_us == 5000.0 + RX_BUDGET_US

    def test_processing_budget_eq3(self):
        # Tmax = 2 ms - RTT/2 (Eq. (3)).
        sf = self.make(latency=600.0)
        assert sf.processing_budget_us == 1400.0

    def test_budget_plus_transport_is_rx_budget(self):
        sf = self.make(latency=432.0)
        assert sf.processing_budget_us + sf.transport_latency_us == RX_BUDGET_US

    def test_key_identity(self):
        assert self.make(index=9).key() == (1, 9)

    def test_deadline_after_arrival_for_valid_latency(self):
        sf = self.make(latency=700.0)
        assert sf.deadline_us > sf.arrival_us
