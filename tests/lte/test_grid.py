"""Tests for the resource-grid geometry."""

import pytest

from repro.lte.grid import GridConfig


class TestGridConfig:
    def test_10mhz_has_50_prbs(self):
        assert GridConfig(10.0).num_prbs == 50

    def test_10mhz_resource_elements_match_paper(self):
        # The paper quotes 8400 REs for a 10 MHz subframe.
        assert GridConfig(10.0).resource_elements == 8400

    def test_10mhz_samples_per_subframe(self):
        # 15.36 Msps x 1 ms = 15360 complex samples (paper sec. 4.2).
        assert GridConfig(10.0).samples_per_subframe == 15360

    def test_all_standard_bandwidths_construct(self):
        for bw in (1.4, 3.0, 5.0, 10.0, 15.0, 20.0):
            grid = GridConfig(bw)
            assert grid.num_prbs > 0
            assert grid.fft_size > grid.num_subcarriers

    def test_unsupported_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            GridConfig(7.0)

    def test_subcarriers_are_12_per_prb(self):
        grid = GridConfig(5.0)
        assert grid.num_subcarriers == grid.num_prbs * 12

    def test_resource_elements_for_partial_allocation(self):
        grid = GridConfig(10.0)
        assert grid.resource_elements_for(25) == 25 * 168
        assert grid.resource_elements_for(grid.num_prbs) == grid.resource_elements

    def test_resource_elements_for_rejects_out_of_range(self):
        grid = GridConfig(10.0)
        with pytest.raises(ValueError):
            grid.resource_elements_for(0)
        with pytest.raises(ValueError):
            grid.resource_elements_for(51)

    def test_subframe_bytes_scales_with_antennas(self):
        grid = GridConfig(10.0)
        one = grid.subframe_bytes(1)
        assert one == 15360 * 4
        assert grid.subframe_bytes(4) == 4 * one

    def test_subframe_bytes_rejects_zero_antennas(self):
        with pytest.raises(ValueError):
            GridConfig(10.0).subframe_bytes(0)

    def test_samples_per_symbol_partition(self):
        grid = GridConfig(10.0)
        assert grid.samples_per_symbol * 14 <= grid.samples_per_subframe

    def test_frozen(self):
        grid = GridConfig(10.0)
        with pytest.raises(Exception):
            grid.bandwidth_mhz = 5.0

    def test_sample_rate_scales_with_bandwidth(self):
        assert GridConfig(20.0).sample_rate_msps == 2 * GridConfig(10.0).sample_rate_msps
