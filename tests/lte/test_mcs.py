"""Tests for MCS / TBS tables and the subcarrier-load metric."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.mcs import (
    MCS_TABLE,
    max_mcs,
    mcs_entry,
    mcs_for_throughput,
    modulation_order,
    subcarrier_load,
    throughput_mbps,
    transport_block_size,
)


class TestMcsTable:
    def test_table_covers_mcs_0_to_28(self):
        assert len(MCS_TABLE) == 29

    def test_modulation_order_bands(self):
        # TS 36.213 Table 8.6.1-1: QPSK to 10, 16QAM to 20, 64QAM beyond.
        assert all(modulation_order(m) == 2 for m in range(0, 11))
        assert all(modulation_order(m) == 4 for m in range(11, 21))
        assert all(modulation_order(m) == 6 for m in range(21, 28))

    def test_tbs_index_monotone(self):
        indices = [mcs_entry(m).tbs_index for m in range(29)]
        assert indices == sorted(indices)

    def test_modulation_names(self):
        assert mcs_entry(0).modulation_name == "QPSK"
        assert mcs_entry(15).modulation_name == "16QAM"
        assert mcs_entry(27).modulation_name == "64QAM"

    def test_invalid_mcs_rejected(self):
        with pytest.raises(ValueError):
            mcs_entry(-1)
        with pytest.raises(ValueError):
            mcs_entry(29)

    def test_max_mcs_is_27(self):
        # The paper sweeps MCS 0-27.
        assert max_mcs() == 27


class TestTransportBlockSize:
    def test_mcs0_50prb_anchor(self):
        # ~1.3 Mbps nominal at MCS 0 (paper sec. 4.2).
        assert transport_block_size(0, 50) == 1384

    def test_mcs27_50prb_anchor(self):
        # 31.7 Mbps peak at MCS 27 (paper sec. 4.2).
        assert transport_block_size(27, 50) == 31704

    def test_monotone_in_mcs(self):
        sizes = [transport_block_size(m, 50) for m in range(28)]
        assert sizes == sorted(sizes)

    @given(st.integers(min_value=0, max_value=27), st.integers(min_value=1, max_value=110))
    def test_monotone_in_prbs(self, mcs, nprb):
        assert transport_block_size(mcs, nprb + 1) >= transport_block_size(mcs, nprb)

    @given(st.integers(min_value=0, max_value=27), st.integers(min_value=1, max_value=110))
    def test_tbs_positive_and_byte_aligned(self, mcs, nprb):
        tbs = transport_block_size(mcs, nprb)
        assert tbs >= 16
        assert tbs % 8 == 0

    def test_rejects_zero_prbs(self):
        with pytest.raises(ValueError):
            transport_block_size(5, 0)


class TestSubcarrierLoad:
    def test_load_range_matches_paper(self):
        # Paper: D spans 0.16 to 3.7 bits/RE for 10 MHz.
        assert subcarrier_load(0, 50) == pytest.approx(0.165, abs=0.01)
        assert subcarrier_load(27, 50) == pytest.approx(3.77, abs=0.05)

    def test_load_below_theoretical_limit(self):
        # 64-QAM carries at most 6 bits per RE.
        for mcs in range(28):
            assert subcarrier_load(mcs, 50) < 6.0

    def test_load_roughly_prb_invariant(self):
        # D is per-RE, so it should barely move with the allocation size.
        for mcs in (0, 13, 27):
            d50 = subcarrier_load(mcs, 50)
            d25 = subcarrier_load(mcs, 25)
            assert d25 == pytest.approx(d50, rel=0.02)


class TestThroughput:
    def test_peak_rate(self):
        assert throughput_mbps(27, 50) == pytest.approx(31.7, abs=0.1)

    def test_mcs_for_throughput_inverts(self):
        for mcs in (0, 5, 13, 20, 27):
            target = throughput_mbps(mcs, 50)
            assert mcs_for_throughput(target, 50) <= mcs

    def test_mcs_for_throughput_saturates(self):
        assert mcs_for_throughput(1000.0, 50) == 27

    def test_mcs_for_zero_load(self):
        assert mcs_for_throughput(0.0, 50) == 0

    @given(st.floats(min_value=0.0, max_value=35.0, allow_nan=False))
    def test_mcs_for_throughput_covers_target(self, target):
        mcs = mcs_for_throughput(target, 50)
        if mcs < 27:
            assert throughput_mbps(mcs, 50) >= target
