"""Tests for the named RNG streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(7).stream("noise").random(10)
        b = RngStreams(7).stream("noise").random(10)
        assert (a == b).all()

    def test_different_names_independent(self):
        streams = RngStreams(7)
        a = streams.stream("a").random(10)
        b = streams.stream("b").random(10)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(10)
        b = RngStreams(2).stream("x").random(10)
        assert not (a == b).all()

    def test_getitem_alias(self):
        streams = RngStreams(3)
        assert streams["y"] is streams.stream("y")

    def test_consumption_isolation(self):
        # Draining one stream must not perturb another.
        ref = RngStreams(5).stream("b").random(5)
        streams = RngStreams(5)
        streams.stream("a").random(10_000)
        assert (streams.stream("b").random(5) == ref).all()

    def test_fork_changes_streams(self):
        base = RngStreams(11)
        fork = base.fork(0)
        assert fork.seed != base.seed
        a = base.stream("z").random(5)
        b = fork.stream("z").random(5)
        assert not (a == b).all()

    def test_fork_deterministic(self):
        assert RngStreams(11).fork(3).seed == RngStreams(11).fork(3).seed
