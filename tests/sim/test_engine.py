"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(30.0, lambda: log.append("c"))
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(20.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(15.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0, 15.0]

    def test_ties_broken_by_priority_then_seq(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("late"), priority=5)
        sim.schedule(10.0, lambda: log.append("early"), priority=0)
        sim.schedule(10.0, lambda: log.append("early2"), priority=0)
        sim.run()
        assert log == ["early", "early2", "late"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: sim.schedule(5.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_in_relative(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: sim.schedule_in(5.0, lambda: log.append(sim.now)))
        sim.run()
        assert log == [15.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(10.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(100.0, lambda: log.append("b"))
        sim.run(until=50.0)
        assert log == ["a"]
        assert sim.now == 50.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 5:
                sim.schedule_in(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        e1.cancel()
        assert sim.pending() == 1

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def bad():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, bad)
        sim.run()
        assert len(errors) == 1

    def test_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(100):
                sim.schedule((i * 7) % 13, lambda i=i: log.append(i))
            sim.run()
            return log

        assert run_once() == run_once()


class TestHeapCompaction:
    def test_cancelled_events_do_not_accumulate(self):
        # Regression: cancelled entries used to sit in the heap until
        # popped, so a workload that schedules and cancels N timeouts
        # grew the heap to N.  With lazy compaction the heap stays
        # bounded by the live population (x2 plus the purge floor).
        sim = Simulator()
        keep = sim.schedule(1e9, lambda: None)
        for i in range(10_000):
            event = sim.schedule(1000.0 + i, lambda: None)
            event.cancel()
        assert sim.pending() == 1
        assert len(sim._queue) <= 2 * sim.pending() + 16
        keep.cancel()

    def test_purge_preserves_execution_order(self):
        sim = Simulator()
        log = []
        events = [
            sim.schedule(float(i), lambda i=i: log.append(i)) for i in range(100)
        ]
        for i, event in enumerate(events):
            if i % 3:
                event.cancel()
        sim.run()
        assert log == [i for i in range(100) if not i % 3]

    def test_pending_is_live_counter(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
        assert sim.pending() == 50
        for event in events[:30]:
            event.cancel()
        assert sim.pending() == 20
        sim.run()
        assert sim.pending() == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1

    def test_cancel_after_execution_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # already popped: must not corrupt the counters
        assert sim.pending() == 0
        assert sim.stats()["cancelled_pending"] == 0

    def test_stats_counters(self):
        sim = Simulator()
        done = sim.schedule(1.0, lambda: None)
        dead = sim.schedule(2.0, lambda: None)
        dead.cancel()
        sim.run()
        stats = sim.stats()
        assert stats["executed"] == 1
        assert stats["live"] == 0
        assert stats["heap_size"] == 0
        assert stats["max_heap_size"] == 2
        assert done.cancelled is False

    def test_purge_counted_in_stats(self):
        # Cancel older (non-tail) entries so dead ones accumulate in the
        # heap and compaction has to fire.
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for event in events[:90]:
            event.cancel()
        assert sim.stats()["purges"] >= 1
        assert sim.stats()["heap_size"] <= 2 * sim.pending() + 16

    def test_tail_cancel_pops_immediately(self):
        # schedule-then-cancel of the newest event is removed outright:
        # no dead entry lingers and no compaction is ever needed.
        sim = Simulator()
        for i in range(100):
            sim.schedule(float(i + 1), lambda: None).cancel()
        assert sim.stats()["heap_size"] == 0
        assert sim.stats()["cancelled_pending"] == 0
        assert sim.stats()["purges"] == 0


class TestBatchDrainEdgeCases:
    def test_purge_deferred_during_batch_drain(self):
        # A callback inside a tie-group cancels enough future (non-tail)
        # entries to trip the compaction threshold.  The purge must be
        # deferred past the draining group — compacting the heap out
        # from under the drain loop — and still happen afterwards.
        sim = Simulator()
        log = []
        future = [sim.schedule(100.0 + i, lambda: None) for i in range(60)]
        sim.schedule(200.0, lambda: log.append("survivor"))

        def cancel_many():
            log.append("canceller")
            for event in future:
                event.cancel()

        sim.schedule(10.0, cancel_many)
        sim.schedule(10.0, lambda: log.append("peer"))
        sim.run()
        assert log == ["canceller", "peer", "survivor"]
        stats = sim.stats()
        assert stats["purges"] >= 1
        assert stats["cancelled_pending"] == 0
        assert stats["heap_size"] == 0

    def test_cancel_within_draining_tie_group(self):
        # The first member of a tie-group cancels a later member that
        # has already been popped into the batch: it must be skipped,
        # and the live counter must stay exact.
        sim = Simulator()
        log = []
        handles = {}

        def first():
            log.append("a")
            handles["c"].cancel()

        sim.schedule(10.0, first)
        sim.schedule(10.0, lambda: log.append("b"))
        handles["c"] = sim.schedule(10.0, lambda: log.append("c"))
        sim.schedule(10.0, lambda: log.append("d"))
        sim.run()
        assert log == ["a", "b", "d"]
        assert sim.pending() == 0
        assert sim.stats()["executed"] == 3

    def test_cancel_next_batch_member(self):
        # Cancelling the immediately-next member mid-drain is the
        # tightest case: no other event sits between canceller and
        # victim.
        sim = Simulator()
        log = []
        handles = {}
        sim.schedule(10.0, lambda: handles["b"].cancel())
        handles["b"] = sim.schedule(10.0, lambda: log.append("b"))
        sim.schedule(10.0, lambda: log.append("c"))
        sim.run()
        assert log == ["c"]

    def test_until_landing_on_tie_group_runs_whole_group(self):
        # run(until=T) with a tie-group exactly at T: the whole group
        # executes (the horizon check is strict), including same-instant
        # work the group's callbacks schedule, and now stops at T.
        sim = Simulator()
        log = []

        def spawn_same_instant():
            log.append("first")
            sim.schedule(10.0, lambda: log.append("spawned"))

        sim.schedule(10.0, spawn_same_instant)
        sim.schedule(10.0, lambda: log.append("second"))
        sim.schedule(20.0, lambda: log.append("later"))
        sim.run(until=10.0)
        # "spawned" carries a later seq than "second", so key order puts
        # it last within the instant — but still inside this run().
        assert log == ["first", "second", "spawned"]
        assert sim.now == 10.0
        sim.run()
        assert log == ["first", "second", "spawned", "later"]

    def test_until_just_below_tie_group_leaves_it_queued(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(10.0, lambda: log.append("b"))
        sim.run(until=10.0 - 1e-6)
        assert log == []
        assert sim.now == 10.0 - 1e-6
        assert sim.pending() == 2
        sim.run()
        assert log == ["a", "b"]

    def test_exception_mid_group_repatriates_tail(self):
        # A raising callback mid-group must return the unexecuted tail
        # to the heap so a later run() still sees it.
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("ok"))

        def boom():
            raise RuntimeError("boom")

        sim.schedule(10.0, boom)
        sim.schedule(10.0, lambda: log.append("tail"))
        with pytest.raises(RuntimeError):
            sim.run()
        assert log == ["ok"]
        assert sim.pending() == 1
        sim.run()
        assert log == ["ok", "tail"]


class TestPastScheduleTolerance:
    def test_tolerance_scales_with_now(self):
        # At now ~ 1e9 us (a ~17 min simulated horizon) one float ulp is
        # ~1.2e-7 — far beyond the old absolute 1e-9 guard.  Scheduling
        # "now minus a few ulps" must be accepted as same-instant.
        sim = Simulator()
        log = []
        base = 1e9

        def at_base():
            earlier = sim.now - sim.now * 1e-13  # a few ulps back
            assert earlier < sim.now
            sim.schedule(earlier, lambda: log.append(sim.now))

        sim.schedule(base, at_base)
        sim.run()
        assert log == [base]  # clamped to now, not rejected

    def test_genuine_past_still_rejected_at_long_horizon(self):
        sim = Simulator()
        sim.schedule(1e9, lambda: sim.schedule(1e9 - 1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_long_horizon_chain_deterministic(self):
        # A subframe-style periodic chain deep into a long horizon: every
        # step also schedules a same-instant event computed by a float
        # detour ((now + step) - step lands a few ulps off now).  The
        # old absolute guard rejected these past ~1e7 us; the relative
        # guard must keep the chain alive and fully deterministic.
        def run_once():
            sim = Simulator()
            counts = [0, 0]
            step = 1000.0 / 3.0  # not representable: rounding accumulates

            def tick():
                counts[0] += 1
                if counts[0] < 2000:
                    same_instant = (sim.now + step) - step
                    sim.schedule(same_instant, lambda: counts.__setitem__(1, counts[1] + 1))
                    sim.schedule(sim.now + step, tick)

            sim.schedule(1e9, tick)  # start ~17 simulated minutes in
            sim.run()
            return tuple(counts)

        first = run_once()
        assert first == (2000, 1999)
        assert run_once() == first
