"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(30.0, lambda: log.append("c"))
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(20.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(15.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0, 15.0]

    def test_ties_broken_by_priority_then_seq(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("late"), priority=5)
        sim.schedule(10.0, lambda: log.append("early"), priority=0)
        sim.schedule(10.0, lambda: log.append("early2"), priority=0)
        sim.run()
        assert log == ["early", "early2", "late"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: sim.schedule(5.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_schedule_in_relative(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: sim.schedule_in(5.0, lambda: log.append(sim.now)))
        sim.run()
        assert log == [15.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        event = sim.schedule(10.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []

    def test_run_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, lambda: log.append("a"))
        sim.schedule(100.0, lambda: log.append("b"))
        sim.run(until=50.0)
        assert log == ["a"]
        assert sim.now == 50.0
        sim.run()
        assert log == ["a", "b"]

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 5:
                sim.schedule_in(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert log == [0, 1, 2, 3, 4, 5]
        assert sim.now == 5.0

    def test_pending_counts_live_events(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        e1.cancel()
        assert sim.pending() == 1

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def bad():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, bad)
        sim.run()
        assert len(errors) == 1

    def test_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            log = []
            for i in range(100):
                sim.schedule((i * 7) % 13, lambda i=i: log.append(i))
            sim.run()
            return log

        assert run_once() == run_once()
