"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.runtime.cache import ResultCache, code_fingerprint, default_cache_dir


@pytest.fixture
def cache(tmp_path):
    """Isolated per-test cache (keeps pytest parallel-safe)."""
    return ResultCache(tmp_path / "cache", fingerprint="test-fp")


class TestKeys:
    def test_key_is_stable(self, cache):
        a = cache.key("fig15", "rtt=500", 0.2, 2016, {"rtt_us": 500.0})
        b = cache.key("fig15", "rtt=500", 0.2, 2016, {"rtt_us": 500.0})
        assert a == b

    def test_key_varies_with_identity(self, cache):
        base = cache.key("fig15", "rtt=500", 0.2, 2016)
        assert cache.key("fig17", "rtt=500", 0.2, 2016) != base
        assert cache.key("fig15", "rtt=550", 0.2, 2016) != base
        assert cache.key("fig15", "rtt=500", 0.3, 2016) != base
        assert cache.key("fig15", "rtt=500", 0.2, 7) != base
        assert cache.key("fig15", "rtt=500", 0.2, 2016, {"x": 1}) != base

    def test_key_varies_with_fingerprint(self, tmp_path):
        a = ResultCache(tmp_path, fingerprint="v1").key("fig15", "k", 0.2, 2016)
        b = ResultCache(tmp_path, fingerprint="v2").key("fig15", "k", 0.2, 2016)
        assert a != b

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestStore:
    def test_round_trip(self, cache):
        key = cache.key("fig15", "rtt=500", 0.2, 2016)
        assert cache.get(key) is None
        cache.put(key, {"data": {"miss_rate": 0.25}, "events": 100})
        assert cache.get(key) == {"data": {"miss_rate": 0.25}, "events": 100}
        assert cache.hits == 1 and cache.misses == 1

    def test_numpy_payloads_serialize(self, cache):
        import numpy as np

        key = cache.key("x", "y", 1.0, 1)
        cache.put(key, {"data": {"arr": np.arange(3), "f": np.float64(1.5)}})
        assert cache.get(key) == {"data": {"arr": [0, 1, 2], "f": 1.5}}

    def test_corrupt_entry_is_a_miss(self, cache):
        key = cache.key("fig15", "rtt=500", 0.2, 2016)
        cache.put(key, {"events": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_entries_sharded_under_root(self, cache):
        key = cache.key("a", "b", 1.0, 0)
        cache.put(key, {"events": 0})
        path = cache._path(key)
        assert path.parent.name == key[:2]
        assert json.loads(path.read_text()) == {"events": 0}
        assert cache.entry_count() == 1


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("RTOPEX_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("RTOPEX_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "rtopex-repro"
