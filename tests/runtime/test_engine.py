"""Tests for the parallel experiment runner.

Synthetic experiments (registered per-test, removed on teardown) keep
the pool/caching tests fast; the serial-vs-parallel determinism
contract is additionally checked on the real fig15 driver.  Every test
uses an isolated tmp cache dir so the suite stays parallel-safe.
"""

import json
import os

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    WorkUnit,
    _REGISTRY,
    attach_sweep,
    derive_unit_seed,
    register,
)
from repro.runtime import ExperimentRunner, ResultCache, outputs_match


@pytest.fixture
def scratch_registry():
    """Allow test-local experiment registration with guaranteed cleanup."""
    before = set(_REGISTRY)
    yield
    for experiment_id in set(_REGISTRY) - before:
        del _REGISTRY[experiment_id]


def _register_plain(experiment_id, marker="ok"):
    @register(experiment_id, f"synthetic {experiment_id}")
    def _run(scale, seed):
        return ExperimentOutput(
            experiment_id=experiment_id,
            title=f"synthetic {experiment_id}",
            text=f"{marker} scale={scale} seed={seed}",
            data={"marker": marker, "seed": seed},
        )


def _register_failing(experiment_id):
    @register(experiment_id, f"failing {experiment_id}")
    def _run(scale, seed):
        raise RuntimeError("driver exploded")


def _register_sweep(experiment_id, touch_dir=None):
    """A 3-point sweep; each unit optionally touches a file (visible
    across fork boundaries) so tests can count real executions."""

    @register(experiment_id, f"sweep {experiment_id}")
    def _run(scale, seed):
        results = [_run_unit(u) for u in _units(scale, seed)]
        return _combine(results, scale, seed)

    def _units(scale, seed):
        return [
            WorkUnit(experiment_id, f"point={i}", {"point": i, "scale": scale}, seed)
            for i in range(3)
        ]

    def _run_unit(unit):
        point = unit.params["point"]
        if touch_dir is not None:
            (touch_dir / f"{unit.experiment_id}-{point}-{os.getpid()}").touch()
        return {"data": {"value": point * 10 + unit.seed}, "events": 5}

    def _combine(results, scale, seed):
        values = [r["data"]["value"] for r in results]
        return ExperimentOutput(
            experiment_id=experiment_id,
            title=f"sweep {experiment_id}",
            text=" ".join(str(v) for v in values),
            data={"values": values},
        )

    attach_sweep(experiment_id, SweepSpec(_units, _run_unit, _combine))


class TestSerialRunner:
    def test_matches_run_experiment(self, scratch_registry):
        _register_plain("_t-plain")
        results, report = ExperimentRunner(jobs=1).run(["_t-plain"], 0.5, 3)
        assert results[0].ok
        assert outputs_match(results[0].output, run_experiment("_t-plain", 0.5, 3))
        assert not report.failures
        assert len(report.units) == 1 and report.units[0].unit_key == "__whole__"

    def test_failure_contained(self, scratch_registry):
        _register_plain("_t-good")
        _register_failing("_t-bad")
        results, report = ExperimentRunner(jobs=1).run(["_t-bad", "_t-good"], 1.0, 1)
        assert not results[0].ok and "driver exploded" in results[0].error
        assert results[1].ok
        assert set(report.failures) == {"_t-bad"}

    def test_unknown_id_raises_upfront(self):
        with pytest.raises(KeyError):
            ExperimentRunner(jobs=1).run(["_no-such-experiment"], 1.0, 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=1).run(["fig7"], scale=0.0)


class TestParallelRunner:
    def test_sweep_decomposes_and_matches_serial(self, scratch_registry):
        _register_sweep("_t-sweep")
        serial = run_experiment("_t-sweep", 1.0, 4)
        results, report = ExperimentRunner(jobs=2).run(["_t-sweep"], 1.0, 4)
        assert outputs_match(results[0].output, serial)
        # telemetry arrives in completion order; one stat per sweep point
        assert sorted(u.unit_key for u in report.units) == [
            "point=0", "point=1", "point=2",
        ]
        assert report.events_processed() == 15

    def test_mixed_batch_with_failure(self, scratch_registry):
        _register_plain("_t-good")
        _register_failing("_t-bad")
        _register_sweep("_t-sweep")
        ids = ["_t-good", "_t-bad", "_t-sweep"]
        results, report = ExperimentRunner(jobs=2).run(ids, 1.0, 1)
        assert [r.experiment_id for r in results] == ids  # ids order kept
        assert results[0].ok and results[2].ok and not results[1].ok
        assert set(report.failures) == {"_t-bad"}

    def test_on_result_fires_per_experiment(self, scratch_registry):
        _register_plain("_t-a")
        _register_plain("_t-b")
        seen = []
        ExperimentRunner(jobs=2).run(
            ["_t-a", "_t-b"], 1.0, 1, on_result=lambda r: seen.append(r.experiment_id)
        )
        assert sorted(seen) == ["_t-a", "_t-b"]

    def test_fig15_parallel_identical_to_serial(self):
        """The headline determinism contract, on the real driver."""
        serial = run_experiment("fig15", scale=0.01, seed=7)
        results, report = ExperimentRunner(jobs=2).run(["fig15"], scale=0.01, seed=7)
        assert results[0].output.data == serial.data
        assert outputs_match(results[0].output, serial)
        assert len(report.units) == 7  # one per RTT/2 point


class TestCaching:
    def test_warm_rerun_executes_nothing(self, scratch_registry, tmp_path):
        touch_dir = tmp_path / "touch"
        touch_dir.mkdir()
        _register_sweep("_t-sweep", touch_dir=touch_dir)
        _register_plain("_t-plain")
        cache = ResultCache(tmp_path / "cache", fingerprint="fp")
        runner = ExperimentRunner(jobs=2, cache=cache)

        cold, cold_report = runner.run(["_t-sweep", "_t-plain"], 1.0, 9)
        executions = len(list(touch_dir.iterdir()))
        assert executions == 3
        assert cold_report.cache_hits == 0

        warm, warm_report = runner.run(["_t-sweep", "_t-plain"], 1.0, 9)
        assert len(list(touch_dir.iterdir())) == executions  # nothing re-ran
        assert all(r.cached for r in warm)
        assert warm_report.cache_hits == 2  # both whole-experiment entries
        assert all(r.ok for r in warm)
        for before, after in zip(cold, warm):
            assert before.output.data == after.output.data

    def test_unit_cache_serves_partial_sweeps(self, scratch_registry, tmp_path):
        touch_dir = tmp_path / "touch"
        touch_dir.mkdir()
        _register_sweep("_t-sweep", touch_dir=touch_dir)
        cache = ResultCache(tmp_path / "cache", fingerprint="fp")
        runner = ExperimentRunner(jobs=2, cache=cache)
        runner.run(["_t-sweep"], 1.0, 9)

        # Drop the whole-experiment entry; unit entries must still serve.
        whole = cache._path(cache.key("_t-sweep", "__whole__", 1.0, 9))
        whole.unlink()
        results, report = runner.run(["_t-sweep"], 1.0, 9)
        assert results[0].ok and results[0].cached
        assert len(list(touch_dir.iterdir())) == 3  # no new executions
        assert all(u.cached for u in report.units)

    def test_fingerprint_invalidates(self, scratch_registry, tmp_path):
        _register_plain("_t-plain")
        root = tmp_path / "cache"
        ExperimentRunner(jobs=1, cache=ResultCache(root, fingerprint="v1")).run(
            ["_t-plain"], 1.0, 9
        )
        results, report = ExperimentRunner(
            jobs=1, cache=ResultCache(root, fingerprint="v2")
        ).run(["_t-plain"], 1.0, 9)
        assert not results[0].cached
        assert report.cache_hits == 0

    def test_failures_are_not_cached(self, scratch_registry, tmp_path):
        _register_failing("_t-bad")
        cache = ResultCache(tmp_path / "cache", fingerprint="fp")
        runner = ExperimentRunner(jobs=1, cache=cache)
        runner.run(["_t-bad"], 1.0, 1)
        assert cache.entry_count() == 0


class TestTelemetry:
    def test_report_json_round_trips(self, scratch_registry, tmp_path):
        _register_sweep("_t-sweep")
        _, report = ExperimentRunner(jobs=2).run(["_t-sweep"], 1.0, 2)
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["jobs"] == 2
        assert payload["events_processed"] == 15
        assert len(payload["units"]) == 3
        assert payload["failures"] == {}

    def test_summary_text_mentions_failures(self, scratch_registry):
        _register_failing("_t-bad")
        _, report = ExperimentRunner(jobs=1).run(["_t-bad"], 1.0, 1)
        assert "_t-bad" in report.summary_text()


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        a = derive_unit_seed(2016, "fig15", "rtt=500")
        assert a == derive_unit_seed(2016, "fig15", "rtt=500")
        assert a != derive_unit_seed(2016, "fig15", "rtt=550")
        assert a != derive_unit_seed(2017, "fig15", "rtt=500")
        assert a != derive_unit_seed(2016, "fig17", "rtt=500")
        assert 0 <= a < 2**32
