"""Tests for the ASCII report renderer."""

import numpy as np
import pytest

from repro.analysis.report import Table, format_series, render_cdf, render_histogram


class TestTable:
    def test_renders_headers_and_rows(self):
        table = Table(["a", "b"])
        table.add_row([1, 2.5])
        text = table.render()
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_title(self):
        table = Table(["x"], title="My Table")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My Table"

    def test_column_count_enforced(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_small_floats_scientific(self):
        table = Table(["v"])
        table.add_row([1.6e-4])
        assert "1.60e-04" in table.render()

    def test_nan_rendered_as_dash(self):
        table = Table(["v"])
        table.add_row([float("nan")])
        assert "-" in table.render().splitlines()[-1]

    def test_zero(self):
        table = Table(["v"])
        table.add_row([0.0])
        assert table.rows[0][0] == "0"

    def test_str_equals_render(self):
        table = Table(["v"])
        table.add_row([3])
        assert str(table) == table.render()

    def test_alignment_uniform_width(self):
        table = Table(["name", "value"])
        table.add_row(["short", 1])
        table.add_row(["a-much-longer-name", 2])
        lines = table.render().splitlines()
        assert len({len(l) for l in lines[:1] + lines[2:]}) == 1


class TestSeriesAndCdf:
    def test_format_series(self):
        text = format_series([1, 2], [0.1, 0.2], "x", "y")
        assert "0.1" in text and "0.2" in text

    def test_render_cdf_reaches_one(self):
        text = render_cdf(np.arange(100, dtype=float), "latency")
        assert text.splitlines()[-1].strip().endswith("1")

    def test_render_cdf_empty(self):
        assert "no samples" in render_cdf(np.array([]), "x")

    def test_render_cdf_custom_points(self):
        text = render_cdf(np.array([1.0, 2.0]), "v", points=np.array([1.5]))
        assert "0.5" in text

    def test_histogram_bar_lengths(self):
        samples = np.concatenate([np.zeros(90), np.ones(10)])
        text = render_histogram(samples, "h", bins=2)
        lines = text.splitlines()[1:]
        assert lines[0].count("#") > lines[1].count("#")

    def test_histogram_empty(self):
        assert "no samples" in render_histogram(np.array([]), "h")
