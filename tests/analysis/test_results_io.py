"""Tests for scheduler-result CSV export/import."""

import math

import pytest

from repro.analysis.results_io import load_result_csv, save_result_csv
from repro.sched import run_scheduler


@pytest.fixture(scope="module")
def result(small_config, small_workload):
    return run_scheduler("rt-opex", small_config, small_workload)


class TestResultsIo:
    def test_round_trip_counts(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert len(loaded.records) == len(result.records)
        assert loaded.scheduler_name == result.scheduler_name

    def test_round_trip_metrics(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert loaded.miss_rate() == pytest.approx(result.miss_rate())
        assert loaded.ack_rate() == pytest.approx(result.ack_rate())
        assert loaded.miss_rate_by_mcs() == result.miss_rate_by_mcs()

    def test_round_trip_fields(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        for original, reloaded in zip(result.records, loaded.records):
            assert (original.bs_id, original.index) == (reloaded.bs_id, reloaded.index)
            assert original.iterations == reloaded.iterations
            assert original.missed == reloaded.missed
            if math.isnan(original.gap_us):
                assert math.isnan(reloaded.gap_us)
            else:
                assert original.gap_us == pytest.approx(reloaded.gap_us, abs=1e-3)

    def test_config_rtt_preserved(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert loaded.config.transport_latency_us == result.config.transport_latency_us

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_result_csv(path)

    def test_rejects_wrong_columns(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("# scheduler,x,rtt_us,500.0\na,b\n")
        with pytest.raises(ValueError):
            load_result_csv(path)
