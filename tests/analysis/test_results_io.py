"""Tests for scheduler-result CSV export/import."""

import csv
import math

import pytest

from repro.analysis.results_io import _COLUMNS, load_result_csv, save_result_csv
from repro.sched import CRanConfig, build_workload, run_scheduler


@pytest.fixture(scope="module")
def result(small_config, small_workload):
    return run_scheduler("rt-opex", small_config, small_workload)


@pytest.fixture(scope="module")
def custom_result():
    """An rt-opex run with every config field off its default."""
    config = CRanConfig(
        num_basestations=2,
        cores_per_bs=3,
        num_antennas=4,
        transport_latency_us=620.0,
        snr_db=20.0,
        max_iterations=6,
        drop_on_slack_check=False,
    )
    jobs = build_workload(config, 150, seed=11)
    return run_scheduler("rt-opex", config, jobs, seed=11)


class TestResultsIo:
    def test_round_trip_counts(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert len(loaded.records) == len(result.records)
        assert loaded.scheduler_name == result.scheduler_name

    def test_round_trip_metrics(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert loaded.miss_rate() == pytest.approx(result.miss_rate())
        assert loaded.ack_rate() == pytest.approx(result.ack_rate())
        assert loaded.miss_rate_by_mcs() == result.miss_rate_by_mcs()

    def test_round_trip_fields(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        for original, reloaded in zip(result.records, loaded.records):
            assert (original.bs_id, original.index) == (reloaded.bs_id, reloaded.index)
            assert original.iterations == reloaded.iterations
            assert original.missed == reloaded.missed
            if math.isnan(original.gap_us):
                assert math.isnan(reloaded.gap_us)
            else:
                assert original.gap_us == pytest.approx(reloaded.gap_us, abs=1e-3)

    def test_config_rtt_preserved(self, result, tmp_path):
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert loaded.config.transport_latency_us == result.config.transport_latency_us

    def test_round_trip_every_column(self, result, tmp_path):
        """Save -> load equality over every exported ``_COLUMNS`` field."""
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert len(loaded.records) == len(result.records)
        for original, reloaded in zip(result.records, loaded.records):
            for column in _COLUMNS:
                a, b = getattr(original, column), getattr(reloaded, column)
                if isinstance(a, float):
                    if math.isnan(a):
                        assert math.isnan(b)
                    else:
                        assert b == pytest.approx(a, abs=1e-3)
                else:
                    assert a == b, column

    def test_round_trip_migrated_subtasks(self, result, tmp_path):
        """Migration totals must survive: fig16-style post-processing on
        exported CSVs silently saw 0 migrations before this fix."""
        total = sum(r.migrated_subtasks for r in result.records)
        assert total > 0  # rt-opex migrates on this workload
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        loaded = load_result_csv(path)
        assert sum(r.migrated_subtasks for r in loaded.records) == total
        for original, reloaded in zip(result.records, loaded.records):
            assert reloaded.migrated_subtasks == original.migrated_subtasks

    def test_round_trip_full_config(self, custom_result, tmp_path):
        """Every CRanConfig field round-trips, not just the RTT."""
        path = tmp_path / "run.csv"
        save_result_csv(path, custom_result)
        loaded = load_result_csv(path)
        assert loaded.config == custom_result.config

    def test_loads_legacy_header_without_config(self, result, tmp_path):
        """Files written before the config field fall back to RTT-only."""
        path = tmp_path / "run.csv"
        save_result_csv(path, result)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        rows[0] = rows[0][:4]  # strip the config field, keep rtt_us
        with open(path, "w", newline="") as handle:
            csv.writer(handle).writerows(rows)
        loaded = load_result_csv(path)
        assert loaded.config.transport_latency_us == result.config.transport_latency_us
        assert len(loaded.records) == len(result.records)

    def test_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_result_csv(path)

    def test_rejects_wrong_columns(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("# scheduler,x,rtt_us,500.0\na,b\n")
        with pytest.raises(ValueError):
            load_result_csv(path)
