"""Tests for analysis statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    binomial_confidence_interval,
    empirical_cdf,
    geometric_mean_ratio,
    summarize,
    tail_fraction,
)


class TestCdf:
    def test_basic(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        cdf = empirical_cdf(samples, np.array([0.5, 2.0, 5.0]))
        assert list(cdf) == [0.0, 0.5, 1.0]

    def test_empty_samples(self):
        cdf = empirical_cdf(np.array([]), np.array([1.0]))
        assert list(cdf) == [0.0]

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_monotone_and_bounded(self, values):
        samples = np.array(values)
        points = np.linspace(-150, 150, 20)
        cdf = empirical_cdf(samples, points)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] >= 0.0 and cdf[-1] == 1.0


class TestTailFraction:
    def test_basic(self):
        assert tail_fraction(np.array([1, 2, 3, 4]), 2.5) == 0.5

    def test_empty(self):
        assert tail_fraction(np.array([]), 1.0) == 0.0

    def test_strict_inequality(self):
        assert tail_fraction(np.array([1.0, 1.0]), 1.0) == 0.0


class TestSummarize:
    def test_keys_and_order(self):
        s = summarize(np.arange(1000, dtype=float))
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["p999"] <= s["max"]

    def test_empty_gives_nans(self):
        s = summarize(np.array([]))
        assert all(math.isnan(v) for v in s.values())

    def test_constant(self):
        s = summarize(np.full(10, 5.0))
        assert s["mean"] == 5.0
        assert s["max"] == 5.0


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = binomial_confidence_interval(5, 100)
        assert lo < 0.05 < hi

    def test_zero_successes(self):
        lo, hi = binomial_confidence_interval(0, 1000)
        assert lo == 0.0
        assert hi < 0.01

    def test_all_successes(self):
        lo, hi = binomial_confidence_interval(1000, 1000)
        assert hi == 1.0
        assert lo > 0.99

    def test_bounds_in_unit_interval(self):
        for k, n in ((0, 10), (1, 10), (10, 10), (3, 7)):
            lo, hi = binomial_confidence_interval(k, n)
            assert 0.0 <= lo <= hi <= 1.0

    def test_narrower_with_more_trials(self):
        lo1, hi1 = binomial_confidence_interval(10, 100)
        lo2, hi2 = binomial_confidence_interval(100, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 0)
        with pytest.raises(ValueError):
            binomial_confidence_interval(5, 4)


class TestGeometricMeanRatio:
    def test_identity(self):
        ones = np.ones(5)
        assert geometric_mean_ratio(ones, ones) == pytest.approx(1.0)

    def test_constant_factor(self):
        a = np.array([2.0, 4.0, 8.0])
        assert geometric_mean_ratio(3 * a, a) == pytest.approx(3.0)

    def test_ignores_zero_denominators(self):
        num = np.array([2.0, 10.0])
        den = np.array([1.0, 0.0])
        assert geometric_mean_ratio(num, den) == pytest.approx(2.0)

    def test_all_invalid_gives_nan(self):
        assert math.isnan(geometric_mean_ratio(np.zeros(3), np.zeros(3)))
