"""Tests for iteration-model calibration."""

import numpy as np
import pytest

from repro.analysis.calibration import fit_iteration_model, log_chain_iterations
from repro.lte.grid import GridConfig
from repro.timing.iterations import IterationModel


def synthetic_samples(model, rng, samples_per_bin=400):
    mcs_grid = [0, 5, 10, 13, 16, 20, 22, 24, 26, 27]
    snr_grid = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    mcs, snr, its = [], [], []
    for m in mcs_grid:
        for s in snr_grid:
            draws = model.draw(m, s, rng, num_blocks=samples_per_bin)
            mcs.extend([m] * samples_per_bin)
            snr.extend([s] * samples_per_bin)
            its.extend(draws)
    return np.array(mcs), np.array(snr), np.array(its)


class TestFit:
    def test_recovers_known_model(self, rng):
        truth = IterationModel(max_iterations=4)
        mcs, snr, its = synthetic_samples(truth, rng)
        result = fit_iteration_model(mcs, snr, its)
        assert result.rmse < 0.25
        # The fitted mean curve must track the truth across the grid.
        for m in (5, 16, 27):
            for s in (10.0, 30.0):
                assert result.model.mean_iterations(m, s) == pytest.approx(
                    truth.mean_iterations(m, s), abs=0.5
                )

    def test_detects_shifted_platform(self, rng):
        # A "slower decoder" (threshold shifted +4 dB) must be fitted
        # with a visibly larger offset than the default.
        shifted = IterationModel(max_iterations=4, effort_offset=-6.0)
        mcs, snr, its = synthetic_samples(shifted, rng)
        result = fit_iteration_model(mcs, snr, its)
        default = IterationModel(max_iterations=4)
        assert result.model.effort_offset > default.effort_offset + 1.5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fit_iteration_model(np.array([1]), np.array([1.0, 2.0]), np.array([1]))
        with pytest.raises(ValueError):
            fit_iteration_model(np.array([1]), np.array([1.0]), np.array([9]))
        # Too few bins to identify 4 parameters.
        with pytest.raises(ValueError):
            fit_iteration_model(
                np.array([1, 1, 1]), np.array([10.0, 10.0, 10.0]), np.array([2, 2, 2])
            )

    def test_fitted_model_is_valid_model(self, rng):
        truth = IterationModel(max_iterations=4)
        mcs, snr, its = synthetic_samples(truth, rng, samples_per_bin=100)
        fitted = fit_iteration_model(mcs, snr, its).model
        draws = fitted.draw(20, 25.0, rng, num_blocks=50)
        assert all(1 <= l <= 4 for l in draws)


class TestChainLogging:
    def test_log_and_fit_from_real_decoder(self, rng):
        # Close the loop end-to-end on a tiny grid: the real max-log-MAP
        # decoder's iteration counts are fittable and show the right
        # trend (more iterations at lower SNR).
        grid = GridConfig(1.4)
        mcs, snr, its = log_chain_iterations(
            grid, mcs_values=(4, 10), snr_values=(6.0, 14.0, 25.0),
            trials_per_point=3, rng=rng,
        )
        assert its.min() >= 1
        low_snr_mean = its[snr == 6.0].mean()
        high_snr_mean = its[snr == 25.0].mean()
        assert low_snr_mean >= high_snr_mean
