"""Unit tests for the trace-derived metric aggregators."""

import math

import numpy as np
import pytest

from repro.analysis import tracestats
from repro.obs.trace import RunTrace


def make_run() -> RunTrace:
    run = RunTrace("test-run", scheduler="rt-opex")
    # Core 0: two busy spans (task + migrated batch) and two gaps.
    run.task(0, "fft", 0.0, 100.0, 0, 0)
    run.gap(0, 100.0, 400.0, 0, 0)
    run.migration_executed(0, "decode", 500.0, 650.0, owner_core=1, shipped=2, completed=2)
    run.gap(0, 650.0, 350.0, 0, 1, usable=False)
    # Core 1: one long task; subtask spans must not count as busy.
    run.task(1, "decode", 0.0, 600.0, 1, 0)
    run.subtask(0, "decode[0]", 520.0, 580.0, 1, 0)
    # Verdicts: 2 hits, 1 miss.
    run.deadline(600.0, 1, False, 1, 0)
    run.deadline(650.0, 0, True, 0, 0, drop_stage="decode")
    run.deadline(700.0, 0, False, 0, 1)
    return run


class TestBusyMetrics:
    def test_core_busy_us(self):
        busy = tracestats.core_busy_us(make_run())
        assert busy == {0: pytest.approx(250.0), 1: pytest.approx(600.0)}

    def test_subtasks_excluded_from_busy(self):
        run = RunTrace("r")
        run.subtask(0, "decode[0]", 0.0, 100.0)
        assert tracestats.core_busy_us(run) == {}

    def test_busy_spans_sorted(self):
        spans = tracestats.busy_spans(make_run())
        assert spans[0] == [(0.0, 100.0), (500.0, 650.0)]

    def test_utilization_explicit_horizon(self):
        util = tracestats.core_utilization(make_run(), horizon_us=1000.0)
        assert util == {0: pytest.approx(0.25), 1: pytest.approx(0.6)}

    def test_utilization_default_horizon_is_last_event_end(self):
        util = tracestats.core_utilization(make_run())
        assert util[1] == pytest.approx(600.0 / 1000.0)  # last gap ends at 1000

    def test_accepts_raw_event_list(self):
        run = make_run()
        assert tracestats.core_busy_us(run.events) == tracestats.core_busy_us(run)


class TestOverlaps:
    def test_clean_run_has_none(self):
        assert tracestats.find_overlaps(make_run()) == []

    def test_detects_overlap(self):
        run = RunTrace("r")
        run.task(0, "a", 0.0, 100.0)
        run.task(0, "b", 50.0, 150.0)
        violations = tracestats.find_overlaps(run)
        assert violations == [(0, 100.0, 50.0)]

    def test_different_cores_never_overlap(self):
        run = RunTrace("r")
        run.task(0, "a", 0.0, 100.0)
        run.task(1, "b", 50.0, 150.0)
        assert tracestats.find_overlaps(run) == []

    def test_touching_spans_allowed(self):
        run = RunTrace("r")
        run.task(0, "a", 0.0, 100.0)
        run.task(0, "b", 100.0, 200.0)
        assert tracestats.find_overlaps(run) == []


class TestDeadlines:
    def test_miss_count(self):
        assert tracestats.deadline_miss_count(make_run()) == 1

    def test_verdicts(self):
        assert tracestats.deadline_verdicts(make_run()) == (2, 1)


class TestGapMetrics:
    def test_samples(self):
        samples = tracestats.gap_samples(make_run())
        assert sorted(samples) == [350.0, 400.0]

    def test_usable_only_filter(self):
        samples = tracestats.gap_samples(make_run(), usable_only=True)
        assert list(samples) == [400.0]

    def test_cdf(self):
        xs, ps = tracestats.gap_cdf(make_run())
        assert list(xs) == [350.0, 400.0]
        assert list(ps) == [0.5, 1.0]

    def test_cdf_empty(self):
        xs, ps = tracestats.gap_cdf(RunTrace("r"))
        assert xs.size == 0 and ps.size == 0

    def test_histogram(self):
        counts = tracestats.gap_histogram(make_run(), [0.0, 375.0, 500.0])
        assert list(counts) == [1, 1]

    def test_summary(self):
        summary = tracestats.gap_summary(make_run(), threshold_us=360.0)
        assert summary["count"] == 2.0
        assert summary["median_us"] == pytest.approx(375.0)
        assert summary["tail_fraction"] == pytest.approx(0.5)

    def test_summary_empty(self):
        summary = tracestats.gap_summary(RunTrace("r"))
        assert summary["count"] == 0.0
        assert math.isnan(summary["median_us"])
        assert math.isnan(summary["tail_fraction"])

    def test_samples_are_float_arrays(self):
        assert tracestats.gap_samples(make_run()).dtype == np.float64
