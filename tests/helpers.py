"""Shared test helpers: hand-built subframe jobs with known durations."""

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, UplinkGrant
from repro.sched.base import SubframeJob
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work


def make_job(bs, index, mcs, iters, rtt=500.0, noise=0.0, antennas=2):
    """A SubframeJob with explicit per-code-block iteration counts.

    ``iters`` is cycled/truncated to the grant's code-block count, so
    ``make_job(0, 0, 27, [4])`` gives six blocks at four iterations.
    """
    grant = UplinkGrant(mcs=mcs, num_prbs=50, num_antennas=antennas)
    iters = (list(iters) * 8)[: grant.code_blocks]
    work = build_subframe_work(LinearTimingModel(), grant, iters, max_iterations=4)
    sf = Subframe(
        bs_id=bs, index=index, grant=grant, transport_latency_us=rtt, grid=GridConfig(10.0)
    )
    return SubframeJob(subframe=sf, work=work, noise_us=noise, load=mcs / 27.0)
