"""Tests for the partitioned scheduler."""

import pytest

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, UplinkGrant
from repro.sched import CRanConfig, PartitionedScheduler
from repro.sched.base import SubframeJob, partitioned_core_for
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work


def make_job(bs, index, mcs, iters, rtt=500.0, noise=0.0):
    grant = UplinkGrant(mcs=mcs, num_prbs=50, num_antennas=2)
    iters = (list(iters) * 8)[: grant.code_blocks]
    work = build_subframe_work(LinearTimingModel(), grant, iters, max_iterations=4)
    sf = Subframe(
        bs_id=bs, index=index, grant=grant, transport_latency_us=rtt, grid=GridConfig(10.0)
    )
    return SubframeJob(subframe=sf, work=work, noise_us=noise, load=mcs / 27.0)


class TestPartitioned:
    def test_placement_follows_paper_rule(self):
        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = [make_job(b, j, 5, [1]) for b in range(4) for j in range(4)]
        result = PartitionedScheduler(cfg).run(jobs)
        for r in result.records:
            assert r.core_id == partitioned_core_for(r.bs_id, r.index, 2)

    def test_light_subframes_meet_deadline(self):
        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = [make_job(0, j, 5, [1]) for j in range(10)]
        result = PartitionedScheduler(cfg).run(jobs)
        assert result.miss_rate() == 0.0

    def test_heavy_subframe_misses_when_budget_short(self):
        # MCS 27 with L = 4 takes ~2.04 ms > Tmax = 1.3 ms at RTT 700.
        cfg = CRanConfig(transport_latency_us=700.0)
        jobs = [make_job(0, 0, 27, [4])]
        result = PartitionedScheduler(cfg).run(jobs)
        assert result.miss_count() == 1

    def test_terminated_at_deadline(self):
        cfg = CRanConfig(transport_latency_us=700.0, drop_on_slack_check=False)
        jobs = [make_job(0, 0, 27, [4])]
        result = PartitionedScheduler(cfg).run(jobs)
        record = result.records[0]
        assert record.missed
        assert record.finish_us == record.deadline_us

    def test_slack_check_drops_hopeless_subframe(self):
        # With the optimistic bound already over budget the task is
        # dropped at a stage boundary instead of burning the core.
        cfg = CRanConfig(transport_latency_us=700.0)
        jobs = [make_job(0, 0, 27, [4], noise=800.0)]
        result = PartitionedScheduler(cfg).run(jobs)
        record = result.records[0]
        assert record.dropped
        assert record.drop_stage in ("fft", "demod", "decode")

    def test_no_queueing_with_two_cores_per_bs(self):
        cfg = CRanConfig(transport_latency_us=700.0)
        jobs = [make_job(0, j, 27, [4, 4, 4, 4, 4, 4]) for j in range(20)]
        result = PartitionedScheduler(cfg).run(jobs)
        assert all(r.queue_delay_us == 0.0 for r in result.records)

    def test_under_provisioned_single_core_queues(self):
        cfg = CRanConfig(transport_latency_us=500.0, cores_per_bs=1)
        jobs = [make_job(0, j, 27, [4, 4, 4, 4, 4, 4]) for j in range(5)]
        result = PartitionedScheduler(cfg).run(jobs)
        assert any(r.queue_delay_us > 0 for r in result.records)

    def test_gap_is_time_to_next_activation(self):
        cfg = CRanConfig(transport_latency_us=500.0)
        job = make_job(0, 0, 5, [1])
        result = PartitionedScheduler(cfg).run([job])
        record = result.records[0]
        # Next subframe for this core arrives at 2000 + 500.
        assert record.gap_us == pytest.approx(2500.0 - record.finish_us)

    def test_processing_time_matches_task_graph(self):
        cfg = CRanConfig(transport_latency_us=400.0)
        job = make_job(0, 0, 13, [2, 2, 2], noise=10.0)
        result = PartitionedScheduler(cfg).run([job])
        record = result.records[0]
        assert record.processing_time_us == pytest.approx(
            job.work.total_serial_us + 10.0
        )

    def test_records_carry_workload_metadata(self):
        cfg = CRanConfig(transport_latency_us=500.0)
        job = make_job(2, 3, 13, [2, 2])
        result = PartitionedScheduler(cfg).run([job])
        record = result.records[0]
        assert (record.bs_id, record.index, record.mcs) == (2, 3, 13)
        assert record.iterations == (2, 2)

    def test_deterministic(self, small_config, small_workload):
        a = PartitionedScheduler(small_config).run(small_workload)
        b = PartitionedScheduler(small_config).run(small_workload)
        assert a.miss_count() == b.miss_count()
        assert [r.finish_us for r in a.records] == [r.finish_us for r in b.records]

    def test_miss_rate_grows_with_rtt(self, small_workload):
        # Eq. (3): a larger RTT/2 shrinks Tmax, so misses cannot shrink.
        rates = []
        for rtt in (400.0, 550.0, 700.0):
            cfg = CRanConfig(transport_latency_us=rtt)
            jobs = [
                SubframeJob(
                    subframe=Subframe(
                        bs_id=j.subframe.bs_id,
                        index=j.subframe.index,
                        grant=j.subframe.grant,
                        transport_latency_us=rtt,
                        grid=j.subframe.grid,
                    ),
                    work=j.work,
                    noise_us=j.noise_us,
                    load=j.load,
                )
                for j in small_workload
            ]
            rates.append(PartitionedScheduler(cfg).run(jobs).miss_rate())
        assert rates[0] <= rates[1] <= rates[2]
