"""Tests for the RT-OPEX scheduler: migration, preemption, recovery."""

import numpy as np
import pytest

from repro.sched import CRanConfig, PartitionedScheduler, RtOpexScheduler
from repro.timing.platform import PlatformNoiseModel

from tests.helpers import make_job


def run_opex(jobs, rtt=500.0, seed=0, **kwargs):
    cfg = CRanConfig(transport_latency_us=rtt)
    return RtOpexScheduler(cfg, rng=np.random.default_rng(seed), **kwargs).run(jobs)


QUIET = PlatformNoiseModel(base_mean_us=1.0, spike_probability=0.0, tail_probability=0.0)


class TestMigrationBehaviour:
    def test_heavy_subframe_rescued_by_migration(self):
        # MCS 27 at L=4 (~2.04 ms serial) misses Tmax = 1.5 ms under
        # partitioned scheduling but survives under RT-OPEX thanks to
        # idle cores on the other basestations.
        jobs = [make_job(0, 0, 27, [4])] + [make_job(b, 0, 0, [1]) for b in (1, 2, 3)]
        cfg = CRanConfig(transport_latency_us=500.0)
        part = PartitionedScheduler(cfg).run(jobs)
        opex = run_opex(jobs, remote_noise=QUIET)
        heavy_part = [r for r in part.records if r.mcs == 27][0]
        heavy_opex = [r for r in opex.records if r.mcs == 27][0]
        assert heavy_part.missed
        assert not heavy_opex.missed
        assert heavy_opex.migrated_subtasks > 0

    def test_saturated_node_cannot_be_rescued(self):
        # Every basestation heavy on every subframe: there are no gaps
        # to harvest, so migration cannot conjure capacity and RT-OPEX
        # misses (nearly) everything, like the partitioned baseline.
        # (One subframe per millisecond still slips through by racing
        # into the gaps that deadline-terminated neighbours leave.)
        jobs = [make_job(b, j, 27, [4]) for b in range(4) for j in range(8)]
        opex = run_opex(jobs, remote_noise=QUIET)
        assert opex.miss_rate() > 0.6
        decode_moves = sum(
            m.num_subtasks for r in opex.records for m in r.migrations if m.task == "decode"
        )
        total_subtasks = sum(len(r.iterations) for r in opex.records)
        assert decode_moves < 0.25 * total_subtasks

    def test_migration_reduces_processing_time(self):
        heavy = make_job(0, 0, 27, [4], rtt=400.0)
        jobs = [heavy] + [make_job(b, 0, 0, [1], rtt=400.0) for b in (1, 2, 3)]
        opex = run_opex(jobs, rtt=400.0, remote_noise=QUIET)
        t_opex = [r for r in opex.records if r.mcs == 27][0].processing_time_us
        # Serial execution would take ~2.04 ms; three migrated code
        # blocks shave off >500 us.
        assert t_opex < heavy.serial_time_us - 500.0

    def test_fft_migration_ubiquitous(self, small_config, small_workload):
        # A core with a subframe arriving at the same instant is not a
        # valid helper (its own work preempts immediately), which rules
        # out the same-slot cores of the other basestations; most FFTs
        # still find an idle other-slot core to ship subtasks to.
        opex = RtOpexScheduler(small_config, rng=np.random.default_rng(0)).run(small_workload)
        assert opex.migration_fraction("fft") > 0.6

    def test_disabling_migration_recovers_partitioned(self, small_config, small_workload):
        opex = RtOpexScheduler(
            small_config,
            rng=np.random.default_rng(0),
            migrate_fft=False,
            migrate_decode=False,
        ).run(small_workload)
        part = PartitionedScheduler(small_config).run(small_workload)
        assert opex.miss_count() == part.miss_count()
        assert all(not r.migrations for r in opex.records)

    def test_never_worse_than_partitioned(self, small_config, small_workload):
        # The paper's core guarantee, at the aggregate level.
        part = PartitionedScheduler(small_config).run(small_workload)
        opex = RtOpexScheduler(small_config, rng=np.random.default_rng(0)).run(small_workload)
        assert opex.miss_count() <= part.miss_count()

    def test_order_of_magnitude_improvement(self, small_config, small_workload):
        # Fig. 15's headline at RTT/2 = 500 us.
        part = PartitionedScheduler(small_config).run(small_workload)
        opex = RtOpexScheduler(small_config, rng=np.random.default_rng(0)).run(small_workload)
        if part.miss_count() >= 5:
            assert opex.miss_count() <= part.miss_count() / 5


class TestPreemptionAndRecovery:
    def test_helper_always_starts_its_own_subframe_on_time(self):
        # A migrated batch never delays the helper core's own work.
        jobs = []
        for j in range(6):
            jobs.append(make_job(0, j, 27, [4]))  # heavy donor
            jobs.append(make_job(1, j, 13, [2]))  # helper BS
            jobs.append(make_job(2, j, 13, [2]))
            jobs.append(make_job(3, j, 13, [2]))
        opex = run_opex(jobs, rtt=500.0)
        for r in opex.records:
            assert r.queue_delay_us == 0.0

    def test_recovery_on_noisy_helpers(self):
        # Extreme remote noise forces preemptions; recovery must keep
        # the result correct (recorded) and the run must complete.
        noisy = PlatformNoiseModel(
            base_mean_us=300.0, base_shape=1.0, spike_probability=0.5,
            spike_low_us=200.0, spike_high_us=600.0,
        )
        jobs = [make_job(0, j, 27, [4]) for j in range(4)]
        jobs += [make_job(b, j, 5, [1]) for b in (1, 2, 3) for j in range(4)]
        opex = run_opex(jobs, remote_noise=noisy)
        recovered = sum(
            m.recovered_subtasks for r in opex.records for m in r.migrations
        )
        assert recovered > 0
        assert len(opex.records) == len(jobs)

    def test_all_subframes_accounted_once(self, small_config, small_workload):
        opex = RtOpexScheduler(small_config, rng=np.random.default_rng(0)).run(small_workload)
        assert len(opex.records) == len(small_workload)
        keys = {(r.bs_id, r.index) for r in opex.records}
        assert len(keys) == len(small_workload)

    def test_finish_never_exceeds_deadline(self, small_config, small_workload):
        opex = RtOpexScheduler(small_config, rng=np.random.default_rng(0)).run(small_workload)
        for r in opex.records:
            assert r.finish_us <= r.deadline_us + 1e-6


class TestOverheadSensitivity:
    def _heavy_mix(self):
        jobs = []
        for j in range(8):
            jobs.append(make_job(0, j, 26, [3]))
            for b in (1, 2, 3):
                jobs.append(make_job(b, j, 8, [1]))
        return jobs

    def test_large_overhead_shrinks_migration(self):
        jobs = self._heavy_mix()
        cheap = run_opex(jobs, batch_overhead_us=5.0, remote_noise=QUIET)
        costly = run_opex(jobs, batch_overhead_us=400.0, remote_noise=QUIET)
        assert (
            sum(m.num_subtasks for r in costly.records for m in r.migrations)
            <= sum(m.num_subtasks for r in cheap.records for m in r.migrations)
        )

    def test_gap_accounting(self):
        jobs = [make_job(0, 0, 5, [1])]
        opex = run_opex(jobs, remote_noise=QUIET)
        record = opex.records[0]
        assert record.gap_us == pytest.approx(2500.0 - record.finish_us)

    def test_slack_check_drop_recorded(self):
        jobs = [make_job(0, 0, 27, [4], rtt=700.0, noise=900.0)]
        opex = run_opex(jobs, rtt=700.0)
        record = opex.records[0]
        assert record.missed

    def test_deterministic_given_seed(self, small_config, small_workload):
        a = RtOpexScheduler(small_config, rng=np.random.default_rng(5)).run(small_workload)
        b = RtOpexScheduler(small_config, rng=np.random.default_rng(5)).run(small_workload)
        assert [r.finish_us for r in a.records] == [r.finish_us for r in b.records]
