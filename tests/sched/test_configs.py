"""Robustness across non-default C-RAN configurations.

The evaluation fixes 4 BS x 2 cores x 2 antennas; a library user will
not.  These tests sweep the configuration space the API admits and
check the schedulers stay sound and the paper's ordering stays put.
"""

import pytest

from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.workload.traces import BasestationTraceConfig, CellularTraceGenerator


def workload_for(num_bs, num_subframes, cores_per_bs=2, antennas=2, rtt=550.0, seed=17):
    configs = [
        BasestationTraceConfig(mean=0.45 + 0.05 * (i % 3), slow_std=0.15, fast_std=0.1)
        for i in range(num_bs)
    ]
    loads = CellularTraceGenerator(configs, seed=seed).generate(num_subframes)
    cfg = CRanConfig(
        num_basestations=num_bs,
        cores_per_bs=cores_per_bs,
        num_antennas=antennas,
        transport_latency_us=rtt,
    )
    return cfg, build_workload(cfg, num_subframes, seed=seed, loads=loads)


class TestConfigurationSpace:
    @pytest.mark.parametrize("num_bs", [1, 2, 6])
    def test_basestation_counts(self, num_bs):
        cfg, jobs = workload_for(num_bs, 300)
        for name in ("partitioned", "rt-opex"):
            result = run_scheduler(name, cfg, jobs)
            assert len(result.records) == len(jobs)

    def test_three_cores_per_bs(self):
        # ceil(Tmax) = 3 would follow from Tmax > 2 ms systems; the
        # placement and activation math must generalize.
        cfg, jobs = workload_for(2, 300, cores_per_bs=3)
        part = run_scheduler("partitioned", cfg, jobs)
        opex = run_scheduler("rt-opex", cfg, jobs)
        cores_seen = {r.core_id for r in part.records}
        assert cores_seen <= set(range(6))
        assert len(cores_seen) == 6
        assert opex.miss_count() <= part.miss_count()

    @pytest.mark.parametrize("antennas", [1, 4])
    def test_antenna_counts(self, antennas):
        cfg, jobs = workload_for(4, 200, antennas=antennas)
        result = run_scheduler("rt-opex", cfg, jobs)
        # FFT subtask count follows the antenna count.
        for job in jobs[:5]:
            assert job.work.task("fft").num_subtasks == antennas
        assert len(result.records) == len(jobs)

    def test_four_antennas_stress_more_misses(self):
        # +169 us per antenna: the same trace misses more at N=4.
        cfg2, jobs2 = workload_for(4, 800, antennas=2)
        cfg4, jobs4 = workload_for(4, 800, antennas=4)
        part2 = run_scheduler("partitioned", cfg2, jobs2)
        part4 = run_scheduler("partitioned", cfg4, jobs4)
        assert part4.miss_rate() >= part2.miss_rate()

    def test_single_basestation_isolated(self):
        # One BS on two cores: no cross-BS gaps exist, so RT-OPEX can
        # only use the sibling core's windows — still sound.
        cfg, jobs = workload_for(1, 500)
        opex = run_scheduler("rt-opex", cfg, jobs)
        part = run_scheduler("partitioned", cfg, jobs)
        assert opex.miss_count() <= part.miss_count()

    def test_global_with_odd_core_count(self):
        cfg, jobs = workload_for(4, 300)
        odd = CRanConfig(transport_latency_us=550.0, num_cores=5)
        result = run_scheduler("global", odd, jobs)
        assert {r.core_id for r in result.records if r.core_id >= 0} <= set(range(5))

    def test_extreme_rtt_bounds(self):
        # RTT/2 = 0 (co-located radios) and 900 us (far fronthaul).
        for rtt in (0.0, 900.0):
            cfg, jobs = workload_for(4, 200, rtt=rtt)
            result = run_scheduler("rt-opex", cfg, jobs)
            for r in result.records:
                assert r.finish_us <= r.deadline_us + 1e-6
