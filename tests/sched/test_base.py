"""Tests for shared scheduler types and placement helpers."""

import pytest

from repro.sched.base import (
    CRanConfig,
    SchedulerResult,
    SubframeRecord,
    next_partitioned_activation,
    partitioned_core_for,
)


class TestCRanConfig:
    def test_default_core_pool(self):
        cfg = CRanConfig()
        assert cfg.total_cores == 8  # 4 BS x 2 cores

    def test_explicit_core_pool(self):
        assert CRanConfig(num_cores=16).total_cores == 16

    def test_processing_budget_eq3(self):
        assert CRanConfig(transport_latency_us=600.0).processing_budget_us == 1400.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CRanConfig(num_basestations=0)
        with pytest.raises(ValueError):
            CRanConfig(transport_latency_us=-1.0)
        with pytest.raises(ValueError):
            CRanConfig(cores_per_bs=0)


class TestPlacement:
    def test_paper_mapping_rule(self):
        # core = i*ceil(Tmax) + j mod ceil(Tmax), with ceil(Tmax) = 2.
        assert partitioned_core_for(0, 0, 2) == 0
        assert partitioned_core_for(0, 1, 2) == 1
        assert partitioned_core_for(0, 2, 2) == 0
        assert partitioned_core_for(1, 0, 2) == 2
        assert partitioned_core_for(3, 5, 2) == 7

    def test_next_activation_basic(self):
        # Slot 0 of any BS activates at j*2ms + RTT/2 for even j.
        t = next_partitioned_activation(
            0, 0, after_us=100.0, cores_per_bs=2, transport_latency_us=500.0
        )
        assert t == 500.0
        t = next_partitioned_activation(
            0, 0, after_us=501.0, cores_per_bs=2, transport_latency_us=500.0
        )
        assert t == 2500.0

    def test_next_activation_odd_slot(self):
        t = next_partitioned_activation(
            0, 1, after_us=0.0, cores_per_bs=2, transport_latency_us=400.0
        )
        assert t == 1400.0

    def test_next_activation_strictly_after(self):
        t0 = 2500.0
        t = next_partitioned_activation(
            0, 0, after_us=t0, cores_per_bs=2, transport_latency_us=500.0
        )
        assert t > t0

    def test_activation_period(self):
        a = next_partitioned_activation(0, 0, 100.0, 2, 500.0)
        b = next_partitioned_activation(0, 0, a, 2, 500.0)
        assert b - a == 2000.0


class TestSchedulerResult:
    def _record(self, missed=False, dropped=False, mcs=10, bs=0, crc=True, gap=float("nan")):
        return SubframeRecord(
            bs_id=bs,
            index=0,
            mcs=mcs,
            load=0.5,
            arrival_us=500.0,
            deadline_us=2000.0,
            start_us=500.0,
            finish_us=1500.0,
            missed=missed,
            dropped=dropped,
            crc_pass=crc,
            gap_us=gap,
        )

    def test_miss_rate(self):
        records = [self._record(), self._record(missed=True), self._record(dropped=True)]
        result = SchedulerResult("x", CRanConfig(), records)
        assert result.miss_rate() == pytest.approx(2 / 3)

    def test_empty_result(self):
        result = SchedulerResult("x", CRanConfig(), [])
        assert result.miss_rate() == 0.0
        assert result.ack_rate() == 0.0

    def test_ack_requires_crc_and_deadline(self):
        records = [
            self._record(),
            self._record(crc=False),
            self._record(missed=True),
        ]
        result = SchedulerResult("x", CRanConfig(), records)
        assert result.ack_rate() == pytest.approx(1 / 3)

    def test_miss_rate_by_mcs(self):
        records = [self._record(mcs=5), self._record(mcs=27, missed=True)]
        result = SchedulerResult("x", CRanConfig(), records)
        by_mcs = result.miss_rate_by_mcs()
        assert by_mcs[5] == 0.0
        assert by_mcs[27] == 1.0

    def test_miss_rate_by_bs(self):
        records = [self._record(bs=0), self._record(bs=1, missed=True)]
        by_bs = SchedulerResult("x", CRanConfig(), records).miss_rate_by_bs()
        assert by_bs == {0: 0.0, 1: 1.0}

    def test_gaps_skip_nan(self):
        records = [self._record(gap=100.0), self._record()]
        gaps = SchedulerResult("x", CRanConfig(), records).gaps()
        assert list(gaps) == [100.0]

    def test_processing_times_filter_by_mcs(self):
        records = [self._record(mcs=5), self._record(mcs=7)]
        result = SchedulerResult("x", CRanConfig(), records)
        assert result.processing_times(mcs=5).size == 1
        assert result.processing_times().size == 2

    def test_record_properties(self):
        r = self._record()
        assert r.processing_time_us == 1000.0
        assert r.response_time_us == 1000.0
        assert r.acked
        assert r.migrated_subtasks == 0

    def test_summary_keys(self):
        result = SchedulerResult("x", CRanConfig(), [self._record()])
        summary = result.summary()
        assert set(summary) == {"subframes", "miss_rate", "ack_rate", "mean_proc_us", "p99_proc_us"}
