"""Tests for the CloudIQ-style WCET-admission scheduler."""

from repro.sched import CloudIqScheduler, CRanConfig, run_scheduler

from tests.helpers import make_job


class TestCloudIq:
    def test_admits_light_subframes(self):
        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = [make_job(0, j, 5, [1]) for j in range(4)]
        result = CloudIqScheduler(cfg).run(jobs)
        assert result.miss_rate() == 0.0

    def test_rejects_wcet_overruns_at_admission(self):
        # MCS 27's WCET (~2.04 ms) exceeds any budget in the sweep, so
        # CloudIQ rejects such subframes outright.
        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = [make_job(0, 0, 27, [1])]  # actual L=1 would have fit!
        result = CloudIqScheduler(cfg).run(jobs)
        record = result.records[0]
        assert record.dropped
        assert record.drop_stage == "admission"

    def test_admitted_fraction_shrinks_with_rtt(self):
        jobs = [make_job(0, j, m, [2], rtt=0.0) for j, m in enumerate((5, 13, 20, 24, 27))]
        fractions = []
        for rtt in (400.0, 700.0):
            cfg = CRanConfig(transport_latency_us=rtt)
            fractions.append(CloudIqScheduler(cfg).admitted_fraction(jobs))
        assert fractions[1] <= fractions[0]

    def test_no_misses_among_admitted(self, small_config, small_workload):
        # The WCET guarantee: everything admitted finishes in time.
        result = run_scheduler("cloudiq", small_config, small_workload)
        for r in result.records:
            if r.drop_stage != "admission":
                assert not r.missed

    def test_conservatism_costs_throughput(self, small_config, small_workload):
        # CloudIQ's overall miss rate exceeds plain partitioned: it
        # forfeits frames that would usually have decoded in L < Lm.
        cloudiq = run_scheduler("cloudiq", small_config, small_workload)
        part = run_scheduler("partitioned", small_config, small_workload)
        assert cloudiq.miss_rate() >= part.miss_rate()

    def test_all_records_present_and_sorted(self, small_config, small_workload):
        result = run_scheduler("cloudiq", small_config, small_workload)
        assert len(result.records) == len(small_workload)
        keys = [(r.index, r.bs_id) for r in result.records]
        assert keys == sorted(keys)

    def test_scheduler_name(self, small_config, small_workload):
        result = run_scheduler("cloudiq", small_config, small_workload)
        assert result.scheduler_name == "cloudiq"
