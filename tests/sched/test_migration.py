"""Property tests for Algorithm 1 (the migration planner)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.migration import (
    MigrationDecision,
    plan_migrate_all,
    plan_migration,
    plan_steal_half,
)

# Core ids are unique: the caller (RT-OPEX) enumerates distinct cores.
windows = st.lists(
    st.tuples(st.integers(0, 31), st.floats(0.0, 5000.0, allow_nan=False)),
    min_size=0,
    max_size=8,
    unique_by=lambda item: item[0],
)


class TestAlgorithmOne:
    def test_no_subtasks(self):
        decision = plan_migration(0, 100.0, 20.0, [(1, 1000.0)])
        assert decision.migrated_subtasks == 0
        assert decision.local_subtasks == 0

    def test_single_subtask_never_migrates(self):
        # The while loop requires S > 1: the last subtask stays local.
        decision = plan_migration(1, 100.0, 20.0, [(1, 10_000.0)])
        assert decision.migrated_subtasks == 0

    def test_no_idle_cores(self):
        decision = plan_migration(6, 100.0, 20.0, [])
        assert decision.migrated_subtasks == 0
        assert decision.local_subtasks == 6

    def test_r1_window_capacity(self):
        # fck = 230 with tp+delta = 120 fits exactly one subtask.
        decision = plan_migration(6, 100.0, 20.0, [(0, 230.0)])
        assert decision.assignments == ((0, 1),)

    def test_r3_half_limit_single_core(self):
        # One huge window: at most floor(S/2) subtasks may leave.
        decision = plan_migration(6, 100.0, 20.0, [(0, 100_000.0)])
        assert decision.assignments == ((0, 3),)
        assert decision.local_subtasks == 3

    def test_r2_keeps_local_at_least_maxoff(self):
        # Two big windows: after (0 -> 3), R2 allows none further
        # because S - noff must stay >= maxoff = 3.
        decision = plan_migration(6, 100.0, 20.0, [(0, 100_000.0), (1, 100_000.0)])
        assert decision.assignments == ((0, 3),)

    def test_spreads_over_small_windows(self):
        # Four windows of one subtask each.
        windows = [(c, 130.0) for c in range(4)]
        decision = plan_migration(6, 100.0, 20.0, windows)
        assert decision.assignments == ((0, 1), (1, 1), (2, 1), (3, 1))
        assert decision.local_subtasks == 2

    def test_paper_example_fft(self):
        # FFT at N = 2: two subtasks, one may migrate.
        decision = plan_migration(2, 54.0, 20.0, [(0, 1000.0)])
        assert decision.assignments == ((0, 1),)
        assert decision.local_subtasks == 1

    def test_zero_cost_subtasks_not_migrated(self):
        decision = plan_migration(5, 0.0, 20.0, [(0, 1000.0)])
        assert decision.migrated_subtasks == 0

    def test_zero_free_time_skipped(self):
        decision = plan_migration(6, 100.0, 20.0, [(0, 0.0), (1, 130.0)])
        assert decision.assignments == ((1, 1),)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            plan_migration(-1, 100.0, 20.0, [])
        with pytest.raises(ValueError):
            plan_migration(2, 100.0, -1.0, [])

    # ---------------- property-based invariants ----------------

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=300, deadline=None)
    def test_conservation(self, p, tp, delta, free):
        decision = plan_migration(p, tp, delta, free)
        assert decision.local_subtasks + decision.migrated_subtasks == p

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=300, deadline=None)
    def test_r1_never_violated(self, p, tp, delta, free):
        decision = plan_migration(p, tp, delta, free)
        budgets = dict(free)
        for core, count in decision.assignments:
            assert count <= math.floor(budgets[core] / (tp + delta))

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=300, deadline=None)
    def test_local_dominates_every_batch(self, p, tp, delta, free):
        # The combined effect of R2 + R3: no helper core ever holds more
        # subtasks than the local core keeps (the dominance guarantee).
        decision = plan_migration(p, tp, delta, free)
        for _, count in decision.assignments:
            assert decision.local_subtasks >= count

    @given(st.integers(2, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=300, deadline=None)
    def test_at_least_one_stays_local(self, p, tp, delta, free):
        decision = plan_migration(p, tp, delta, free)
        assert decision.local_subtasks >= 1

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=300, deadline=None)
    def test_assignments_positive_and_unique_cores(self, p, tp, delta, free):
        decision = plan_migration(p, tp, delta, free)
        cores = [core for core, _ in decision.assignments]
        assert len(cores) == len(set(cores)) or len(cores) == 0
        assert all(count > 0 for _, count in decision.assignments)

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0))
    @settings(max_examples=200, deadline=None)
    def test_larger_overhead_never_migrates_more_single_core(self, p, tp, delta):
        # Per core, a larger delta can only shrink limoff (R1).  Note the
        # *multi-core* total is NOT monotone in delta: R2's maxoff
        # coupling means a smaller first batch can unlock a second core
        # (see test_delta_nonmonotonicity_is_real) — a genuine property
        # of the paper's greedy algorithm, not a bug.
        low = plan_migration(p, tp, delta, [(0, 800.0)]).migrated_subtasks
        high = plan_migration(p, tp, delta + 30.0, [(0, 800.0)]).migrated_subtasks
        assert high <= low

    def test_delta_nonmonotonicity_is_real(self):
        # Found by hypothesis: with 32 subtasks of 1 us, a *larger*
        # overhead migrates more in total because the first core takes a
        # smaller batch (maxoff drops), letting R2 admit the second core.
        free = [(0, 765.0), (1, 102.0)]
        low = plan_migration(32, 1.0, 5.0, free)
        high = plan_migration(32, 1.0, 50.0, free)
        assert low.migrated_subtasks == 16  # one core, R3-capped
        assert high.migrated_subtasks == 17  # 15 + 2 across two cores

    @given(st.integers(0, 64), st.floats(0.1, 1000.0), st.floats(0.0, 100.0), windows)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, p, tp, delta, free):
        first = plan_migration(p, tp, delta, free)
        second = plan_migration(p, tp, delta, free)
        assert first == second


class TestDecision:
    def test_helper_properties(self):
        decision = MigrationDecision(assignments=((0, 2), (3, 1)), local_subtasks=3)
        assert decision.migrated_subtasks == 3
        assert decision.num_targets == 2


ALL_PLANNERS = (plan_migration, plan_steal_half, plan_migrate_all)


class TestWindowOrderInvariance:
    """The planners sort the free windows internally, so the caller's
    enumeration order must never change the decision.  This was
    previously only a documented convention (``free_times_us`` "sorted by
    descending free time") that no call site enforced."""

    @pytest.mark.parametrize("planner", ALL_PLANNERS)
    @given(
        p=st.integers(0, 64),
        tp=st.floats(0.1, 1000.0),
        delta=st.floats(0.0, 100.0),
        free=windows,
        order_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=200, deadline=None)
    def test_shuffled_windows_same_decision(self, planner, p, tp, delta, free, order_seed):
        shuffled = list(free)
        random.Random(order_seed).shuffle(shuffled)
        assert planner(p, tp, delta, shuffled) == planner(p, tp, delta, free)

    @pytest.mark.parametrize("planner", ALL_PLANNERS)
    @given(
        p=st.integers(0, 64),
        tp=st.floats(0.1, 1000.0),
        delta=st.floats(0.0, 100.0),
        free=windows,
    )
    @settings(max_examples=200, deadline=None)
    def test_reversed_windows_same_decision(self, planner, p, tp, delta, free):
        assert planner(p, tp, delta, list(reversed(free))) == planner(p, tp, delta, free)

    def test_unsorted_caller_gets_largest_window_first(self):
        # Ascending input: the planner must still fill the big window
        # first (it would previously have filled core 7's small window).
        decision = plan_migration(6, 100.0, 20.0, [(7, 130.0), (2, 100_000.0)])
        assert decision.assignments == ((2, 3),)

    def test_equal_windows_tie_break_by_core_id(self):
        decision = plan_migration(6, 100.0, 20.0, [(5, 130.0), (1, 130.0), (3, 130.0)])
        assert [core for core, _ in decision.assignments] == [1, 3, 5]
