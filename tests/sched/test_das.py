"""Tests for the delay-aware scheduler (DAS)."""

import dataclasses

import numpy as np
import pytest

from repro.lte.mcs import max_mcs, throughput_mbps
from repro.sched import CRanConfig, DelayAwareScheduler, run_scheduler
from repro.sched.runner import TRACEABLE_SCHEDULERS
from repro.workload.classes import parse_class_spec
from repro.workload.mixed import build_mixed_workload

from tests.helpers import make_job


@pytest.fixture(scope="module")
def mixed_config():
    return CRanConfig(transport_latency_us=500.0, num_cores=8)


@pytest.fixture(scope="module")
def mixed_jobs(mixed_config):
    mix = parse_class_spec("urllc:0.3,embb:0.4,mmtc:0.3")
    return build_mixed_workload(mixed_config, 300, mix=mix, seed=11)


class TestRegistration:
    def test_registered_with_runner(self, mixed_config, mixed_jobs):
        result = run_scheduler("das", mixed_config, mixed_jobs, seed=11)
        assert result.scheduler_name == f"das-{mixed_config.total_cores}"
        assert len(result.records) == len(mixed_jobs)

    def test_traceable(self):
        assert "das" in TRACEABLE_SCHEDULERS

    def test_unknown_name_still_rejected(self, mixed_config, mixed_jobs):
        with pytest.raises(ValueError):
            run_scheduler("dass", mixed_config, mixed_jobs)


class TestBehaviour:
    def test_deterministic(self, mixed_config, mixed_jobs):
        a = run_scheduler("das", mixed_config, mixed_jobs, seed=4)
        b = run_scheduler("das", mixed_config, mixed_jobs, seed=4)
        assert [r.finish_us for r in a.records] == [r.finish_us for r in b.records]

    def test_every_record_tagged_with_class(self, mixed_config, mixed_jobs):
        result = run_scheduler("das", mixed_config, mixed_jobs, seed=4)
        assert {r.service for r in result.records} == {"urllc", "embb", "mmtc"}
        by_class = result.miss_rate_by_class()
        assert set(by_class) == {"urllc", "embb", "mmtc"}
        assert all(0.0 <= v <= 1.0 for v in by_class.values())

    def test_no_finish_exceeds_deadline(self, mixed_config, mixed_jobs):
        result = run_scheduler("das", mixed_config, mixed_jobs, seed=4)
        for r in result.records:
            assert r.finish_us <= r.deadline_us + 1e-9

    def test_single_class_workload_near_edf(self, small_config, small_workload):
        # On one shared budget, criticality ordering degenerates to
        # (roughly) EDF: DAS should be in the same league as the global
        # scheduler, not the partitioned stragglers.
        das = run_scheduler("das", small_config, small_workload, seed=2)
        glob = run_scheduler("global", small_config, small_workload, seed=2)
        assert das.miss_rate() <= glob.miss_rate() + 0.02

    def test_priority_prefers_tighter_budget(self):
        sched = DelayAwareScheduler(CRanConfig(transport_latency_us=500.0))
        base = make_job(0, 0, 20, [3])
        urgent = dataclasses.replace(
            base, deadline_override_us=base.subframe.air_time_us + 1500.0
        )
        relaxed = make_job(1, 0, 20, [3])
        now = base.arrival_us
        # Same work, same instant: the 1.5 ms budget consumes a larger
        # fraction than the 2 ms budget, so it must rank higher — this
        # is exactly where DAS diverges from EDF (the 2 ms job's
        # absolute deadline here is *earlier* in bs order).
        assert sched._priority(urgent, now) > sched._priority(relaxed, now)

    def test_priority_formula(self):
        sched = DelayAwareScheduler(CRanConfig(transport_latency_us=500.0))
        job = make_job(0, 0, 20, [3])
        now = job.arrival_us + 100.0
        hol = now - job.subframe.air_time_us
        crit = (hol + job.optimistic_time_us) / job.delay_budget_us
        eff = throughput_mbps(20) / throughput_mbps(max_mcs())
        assert sched._priority(job, now) == pytest.approx(crit * (1.0 + eff))

    def test_priority_grows_with_waiting(self):
        sched = DelayAwareScheduler(CRanConfig(transport_latency_us=500.0))
        job = make_job(0, 0, 20, [3])
        t0 = job.arrival_us
        assert sched._priority(job, t0 + 500.0) > sched._priority(job, t0)

    def test_queue_overflow_drops_least_urgent(self):
        cfg = CRanConfig(transport_latency_us=500.0, num_cores=1)
        sched = DelayAwareScheduler(
            cfg, rng=np.random.default_rng(0), queue_capacity=4
        )
        # 12 same-instant arrivals against one core and a 4-slot queue:
        # someone must get dropped, and the run must stay consistent.
        jobs = [make_job(0, j, 27, [4], noise=100.0) for j in range(12)]
        result = sched.run(jobs)
        dropped = [r for r in result.records if r.dropped]
        assert dropped
        assert {r.drop_stage for r in dropped} <= {"queue-overflow", "dispatch"}
        assert len(result.records) == 12


class TestSanitized:
    def test_full_sanitizer_profile_over_mixed_workload(
        self, mixed_config, mixed_jobs
    ):
        # The das event stream must satisfy every virtual-time invariant
        # (overlap, monotonicity, span nesting, verdict consistency);
        # the attestation report proves the sanitizer actually ran.
        result = run_scheduler(
            "das", mixed_config, mixed_jobs, seed=11, sanitize=True
        )
        assert result.sanitizer_report is not None
        assert result.sanitizer_report["events_checked"] > 0

    def test_deadline_events_carry_service(self, mixed_config, mixed_jobs):
        result = run_scheduler(
            "das", mixed_config, mixed_jobs, seed=11, capture_trace=True
        )
        verdicts = [
            e for e in result.trace_run.events if e.kind == "deadline"
        ]
        assert len(verdicts) == len(mixed_jobs)
        services = {e.args.get("service", "embb") for e in verdicts}
        assert services == {"urllc", "embb", "mmtc"}


class TestVerdictRollup:
    def test_deadline_verdicts_by_class_matches_records(
        self, mixed_config, mixed_jobs
    ):
        from repro.analysis.tracestats import deadline_verdicts_by_class

        result = run_scheduler(
            "das", mixed_config, mixed_jobs, seed=11, capture_trace=True
        )
        rollup = deadline_verdicts_by_class(result.trace_run)
        for service, (hits, misses) in rollup.items():
            records = [r for r in result.records if r.service == service]
            assert hits + misses == len(records)
            assert misses == sum(1 for r in records if r.missed or r.dropped)

    def test_single_class_trace_rolls_up_under_embb(
        self, small_config, small_workload
    ):
        from repro.analysis.tracestats import (
            deadline_verdicts,
            deadline_verdicts_by_class,
        )

        result = run_scheduler(
            "rt-opex", small_config, small_workload, seed=3, capture_trace=True
        )
        rollup = deadline_verdicts_by_class(result.trace_run)
        assert list(rollup) == ["embb"]
        assert rollup["embb"] == deadline_verdicts(result.trace_run)
