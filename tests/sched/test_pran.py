"""Tests for the PRAN-style plan-ahead scheduler."""

import numpy as np

from repro.sched import CRanConfig, PranScheduler, run_scheduler
from repro.timing.iterations import IterationModel

from tests.helpers import make_job


def run_pran(jobs, rtt=500.0, **kwargs):
    cfg = CRanConfig(transport_latency_us=rtt)
    return PranScheduler(cfg, rng=np.random.default_rng(0), **kwargs).run(jobs)


class TestPran:
    def test_light_load_no_misses(self):
        jobs = [make_job(b, j, 5, [1]) for b in range(4) for j in range(5)]
        assert run_pran(jobs).miss_rate() == 0.0

    def test_all_subframes_accounted(self, small_config, small_workload):
        result = run_scheduler("pran", small_config, small_workload)
        assert len(result.records) == len(small_workload)
        assert len({(r.bs_id, r.index) for r in result.records}) == len(small_workload)

    def test_parallelism_beats_serial_on_lone_heavy(self):
        # A single heavy subframe with an idle pool decodes in parallel
        # and meets a deadline the serial baseline would miss.
        jobs = [make_job(0, 0, 27, [4])]
        result = run_pran(jobs)
        record = result.records[0]
        assert not record.missed
        assert record.processing_time_us < jobs[0].serial_time_us

    def test_misprediction_hurts(self):
        # The planner expects E[L]; a channel surprise (every block at
        # Lm on every cell) overruns the plan with no runtime fix.
        surprise = [make_job(b, j, 27, [4]) for b in range(4) for j in range(6)]
        result = run_pran(surprise)
        assert result.miss_rate() > 0.3

    def test_worse_than_rtopex_on_trace(self, small_config, small_workload):
        pran = run_scheduler("pran", small_config, small_workload)
        opex = run_scheduler("rt-opex", small_config, small_workload)
        assert opex.miss_count() <= pran.miss_count()

    def test_deterministic(self, small_config, small_workload):
        a = run_scheduler("pran", small_config, small_workload, seed=4)
        b = run_scheduler("pran", small_config, small_workload, seed=4)
        assert [r.finish_us for r in a.records] == [r.finish_us for r in b.records]

    def test_finish_capped_at_deadline(self, small_config, small_workload):
        result = run_scheduler("pran", small_config, small_workload)
        for r in result.records:
            assert r.finish_us <= r.deadline_us + 1e-6

    def test_custom_iteration_model(self):
        # A pessimistic planner (expects Lm everywhere) plans larger
        # shares but still schedules everything.
        jobs = [make_job(b, j, 20, [2]) for b in range(4) for j in range(3)]
        pessimistic = IterationModel(effort_offset=100.0)  # margin always << 0
        result = run_pran(jobs, iteration_model=pessimistic)
        assert len(result.records) == len(jobs)
