"""Tests for co-scheduling downlink Tx jobs with the uplink workload."""

import numpy as np
import pytest

from repro.sched import CRanConfig, PartitionedScheduler, RtOpexScheduler, build_workload
from repro.sched.base import assigned_core_for, partitioned_core_for
from repro.workload.downlink import build_tx_jobs


@pytest.fixture(scope="module")
def cfg():
    return CRanConfig(transport_latency_us=550.0)


@pytest.fixture(scope="module")
def mixed_jobs(cfg):
    rx = build_workload(cfg, 400, seed=31)
    tx = build_tx_jobs(cfg, 400, seed=31)
    return list(rx) + list(tx)


class TestTxJobConstruction:
    def test_one_tx_job_per_bs_subframe(self, cfg):
        jobs = build_tx_jobs(cfg, 100, seed=1)
        assert len(jobs) == 4 * 99  # subframe 0 has no preceding slot

    def test_tx_arrival_one_subframe_early(self, cfg):
        jobs = build_tx_jobs(cfg, 10, seed=1)
        for job in jobs:
            assert job.arrival_us == (job.subframe.index - 1) * 1000.0

    def test_tx_deadline_before_transmission(self, cfg):
        jobs = build_tx_jobs(cfg, 10, seed=1)
        for job in jobs:
            expected = job.subframe.index * 1000.0 - cfg.transport_latency_us
            assert job.deadline_us == expected

    def test_tx_placed_on_opposite_slot(self, cfg):
        jobs = build_tx_jobs(cfg, 10, seed=1)
        for job in jobs:
            core = assigned_core_for(job, cfg.cores_per_bs)
            rx_core = partitioned_core_for(job.subframe.bs_id, job.subframe.index, 2)
            assert core != rx_core
            assert core // 2 == job.subframe.bs_id  # same basestation pair

    def test_loads_shape_validated(self, cfg):
        with pytest.raises(ValueError):
            build_tx_jobs(cfg, 10, loads=np.ones((2, 10)))


class TestCoScheduling:
    def test_partitioned_handles_mixture(self, cfg, mixed_jobs):
        result = PartitionedScheduler(cfg).run(mixed_jobs)
        assert len(result.records) == len(mixed_jobs)

    def test_rtopex_handles_mixture(self, cfg, mixed_jobs):
        result = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(mixed_jobs)
        assert len(result.records) == len(mixed_jobs)

    def test_tx_jobs_mostly_meet_their_budget(self, cfg, mixed_jobs):
        result = PartitionedScheduler(cfg).run(mixed_jobs)
        tx_records = [r for r in result.records if len(r.iterations) == 0]
        misses = sum(1 for r in tx_records if r.missed)
        assert misses / len(tx_records) < 0.05

    def test_rx_misses_not_inflated_under_partitioned(self, cfg):
        # The offline schedule interleaves Tx into the pre-arrival slot,
        # so uplink behaviour is unchanged.
        rx = build_workload(cfg, 400, seed=31)
        tx = build_tx_jobs(cfg, 400, seed=31)
        alone = PartitionedScheduler(cfg).run(rx)
        mixed = PartitionedScheduler(cfg).run(list(rx) + list(tx))
        rx_mixed = [r for r in mixed.records if len(r.iterations) > 0]
        assert sum(r.missed or r.dropped for r in rx_mixed) == alone.miss_count()

    def test_tx_load_erodes_migration_headroom(self, cfg):
        rx = build_workload(cfg, 400, seed=31)
        tx = build_tx_jobs(cfg, 400, seed=31)
        alone = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(rx)
        mixed = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(list(rx) + list(tx))
        assert (
            mixed.migration_counts()["decode"] < alone.migration_counts()["decode"]
        )

    def test_rtopex_never_migrates_tx_tasks(self, cfg, mixed_jobs):
        result = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(mixed_jobs)
        for r in result.records:
            if len(r.iterations) == 0:  # a Tx record
                assert not r.migrations
