"""Tests for the global (EDF/FIFO) scheduler."""

import numpy as np
import pytest

from repro.sched import CRanConfig, GlobalScheduler
from repro.timing.cache import CacheAffinityModel

from tests.helpers import make_job


def run_global(jobs, cores=8, rtt=500.0, **kwargs):
    cfg = CRanConfig(transport_latency_us=rtt, num_cores=cores)
    return GlobalScheduler(cfg, rng=np.random.default_rng(0), **kwargs).run(jobs)


class TestGlobalScheduler:
    def test_light_load_no_misses(self):
        jobs = [make_job(b, j, 5, [1]) for b in range(4) for j in range(5)]
        result = run_global(jobs)
        assert result.miss_rate() == 0.0

    def test_name_includes_core_count(self):
        result = run_global([make_job(0, 0, 5, [1])], cores=16)
        assert result.scheduler_name == "global-16"

    def test_queueing_on_few_cores(self):
        # Four simultaneous mid-size arrivals on two cores: two queue
        # behind the first pair but still meet their deadlines.
        jobs = [make_job(b, 0, 10, [1]) for b in range(4)]
        result = run_global(jobs, cores=2)
        delays = sorted(r.queue_delay_us for r in result.records)
        assert delays[-1] > 400.0
        assert result.miss_rate() == 0.0

    def test_queued_beyond_deadline_dropped_at_dispatch(self):
        # 8 heavy subframes at once on 1 core: the tail can never make
        # its deadline and is dropped by the dispatcher.
        jobs = [make_job(b % 4, b // 4, 27, [4, 4, 4, 4, 4, 4]) for b in range(8)]
        result = run_global(jobs, cores=1)
        assert any(r.drop_stage == "dispatch" for r in result.records)

    def test_all_subframes_accounted_once(self):
        jobs = [make_job(b, j, 13, [2, 2, 2]) for b in range(4) for j in range(10)]
        result = run_global(jobs, cores=4)
        assert len(result.records) == len(jobs)
        keys = {(r.bs_id, r.index) for r in result.records}
        assert len(keys) == len(jobs)

    def test_cache_penalty_recorded(self):
        jobs = [make_job(b, j, 13, [2, 2, 2]) for b in range(4) for j in range(6)]
        result = run_global(jobs, cores=8)
        penalties = [r.cache_penalty_us for r in result.records if not r.dropped]
        assert max(penalties) > 0.0

    def test_zero_cache_model_removes_penalties(self):
        cache = CacheAffinityModel(cold_penalty_low_us=0.0, cold_penalty_high_us=0.0)
        jobs = [make_job(b, j, 13, [2, 2, 2]) for b in range(4) for j in range(6)]
        result = run_global(jobs, cores=8, cache_model=cache)
        assert all(r.cache_penalty_us == 0.0 for r in result.records)

    def test_dispatch_overhead_delays_start(self):
        job = make_job(0, 0, 5, [1])
        result = run_global([job], dispatch_overhead_us=25.0)
        record = result.records[0]
        assert record.start_us == pytest.approx(job.arrival_us + 25.0)

    def test_edf_order_for_distinct_deadlines(self):
        # Same arrival burst, one subframe from an earlier index: it has
        # the earlier deadline and must dispatch first on the single core.
        late = make_job(0, 1, 13, [2, 2, 2])
        early = make_job(1, 0, 13, [2, 2, 2], rtt=1500.0)  # arrives with late
        result = run_global([late, early], cores=1)
        by_key = {(r.bs_id, r.index): r for r in result.records}
        assert by_key[(1, 0)].start_us <= by_key[(0, 1)].start_us

    def test_terminated_at_deadline(self):
        jobs = [make_job(0, 0, 27, [4, 4, 4, 4, 4, 4], rtt=700.0)]
        result = run_global(jobs, rtt=700.0)
        record = result.records[0]
        assert record.missed
        assert record.finish_us <= record.deadline_us

    def test_queue_overflow_drops_oldest(self):
        jobs = [make_job(b % 4, b // 4, 27, [4] * 6) for b in range(12)]
        cfg = CRanConfig(transport_latency_us=500.0, num_cores=1)
        result = GlobalScheduler(
            cfg, rng=np.random.default_rng(0), queue_capacity=2
        ).run(jobs)
        assert any(r.drop_stage == "queue-overflow" for r in result.records)

    def test_more_cores_do_not_reduce_cache_misses(self, small_config, small_workload):
        # The Fig. 19 mechanism: wider scatter means colder caches.
        mean_penalty = {}
        for cores in (8, 16):
            cfg = CRanConfig(transport_latency_us=500.0, num_cores=cores)
            result = GlobalScheduler(cfg, rng=np.random.default_rng(1)).run(small_workload)
            penalties = [r.cache_penalty_us for r in result.records]
            mean_penalty[cores] = float(np.mean(penalties))
        assert mean_penalty[16] >= mean_penalty[8]
