"""Tests for workload construction and the scheduler entry points."""

import numpy as np
import pytest

from repro.sched import build_workload, run_scheduler
from repro.sched.runner import compare_schedulers


class TestBuildWorkload:
    def test_job_count(self, small_config):
        jobs = build_workload(small_config, 100, seed=1)
        assert len(jobs) == 4 * 100

    def test_reproducible(self, small_config):
        a = build_workload(small_config, 50, seed=1)
        b = build_workload(small_config, 50, seed=1)
        assert [j.work.iterations for j in a] == [j.work.iterations for j in b]
        assert [j.noise_us for j in a] == [j.noise_us for j in b]

    def test_seed_changes_workload(self, small_config):
        a = build_workload(small_config, 50, seed=1)
        b = build_workload(small_config, 50, seed=2)
        assert [j.subframe.grant.mcs for j in a] != [j.subframe.grant.mcs for j in b]

    def test_arrival_times(self, small_config):
        jobs = build_workload(small_config, 10, seed=1)
        for job in jobs:
            expected = job.subframe.index * 1000.0 + small_config.transport_latency_us
            assert job.arrival_us == expected

    def test_explicit_loads(self, small_config):
        loads = np.full((4, 20), 1.0)
        jobs = build_workload(small_config, 20, seed=1, loads=loads)
        assert all(j.subframe.grant.mcs == 27 for j in jobs)

    def test_loads_shape_validated(self, small_config):
        with pytest.raises(ValueError):
            build_workload(small_config, 20, loads=np.ones((2, 20)))

    def test_transport_jitter(self, small_config):
        jitter = np.full((4, 10), 25.0)
        jobs = build_workload(small_config, 10, seed=1, transport_jitter=jitter)
        for job in jobs:
            assert job.subframe.transport_latency_us == pytest.approx(
                small_config.transport_latency_us + 25.0
            )

    def test_jitter_shape_validated(self, small_config):
        with pytest.raises(ValueError):
            build_workload(small_config, 10, transport_jitter=np.ones((4, 5)))

    def test_iterations_match_code_blocks(self, small_config):
        jobs = build_workload(small_config, 30, seed=1)
        for job in jobs:
            assert len(job.work.iterations) == job.subframe.grant.code_blocks

    def test_noise_nonnegative(self, small_config):
        jobs = build_workload(small_config, 30, seed=1)
        assert all(j.noise_us >= 0 for j in jobs)


class TestRunScheduler:
    def test_unknown_scheduler(self, small_config, small_workload):
        with pytest.raises(ValueError):
            run_scheduler("round-robin", small_config, small_workload)

    def test_all_names_resolve(self, small_config, small_workload):
        for name in ("partitioned", "global", "rt-opex", "rtopex"):
            result = run_scheduler(name, small_config, small_workload)
            assert len(result.records) == len(small_workload)

    def test_compare_is_paired(self, small_config, small_workload):
        results = compare_schedulers(small_config, small_workload)
        sizes = {len(r.records) for r in results.values()}
        assert sizes == {len(small_workload)}

    def test_paper_ordering_holds(self, small_config, small_workload):
        # partitioned >= rt-opex in misses; global >= partitioned.
        results = compare_schedulers(small_config, small_workload)
        assert results["rt-opex"].miss_count() <= results["partitioned"].miss_count()
        assert results["global"].miss_count() >= results["partitioned"].miss_count() - 2
