"""Tests for the alternative migration planners (work-stealing ablation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sched import CRanConfig, RtOpexScheduler, build_workload
from repro.sched.migration import plan_migrate_all, plan_migration, plan_steal_half

windows = st.lists(
    st.tuples(st.integers(0, 15), st.floats(0.0, 5000.0, allow_nan=False)),
    min_size=0,
    max_size=6,
    unique_by=lambda item: item[0],
)


class TestStealHalf:
    def test_single_core_takes_half(self):
        decision = plan_steal_half(6, 100.0, 20.0, [(0, 100_000.0)])
        assert decision.assignments == ((0, 3),)

    def test_second_core_takes_half_of_remainder(self):
        decision = plan_steal_half(8, 100.0, 20.0, [(0, 1e6), (1, 1e6)])
        assert decision.assignments == ((0, 4), (1, 2))
        assert decision.local_subtasks == 2

    def test_respects_r1(self):
        decision = plan_steal_half(8, 100.0, 20.0, [(0, 230.0)])
        assert decision.assignments == ((0, 1),)

    @given(st.integers(0, 64), st.floats(0.1, 500.0), st.floats(0.0, 60.0), windows)
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_bounds(self, p, tp, delta, free):
        decision = plan_steal_half(p, tp, delta, free)
        assert decision.local_subtasks + decision.migrated_subtasks == p
        if p >= 1:
            assert decision.local_subtasks >= 1


class TestMigrateAll:
    def test_ships_everything_but_one(self):
        decision = plan_migrate_all(6, 100.0, 20.0, [(0, 1e6)])
        assert decision.assignments == ((0, 5),)
        assert decision.local_subtasks == 1

    def test_can_overload_a_single_helper(self):
        # The pathology R2/R3 prevent: one helper holds more than local.
        decision = plan_migrate_all(6, 100.0, 20.0, [(0, 1e6)])
        assert max(c for _, c in decision.assignments) > decision.local_subtasks

    @given(st.integers(0, 64), st.floats(0.1, 500.0), st.floats(0.0, 60.0), windows)
    @settings(max_examples=200, deadline=None)
    def test_conservation(self, p, tp, delta, free):
        decision = plan_migrate_all(p, tp, delta, free)
        assert decision.local_subtasks + decision.migrated_subtasks == p

    @given(st.integers(1, 64), st.floats(0.1, 500.0), st.floats(0.0, 60.0), windows)
    @settings(max_examples=200, deadline=None)
    def test_ships_at_least_as_much_as_alg1(self, p, tp, delta, free):
        guarded = plan_migration(p, tp, delta, free)
        greedy = plan_migrate_all(p, tp, delta, free)
        assert greedy.migrated_subtasks >= guarded.migrated_subtasks


class TestPlannerEndToEnd:
    @pytest.fixture(scope="class")
    def setup(self):
        cfg = CRanConfig(transport_latency_us=600.0)
        jobs = build_workload(cfg, 800, seed=13)
        return cfg, jobs

    @pytest.mark.parametrize("planner", [plan_steal_half, plan_migrate_all])
    def test_alternative_planners_run_clean(self, setup, planner):
        cfg, jobs = setup
        result = RtOpexScheduler(
            cfg, rng=np.random.default_rng(0), planner=planner
        ).run(jobs)
        assert len(result.records) == len(jobs)
        for r in result.records:
            assert r.finish_us <= r.deadline_us + 1e-6

    def test_alg1_not_worse_than_alternatives(self, setup):
        cfg, jobs = setup
        misses = {}
        for name, planner in (
            ("alg1", None),
            ("steal", plan_steal_half),
            ("all", plan_migrate_all),
        ):
            kwargs = {} if planner is None else {"planner": planner}
            result = RtOpexScheduler(
                cfg, rng=np.random.default_rng(0), **kwargs
            ).run(jobs)
            misses[name] = result.miss_count()
        assert misses["alg1"] <= misses["steal"]
        assert misses["alg1"] <= misses["all"]
