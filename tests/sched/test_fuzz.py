"""Property-based fuzzing of the schedulers over random job sets.

These tests generate arbitrary (but valid) workloads and check the
invariants every scheduler must uphold regardless of load pattern:
conservation, causality, deadline enforcement, and RT-OPEX's
no-worse-than-baseline guarantee.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sched import (
    CRanConfig,
    GlobalScheduler,
    PartitionedScheduler,
    PranScheduler,
    RtOpexScheduler,
)

from tests.helpers import make_job

# A workload: per (bs, subframe) an (mcs, iteration) pair.
job_specs = st.lists(
    st.tuples(
        st.integers(0, 3),  # bs
        st.integers(0, 9),  # subframe index
        st.integers(0, 27),  # mcs
        st.integers(1, 4),  # iterations for every code block
    ),
    min_size=1,
    max_size=40,
    unique_by=lambda s: (s[0], s[1]),
)

rtts = st.sampled_from([400.0, 550.0, 700.0])


def build_jobs(specs, rtt):
    return [make_job(bs, idx, mcs, [l], rtt=rtt) for bs, idx, mcs, l in specs]


def check_invariants(result, jobs):
    assert len(result.records) == len(jobs)
    keys = sorted((r.bs_id, r.index) for r in result.records)
    assert keys == sorted((j.subframe.bs_id, j.subframe.index) for j in jobs)
    for r in result.records:
        if not np.isnan(r.finish_us):
            assert r.finish_us >= r.start_us - 1e-9
            assert r.finish_us <= r.deadline_us + 1e-6
        if not (r.missed or r.dropped):
            assert r.finish_us <= r.deadline_us + 1e-6


class TestSchedulerFuzz:
    @given(job_specs, rtts)
    @settings(max_examples=60, deadline=None)
    def test_partitioned_invariants(self, specs, rtt):
        jobs = build_jobs(specs, rtt)
        cfg = CRanConfig(transport_latency_us=rtt)
        check_invariants(PartitionedScheduler(cfg).run(jobs), jobs)

    @given(job_specs, rtts)
    @settings(max_examples=40, deadline=None)
    def test_global_invariants(self, specs, rtt):
        jobs = build_jobs(specs, rtt)
        cfg = CRanConfig(transport_latency_us=rtt, num_cores=8)
        result = GlobalScheduler(cfg, rng=np.random.default_rng(0)).run(jobs)
        check_invariants(result, jobs)

    @given(job_specs, rtts)
    @settings(max_examples=40, deadline=None)
    def test_rtopex_invariants(self, specs, rtt):
        jobs = build_jobs(specs, rtt)
        cfg = CRanConfig(transport_latency_us=rtt)
        result = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(jobs)
        check_invariants(result, jobs)

    @given(job_specs, rtts)
    @settings(max_examples=30, deadline=None)
    def test_pran_invariants(self, specs, rtt):
        jobs = build_jobs(specs, rtt)
        cfg = CRanConfig(transport_latency_us=rtt)
        result = PranScheduler(cfg, rng=np.random.default_rng(0)).run(jobs)
        check_invariants(result, jobs)

    @given(job_specs, rtts)
    @settings(max_examples=40, deadline=None)
    def test_rtopex_never_worse_than_partitioned(self, specs, rtt):
        # The paper's central guarantee, fuzzed: across arbitrary
        # workloads RT-OPEX must not miss more than the partitioned
        # baseline it builds on (modulo its noisier helpers: allow the
        # rare single extra miss from a recovery landing on the line).
        jobs = build_jobs(specs, rtt)
        cfg = CRanConfig(transport_latency_us=rtt)
        part = PartitionedScheduler(cfg).run(jobs)
        opex = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(jobs)
        assert opex.miss_count() <= part.miss_count() + 1

    @given(job_specs)
    @settings(max_examples=20, deadline=None)
    def test_helpers_never_delayed_by_migration(self, specs):
        jobs = build_jobs(specs, 500.0)
        cfg = CRanConfig(transport_latency_us=500.0)
        result = RtOpexScheduler(cfg, rng=np.random.default_rng(0)).run(jobs)
        for r in result.records:
            assert r.queue_delay_us == 0.0
