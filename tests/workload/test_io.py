"""Tests for trace persistence."""

import numpy as np
import pytest

from repro.workload.io import (
    load_traces_csv,
    load_traces_npz,
    save_traces_csv,
    save_traces_npz,
)
from repro.workload.traces import CellularTraceGenerator


@pytest.fixture
def traces():
    return CellularTraceGenerator(seed=9).generate(100)


class TestNpz:
    def test_round_trip(self, traces, tmp_path):
        path = tmp_path / "traces.npz"
        save_traces_npz(path, traces)
        loaded = load_traces_npz(path)
        assert np.array_equal(loaded, traces)

    def test_missing_key(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            load_traces_npz(path)

    def test_validation_on_save(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces_npz(tmp_path / "x.npz", np.full((2, 5), 1.5))
        with pytest.raises(ValueError):
            save_traces_npz(tmp_path / "x.npz", np.zeros(5))


class TestCsv:
    def test_round_trip(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(path, traces)
        loaded = load_traces_csv(path)
        assert loaded.shape == traces.shape
        assert np.allclose(loaded, traces, atol=1e-6)

    def test_header_names(self, traces, tmp_path):
        path = tmp_path / "traces.csv"
        save_traces_csv(path, traces)
        header = path.read_text().splitlines()[0]
        assert header == "bs0,bs1,bs2,bs3"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_traces_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("bs0,bs1\n")
        with pytest.raises(ValueError):
            load_traces_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("bs0,bs1\n0.5,0.5\n0.4\n")
        with pytest.raises(ValueError):
            load_traces_csv(path)

    def test_ragged_error_reports_widths(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("bs0,bs1\n0.5,0.5\n0.4\n")
        with pytest.raises(ValueError, match=r"2 columns.*\[1, 2\]"):
            load_traces_csv(path)

    def test_round_trip_preserves_six_decimals(self, traces, tmp_path):
        # The CSV writer emits %.6f, so the round trip must be exact to
        # half an ulp of the sixth decimal — not merely "close".
        path = tmp_path / "traces.csv"
        save_traces_csv(path, traces)
        loaded = load_traces_csv(path)
        assert np.abs(loaded - traces).max() <= 5e-7


class TestHeaderlessCsv:
    """Regression tests: a headerless export must not lose its first row.

    The loader used to unconditionally treat row 1 as the ``bs0,bs1,...``
    header, silently swallowing the first subframe of every headerless
    trace.
    """

    def test_first_row_is_data(self, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("0.125,0.5\n0.25,0.75\n0.375,1.0\n")
        loaded = load_traces_csv(path)
        assert loaded.shape == (2, 3)  # all three subframes survive
        assert np.array_equal(loaded[:, 0], [0.125, 0.5])

    def test_headerless_round_trips_against_headered(self, traces, tmp_path):
        headered = tmp_path / "headered.csv"
        save_traces_csv(headered, traces)
        headerless = tmp_path / "headerless.csv"
        headerless.write_text(
            "".join(headered.read_text().splitlines(keepends=True)[1:])
        )
        assert np.array_equal(
            load_traces_csv(headerless), load_traces_csv(headered)
        )

    def test_single_column_headerless(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("0.1\n0.2\n")
        assert load_traces_csv(path).shape == (1, 2)

    def test_non_numeric_cell_positions_reported(self, tmp_path):
        # Error messages must name the 1-based row and column so a
        # megabyte-sized export is debuggable.
        path = tmp_path / "bad.csv"
        path.write_text("bs0,bs1\n0.5,0.5\n0.4,oops\n")
        with pytest.raises(ValueError, match="'oops' at row 3, column 2"):
            load_traces_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("bs0,bs1\n0.5,0.5\n\n0.4,0.6\n")
        assert load_traces_csv(path).shape == (2, 2)

    def test_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "range.csv"
        path.write_text("bs0\n1.5\n")
        with pytest.raises(ValueError):
            load_traces_csv(path)

    def test_loaded_traces_drive_workload(self, traces, tmp_path):
        # End-to-end: a persisted trace feeds build_workload unchanged.
        from repro.sched import CRanConfig, build_workload

        path = tmp_path / "traces.csv"
        save_traces_csv(path, traces)
        loaded = load_traces_csv(path)
        cfg = CRanConfig(transport_latency_us=500.0)
        jobs = build_workload(cfg, traces.shape[1], seed=1, loads=loaded)
        assert len(jobs) == traces.size
