"""Tests for the cellular trace generator and measurement emulation."""

import numpy as np
import pytest

from repro.workload.traces import (
    BasestationTraceConfig,
    CellularTraceGenerator,
    default_basestation_configs,
    measure_load_from_energy,
    synthesize_downlink_energy,
)


class TestTraceGenerator:
    def test_shape(self):
        traces = CellularTraceGenerator(seed=1).generate(500)
        assert traces.shape == (4, 500)

    def test_bounds(self):
        traces = CellularTraceGenerator(seed=1).generate(5000)
        assert traces.min() >= 0.0
        assert traces.max() <= 1.0

    def test_reproducible(self):
        a = CellularTraceGenerator(seed=5).generate(200)
        b = CellularTraceGenerator(seed=5).generate(200)
        assert np.array_equal(a, b)

    def test_seed_changes_trace(self):
        a = CellularTraceGenerator(seed=5).generate(200)
        b = CellularTraceGenerator(seed=6).generate(200)
        assert not np.array_equal(a, b)

    def test_basestations_differ(self):
        traces = CellularTraceGenerator(seed=1).generate(2000)
        assert not np.array_equal(traces[0], traces[1])

    def test_mean_loads_track_configs(self):
        traces = CellularTraceGenerator(seed=3).generate(30_000)
        configs = default_basestation_configs()
        for i, cfg in enumerate(configs):
            assert traces[i].mean() == pytest.approx(cfg.mean, abs=0.12)

    def test_cdfs_fan_out(self):
        # Fig. 14: the hot cell's load is stochastically larger.
        traces = CellularTraceGenerator(seed=3).generate(30_000)
        assert traces[0].mean() > traces[3].mean()

    def test_subframe_scale_variation(self):
        # Fig. 1: consecutive subframes differ considerably.
        traces = CellularTraceGenerator(seed=3).generate(10_000)
        diffs = np.abs(np.diff(traces[0]))
        assert diffs.mean() > 0.05

    def test_temporal_correlation_exists(self):
        # The slow component makes nearby subframes more similar than
        # distant ones.
        trace = CellularTraceGenerator(seed=3).generate(30_000)[0]
        centered = trace - trace.mean()
        near = np.corrcoef(centered[:-10], centered[10:])[0, 1]
        far = np.corrcoef(centered[:-3000], centered[3000:])[0, 1]
        assert near > far

    def test_custom_configs(self):
        configs = [BasestationTraceConfig(mean=0.9, slow_std=0.01, fast_std=0.01)]
        traces = CellularTraceGenerator(configs, seed=1).generate(5000)
        assert traces.shape[0] == 1
        assert traces.mean() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            BasestationTraceConfig(mean=1.5)
        with pytest.raises(ValueError):
            BasestationTraceConfig(slow_std=-0.1)
        with pytest.raises(ValueError):
            BasestationTraceConfig(correlation_ms=0.0)
        with pytest.raises(ValueError):
            CellularTraceGenerator([], seed=1)
        with pytest.raises(ValueError):
            CellularTraceGenerator(seed=1).generate(0)


class TestEnergyMeasurement:
    def test_round_trip_recovers_load(self, rng):
        # Close the paper's methodology loop: synthesize RF whose energy
        # follows a known load, then re-estimate the load from energy.
        load = np.clip(rng.uniform(0.1, 1.0, 200), 0, 1)
        load[17] = 1.0  # pin the normalization reference
        capture = synthesize_downlink_energy(load, samples_per_ms=512, rng=rng, snr_db=30.0)
        estimated = measure_load_from_energy(capture, samples_per_ms=512)
        assert np.corrcoef(load, estimated)[0, 1] > 0.98

    def test_output_range(self, rng):
        capture = synthesize_downlink_energy(np.linspace(0, 1, 50), 256, rng)
        estimated = measure_load_from_energy(capture, 256)
        assert estimated.min() >= 0.0
        assert estimated.max() == pytest.approx(1.0)

    def test_noise_floor_subtraction(self, rng):
        capture = synthesize_downlink_energy(np.zeros(20), 256, rng, snr_db=10.0)
        raw = measure_load_from_energy(capture, 256)
        floored = measure_load_from_energy(capture, 256, noise_floor=10.0)
        assert floored.sum() <= raw.sum()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            measure_load_from_energy(np.ones(10), 0)
        with pytest.raises(ValueError):
            measure_load_from_energy(np.ones(3), 10)

    def test_zero_capture(self):
        estimated = measure_load_from_energy(np.zeros(1000), 100)
        assert not estimated.any()
