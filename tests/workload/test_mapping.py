"""Tests for the load-to-grant mapping."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workload.mapping import GrantMapper


@pytest.fixture
def mapper():
    return GrantMapper()


class TestGrantMapper:
    def test_full_load_is_peak_mcs(self, mapper):
        assert mapper.mcs_for_load(1.0) == 27

    def test_zero_load_is_mcs0(self, mapper):
        assert mapper.mcs_for_load(0.0) == 0

    @given(st.floats(0.0, 1.0, allow_nan=False))
    def test_mcs_in_range(self, load):
        mcs = GrantMapper().mcs_for_load(load)
        assert 0 <= mcs <= 27

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    def test_monotone(self, a, b):
        mapper = GrantMapper()
        lo, hi = sorted((a, b))
        assert mapper.mcs_for_load(lo) <= mapper.mcs_for_load(hi)

    def test_out_of_range_rejected(self, mapper):
        with pytest.raises(ValueError):
            mapper.mcs_for_load(1.5)
        with pytest.raises(ValueError):
            mapper.mcs_for_load(-0.1)

    def test_grant_carries_antennas_and_prbs(self):
        mapper = GrantMapper(num_prbs=25, num_antennas=4)
        grant = mapper.grant_for_load(0.5)
        assert grant.num_prbs == 25
        assert grant.num_antennas == 4

    def test_grant_throughput_covers_load(self, mapper):
        # The grant's nominal rate must cover the offered load fraction.
        from repro.lte.mcs import throughput_mbps

        peak = throughput_mbps(27, 50)
        for load in (0.1, 0.4, 0.7, 0.95):
            grant = mapper.grant_for_load(load)
            assert throughput_mbps(grant.mcs, 50) >= load * peak - 1e-9

    def test_mcs_cap(self):
        mapper = GrantMapper(mcs_cap=20)
        assert mapper.mcs_for_load(1.0) == 20

    def test_trace_vectorization(self, mapper):
        grants = mapper.grants_for_trace(np.array([0.0, 0.5, 1.0]))
        assert len(grants) == 3
        assert grants[0].mcs == 0
        assert grants[2].mcs == 27
