"""Tests for mixed-service traffic classes, burst envelopes, builders."""

import numpy as np
import pytest

from repro.constants import RX_BUDGET_US
from repro.sched import CRanConfig, build_workload
from repro.sim.rng import RngStreams
from repro.workload.bursty import (
    FLASH_CROWD_FLOOR,
    FLASH_CROWD_PEAK,
    burst_envelope,
    diurnal_ramp_envelope,
    flash_crowd_envelope,
    shape_loads,
    steady_envelope,
)
from repro.workload.classes import (
    DEFAULT_MIXED_SPEC,
    STANDARD_CLASSES,
    ServiceClass,
    ServiceMix,
    parse_class_spec,
    single_class_mix,
)
from repro.workload.mixed import build_mixed_workload, mixed_loads


class TestServiceClass:
    def test_standard_budget_ordering(self):
        # The class taxonomy's raison d'etre: budgets differ and order.
        assert (
            STANDARD_CLASSES["urllc"].delay_budget_us
            < STANDARD_CLASSES["embb"].delay_budget_us
            < STANDARD_CLASSES["mmtc"].delay_budget_us
        )
        assert STANDARD_CLASSES["embb"].delay_budget_us == RX_BUDGET_US

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceClass("", delay_budget_us=1000.0, share=0.5)
        with pytest.raises(ValueError):
            ServiceClass("x", delay_budget_us=0.0, share=0.5)
        with pytest.raises(ValueError):
            ServiceClass("x", delay_budget_us=1000.0, share=1.5)
        with pytest.raises(ValueError):
            ServiceClass("x", delay_budget_us=1000.0, share=0.5, burst="nope")
        with pytest.raises(ValueError):
            ServiceClass("x", delay_budget_us=1000.0, share=0.5, load_scale=0.0)


class TestServiceMix:
    def test_shares_must_sum_to_one(self):
        a = ServiceClass("a", 1000.0, 0.5)
        b = ServiceClass("b", 2000.0, 0.2)
        with pytest.raises(ValueError, match="sum to 1"):
            ServiceMix((a, b))

    def test_duplicate_names_rejected(self):
        a = ServiceClass("a", 1000.0, 0.5)
        a2 = ServiceClass("a", 2000.0, 0.5)
        with pytest.raises(ValueError, match="duplicate"):
            ServiceMix((a, a2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ServiceMix(())

    def test_accessors(self):
        mix = parse_class_spec("urllc:0.25,embb:0.75")
        assert mix.names == ("urllc", "embb")
        assert not mix.is_single_class
        assert mix.by_name("urllc").burst == "flash-crowd"
        assert mix.budgets()["embb"] == RX_BUDGET_US
        with pytest.raises(KeyError):
            mix.by_name("mmtc")

    def test_spec_round_trips(self):
        mix = parse_class_spec("urllc:0.2,embb:0.5,mmtc:0.3")
        assert parse_class_spec(mix.spec()) == mix

    def test_single_class_mix(self):
        mix = single_class_mix()
        assert mix.is_single_class
        assert mix.classes[0].name == "embb"
        assert mix.classes[0].share == 1.0
        with pytest.raises(ValueError):
            single_class_mix("volte")


class TestAssign:
    def test_single_class_consumes_no_randomness(self):
        # The byte-identity guarantee: a degenerate mix must leave the
        # stream exactly where it found it.
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        single_class_mix().assign(4, 100, rng_a)
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_assignment_shape_and_range(self):
        mix = parse_class_spec(DEFAULT_MIXED_SPEC)
        out = mix.assign(4, 500, np.random.default_rng(1))
        assert out.shape == (4, 500)
        assert set(np.unique(out)) <= {0, 1, 2}

    def test_assignment_tracks_shares(self):
        mix = parse_class_spec("urllc:0.2,embb:0.5,mmtc:0.3")
        out = mix.assign(4, 5000, np.random.default_rng(1))
        freqs = np.bincount(out.ravel(), minlength=3) / out.size
        assert freqs == pytest.approx([0.2, 0.5, 0.3], abs=0.02)

    def test_assignment_deterministic(self):
        mix = parse_class_spec(DEFAULT_MIXED_SPEC)
        a = mix.assign(4, 200, np.random.default_rng(9))
        b = mix.assign(4, 200, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestParseClassSpec:
    def test_whitespace_and_case_tolerant(self):
        mix = parse_class_spec(" URLLC:0.5 , embb:0.5 ")
        assert mix.names == ("urllc", "embb")

    def test_zero_share_entries_dropped(self):
        mix = parse_class_spec("urllc:0,embb:1.0")
        assert mix.names == ("embb",)

    @pytest.mark.parametrize(
        "spec, needle",
        [
            ("", "empty"),
            ("   ", "empty"),
            ("embb:0.5,,urllc:0.5", "position 1"),
            ("embb", "not <class>:<share>"),
            ("volte:1.0", "unknown service class 'volte'"),
            ("embb:lots", "non-numeric share"),
            ("embb:-0.5", "negative share"),
            ("embb:0,urllc:0", "no class with a positive share"),
        ],
    )
    def test_malformed_specs_name_the_problem(self, spec, needle):
        with pytest.raises(ValueError, match=needle):
            parse_class_spec(spec)

    def test_error_carries_entry_position(self):
        with pytest.raises(ValueError, match="position 2"):
            parse_class_spec("urllc:0.5,embb:0.4,volte:0.1")


class TestEnvelopes:
    def test_steady_is_identity(self):
        assert np.array_equal(steady_envelope(50), np.ones(50))

    def test_steady_consumes_no_randomness(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        burst_envelope("steady", 100, rng_a)
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)

    def test_flash_crowd_bounds(self):
        env = flash_crowd_envelope(5000, np.random.default_rng(2))
        assert env.min() == FLASH_CROWD_FLOOR
        assert FLASH_CROWD_FLOOR <= env.max() <= FLASH_CROWD_PEAK
        # With 5000 subframes and a 200-sf period, bursts do occur.
        assert env.max() > 1.0

    def test_flash_crowd_spikes_are_local(self):
        env = flash_crowd_envelope(5000, np.random.default_rng(2))
        # Bursty by construction: most of the time is quiet floor.
        assert np.mean(env == FLASH_CROWD_FLOOR) > 0.5

    def test_diurnal_bounds_and_smoothness(self):
        env = diurnal_ramp_envelope(2000, np.random.default_rng(4))
        assert env.min() >= 1.0 - 0.6 - 1e-9
        assert env.max() <= 1.0 + 0.6 + 1e-9
        assert np.abs(np.diff(env)).max() < 0.01  # slow ramp, no jumps

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            burst_envelope("tidal", 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            flash_crowd_envelope(0, np.random.default_rng(0))

    def test_shape_loads_clips_and_broadcasts(self):
        base = np.full((2, 4), 0.5)
        env = np.array([0.5, 1.0, 2.0, 4.0])
        shaped = shape_loads(base, env, load_scale=1.0)
        assert shaped.shape == (2, 4)
        assert np.array_equal(shaped[0], [0.25, 0.5, 1.0, 1.0])  # clipped
        with pytest.raises(ValueError):
            shape_loads(base, np.ones(3), 1.0)
        with pytest.raises(ValueError):
            shape_loads(base[0], env, 1.0)


class TestMixedWorkload:
    @pytest.fixture(scope="class")
    def config(self):
        return CRanConfig(transport_latency_us=500.0)

    def test_single_class_mix_is_byte_identical(self, config):
        # The acceptance bar: the degenerate mix takes the fast path and
        # produces the exact jobs the classic builder makes.
        plain = build_workload(config, 80, seed=7)
        mixed = build_mixed_workload(
            config, 80, mix=single_class_mix(), seed=7
        )
        assert mixed == plain

    def test_default_mix_is_single_class(self, config):
        assert build_mixed_workload(config, 40, seed=7) == build_workload(
            config, 40, seed=7
        )

    def test_jobs_carry_class_tags_and_budgets(self, config):
        mix = parse_class_spec(DEFAULT_MIXED_SPEC)
        jobs = build_mixed_workload(config, 120, mix=mix, seed=7)
        seen = set()
        for job in jobs:
            seen.add(job.service)
            cls = mix.by_name(job.service)
            assert job.subframe.grant.service == job.service
            assert job.deadline_us == pytest.approx(
                job.subframe.air_time_us + cls.delay_budget_us
            )
        assert seen == {"urllc", "embb", "mmtc"}

    def test_deterministic(self, config):
        mix = parse_class_spec(DEFAULT_MIXED_SPEC)
        a = build_mixed_workload(config, 60, mix=mix, seed=5)
        b = build_mixed_workload(config, 60, mix=mix, seed=5)
        assert a == b

    def test_budget_must_clear_transport(self, config):
        tight = ServiceMix((ServiceClass("urllc", 400.0, 1.0),))
        with pytest.raises(ValueError, match="transport latency"):
            build_mixed_workload(config, 10, mix=tight, seed=1)

    def test_loads_shape_validated(self, config):
        with pytest.raises(ValueError, match="shaped"):
            build_mixed_workload(
                config, 10, mix=single_class_mix(), seed=1,
                loads=np.zeros((2, 10)),
            )

    def test_mixed_loads_stream_isolation(self):
        # Shaping draws only from its own streams: the iteration stream
        # is untouched whether or not a mix is applied.
        streams_before = RngStreams(11).stream("iterations")
        ref = streams_before.integers(0, 1 << 30)
        mix = parse_class_spec(DEFAULT_MIXED_SPEC)
        mixed_loads(mix, np.full((4, 50), 0.5), seed=11)
        streams_after = RngStreams(11).stream("iterations")
        assert streams_after.integers(0, 1 << 30) == ref

    def test_mixed_loads_shapes_per_class(self):
        mix = parse_class_spec("urllc:0.5,mmtc:0.5")
        base = np.full((4, 400), 0.8)
        assignment, shaped = mixed_loads(mix, base, seed=3)
        assert assignment.shape == shaped.shape == base.shape
        # Both classes carry small payloads (load_scale << 1), so the
        # shaped matrix is lighter than the broadband base on average
        # even though flash-crowd peaks can exceed it locally.
        assert shaped.mean() < base.mean()
        assert not np.array_equal(shaped, base)
        assert (shaped >= 0.0).all() and (shaped <= 1.0).all()
