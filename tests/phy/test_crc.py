"""Tests for the CRC implementations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.crc import attach_crc, crc16, crc24a, crc24b, crc_check

bits_strategy = st.lists(st.integers(0, 1), min_size=1, max_size=200).map(
    lambda b: np.array(b, dtype=np.uint8)
)


class TestCrcBasics:
    def test_crc24a_width(self):
        assert crc24a(np.zeros(40, dtype=np.uint8)).size == 24

    def test_crc24b_width(self):
        assert crc24b(np.ones(40, dtype=np.uint8)).size == 24

    def test_crc16_width(self):
        assert crc16(np.ones(16, dtype=np.uint8)).size == 16

    def test_all_zero_payload_has_zero_crc(self):
        # CRC of an all-zero message is zero for these polynomials.
        assert not crc24a(np.zeros(64, dtype=np.uint8)).any()

    def test_different_payloads_different_crcs(self):
        a = np.zeros(40, dtype=np.uint8)
        b = a.copy()
        b[0] = 1
        assert not np.array_equal(crc24a(a), crc24a(b))

    def test_24a_and_24b_differ(self):
        payload = np.ones(40, dtype=np.uint8)
        assert not np.array_equal(crc24a(payload), crc24b(payload))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            crc24a(np.zeros((4, 4), dtype=np.uint8))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            attach_crc(np.zeros(8, dtype=np.uint8), "32")
        with pytest.raises(ValueError):
            crc_check(np.zeros(40, dtype=np.uint8), "bogus")


class TestCrcRoundTrip:
    @given(bits_strategy, st.sampled_from(["24a", "24b", "16"]))
    def test_attach_then_check_passes(self, bits, kind):
        assert crc_check(attach_crc(bits, kind), kind)

    @given(bits_strategy, st.sampled_from(["24a", "24b"]), st.data())
    def test_single_bit_flip_detected(self, bits, kind, data):
        coded = attach_crc(bits, kind)
        pos = data.draw(st.integers(0, coded.size - 1))
        corrupted = coded.copy()
        corrupted[pos] ^= 1
        assert not crc_check(corrupted, kind)

    @given(bits_strategy)
    def test_burst_error_detected(self, bits):
        # CRC-24 detects any burst shorter than 24 bits.
        coded = attach_crc(bits, "24a")
        corrupted = coded.copy()
        start = min(3, corrupted.size - 8)
        corrupted[start : start + 8] ^= 1
        assert not crc_check(corrupted, "24a")

    def test_too_short_message_fails_check(self):
        assert not crc_check(np.zeros(10, dtype=np.uint8), "24a")

    def test_check_is_pure(self):
        coded = attach_crc(np.ones(30, dtype=np.uint8), "24a")
        before = coded.copy()
        crc_check(coded, "24a")
        assert np.array_equal(coded, before)
