"""Integration tests for the full uplink transmit/receive chain."""

import numpy as np
import pytest

from repro.lte.subframe import UplinkGrant
from repro.phy.chain import UplinkReceiver, UplinkTransmitter
from repro.phy.channel import AwgnChannel, BlockFadingChannel


def run_loopback(grid, mcs, snr_db, rng, antennas=2, subframe_index=0, fading=False):
    grant = UplinkGrant(mcs=mcs, num_prbs=grid.num_prbs, num_antennas=antennas)
    tx = UplinkTransmitter(grid=grid)
    rx = UplinkReceiver(grid=grid)
    enc = tx.encode(grant, subframe_index=subframe_index, rng=rng)
    cls = BlockFadingChannel if fading else AwgnChannel
    channel = cls(snr_db=snr_db, num_antennas=antennas, rng=rng)
    observed = channel.apply(enc.waveform)
    power = float(np.mean(np.abs(enc.waveform) ** 2))
    gains = channel.last_gains if fading else None
    result = rx.decode(
        observed,
        grant,
        noise_var=channel.noise_variance(power),
        subframe_index=subframe_index,
        channel_gains=gains,
    )
    return enc, result


class TestChainRoundTrip:
    @pytest.mark.parametrize("mcs", [0, 6, 12, 16])
    def test_high_snr_decodes_exactly(self, mcs, grid_small, rng):
        enc, result = run_loopback(grid_small, mcs, 25.0, rng)
        assert result.crc_ok
        assert np.array_equal(result.bits, enc.payload)

    def test_iterations_reported_per_code_block(self, grid_small, rng):
        enc, result = run_loopback(grid_small, 10, 25.0, rng)
        assert len(result.iterations) == result.code_blocks
        assert all(1 <= l <= 4 for l in result.iterations)

    def test_low_snr_fails_crc(self, grid_small, rng):
        _, result = run_loopback(grid_small, 16, -5.0, rng)
        assert not result.crc_ok

    def test_single_antenna(self, grid_small, rng):
        enc, result = run_loopback(grid_small, 8, 25.0, rng, antennas=1)
        assert result.crc_ok

    def test_four_antennas_beat_one_at_low_snr(self, grid_small, rng):
        # Array gain: the 4-antenna receiver decodes where 1 antenna fails.
        ok_counts = {1: 0, 4: 0}
        for n in (1, 4):
            for trial in range(4):
                _, result = run_loopback(grid_small, 12, 3.0, rng, antennas=n, subframe_index=trial)
                ok_counts[n] += int(result.crc_ok)
        assert ok_counts[4] >= ok_counts[1]

    def test_block_fading_with_genie_gains(self, grid_small, rng):
        enc, result = run_loopback(grid_small, 6, 28.0, rng, fading=True)
        assert result.crc_ok

    def test_scrambling_subframe_specific(self, grid_small, rng):
        # Decoding with the wrong subframe index descrambles incorrectly.
        grant = UplinkGrant(mcs=8, num_prbs=grid_small.num_prbs, num_antennas=1)
        tx = UplinkTransmitter(grid=grid_small)
        rx = UplinkReceiver(grid=grid_small)
        enc = tx.encode(grant, subframe_index=2, rng=rng)
        channel = AwgnChannel(snr_db=25.0, num_antennas=1, rng=rng)
        observed = channel.apply(enc.waveform)
        power = float(np.mean(np.abs(enc.waveform) ** 2))
        bad = rx.decode(observed, grant, channel.noise_variance(power), subframe_index=3)
        assert not bad.crc_ok

    def test_payload_length_validated(self, grid_small, rng):
        grant = UplinkGrant(mcs=4, num_prbs=grid_small.num_prbs)
        tx = UplinkTransmitter(grid=grid_small)
        with pytest.raises(ValueError):
            tx.encode(grant, payload=np.zeros(10, dtype=np.uint8), rng=rng)

    def test_observations_shape_validated(self, grid_small):
        rx = UplinkReceiver(grid=grid_small)
        grant = UplinkGrant(mcs=4, num_prbs=grid_small.num_prbs)
        with pytest.raises(ValueError):
            rx.decode(np.zeros((14, 10), dtype=complex), grant, 0.1)

    def test_explicit_payload_round_trip(self, grid_small, rng):
        grant = UplinkGrant(mcs=5, num_prbs=grid_small.num_prbs, num_antennas=1)
        payload = rng.integers(0, 2, grant.tbs_bits).astype(np.uint8)
        tx = UplinkTransmitter(grid=grid_small)
        rx = UplinkReceiver(grid=grid_small)
        enc = tx.encode(grant, payload=payload, rng=rng)
        channel = AwgnChannel(snr_db=30.0, num_antennas=1, rng=rng)
        observed = channel.apply(enc.waveform)
        power = float(np.mean(np.abs(enc.waveform) ** 2))
        result = rx.decode(observed, grant, channel.noise_variance(power))
        assert np.array_equal(result.bits, payload)

    def test_multi_code_block_path(self, grid_10mhz, rng):
        # A 10 MHz high-MCS grant exercises the C > 1 segmentation path;
        # run at very high SNR so one trial suffices (this is the slow
        # functional path, not the timing model).
        enc, result = run_loopback(grid_10mhz, 21, 35.0, rng)
        assert result.code_blocks > 1
        assert result.crc_ok
        assert np.array_equal(result.bits, enc.payload)
