"""Tests for OFDM modulation and grid mapping."""

import numpy as np
import pytest

from repro.constants import SYMBOLS_PER_SUBFRAME
from repro.phy.ofdm import (
    OfdmDemodulator,
    OfdmModulator,
    extract_symbols_from_grid,
    map_symbols_to_grid,
    occupied_bins,
)


@pytest.fixture
def small_mod(grid_small):
    return OfdmModulator(grid_small), OfdmDemodulator(grid_small)


class TestOccupiedBins:
    def test_count(self):
        assert occupied_bins(128, 72).size == 72

    def test_dc_excluded(self):
        assert 0 not in occupied_bins(128, 72)

    def test_within_fft(self):
        bins = occupied_bins(256, 180)
        assert bins.min() >= 0 and bins.max() < 256

    def test_unique(self):
        bins = occupied_bins(1024, 600)
        assert np.unique(bins).size == bins.size

    def test_rejects_too_many_subcarriers(self):
        with pytest.raises(ValueError):
            occupied_bins(64, 64)


class TestOfdmRoundTrip:
    def test_modulate_shape(self, small_mod, grid_small, rng):
        mod, _ = small_mod
        grid = rng.normal(size=(14, grid_small.num_subcarriers, 2)).view(np.complex128)[..., 0]
        time = mod.modulate(grid)
        assert time.shape[0] == SYMBOLS_PER_SUBFRAME

    def test_round_trip_exact(self, small_mod, grid_small, rng):
        mod, demod = small_mod
        grid = (
            rng.normal(size=(14, grid_small.num_subcarriers))
            + 1j * rng.normal(size=(14, grid_small.num_subcarriers))
        )
        recovered = demod.demodulate(mod.modulate(grid))
        assert np.allclose(recovered, grid, atol=1e-10)

    def test_power_preserved(self, small_mod, grid_small, rng):
        # The sqrt(N) normalization makes IFFT unitary, so subcarrier
        # energy equals time-domain energy (excluding the CP).
        mod, demod = small_mod
        grid = np.ones((14, grid_small.num_subcarriers), dtype=np.complex128)
        time = mod.modulate(grid)
        cp = time.shape[1] - grid_small.fft_size
        body = time[:, cp:]
        assert np.sum(np.abs(body) ** 2) == pytest.approx(np.sum(np.abs(grid) ** 2), rel=1e-9)

    def test_cyclic_prefix_is_a_copy(self, small_mod, grid_small, rng):
        mod, _ = small_mod
        grid = rng.normal(size=(14, grid_small.num_subcarriers)) + 0j
        time = mod.modulate(grid)
        cp = time.shape[1] - grid_small.fft_size
        assert np.allclose(time[:, :cp], time[:, -cp:])

    def test_modulate_rejects_bad_shape(self, small_mod):
        mod, _ = small_mod
        with pytest.raises(ValueError):
            mod.modulate(np.zeros((13, 72), dtype=np.complex128))

    def test_demodulate_rejects_bad_shape(self, small_mod):
        _, demod = small_mod
        with pytest.raises(ValueError):
            demod.demodulate(np.zeros((14, 100), dtype=np.complex128))

    def test_symbol_independence(self, small_mod, grid_small, rng):
        # Each OFDM symbol demodulates independently — the FFT-subtask
        # boundary the schedulers rely on.
        mod, demod = small_mod
        grid = rng.normal(size=(14, grid_small.num_subcarriers)) + 0j
        time = mod.modulate(grid)
        time[3] = 0.0  # clobber one symbol
        recovered = demod.demodulate(time)
        assert np.allclose(recovered[4:], grid[4:], atol=1e-10)
        assert np.allclose(recovered[:3], grid[:3], atol=1e-10)


class TestGridMapping:
    def test_round_trip(self, rng):
        symbols = rng.normal(size=500) + 1j * rng.normal(size=500)
        grid = map_symbols_to_grid(symbols, 72)
        assert np.allclose(extract_symbols_from_grid(grid, 500), symbols)

    def test_grid_shape(self):
        grid = map_symbols_to_grid(np.zeros(10, dtype=np.complex128), 72)
        assert grid.shape == (14, 72)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            map_symbols_to_grid(np.zeros(14 * 72 + 1, dtype=np.complex128), 72)

    def test_extract_overflow_rejected(self):
        grid = map_symbols_to_grid(np.zeros(10, dtype=np.complex128), 72)
        with pytest.raises(ValueError):
            extract_symbols_from_grid(grid, 14 * 72 + 1)

    def test_padding_is_zero(self):
        grid = map_symbols_to_grid(np.ones(10, dtype=np.complex128), 72)
        flat = grid.ravel()
        assert not flat[10:].any()
