"""Tests for QAM mapping and max-log LLR demapping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.qam import constellation, hard_bits_from_llrs, qam_demap_llr, qam_map


class TestConstellations:
    @pytest.mark.parametrize("q_m,size", [(2, 4), (4, 16), (6, 64)])
    def test_sizes(self, q_m, size):
        assert constellation(q_m).size == size

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_unit_average_energy(self, q_m):
        points = constellation(q_m)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_points_distinct(self, q_m):
        points = constellation(q_m)
        assert len(np.unique(np.round(points, 9))) == points.size

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_symmetric_about_origin(self, q_m):
        points = set(np.round(constellation(q_m), 9))
        assert all(np.round(-p, 9) in points for p in points)

    def test_unsupported_order_rejected(self):
        with pytest.raises(ValueError):
            constellation(8)

    def test_qpsk_first_bit_selects_i_sign(self):
        points = constellation(2)
        # Index 00 -> (+,+)/sqrt(2), index 11 -> (-,-).
        assert points[0].real > 0 and points[0].imag > 0
        assert points[3].real < 0 and points[3].imag < 0


class TestMapping:
    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_map_length(self, q_m, rng):
        bits = rng.integers(0, 2, 10 * q_m).astype(np.uint8)
        assert qam_map(bits, q_m).size == 10

    def test_map_rejects_ragged_input(self):
        with pytest.raises(ValueError):
            qam_map(np.zeros(5, dtype=np.uint8), 4)

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_gray_property_adjacent_amplitudes(self, q_m):
        # Each constellation point is a valid point of the set.
        bits = np.zeros(q_m, dtype=np.uint8)
        sym = qam_map(bits, q_m)
        assert np.round(sym[0], 9) in set(np.round(constellation(q_m), 9))


class TestDemapping:
    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_noiseless_round_trip(self, q_m, rng):
        bits = rng.integers(0, 2, 60 * q_m // 2 * 2).astype(np.uint8)
        bits = bits[: (bits.size // q_m) * q_m]
        symbols = qam_map(bits, q_m)
        llrs = qam_demap_llr(symbols, q_m, noise_var=0.01)
        assert np.array_equal(hard_bits_from_llrs(llrs), bits)

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_llr_count(self, q_m, rng):
        symbols = qam_map(rng.integers(0, 2, 12 * q_m).astype(np.uint8), q_m)
        assert qam_demap_llr(symbols, q_m, 0.1).size == 12 * q_m

    def test_llr_sign_convention(self):
        # A symbol exactly on a bit-0 point must give positive LLRs for
        # the bits that are 0 at that point.
        point = constellation(2)[0]  # bits 00
        llrs = qam_demap_llr(np.array([point]), 2, 0.1)
        assert np.all(llrs > 0)

    def test_llr_scales_with_noise_var(self):
        symbol = np.array([constellation(2)[0]])
        llr_low = qam_demap_llr(symbol, 2, 0.01)
        llr_high = qam_demap_llr(symbol, 2, 1.0)
        assert np.all(np.abs(llr_low) > np.abs(llr_high))

    def test_noise_var_must_be_positive(self):
        with pytest.raises(ValueError):
            qam_demap_llr(np.array([1 + 1j]), 2, 0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 63), st.sampled_from([2, 4, 6]))
    def test_llr_of_exact_point_decodes_its_index(self, index, q_m):
        index = index % (1 << q_m)
        point = constellation(q_m)[index]
        llrs = qam_demap_llr(np.array([point]), q_m, 0.05)
        bits = hard_bits_from_llrs(llrs)
        recovered = 0
        for b in bits:
            recovered = (recovered << 1) | int(b)
        assert recovered == index

    @pytest.mark.parametrize("q_m", [2, 4, 6])
    def test_awgn_demap_mostly_correct(self, q_m, rng):
        bits = rng.integers(0, 2, 300 * q_m).astype(np.uint8)
        symbols = qam_map(bits, q_m)
        # 64QAM needs ~27 dB for a comfortably low uncoded BER.
        noise_var = 0.002
        noise = rng.normal(scale=np.sqrt(noise_var / 2), size=(symbols.size, 2))
        noisy = symbols + noise.view(np.complex128).ravel()
        llrs = qam_demap_llr(noisy, q_m, noise_var)
        errors = np.sum(hard_bits_from_llrs(llrs) != bits)
        assert errors / bits.size < 0.01
