"""Tests for rate matching: sub-block interleaver + circular buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.ratematch import (
    RateMatchConfig,
    bits_per_code_block,
    circular_buffer_order,
    rate_dematch,
    rate_match,
)
from repro.phy.turbo import TAIL_BITS

block_sizes = st.sampled_from([40, 64, 104, 256, 512])


class TestCircularBuffer:
    @given(block_sizes)
    def test_order_is_permutation(self, k):
        order = circular_buffer_order(k)
        assert sorted(order) == list(range(3 * k))

    @given(block_sizes)
    def test_systematic_bits_first(self, k):
        # The first K buffer entries are the (interleaved) systematic bits.
        order = circular_buffer_order(k)
        assert set(order[:k]) == set(range(k))

    @given(block_sizes)
    def test_parity_interlaced(self, k):
        order = circular_buffer_order(k)
        parity = order[k:]
        # Alternating p1 (offset K) and p2 (offset 2K) entries.
        assert all(k <= idx < 2 * k for idx in parity[0::2])
        assert all(2 * k <= idx < 3 * k for idx in parity[1::2])


class TestRateMatch:
    def _coded(self, k, rng):
        return rng.integers(0, 2, 3 * k + TAIL_BITS).astype(np.uint8)

    @given(block_sizes, st.data())
    @settings(max_examples=20, deadline=None)
    def test_output_length(self, k, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        e = data.draw(st.integers(min_value=TAIL_BITS + 16, max_value=4 * k))
        out = rate_match(self._coded(k, rng), RateMatchConfig(k, e))
        assert out.size == e

    def test_full_rate_passthrough(self, rng):
        # E = 3K + 12: every coded bit transmitted exactly once.
        k = 104
        coded = self._coded(k, rng)
        config = RateMatchConfig(k, 3 * k + TAIL_BITS)
        out = rate_match(coded, config)
        soft = rate_dematch(1.0 - 2.0 * out.astype(float), config)
        hard = (soft < 0).astype(np.uint8)
        assert np.array_equal(hard, coded)

    def test_repetition_accumulates(self, rng):
        # E = 2*(3K) + 12: each body bit sent twice, LLRs double.
        k = 40
        coded = self._coded(k, rng)
        config = RateMatchConfig(k, 6 * k + TAIL_BITS)
        out = rate_match(coded, config)
        soft = rate_dematch(1.0 - 2.0 * out.astype(float), config)
        assert np.allclose(np.abs(soft[: 3 * k]), 2.0)

    def test_puncturing_erases_with_zero_llr(self, rng):
        k = 104
        coded = self._coded(k, rng)
        e = TAIL_BITS + 2 * k  # punctured below the mother rate
        config = RateMatchConfig(k, e)
        out = rate_match(coded, config)
        soft = rate_dematch(1.0 - 2.0 * out.astype(float), config)
        body = soft[: 3 * k]
        assert np.sum(body == 0.0) == 3 * k - 2 * k

    def test_tail_always_transmitted(self, rng):
        k = 64
        coded = self._coded(k, rng)
        config = RateMatchConfig(k, TAIL_BITS + 32)
        out = rate_match(coded, config)
        assert np.array_equal(out[-TAIL_BITS:], coded[3 * k :])

    def test_rejects_tiny_e(self):
        with pytest.raises(ValueError):
            RateMatchConfig(40, TAIL_BITS)

    def test_rejects_wrong_codeword_length(self, rng):
        with pytest.raises(ValueError):
            rate_match(np.zeros(100, dtype=np.uint8), RateMatchConfig(40, 60))

    def test_dematch_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            rate_dematch(np.zeros(10), RateMatchConfig(40, 60))

    @given(block_sizes, st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_systematic_survives_moderate_puncturing(self, k, seed):
        # With E >= K + 12 the cyclic selection covers all systematic bits.
        rng = np.random.default_rng(seed)
        coded = self._coded(k, rng)
        config = RateMatchConfig(k, k + TAIL_BITS)
        out = rate_match(coded, config)
        soft = rate_dematch(1.0 - 2.0 * out.astype(float), config)
        systematic = soft[:k]
        assert np.all(systematic != 0.0)
        assert np.array_equal((systematic < 0).astype(np.uint8), coded[:k])


class TestBitsPerCodeBlock:
    def test_even_split(self):
        assert bits_per_code_block(600, 3, 2) == [200, 200, 200]

    def test_remainder_goes_to_tail_blocks(self):
        shares = bits_per_code_block(604, 3, 2)
        assert sum(shares) == 604
        assert shares == sorted(shares)

    def test_all_multiples_of_qm(self):
        for q_m in (2, 4, 6):
            shares = bits_per_code_block(50_400 // 6 * q_m, 6, q_m)
            assert all(s % q_m == 0 for s in shares)

    def test_rejects_non_multiple_total(self):
        with pytest.raises(ValueError):
            bits_per_code_block(601, 3, 2)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            bits_per_code_block(600, 0, 2)
