"""Tests for Gold sequences and scrambling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.sequences import descramble_llrs, gold_sequence, pusch_c_init, scramble


class TestGoldSequence:
    def test_length(self):
        assert gold_sequence(100, 12345).size == 100

    def test_zero_length(self):
        assert gold_sequence(0, 1).size == 0

    def test_binary_output(self):
        seq = gold_sequence(500, 999)
        assert set(np.unique(seq)).issubset({0, 1})

    def test_deterministic(self):
        assert np.array_equal(gold_sequence(200, 7), gold_sequence(200, 7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(gold_sequence(200, 7), gold_sequence(200, 8))

    def test_roughly_balanced(self):
        # A Gold sequence is balanced: ~half ones.
        seq = gold_sequence(10_000, 0x1234)
        assert 0.45 < seq.mean() < 0.55

    def test_low_autocorrelation(self):
        seq = 1.0 - 2.0 * gold_sequence(4096, 77).astype(float)
        shifted = np.roll(seq, 100)
        corr = abs(np.dot(seq, shifted)) / seq.size
        assert corr < 0.1

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            gold_sequence(10, 1 << 31)
        with pytest.raises(ValueError):
            gold_sequence(-1, 0)


class TestScrambling:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_scramble_is_involutive(self, bits):
        bits = np.array(bits, dtype=np.uint8)
        c_init = 0xABCDE
        assert np.array_equal(scramble(scramble(bits, c_init), c_init), bits)

    def test_scramble_changes_bits(self):
        bits = np.zeros(200, dtype=np.uint8)
        assert scramble(bits, 0x5555).sum() > 0

    def test_descramble_llrs_matches_hard_descramble(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 128).astype(np.uint8)
        c_init = 0x777
        scrambled = scramble(bits, c_init)
        # LLR convention: positive = bit 0.
        llrs = 1.0 - 2.0 * scrambled.astype(float)
        descrambled = descramble_llrs(llrs, c_init)
        hard = (descrambled < 0).astype(np.uint8)
        assert np.array_equal(hard, bits)

    def test_descramble_preserves_magnitude(self):
        llrs = np.linspace(-5, 5, 64)
        out = descramble_llrs(llrs, 0x99)
        assert np.allclose(np.abs(out), np.abs(llrs))


class TestCInit:
    def test_c_init_in_range(self):
        assert 0 <= pusch_c_init(0xFFFF, 9, 503) < (1 << 31)

    def test_distinct_per_subframe(self):
        # ns = 2*subframe, so ns//2 spans 0..9 within a frame.
        seeds = {pusch_c_init(100, sf, 1) for sf in range(10)}
        assert len(seeds) == 10

    def test_distinct_per_cell(self):
        assert pusch_c_init(1, 0, 1) != pusch_c_init(1, 0, 2)

    def test_cell_id_validated(self):
        with pytest.raises(ValueError):
            pusch_c_init(1, 0, 504)
