"""Tests for the turbo codec: QPP interleaver, encoder, max-log-MAP decoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.crc import attach_crc, crc_check
from repro.phy.turbo import (
    TAIL_BITS,
    TurboCodec,
    bpsk_llrs,
    qpp_coefficients,
    qpp_interleaver,
)

small_k = st.sampled_from([40, 48, 64, 104, 128, 256])


class TestQppInterleaver:
    @given(small_k)
    def test_is_permutation(self, k):
        perm = qpp_interleaver(k)
        assert sorted(perm) == list(range(k))

    @given(small_k)
    def test_coefficients_valid(self, k):
        f1, f2 = qpp_coefficients(k)
        assert f1 % 2 == 1
        assert f2 % 2 == 0
        from math import gcd

        assert gcd(f1, k) == 1

    def test_largest_lte_size(self):
        perm = qpp_interleaver(6144)
        assert len(set(perm)) == 6144

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            qpp_coefficients(4)

    def test_not_identity(self):
        perm = qpp_interleaver(104)
        assert perm != tuple(range(104))


class TestEncoder:
    def test_output_length(self, rng):
        codec = TurboCodec(64)
        coded = codec.encode(rng.integers(0, 2, 64).astype(np.uint8))
        assert coded.size == 3 * 64 + TAIL_BITS
        assert codec.coded_bits == coded.size

    def test_systematic_prefix(self, rng):
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        coded = TurboCodec(40).encode(bits)
        assert np.array_equal(coded[:40], bits)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            TurboCodec(40).encode(np.zeros(41, dtype=np.uint8))

    def test_deterministic(self, rng):
        bits = rng.integers(0, 2, 104).astype(np.uint8)
        codec = TurboCodec(104)
        assert np.array_equal(codec.encode(bits), codec.encode(bits))

    def test_linear_code_zero_maps_to_zero(self):
        # The RSC encoders are linear with zero initial state, so the
        # all-zero input encodes to the all-zero codeword.
        coded = TurboCodec(40).encode(np.zeros(40, dtype=np.uint8))
        assert not coded.any()

    def test_rejects_bad_max_iterations(self):
        with pytest.raises(ValueError):
            TurboCodec(40, max_iterations=0)


class TestDecoder:
    def test_noiseless_round_trip(self, rng):
        codec = TurboCodec(104, max_iterations=4)
        bits = rng.integers(0, 2, 104).astype(np.uint8)
        llrs = 10.0 * (1.0 - 2.0 * codec.encode(bits).astype(float))
        result = codec.decode(llrs)
        assert np.array_equal(result.bits, bits)
        assert result.iterations <= 2

    def test_rejects_wrong_llr_length(self):
        with pytest.raises(ValueError):
            TurboCodec(40).decode(np.zeros(10))

    @pytest.mark.parametrize("snr_db", [2.0, 0.0])
    def test_awgn_round_trip(self, snr_db, rng):
        # Rate-1/3 turbo decodes comfortably at these SNRs.
        codec = TurboCodec(256, max_iterations=8)
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        llrs = bpsk_llrs(codec.encode(bits), snr_db, rng)
        result = codec.decode(llrs)
        assert np.array_equal(result.bits, bits)

    def test_iterations_increase_at_low_snr(self, rng):
        codec = TurboCodec(256, max_iterations=8)
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        coded = codec.encode(bits)
        high = np.mean([codec.decode(bpsk_llrs(coded, 4.0, rng)).iterations for _ in range(5)])
        low = np.mean([codec.decode(bpsk_llrs(coded, -0.5, rng)).iterations for _ in range(5)])
        assert low > high

    def test_crc_gated_early_stop(self, rng):
        # With a CRC checker the decoder stops at the first passing pass.
        payload = rng.integers(0, 2, 80).astype(np.uint8)
        block = attach_crc(payload, "24b")
        codec = TurboCodec(block.size, max_iterations=8)
        llrs = bpsk_llrs(codec.encode(block), 3.0, rng)
        result = codec.decode(llrs, crc_checker=lambda b: crc_check(b, "24b"))
        assert result.crc_pass
        assert result.iterations <= 3
        assert np.array_equal(result.bits[:-24], payload)

    def test_iteration_cap_respected(self, rng):
        codec = TurboCodec(64, max_iterations=3)
        # Pure noise: the decoder must give up at the cap.
        llrs = rng.normal(size=codec.coded_bits)
        result = codec.decode(llrs)
        assert result.iterations <= 3

    def test_failed_crc_reported(self, rng):
        codec = TurboCodec(64, max_iterations=2)
        llrs = rng.normal(size=codec.coded_bits) * 3
        result = codec.decode(llrs, crc_checker=lambda b: crc_check(b, "24b"))
        assert not result.crc_pass

    @settings(max_examples=10, deadline=None)
    @given(small_k, st.integers(0, 10_000))
    def test_property_noiseless_round_trip(self, k, seed):
        rng = np.random.default_rng(seed)
        codec = TurboCodec(k, max_iterations=4)
        bits = rng.integers(0, 2, k).astype(np.uint8)
        llrs = 8.0 * (1.0 - 2.0 * codec.encode(bits).astype(float))
        assert np.array_equal(codec.decode(llrs).bits, bits)

    def test_punctured_systematic_recoverable(self, rng):
        # Erase a few systematic LLRs: parity carries the information.
        codec = TurboCodec(104, max_iterations=8)
        bits = rng.integers(0, 2, 104).astype(np.uint8)
        llrs = 6.0 * (1.0 - 2.0 * codec.encode(bits).astype(float))
        llrs[:10] = 0.0
        assert np.array_equal(codec.decode(llrs).bits, bits)
