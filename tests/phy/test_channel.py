"""Tests for channel models and SNR utilities."""

import numpy as np
import pytest

from repro.phy.channel import (
    AwgnChannel,
    BlockFadingChannel,
    measure_snr_db,
    snr_db_to_noise_var,
)


class TestSnrUtils:
    def test_0db_unit_power(self):
        assert snr_db_to_noise_var(0.0) == pytest.approx(1.0)

    def test_10db(self):
        assert snr_db_to_noise_var(10.0) == pytest.approx(0.1)

    def test_scales_with_signal_power(self):
        assert snr_db_to_noise_var(10.0, signal_power=2.0) == pytest.approx(0.2)

    def test_measure_matches_target(self, rng):
        clean = rng.normal(size=20000) + 1j * rng.normal(size=20000)
        noise = rng.normal(scale=0.1, size=20000) + 1j * rng.normal(scale=0.1, size=20000)
        measured = measure_snr_db(clean, clean + noise)
        assert measured == pytest.approx(20.0, abs=0.5)

    def test_measure_infinite_for_identical(self):
        clean = np.ones(10, dtype=np.complex128)
        assert measure_snr_db(clean, clean) == float("inf")


class TestAwgnChannel:
    def test_output_shape(self, rng):
        channel = AwgnChannel(snr_db=20.0, num_antennas=3, rng=rng)
        out = channel.apply(np.ones((14, 64), dtype=np.complex128))
        assert out.shape == (3, 14, 64)

    def test_realized_snr(self, rng):
        channel = AwgnChannel(snr_db=15.0, num_antennas=1, rng=rng)
        clean = np.exp(1j * rng.uniform(0, 2 * np.pi, 50000))
        noisy = channel.apply(clean)[0]
        assert measure_snr_db(clean, noisy) == pytest.approx(15.0, abs=0.3)

    def test_independent_noise_across_antennas(self, rng):
        channel = AwgnChannel(snr_db=0.0, num_antennas=2, rng=rng)
        clean = np.ones(5000, dtype=np.complex128)
        out = channel.apply(clean)
        noise0, noise1 = out[0] - clean, out[1] - clean
        corr = abs(np.vdot(noise0, noise1)) / (
            np.linalg.norm(noise0) * np.linalg.norm(noise1)
        )
        assert corr < 0.05

    def test_zero_signal_does_not_crash(self, rng):
        channel = AwgnChannel(snr_db=10.0, rng=rng)
        out = channel.apply(np.zeros(16, dtype=np.complex128))
        assert np.isfinite(out).all()


class TestBlockFading:
    def test_gains_recorded(self, rng):
        channel = BlockFadingChannel(snr_db=20.0, num_antennas=4, rng=rng)
        channel.apply(np.ones(100, dtype=np.complex128))
        assert channel.last_gains is not None
        assert channel.last_gains.shape == (4,)

    def test_gains_are_rayleigh_unit_power(self, rng):
        channel = BlockFadingChannel(snr_db=100.0, num_antennas=1, rng=rng)
        powers = []
        for _ in range(3000):
            channel.apply(np.ones(2, dtype=np.complex128))
            powers.append(abs(channel.last_gains[0]) ** 2)
        assert np.mean(powers) == pytest.approx(1.0, abs=0.08)

    def test_fading_constant_within_block(self, rng):
        # Block fading: one complex gain per subframe.
        channel = BlockFadingChannel(snr_db=80.0, num_antennas=1, rng=rng)
        clean = np.ones(64, dtype=np.complex128)
        out = channel.apply(clean)[0]
        ratios = out / clean
        assert np.allclose(ratios, ratios[0], atol=1e-3)

    def test_noise_variance_interface(self):
        channel = BlockFadingChannel(snr_db=10.0)
        assert channel.noise_variance() == pytest.approx(0.1)
