"""Tests for MRC combining and equalization."""

import numpy as np
import pytest

from repro.phy.equalizer import estimate_flat_gains, mrc_combine, zf_equalize


class TestMrc:
    def test_unit_gain_single_antenna(self, rng):
        obs = rng.normal(size=(1, 50)) + 1j * rng.normal(size=(1, 50))
        combined, scale = mrc_combine(obs, np.array([1.0 + 0j]))
        assert np.allclose(combined, obs[0])
        assert scale == pytest.approx(1.0)

    def test_inverts_channel(self, rng):
        signal = rng.normal(size=100) + 1j * rng.normal(size=100)
        gains = np.array([0.7 - 0.3j, -0.2 + 1.1j])
        obs = gains[:, None] * signal[None, :]
        combined, _ = mrc_combine(obs, gains)
        assert np.allclose(combined, signal)

    def test_array_gain(self, rng):
        # MRC over N unit-gain antennas cuts the noise variance N-fold.
        n = 4
        signal = np.ones(100_000, dtype=np.complex128)
        noise = (
            rng.normal(scale=np.sqrt(0.5), size=(n, signal.size))
            + 1j * rng.normal(scale=np.sqrt(0.5), size=(n, signal.size))
        )
        gains = np.ones(n, dtype=np.complex128)
        combined, scale = mrc_combine(signal[None, :] + noise, gains)
        residual_var = np.mean(np.abs(combined - signal) ** 2)
        assert scale == pytest.approx(float(n))
        assert residual_var == pytest.approx(1.0 / n, rel=0.05)

    def test_rejects_mismatched_antennas(self):
        with pytest.raises(ValueError):
            mrc_combine(np.zeros((2, 4), dtype=complex), np.ones(3, dtype=complex))

    def test_rejects_zero_gains(self):
        with pytest.raises(ValueError):
            mrc_combine(np.zeros((1, 4), dtype=complex), np.zeros(1, dtype=complex))


class TestZf:
    def test_inverts_gain(self, rng):
        signal = rng.normal(size=30) + 1j * rng.normal(size=30)
        gain = np.full(30, 0.5 + 0.5j)
        assert np.allclose(zf_equalize(gain * signal, gain), signal)

    def test_rejects_zero_gain(self):
        with pytest.raises(ValueError):
            zf_equalize(np.ones(4, dtype=complex), np.zeros(4, dtype=complex))


class TestGainEstimation:
    def test_recovers_true_gains(self, rng):
        reference = rng.normal(size=(14, 72)) + 1j * rng.normal(size=(14, 72))
        gains = np.array([1.2 - 0.4j, -0.3 + 0.9j])
        obs = gains[:, None, None] * reference[None, ...]
        estimated = estimate_flat_gains(obs, reference)
        assert np.allclose(estimated, gains, atol=1e-9)

    def test_noisy_estimate_close(self, rng):
        reference = rng.normal(size=(14, 600)) + 1j * rng.normal(size=(14, 600))
        gains = np.array([0.8 + 0.1j])
        obs = gains[:, None, None] * reference[None, ...]
        obs = obs + 0.05 * (rng.normal(size=obs.shape) + 1j * rng.normal(size=obs.shape))
        estimated = estimate_flat_gains(obs, reference)
        assert abs(estimated[0] - gains[0]) < 0.02

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            estimate_flat_gains(np.ones((1, 4), dtype=complex), np.zeros(4, dtype=complex))

    def test_estimate_then_mrc_round_trip(self, rng):
        # Integration: estimate gains from the grid, then combine.
        reference = rng.normal(size=(14, 72)) + 1j * rng.normal(size=(14, 72))
        gains = np.array([0.9 - 0.2j, 0.4 + 1.0j])
        obs = gains[:, None, None] * reference[None, ...]
        estimated = estimate_flat_gains(obs, reference)
        combined, _ = mrc_combine(obs, estimated)
        assert np.allclose(combined, reference, atol=1e-8)
