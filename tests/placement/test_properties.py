"""Property-based tests for provisioning and placement.

Three invariants that must hold on *every* instance, not just the
hand-picked ones:

* statistical multiplexing never loses — the pooled quantile demand is
  at most the sum of per-cell quantile demands (sum-of-quantiles
  overestimates quantile-of-sums);
* neither placer ever overfills a node;
* the exact MILP never opens more nodes than greedy first-fit
  decreasing.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.placement import (
    optimal_place_by_weights,
    peak_cores_required,
    place_by_weights,
    pooled_cores_required,
)

from tests.helpers import make_job

pytest.importorskip("scipy.optimize")

_CAP_EPS = 1e-6

#: Weight dicts: up to 10 cells, weights in (0, 1] of a unit-capacity
#: node so every instance is feasible for both placers.
weight_dicts = st.dictionaries(
    keys=st.integers(min_value=0, max_value=99),
    values=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=10,
)

#: Per-cell grants: (mcs, iterations) pairs; each cell runs the same
#: number of subframes so the pooled aggregation is well-defined.
cell_grants = st.lists(
    st.tuples(st.integers(min_value=5, max_value=27), st.integers(min_value=1, max_value=4)),
    min_size=1,
    max_size=4,
)


@given(grants=cell_grants, quantile=st.sampled_from([0.9, 0.99, 0.999]))
@settings(max_examples=25, deadline=None)
def test_pooled_never_exceeds_peak(grants, quantile):
    jobs = [
        make_job(bs, index, mcs, [iters])
        for bs, (mcs, iters) in enumerate(grants)
        for index in range(8)
    ]
    assert pooled_cores_required(jobs, quantile) <= peak_cores_required(jobs, quantile)


@given(weights=weight_dicts)
@settings(max_examples=50, deadline=None)
def test_ffd_respects_capacity_and_places_everyone(weights):
    placement = place_by_weights(weights, cores_per_node=1.0)
    placed = []
    for node in range(placement.node_count):
        cells = placement.basestations_on(node)
        placed.extend(cells)
        assert sum(weights[bs] for bs in cells) <= 1.0 + _CAP_EPS
    assert sorted(placed) == sorted(weights)


@given(weights=weight_dicts)
@settings(max_examples=25, deadline=None)
def test_milp_respects_capacity_and_places_everyone(weights):
    opt = optimal_place_by_weights(weights, cores_per_node=1.0)
    placed = []
    for node in range(opt.placement.node_count):
        cells = opt.placement.basestations_on(node)
        placed.extend(cells)
        assert sum(weights[bs] for bs in cells) <= 1.0 + _CAP_EPS
    assert sorted(placed) == sorted(weights)


@given(weights=weight_dicts)
@settings(max_examples=25, deadline=None)
def test_milp_never_opens_more_nodes_than_greedy(weights):
    greedy = place_by_weights(weights, cores_per_node=1.0)
    opt = optimal_place_by_weights(weights, cores_per_node=1.0)
    assert opt.node_count <= greedy.node_count
    # And never fewer than the volume lower bound.
    assert opt.node_count >= math.ceil(sum(weights.values()) / 1.0 - _CAP_EPS)
