"""Tests for provisioning and placement."""

import pytest

from repro.placement import (
    demand_weights,
    peak_cores_required,
    place_basestations,
    place_by_weights,
    pooled_cores_required,
    pooling_savings,
)
from repro.sched import CRanConfig, build_workload

from tests.helpers import make_job


@pytest.fixture(scope="module")
def fleet_jobs():
    cfg = CRanConfig(transport_latency_us=500.0)
    return build_workload(cfg, 2000, seed=21)


class TestProvisioning:
    def test_pooled_never_exceeds_peak(self, fleet_jobs):
        for q in (0.9, 0.99, 0.999):
            assert pooled_cores_required(fleet_jobs, q) <= peak_cores_required(fleet_jobs, q)

    def test_savings_in_unit_interval(self, fleet_jobs):
        saving = pooling_savings(fleet_jobs)
        assert 0.0 <= saving < 1.0

    def test_savings_material(self, fleet_jobs):
        # The pooling argument: savings of the order CloudIQ reports
        # (tens of percent) on fluctuating cellular traffic.
        assert pooling_savings(fleet_jobs, 0.999) >= 0.15

    def test_higher_quantile_needs_no_fewer_cores(self, fleet_jobs):
        assert peak_cores_required(fleet_jobs, 0.999) >= peak_cores_required(fleet_jobs, 0.9)
        assert pooled_cores_required(fleet_jobs, 0.999) >= pooled_cores_required(fleet_jobs, 0.9)

    def test_deterministic_workload_exact(self):
        # Constant 50% utilization per cell: peak = 1 core each, pooled
        # = ceil(0.5 * n).
        jobs = [make_job(b, j, 13, [1], noise=0.0) for b in range(4) for j in range(50)]
        util = jobs[0].serial_time_us / 1000.0
        assert 0.4 < util < 1.0
        assert peak_cores_required(jobs, 0.999) == 4
        assert pooled_cores_required(jobs, 0.999) == -(-int(util * 4 * 1000) // 1000)

    def test_quantile_validation(self, fleet_jobs):
        with pytest.raises(ValueError):
            peak_cores_required(fleet_jobs, 0.0)
        with pytest.raises(ValueError):
            pooled_cores_required(fleet_jobs, 1.5)

    def test_empty_jobs(self):
        assert pooled_cores_required([], 0.99) == 0

    def test_mismatched_series_lengths_rejected(self):
        # Regression: the aggregation used to zip the per-BS demand
        # series, silently truncating every series to the shortest and
        # biasing the pooled quantile low.  Unequal lengths are a caller
        # bug and must raise, naming the offenders.
        jobs = [make_job(0, j, 13, [1]) for j in range(5)]
        jobs += [make_job(1, j, 13, [1]) for j in range(3)]
        with pytest.raises(ValueError, match=r"bs0=5.*bs1=3"):
            pooled_cores_required(jobs, 0.99)

    def test_equal_lengths_still_aggregate(self):
        jobs = [make_job(b, j, 13, [1]) for b in range(2) for j in range(5)]
        assert pooled_cores_required(jobs, 0.99) >= 1

    def test_peak_provisioning_tolerates_mismatch(self):
        # Per-BS peaks never aggregate across cells, so unequal series
        # remain well-defined there.
        jobs = [make_job(0, j, 13, [1]) for j in range(5)]
        jobs += [make_job(1, j, 13, [1]) for j in range(3)]
        assert peak_cores_required(jobs, 0.99) == 2


class TestPlacement:
    def test_every_bs_placed_once(self, fleet_jobs):
        placement = place_basestations(fleet_jobs, cores_per_node=8)
        assert sorted(placement.node_of) == [0, 1, 2, 3]

    def test_single_node_fits_default_fleet(self, fleet_jobs):
        placement = place_basestations(fleet_jobs, cores_per_node=8)
        assert placement.node_count == 1

    def test_small_nodes_force_spreading(self, fleet_jobs):
        placement = place_basestations(fleet_jobs, cores_per_node=3)
        assert placement.node_count >= 2

    def test_basestations_on_lists_membership(self, fleet_jobs):
        placement = place_basestations(fleet_jobs, cores_per_node=3)
        seen = []
        for node in range(placement.node_count):
            seen.extend(placement.basestations_on(node))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_oversized_cell_rejected(self):
        # A cell demanding more than a whole node cannot be placed.
        jobs = [make_job(0, j, 27, [4], noise=500.0) for j in range(20)]
        with pytest.raises(ValueError):
            place_basestations(jobs, cores_per_node=2)

    def test_node_budget_respected(self, fleet_jobs):
        import numpy as np

        placement = place_basestations(fleet_jobs, cores_per_node=3, quantile=0.99)
        # Recompute weights and verify no node exceeds its budget.
        from repro.placement.pool import _utilization_matrix

        weights = {
            bs: float(np.quantile(d, 0.99))
            for bs, d in _utilization_matrix(fleet_jobs).items()
        }
        for node in range(placement.node_count):
            total = sum(weights[bs] for bs in placement.basestations_on(node))
            assert total <= 3.0 + 1e-9

    def test_invalid_cores_per_node(self, fleet_jobs):
        with pytest.raises(ValueError):
            place_basestations(fleet_jobs, cores_per_node=0)


class TestTieBreak:
    def test_equal_weights_tie_break_by_bs_id(self):
        # Regression: the FFD sort keyed only on weight, so equal-weight
        # cells were placed in dict insertion order and the placement
        # depended on how the caller happened to assemble the weights.
        placement = place_by_weights({5: 1.0, 1: 1.0, 3: 1.0}, cores_per_node=2.0)
        assert placement.node_of == {1: 0, 3: 0, 5: 1}

    def test_placement_invariant_under_weight_insertion_order(self):
        weights = {0: 1.5, 1: 1.5, 2: 1.5, 3: 0.5, 4: 0.5}
        reversed_weights = dict(sorted(weights.items(), reverse=True))
        a = place_by_weights(weights, cores_per_node=2.0)
        b = place_by_weights(reversed_weights, cores_per_node=2.0)
        assert a.node_of == b.node_of

    def test_placement_invariant_under_job_order(self, fleet_jobs):
        # Permuting the job list permutes the weight-dict insertion
        # order; the placement must not care.
        shuffled = list(fleet_jobs)[::-1]
        a = place_basestations(fleet_jobs, cores_per_node=3, quantile=0.99)
        b = place_basestations(shuffled, cores_per_node=3, quantile=0.99)
        assert a.node_of == b.node_of

    def test_demand_weights_match_job_order_permutation(self, fleet_jobs):
        a = demand_weights(fleet_jobs, 0.99)
        b = demand_weights(list(fleet_jobs)[::-1], 0.99)
        assert a == b
