"""Tests for the exact MILP placement baseline."""

import pytest

from repro.placement import (
    demand_weights,
    optimal_place_by_weights,
    optimal_placement,
    place_by_weights,
    placement_gap,
)
from repro.sched import CRanConfig, build_workload

pytest.importorskip("scipy.optimize")


@pytest.fixture(scope="module")
def fleet_jobs():
    cfg = CRanConfig(transport_latency_us=500.0)
    return build_workload(cfg, 1000, seed=21)


class TestOptimalPlacement:
    def test_classic_ffd_suboptimal_instance(self):
        # {0.4, 0.4, 0.3, 0.3, 0.3, 0.3} with unit capacity: FFD opens
        # three nodes (0.4+0.4, 0.3+0.3+0.3, 0.3) but two suffice
        # (0.4+0.3+0.3 twice).  The MILP must find the two-node packing.
        weights = {i: w for i, w in enumerate([0.4, 0.4, 0.3, 0.3, 0.3, 0.3])}
        greedy = place_by_weights(weights, cores_per_node=1.0)
        opt = optimal_place_by_weights(weights, cores_per_node=1.0)
        assert greedy.node_count == 3
        assert opt.node_count == 2
        assert opt.optimal
        assert placement_gap(greedy.node_count, opt.node_count) == pytest.approx(0.5)

    def test_every_cell_placed_once(self):
        weights = {i: 0.7 for i in range(7)}
        opt = optimal_place_by_weights(weights, cores_per_node=2.0)
        placed = []
        for node in range(opt.placement.node_count):
            placed.extend(opt.placement.basestations_on(node))
        assert sorted(placed) == list(range(7))

    def test_capacity_respected(self):
        weights = {i: 0.9 + 0.1 * (i % 3) for i in range(9)}
        capacity = 2.5
        opt = optimal_place_by_weights(weights, cores_per_node=capacity)
        for node in range(opt.placement.node_count):
            total = sum(weights[bs] for bs in opt.placement.basestations_on(node))
            assert total <= capacity + 1e-6

    def test_never_worse_than_greedy(self):
        weights = {i: 0.2 + 0.13 * (i % 5) for i in range(20)}
        greedy = place_by_weights(weights, cores_per_node=1.0)
        opt = optimal_place_by_weights(weights, cores_per_node=1.0)
        assert opt.node_count <= greedy.node_count
        assert opt.lower_bound <= opt.node_count

    def test_deterministic_across_insertion_orders(self):
        weights = {i: 0.4 if i % 2 else 0.3 for i in range(8)}
        permuted = dict(sorted(weights.items(), reverse=True))
        a = optimal_place_by_weights(weights, cores_per_node=1.0)
        b = optimal_place_by_weights(permuted, cores_per_node=1.0)
        assert a.placement.node_of == b.placement.node_of
        assert a.node_count == b.node_count

    def test_canonical_node_labels(self):
        # Node ids are relabeled so node k is the one holding the
        # smallest not-yet-seen cell id — the MILP's arbitrary bin
        # indices never leak into the output.
        weights = {i: 0.5 for i in range(6)}
        opt = optimal_place_by_weights(weights, cores_per_node=1.0)
        first_seen = {}
        for bs in sorted(opt.placement.node_of):
            node = opt.placement.node_of[bs]
            first_seen.setdefault(node, bs)
        assert list(first_seen) == sorted(first_seen)

    def test_single_node_early_return(self):
        weights = {0: 0.3, 1: 0.3}
        opt = optimal_place_by_weights(weights, cores_per_node=8.0)
        assert opt.node_count == 1
        assert opt.optimal
        assert opt.solver_gap == 0.0

    def test_oversized_cell_rejected(self):
        with pytest.raises(ValueError):
            optimal_place_by_weights({0: 3.0}, cores_per_node=2.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            optimal_place_by_weights({0: 0.5}, cores_per_node=0.0)

    def test_empty_weights(self):
        opt = optimal_place_by_weights({}, cores_per_node=2.0)
        assert opt.node_count == 0

    def test_from_jobs_matches_greedy_weighting(self, fleet_jobs):
        greedy = place_by_weights(demand_weights(fleet_jobs, 0.99), cores_per_node=3.0)
        opt = optimal_placement(fleet_jobs, cores_per_node=3, quantile=0.99)
        assert opt.node_count <= greedy.node_count


class TestPlacementGap:
    def test_zero_gap_when_equal(self):
        assert placement_gap(4, 4) == 0.0

    def test_fractional_gap(self):
        assert placement_gap(3, 2) == pytest.approx(0.5)

    def test_degenerate_optimal(self):
        assert placement_gap(3, 0) == 0.0
