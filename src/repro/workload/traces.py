"""Synthetic cellular load traces (paper Figs. 1 and 14).

Each basestation's normalized load is modelled as

``load_t = clip01(mean + slow_t + fast_t)``

where ``slow_t`` is an AR(1) (Ornstein-Uhlenbeck-style) component with a
correlation time of roughly a second — users arriving and leaving — and
``fast_t`` is independent per-subframe burstiness from frame-level
scheduling.  The published properties this reproduces:

* consecutive 1 ms subframes of one basestation differ considerably
  (Fig. 1 shows swings of tens of percent between neighbouring
  subframes);
* the marginal CDFs differ across basestations (Fig. 14), with the
  heaviest cell spending noticeably more time near full load.

:func:`measure_load_from_energy` emulates the paper's measurement
methodology: it recovers the normalized load of a downlink capture by
windowed energy correlation at 1 ms granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


def clip01(values: np.ndarray) -> np.ndarray:
    """Clip an array of normalized loads into [0, 1]."""
    return np.clip(values, 0.0, 1.0)


@dataclass(frozen=True)
class BasestationTraceConfig:
    """Marginal and temporal parameters of one basestation's load."""

    mean: float = 0.45
    slow_std: float = 0.15
    fast_std: float = 0.10
    correlation_ms: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean <= 1.0:
            raise ValueError("mean load must be in [0, 1]")
        if self.slow_std < 0 or self.fast_std < 0:
            raise ValueError("std deviations must be >= 0")
        if self.correlation_ms <= 0:
            raise ValueError("correlation_ms must be positive")


def default_basestation_configs() -> List[BasestationTraceConfig]:
    """The 4-basestation mix used throughout the evaluation.

    Chosen so the per-BS CDFs fan out as in Fig. 14: one hot cell that
    regularly approaches full load down to a lightly loaded cell.
    """
    return [
        BasestationTraceConfig(mean=0.62, slow_std=0.18, fast_std=0.12),
        BasestationTraceConfig(mean=0.52, slow_std=0.16, fast_std=0.11),
        BasestationTraceConfig(mean=0.42, slow_std=0.15, fast_std=0.10),
        BasestationTraceConfig(mean=0.33, slow_std=0.13, fast_std=0.09),
    ]


class CellularTraceGenerator:
    """Generates per-subframe normalized load traces for a set of cells."""

    def __init__(
        self,
        configs: Optional[Sequence[BasestationTraceConfig]] = None,
        seed: int = 2016,
    ):
        self.configs = list(configs) if configs is not None else default_basestation_configs()
        if not self.configs:
            raise ValueError("need at least one basestation config")
        self.seed = seed

    @property
    def num_basestations(self) -> int:
        return len(self.configs)

    def generate(self, num_subframes: int) -> np.ndarray:
        """Return a ``(num_basestations, num_subframes)`` load array in [0, 1]."""
        if num_subframes < 1:
            raise ValueError("num_subframes must be >= 1")
        traces = np.empty((self.num_basestations, num_subframes))
        for i, cfg in enumerate(self.configs):
            rng = np.random.default_rng(self.seed + 1000 * i)
            traces[i] = self._generate_one(cfg, num_subframes, rng)
        return traces

    def _generate_one(
        self,
        cfg: BasestationTraceConfig,
        num_subframes: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        # AR(1): rho chosen so the correlation time matches cfg, with the
        # stationary std equal to slow_std.
        rho = float(np.exp(-1.0 / cfg.correlation_ms))
        innovation_std = cfg.slow_std * np.sqrt(1.0 - rho**2)
        state = rng.normal(scale=cfg.slow_std)
        # One batched draw (bit-identical to per-step scalar normals);
        # the recurrence itself stays scalar — a filtered implementation
        # could reassociate the floating-point ops.
        innovations = rng.normal(scale=innovation_std, size=num_subframes).tolist()
        slow = np.empty(num_subframes)
        for t in range(num_subframes):
            state = rho * state + innovations[t]
            slow[t] = state
        fast = rng.normal(scale=cfg.fast_std, size=num_subframes)
        return clip01(cfg.mean + slow + fast)


def measure_load_from_energy(
    samples: np.ndarray,
    samples_per_ms: int,
    noise_floor: float = 0.0,
) -> np.ndarray:
    """Estimate normalized load from an off-air capture (paper sec. 4.2).

    Mirrors the paper's methodology: average signal energy per 1 ms
    window, floor-subtracted and normalized by the maximum window so the
    busiest subframe maps to load 1.0.
    """
    samples = np.asarray(samples)
    if samples_per_ms < 1:
        raise ValueError("samples_per_ms must be >= 1")
    usable = (samples.size // samples_per_ms) * samples_per_ms
    if usable == 0:
        raise ValueError("capture shorter than one window")
    windows = np.abs(samples[:usable].reshape(-1, samples_per_ms)) ** 2
    energy = windows.mean(axis=1) - noise_floor
    energy = np.maximum(energy, 0.0)
    peak = energy.max()
    if peak == 0:
        return np.zeros_like(energy)
    return energy / peak


def synthesize_downlink_energy(
    load: np.ndarray,
    samples_per_ms: int,
    rng: np.random.Generator,
    snr_db: float = 20.0,
) -> np.ndarray:
    """Synthesize an off-air capture whose per-ms energy tracks ``load``.

    Used by tests to close the loop: generate a load trace, synthesize
    the corresponding RF energy, and verify the measurement recovers the
    trace.  Amplitude scales with sqrt(load); receiver noise at
    ``snr_db`` below the full-load signal power is added.
    """
    load = np.asarray(load, dtype=np.float64)
    amplitude = np.sqrt(np.repeat(load, samples_per_ms))
    noise_std = np.sqrt(10.0 ** (-snr_db / 10.0) / 2.0)
    i = rng.normal(scale=noise_std, size=amplitude.size)
    q = rng.normal(scale=noise_std, size=amplitude.size)
    phases = rng.uniform(0, 2 * np.pi, size=amplitude.size)
    return amplitude * np.exp(1j * phases) + i + 1j * q
