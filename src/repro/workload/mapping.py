"""Load-to-grant mapping: how a normalized load becomes an uplink grant.

The paper "emulate[s] the BS uplink traffic load through MCS variations"
with a single user at 100% PRB utilization (sec. 4.2): the MCS of each
subframe is determined by the basestation load trace.  The natural
mapping — which we use — makes the grant's nominal throughput
proportional to load: load 1.0 maps to MCS 27 (31.7 Mbps at 50 PRBs),
load 0 to MCS 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.lte.mcs import max_mcs, mcs_for_throughput, throughput_mbps
from repro.lte.subframe import UplinkGrant


@lru_cache(maxsize=None)
def _throughput_thresholds(num_prbs: int) -> np.ndarray:
    """Nominal throughput per MCS 0..max_mcs(), ascending (Mbps)."""
    return np.array(
        [throughput_mbps(m, num_prbs) for m in range(max_mcs() + 1)], dtype=np.float64
    )


@dataclass(frozen=True)
class GrantMapper:
    """Maps normalized load samples onto single-user uplink grants."""

    num_prbs: int = 50
    num_antennas: int = 2
    mcs_cap: int = 27

    def mcs_for_load(self, load: float) -> int:
        """MCS whose nominal throughput covers ``load`` of the peak rate."""
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        peak = throughput_mbps(self.mcs_cap, self.num_prbs)
        mcs = mcs_for_throughput(load * peak, self.num_prbs)
        return min(mcs, self.mcs_cap, max_mcs())

    def grant_for_load(self, load: float) -> UplinkGrant:
        """The subframe grant emulating a given normalized load."""
        return UplinkGrant(
            mcs=self.mcs_for_load(load),
            num_prbs=self.num_prbs,
            num_antennas=self.num_antennas,
        )

    def mcs_for_trace(self, loads: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`mcs_for_load` over a whole load trace.

        ``mcs_for_load`` picks the first MCS whose nominal throughput
        reaches ``load * peak`` — exactly a left ``searchsorted`` into
        the ascending per-MCS throughput table, so the two agree
        elementwise (same float comparisons on the same float64 values).
        """
        loads = np.asarray(loads, dtype=np.float64)
        if not (np.all(loads >= 0.0) and np.all(loads <= 1.0)):
            raise ValueError("load must be in [0, 1]")
        thresholds = _throughput_thresholds(self.num_prbs)
        peak = throughput_mbps(self.mcs_cap, self.num_prbs)
        mcs = np.searchsorted(thresholds, loads * peak, side="left")
        return np.minimum(mcs, min(self.mcs_cap, max_mcs())).astype(np.int64)

    def grants_for_trace(self, loads: np.ndarray) -> list:
        """Vector version: one grant per trace sample."""
        return [self.grant_for_load(float(l)) for l in np.asarray(loads).ravel()]
