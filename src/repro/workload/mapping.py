"""Load-to-grant mapping: how a normalized load becomes an uplink grant.

The paper "emulate[s] the BS uplink traffic load through MCS variations"
with a single user at 100% PRB utilization (sec. 4.2): the MCS of each
subframe is determined by the basestation load trace.  The natural
mapping — which we use — makes the grant's nominal throughput
proportional to load: load 1.0 maps to MCS 27 (31.7 Mbps at 50 PRBs),
load 0 to MCS 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte.mcs import max_mcs, mcs_for_throughput, throughput_mbps
from repro.lte.subframe import UplinkGrant


@dataclass(frozen=True)
class GrantMapper:
    """Maps normalized load samples onto single-user uplink grants."""

    num_prbs: int = 50
    num_antennas: int = 2
    mcs_cap: int = 27

    def mcs_for_load(self, load: float) -> int:
        """MCS whose nominal throughput covers ``load`` of the peak rate."""
        if not 0.0 <= load <= 1.0:
            raise ValueError("load must be in [0, 1]")
        peak = throughput_mbps(self.mcs_cap, self.num_prbs)
        mcs = mcs_for_throughput(load * peak, self.num_prbs)
        return min(mcs, self.mcs_cap, max_mcs())

    def grant_for_load(self, load: float) -> UplinkGrant:
        """The subframe grant emulating a given normalized load."""
        return UplinkGrant(
            mcs=self.mcs_for_load(load),
            num_prbs=self.num_prbs,
            num_antennas=self.num_antennas,
        )

    def grants_for_trace(self, loads: np.ndarray) -> list:
        """Vector version: one grant per trace sample."""
        return [self.grant_for_load(float(l)) for l in np.asarray(loads).ravel()]
