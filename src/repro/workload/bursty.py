"""Arrival-burstiness envelopes layered on the cellular traces.

`CellularTraceGenerator` models broadband load as an AR(1) walk around
a diurnal mean — the paper's (steady, eMBB-like) traffic.  The mixed
service scenario needs two more shapes:

* **flash crowd** — URLLC-style synchronized bursts: load sits at a
  quiet baseline, then spikes for a handful of subframes when an event
  fires (all the sensors/controllers in a cell reacting at once);
* **diurnal ramp** — mMTC-style slow swell: a deterministic ramp with
  one period across the horizon (metering windows, fleet check-ins).

Envelopes are multiplicative shapes in ``[0, ~peak]`` applied to a base
load matrix; the ``"steady"`` profile is the identity so the default
eMBB class leaves loads untouched.  All randomness comes from the
caller's generator — a dedicated ``"burst"`` stream — so shaping never
perturbs the iteration/noise streams the golden traces depend on.
"""

from __future__ import annotations

import numpy as np

from repro.workload.traces import clip01

#: Flash-crowd tuning: expected one burst per this many subframes.
FLASH_CROWD_PERIOD_SF = 200
#: Burst duration in subframes (1 ms each).
FLASH_CROWD_WIDTH_SF = 8
#: Load multiplier at the peak of a burst.
FLASH_CROWD_PEAK = 3.0
#: Quiet-time multiplier between bursts.
FLASH_CROWD_FLOOR = 0.4

#: Diurnal-ramp swing around 1.0 (peak = 1 + swing, trough = 1 - swing).
DIURNAL_SWING = 0.6


def steady_envelope(num_subframes: int) -> np.ndarray:
    """Identity envelope: the eMBB profile (trace already diurnal)."""
    return np.ones(num_subframes, dtype=np.float64)


def flash_crowd_envelope(
    num_subframes: int,
    rng: np.random.Generator,
    period_sf: int = FLASH_CROWD_PERIOD_SF,
    width_sf: int = FLASH_CROWD_WIDTH_SF,
    peak: float = FLASH_CROWD_PEAK,
    floor: float = FLASH_CROWD_FLOOR,
) -> np.ndarray:
    """Quiet floor with randomly-placed triangular bursts.

    Burst start positions are Bernoulli(1/period) per subframe, so the
    expected inter-burst spacing is ``period_sf`` subframes; each burst
    rises linearly to ``peak`` then decays over ``width_sf`` subframes.
    Overlapping bursts take the max, not the sum (a crowd is a crowd).
    """
    if num_subframes < 1:
        raise ValueError("need at least one subframe")
    env = np.full(num_subframes, floor, dtype=np.float64)
    starts = np.flatnonzero(rng.random(num_subframes) < 1.0 / period_sf)
    half = max(1, width_sf // 2)
    for start in starts:
        for k in range(width_sf):
            idx = start + k
            if idx >= num_subframes:
                break
            rise = (k + 1) / half if k < half else (width_sf - k) / half
            env[idx] = max(env[idx], floor + (peak - floor) * min(1.0, rise))
    return env


def diurnal_ramp_envelope(
    num_subframes: int,
    rng: np.random.Generator,
    swing: float = DIURNAL_SWING,
) -> np.ndarray:
    """One slow sinusoidal swell across the horizon, random phase."""
    if num_subframes < 1:
        raise ValueError("need at least one subframe")
    phase = rng.uniform(0.0, 2.0 * np.pi)
    t = np.arange(num_subframes, dtype=np.float64) / num_subframes
    return 1.0 + swing * np.sin(2.0 * np.pi * t + phase)


def burst_envelope(
    profile: str,
    num_subframes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Envelope for a named profile (``steady`` consumes no randomness)."""
    if profile == "steady":
        return steady_envelope(num_subframes)
    if profile == "flash-crowd":
        return flash_crowd_envelope(num_subframes, rng)
    if profile == "diurnal":
        return diurnal_ramp_envelope(num_subframes, rng)
    raise ValueError(f"unknown burst profile {profile!r}")


def shape_loads(
    base_loads: np.ndarray,
    envelope: np.ndarray,
    load_scale: float,
) -> np.ndarray:
    """Apply ``load_scale`` then the per-subframe envelope, clipped to [0, 1].

    ``base_loads`` is (num_basestations, num_subframes); the envelope
    broadcasts across basestations.
    """
    if base_loads.ndim != 2:
        raise ValueError("base_loads must be (num_basestations, num_subframes)")
    if envelope.shape != (base_loads.shape[1],):
        raise ValueError(
            f"envelope length {envelope.shape} does not match "
            f"{base_loads.shape[1]} subframes"
        )
    return clip01(base_loads * load_scale * envelope[np.newaxis, :])
