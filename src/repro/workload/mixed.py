"""Mixed-service workload construction.

``build_mixed_workload`` layers a :class:`~repro.workload.classes.ServiceMix`
over the standard trace-driven workload: each (basestation, subframe)
slot is assigned a traffic class by share, its load is scaled and
burst-shaped per the class profile, and the materialized job carries
the class tag plus the class's packet-delay-budget deadline.

Determinism contract: class assignment and burst envelopes draw from
their own named RNG streams (``service-class``, ``burst``), so the
iteration and platform-noise streams see exactly the sequence the
single-class builder gives them for the same load values.  A
single-class eMBB mix takes the fast path straight through
:func:`~repro.sched.runner.build_workload` — byte-identical jobs,
which is what the golden-trace suite pins.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

import numpy as np

from repro.constants import RX_BUDGET_US
from repro.lte.subframe import interned_grant
from repro.sched.base import CRanConfig, SubframeJob
from repro.sim.rng import RngStreams
from repro.workload.bursty import burst_envelope, shape_loads
from repro.workload.classes import DEFAULT_SERVICE, ServiceMix, single_class_mix
from repro.workload.traces import CellularTraceGenerator


def _is_plain_embb(mix: ServiceMix) -> bool:
    if not mix.is_single_class:
        return False
    cls = mix.classes[0]
    return (
        cls.name == DEFAULT_SERVICE
        and cls.delay_budget_us == RX_BUDGET_US
        and cls.burst == "steady"
        and cls.load_scale == 1.0
    )


def mixed_loads(
    mix: ServiceMix,
    base_loads: np.ndarray,
    seed: int,
) -> tuple:
    """Assign classes and shape loads; returns ``(assignment, shaped)``.

    ``assignment[bs, sf]`` indexes into ``mix.classes``; ``shaped`` is
    the burst-shaped load matrix the workload builder consumes.  Both
    are functions of (mix, base_loads, seed) only.
    """
    base_loads = np.asarray(base_loads, dtype=np.float64)
    num_bs, num_sf = base_loads.shape
    streams = RngStreams(seed)
    assignment = mix.assign(num_bs, num_sf, streams.stream("service-class"))
    burst_rng = streams.stream("burst")
    shaped = np.empty_like(base_loads)
    # Envelopes are drawn in class order so the stream consumption is
    # independent of the (random) assignment matrix.
    for ci, cls in enumerate(mix.classes):
        env = burst_envelope(cls.burst, num_sf, burst_rng)
        class_view = shape_loads(base_loads, env, cls.load_scale)
        mask = assignment == ci
        shaped[mask] = class_view[mask]
    return assignment, shaped


def build_mixed_workload(
    config: CRanConfig,
    num_subframes: int,
    mix: Optional[ServiceMix] = None,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
) -> List[SubframeJob]:
    """Materialize the per-subframe jobs of a mixed-service scenario.

    Each job is tagged with its class (on both the job and its grant)
    and carries ``deadline_override_us = air_time + delay_budget`` so
    every scheduler — none of which know about classes — enforces the
    per-class budget through the ordinary deadline field.
    """
    # Imported here: repro.sched.runner itself imports repro.workload.
    from repro.sched.runner import build_workload
    if mix is None:
        mix = single_class_mix()
    for cls in mix.classes:
        if cls.delay_budget_us <= config.transport_latency_us:
            raise ValueError(
                f"class {cls.name!r} budget {cls.delay_budget_us:g}us does not "
                f"clear the transport latency {config.transport_latency_us:g}us"
            )

    if loads is None:
        generator = CellularTraceGenerator(seed=seed)
        if generator.num_basestations < config.num_basestations:
            raise ValueError(
                "default trace model has fewer basestations than the config; pass loads="
            )
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}, "
            f"got {loads.shape}"
        )

    if _is_plain_embb(mix):
        # Fast path: today's workload, bit for bit.
        return build_workload(config, num_subframes, seed=seed, loads=loads)

    assignment, shaped = mixed_loads(mix, loads, seed)
    jobs = build_workload(config, num_subframes, seed=seed, loads=shaped)

    assign_list = assignment.tolist()
    tagged: List[SubframeJob] = []
    for job in jobs:
        sf = job.subframe
        cls = mix.classes[assign_list[sf.bs_id][sf.index]]
        # Equal to replace(sf.grant, service=...) but shares one grant
        # instance per (mcs, class) — the SoA jobs intern grants, so the
        # tagging pass should not explode them back into per-job copies.
        grant = interned_grant(sf.grant.mcs, sf.grant.num_prbs, sf.grant.num_antennas, cls.name)
        subframe = replace(sf, grant=grant)
        tagged.append(
            replace(
                job,
                subframe=subframe,
                service=cls.name,
                deadline_override_us=subframe.air_time_us + cls.delay_budget_us,
            )
        )
    return tagged
