"""Array-native workload pipeline: the structure-of-arrays fast path.

``build_workload_arrays`` runs the whole evaluation-workload
construction — load trace → MCS → per-code-block iteration draws →
Eq. (1) durations — as numpy column operations, producing a
:class:`WorkloadArrays` whose only per-subframe Python work is the
stream-exact RNG replay (:meth:`IterationModel.draw_trace`) and the
platform-noise draw (whose conditional uniforms preclude batching).
``materialize_jobs`` then lazily re-creates the legacy
:class:`~repro.sched.base.SubframeJob` dataclasses for the schedulers,
interning every frozen value object (grants, task specs, whole
subframe works) so equal subframes share one instance.

The contract is byte-identity: for the default model types the job list
compares equal, field for field, with the scalar builder retained as
``build_workload_legacy`` in :mod:`repro.sched.runner` — the RNG streams
are consumed bit-for-bit identically and every float is gathered from
tables the duration oracle computed with the exact scalar formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, interned_grant
from repro.sched.base import CRanConfig, SubframeJob
from repro.sim.rng import RngStreams
from repro.timing.iterations import IterationModel
from repro.timing.model import DurationTables, LinearTimingModel, duration_oracle
from repro.timing.platform import PlatformNoiseModel
from repro.timing.tasks import SubtaskArrays, WorkMaterializer, build_subtask_arrays
from repro.workload.mapping import GrantMapper
from repro.workload.traces import CellularTraceGenerator


@dataclass(frozen=True)
class WorkloadArrays:
    """Columnar form of one experiment's workload.

    Per-subframe columns are ordered basestation-major — exactly the
    legacy builder's ``(bs, subframe)`` loop order, so materialized
    jobs come out in the same sequence.  ``subtasks`` is the flat
    per-subtask SoA (durations, kinds, code-block indices) built in the
    same pass.
    """

    snr_db: float
    num_prbs: int
    num_antennas: int
    tables: DurationTables
    bs_id: np.ndarray
    subframe_index: np.ndarray
    load: np.ndarray
    mcs: np.ndarray
    transport_latency_us: np.ndarray
    noise_us: np.ndarray
    crc_pass: np.ndarray
    iterations: np.ndarray
    block_offsets: np.ndarray
    subtasks: SubtaskArrays

    @property
    def num_jobs(self) -> int:
        return len(self.mcs)


def build_workload_arrays(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    timing_model: Optional[LinearTimingModel] = None,
    iteration_model: Optional[IterationModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mapper: Optional[GrantMapper] = None,
    transport_jitter: Optional[np.ndarray] = None,
) -> WorkloadArrays:
    """Columnar equivalent of :func:`repro.sched.runner.build_workload`.

    Accepts the same parameters and consumes the same RNG streams in
    the same order; see the module docstring for the identity contract.
    """
    streams = RngStreams(seed)
    timing = timing_model if timing_model is not None else LinearTimingModel()
    iters = iteration_model if iteration_model is not None else IterationModel(
        max_iterations=config.max_iterations
    )
    noise = noise_model if noise_model is not None else PlatformNoiseModel()
    grants = mapper if mapper is not None else GrantMapper(num_antennas=config.num_antennas)

    if loads is None:
        generator = CellularTraceGenerator(seed=seed)
        if generator.num_basestations < config.num_basestations:
            raise ValueError(
                "default trace model has fewer basestations than the config; pass loads="
            )
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}, got {loads.shape}"
        )
    if transport_jitter is not None:
        transport_jitter = np.asarray(transport_jitter, dtype=np.float64)
        if transport_jitter.shape != loads.shape:
            raise ValueError("transport_jitter must match the loads shape")

    load_flat = loads.ravel()  # C order == the legacy (bs, subframe) loop
    n = load_flat.size
    mcs = grants.mcs_for_trace(load_flat)

    oracle = duration_oracle(timing, config.max_iterations)
    tables = oracle.tables(
        num_prbs=grants.num_prbs,
        num_antennas=grants.num_antennas,
        mcs_cap=grants.mcs_cap,
    )
    blocks = tables.code_blocks[mcs]
    block_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(blocks, out=block_offsets[1:])

    draw = iters.draw_trace(mcs, config.snr_db, streams.stream("iterations"), block_offsets)

    # The noise model's conditional spike/tail uniforms consume a
    # data-dependent number of stream doubles, so this stays a scalar
    # loop — three cheap rng calls per subframe.
    noise_rng = streams.stream("platform-noise")
    noise_us = np.array([noise.draw_one(noise_rng) for _ in range(n)], dtype=np.float64)

    transport_us = np.full(n, config.transport_latency_us, dtype=np.float64)
    if transport_jitter is not None:
        transport_us = transport_us + transport_jitter.ravel()

    bs_id = np.repeat(np.arange(config.num_basestations, dtype=np.int64), num_subframes)
    subframe_index = np.tile(np.arange(num_subframes, dtype=np.int64), config.num_basestations)
    subtasks = build_subtask_arrays(
        tables, mcs, bs_id, subframe_index, draw.iterations, block_offsets
    )
    return WorkloadArrays(
        snr_db=config.snr_db,
        num_prbs=grants.num_prbs,
        num_antennas=grants.num_antennas,
        tables=tables,
        bs_id=bs_id,
        subframe_index=subframe_index,
        load=load_flat,
        mcs=mcs,
        transport_latency_us=transport_us,
        noise_us=noise_us,
        crc_pass=draw.crc_pass,
        iterations=draw.iterations,
        block_offsets=block_offsets,
        subtasks=subtasks,
    )


def materialize_jobs(arrays: WorkloadArrays) -> List[SubframeJob]:
    """Materialize the legacy job list from the columnar workload.

    Every frozen piece is interned — one grant per MCS, one
    :class:`~repro.timing.tasks.SubframeWork` per distinct
    (MCS, iteration vector, CRC) — so the job list allocates O(distinct)
    value objects instead of O(subframes).
    """
    grid = GridConfig(10.0)
    materializer = WorkMaterializer(arrays.tables)
    works = arrays.subtasks.materialize_works(materializer, arrays.crc_pass)
    mcs = arrays.mcs.tolist()
    bs_id = arrays.bs_id.tolist()
    index = arrays.subframe_index.tolist()
    latency = arrays.transport_latency_us.tolist()
    noise = arrays.noise_us.tolist()
    load = arrays.load.tolist()
    snr_db = arrays.snr_db
    grants = {
        m: interned_grant(m, arrays.num_prbs, arrays.num_antennas) for m in set(mcs)
    }
    return [
        SubframeJob(
            subframe=Subframe(
                bs_id=bs_id[i],
                index=index[i],
                grant=grants[mcs[i]],
                snr_db=snr_db,
                transport_latency_us=latency[i],
                grid=grid,
            ),
            work=works[i],
            noise_us=noise[i],
            load=load[i],
        )
        for i in range(len(mcs))
    ]
