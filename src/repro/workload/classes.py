"""Mixed-service traffic classes: URLLC / eMBB / mMTC.

The paper evaluates every subframe against the single 2 ms uplink
budget (Eq. (2)).  5G service classes break that assumption: each class
carries its own *packet delay budget* (PDB — the time from over-the-air
receipt to decode finish), its own arrival-burstiness profile, and a
share of the user population (3GPP TS 23.501 QoS characteristics,
collapsed to the three canonical classes):

* **URLLC** — ultra-reliable low latency: a tight sub-millisecond
  budget, small payloads, and flash-crowd arrival bursts (alarms,
  coordinated control loops firing together);
* **eMBB** — mobile broadband: the paper's workload, 2 ms budget,
  full-load traffic shaped by the measured cellular traces;
* **mMTC** — massive machine type: delay-tolerant tiny reports whose
  aggregate load follows slow diurnal ramps.

A :class:`ServiceMix` assigns classes to subframes by share and is the
unit the CLI's ``--classes urllc:0.1,embb:0.6,mmtc:0.3`` spec parses
into.  The default single-class mix (``embb:1.0``) reproduces today's
behaviour exactly: budget 2 ms, no load shaping, no extra RNG draws on
the workload streams — which is what keeps the committed golden traces
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.constants import RX_BUDGET_US

#: Class name every un-tagged job implicitly carries (the paper's
#: single-deadline workload *is* eMBB traffic).
DEFAULT_SERVICE = "embb"

#: Share tolerance: parsed shares must sum to 1 within this.
_SHARE_EPS = 1e-6


@dataclass(frozen=True)
class ServiceClass:
    """One traffic class of the mixed-service scenario.

    Attributes
    ----------
    name:
        Class tag carried on grants, jobs, records, and trace events.
    delay_budget_us:
        Packet delay budget: the absolute deadline is
        ``air_time + delay_budget_us`` (the eMBB budget equals the
        paper's ``RX_BUDGET_US``).
    share:
        Fraction of subframes/users this class claims in a mix.
    burst:
        Arrival-burstiness profile shaping this class's load
        (see :mod:`repro.workload.bursty`): ``"steady"``,
        ``"flash-crowd"``, or ``"diurnal"``.
    load_scale:
        Multiplier on the base cellular trace before burst shaping —
        URLLC/mMTC payloads are far smaller than broadband traffic.
    """

    name: str
    delay_budget_us: float
    share: float
    burst: str = "steady"
    load_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service class needs a name")
        if self.delay_budget_us <= 0:
            raise ValueError("delay_budget_us must be positive")
        if not 0.0 <= self.share <= 1.0:
            raise ValueError("share must lie in [0, 1]")
        if self.burst not in ("steady", "flash-crowd", "diurnal"):
            raise ValueError(f"unknown burst profile {self.burst!r}")
        if self.load_scale <= 0:
            raise ValueError("load_scale must be positive")


#: The canonical classes a ``--classes`` spec refers to by name.
STANDARD_CLASSES: Dict[str, ServiceClass] = {
    # URLLC: tightest budget that stays physically feasible — a full
    # subframe decodes in 0.5-1.4 ms (Fig. 3), so with RTT/2 = 500 us a
    # sub-1.5 ms budget would be unmeetable for every frame; 1.5 ms
    # leaves low-MCS URLLC frames schedulable with zero slack to waste.
    "urllc": ServiceClass(
        "urllc", delay_budget_us=1500.0, share=0.0,
        burst="flash-crowd", load_scale=0.35,
    ),
    "embb": ServiceClass(
        "embb", delay_budget_us=RX_BUDGET_US, share=0.0,
        burst="steady", load_scale=1.0,
    ),
    "mmtc": ServiceClass(
        "mmtc", delay_budget_us=10000.0, share=0.0,
        burst="diurnal", load_scale=0.15,
    ),
}

#: Mix the ``ext_mixed`` experiment runs by default.
DEFAULT_MIXED_SPEC = "urllc:0.2,embb:0.5,mmtc:0.3"


@dataclass(frozen=True)
class ServiceMix:
    """An ordered set of service classes whose shares sum to one."""

    classes: Tuple[ServiceClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a service mix needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in mix: {names}")
        total = sum(c.share for c in self.classes)
        if abs(total - 1.0) > _SHARE_EPS:
            raise ValueError(f"class shares must sum to 1, got {total:.6f}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.classes)

    @property
    def is_single_class(self) -> bool:
        return len(self.classes) == 1

    def by_name(self, name: str) -> ServiceClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class {name!r} in mix {self.spec()}")

    def budgets(self) -> Dict[str, float]:
        """Per-class packet delay budgets in microseconds."""
        return {c.name: c.delay_budget_us for c in self.classes}

    def spec(self) -> str:
        """Render back to the ``--classes`` spec syntax."""
        return ",".join(f"{c.name}:{c.share:g}" for c in self.classes)

    def assign(
        self,
        num_basestations: int,
        num_subframes: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Class index per (basestation, subframe), drawn by share.

        One draw per subframe from ``rng`` — a dedicated stream, so the
        assignment never perturbs the workload's iteration/noise
        streams.  A single-class mix assigns without consuming any
        randomness at all (the byte-identity guarantee).
        """
        shape = (num_basestations, num_subframes)
        if self.is_single_class:
            return np.zeros(shape, dtype=np.intp)
        shares = np.array([c.share for c in self.classes], dtype=np.float64)
        shares = shares / shares.sum()  # exact normalization for choice()
        return rng.choice(len(self.classes), size=shape, p=shares)


def single_class_mix(name: str = DEFAULT_SERVICE) -> ServiceMix:
    """The degenerate mix reproducing today's single-deadline workload."""
    base = STANDARD_CLASSES.get(name)
    if base is None:
        raise ValueError(
            f"unknown service class {name!r}; known: {sorted(STANDARD_CLASSES)}"
        )
    return ServiceMix((replace(base, share=1.0),))


def parse_class_spec(spec: str) -> ServiceMix:
    """Parse a ``urllc:0.1,embb:0.6,mmtc:0.3``-style CLI spec.

    Each entry is ``<class>:<share>`` with ``<class>`` one of the
    standard names; entries with share 0 are dropped; shares must sum
    to 1.  Raises ``ValueError`` with a position-bearing message on any
    malformed entry.
    """
    if not spec or not spec.strip():
        raise ValueError("empty --classes spec")
    classes = []
    for pos, entry in enumerate(spec.split(",")):
        entry = entry.strip()
        if not entry:
            raise ValueError(f"empty entry at position {pos} in {spec!r}")
        name, sep, share_text = entry.partition(":")
        name = name.strip().lower()
        if not sep:
            raise ValueError(
                f"entry {entry!r} at position {pos} is not <class>:<share>"
            )
        base = STANDARD_CLASSES.get(name)
        if base is None:
            raise ValueError(
                f"unknown service class {name!r} at position {pos}; "
                f"known: {sorted(STANDARD_CLASSES)}"
            )
        try:
            share = float(share_text)
        except ValueError:
            raise ValueError(
                f"non-numeric share {share_text!r} for class {name!r} "
                f"at position {pos}"
            ) from None
        if share < 0:
            raise ValueError(f"negative share for class {name!r}")
        if share == 0:
            continue
        classes.append(replace(base, share=share))
    if not classes:
        raise ValueError(f"no class with a positive share in {spec!r}")
    return ServiceMix(tuple(classes))
