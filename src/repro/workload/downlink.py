"""Downlink (Tx) job construction for the Tx-aware extension.

Builds the encode job stream that accompanies an uplink workload: one
Tx job per basestation per subframe, arriving one subframe before its
over-the-air transmission (Fig. 8) and due at the transmission instant
minus the transport latency to the radio.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.constants import SUBFRAME_US
from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe
from repro.sched.base import CRanConfig, SubframeJob
from repro.sim.rng import RngStreams
from repro.timing.downlink import DownlinkTimingModel, build_tx_work
from repro.timing.platform import PlatformNoiseModel
from repro.workload.mapping import GrantMapper
from repro.workload.traces import CellularTraceGenerator


def build_tx_jobs(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    timing_model: Optional[DownlinkTimingModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mapper: Optional[GrantMapper] = None,
) -> List[SubframeJob]:
    """One downlink encode job per (basestation, subframe).

    ``loads`` drives the downlink MCS the same way the uplink builder
    works; by default an independent trace (seed offset) is generated,
    since downlink and uplink traffic are not the same.
    """
    streams = RngStreams(seed + 7)
    timing = timing_model if timing_model is not None else DownlinkTimingModel()
    noise = noise_model if noise_model is not None else PlatformNoiseModel()
    grants = mapper if mapper is not None else GrantMapper(num_antennas=config.num_antennas)

    if loads is None:
        generator = CellularTraceGenerator(seed=seed + 7)
        if generator.num_basestations < config.num_basestations:
            raise ValueError("default trace model has too few basestations; pass loads=")
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}, got {loads.shape}"
        )

    grid = GridConfig(10.0)
    noise_rng = streams.stream("tx-noise")
    jobs: List[SubframeJob] = []
    for bs in range(config.num_basestations):
        for k in range(1, num_subframes):
            load = float(loads[bs, k])
            grant = grants.grant_for_load(load)
            work = build_tx_work(timing, grant, noise_us=noise.draw_one(noise_rng))
            subframe = Subframe(
                bs_id=bs,
                index=k,
                grant=grant,
                snr_db=config.snr_db,
                transport_latency_us=config.transport_latency_us,
                grid=grid,
            )
            jobs.append(
                SubframeJob(
                    subframe=subframe,
                    work=work,
                    noise_us=0.0,  # already folded into the tx task
                    load=load,
                    kind="tx",
                    # Encoding starts 1 ms before over-the-air Tx ...
                    arrival_override_us=(k - 1) * SUBFRAME_US,
                    # ... and the samples must reach the radio in time.
                    deadline_override_us=k * SUBFRAME_US - config.transport_latency_us,
                )
            )
    return jobs
