"""Trace persistence: save/load load traces as NPZ or CSV.

The paper replays measured off-air traces; an adopter of this library
will want to feed their own.  Traces are ``(num_basestations,
num_subframes)`` float arrays in [0, 1] at 1 ms granularity.  NPZ is the
compact native format; CSV (one column per basestation, header row) is
the interchange format for traces exported from other tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, Path]


def _validate(traces: np.ndarray) -> np.ndarray:
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise ValueError("traces must be 2-D: (basestations, subframes)")
    if traces.size == 0:
        raise ValueError("traces must be non-empty")
    if traces.min() < 0.0 or traces.max() > 1.0:
        raise ValueError("normalized loads must lie in [0, 1]")
    return traces


def save_traces_npz(path: PathLike, traces: np.ndarray) -> None:
    """Save traces to a compressed NPZ file."""
    traces = _validate(traces)
    np.savez_compressed(Path(path), traces=traces)


def load_traces_npz(path: PathLike) -> np.ndarray:
    """Load traces saved by :func:`save_traces_npz`."""
    with np.load(Path(path)) as data:
        if "traces" not in data:
            raise ValueError(f"{path} does not contain a 'traces' array")
        return _validate(data["traces"])


def save_traces_csv(path: PathLike, traces: np.ndarray) -> None:
    """Save traces as CSV: header ``bs0,bs1,...``, one row per subframe."""
    traces = _validate(traces)
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([f"bs{i}" for i in range(traces.shape[0])])
        for row in traces.T:
            writer.writerow([f"{v:.6f}" for v in row])


def _is_numeric_row(row: list) -> bool:
    try:
        for cell in row:
            float(cell)
    except ValueError:
        return False
    return bool(row)


def load_traces_csv(path: PathLike) -> np.ndarray:
    """Load traces from the CSV layout of :func:`save_traces_csv`.

    The ``bs0,bs1,...`` header row is optional: a first row that parses
    entirely as numbers is treated as data (a headerless export), not
    silently discarded.  Malformed cells are reported with their 1-based
    row and column position.
    """
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        first = next(reader, None)
        if not first:
            raise ValueError(f"{path} is empty")
        headerless = _is_numeric_row(first)
        width = len(first)
        rows = []
        if headerless:
            rows.append([float(cell) for cell in first])
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            parsed = []
            for col, cell in enumerate(row):
                try:
                    parsed.append(float(cell))
                except ValueError:
                    raise ValueError(
                        f"{path}: non-numeric cell {cell!r} at row {line_no}, "
                        f"column {col + 1}"
                    ) from None
            rows.append(parsed)
    if not rows:
        raise ValueError(f"{path} has no data rows")
    widths = {len(row) for row in rows}
    if widths != {width}:
        raise ValueError(
            f"{path}: ragged CSV — every row must have {width} columns "
            f"(saw widths {sorted(widths)})"
        )
    return _validate(np.array(rows).T)
