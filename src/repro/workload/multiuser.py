"""Multi-user workload construction.

Splits each subframe's offered load across 1-4 users with random PRB
allocations — the "realistic scenario with multiple users and varying
PRB utilization" the paper's sec. 4.2 describes but could not capture
off the air.  The offered bits match the single-user mapping (every
user runs at the spectral efficiency the load calls for, and unused
PRBs stay idle below full load), so single- vs multi-user runs compare
the *same* traffic through different task granularities.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe, interned_grant
from repro.sched.base import CRanConfig, SubframeJob
from repro.sim.rng import RngStreams
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel
from repro.timing.multiuser import build_multiuser_work
from repro.timing.platform import PlatformNoiseModel
from repro.workload.mapping import GrantMapper
from repro.workload.traces import CellularTraceGenerator

if TYPE_CHECKING:
    from repro.workload.classes import ServiceMix

#: Smallest per-user allocation worth scheduling (PRBs).
MIN_USER_PRBS = 4


def split_prbs(total: int, num_users: int, rng: np.random.Generator) -> List[int]:
    """Random composition of ``total`` PRBs with a minimum share each.

    Every returned share is ``>= MIN_USER_PRBS`` and the shares sum to
    ``total``, shrinking ``num_users`` when the request cannot satisfy
    the minimum.  Degenerate case, explicitly allowed: when
    ``0 < total < MIN_USER_PRBS`` the grid cannot host even one
    minimum-sized allocation, so the single user takes the whole
    (sub-minimum) grant — ``[total]`` — rather than pretending at PRBs
    that do not exist.  ``total < 1`` or ``num_users < 1`` is a caller
    bug and raises.
    """
    if total < 1:
        raise ValueError(f"cannot split {total} PRBs: need at least 1")
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if total < num_users * MIN_USER_PRBS:
        num_users = max(1, total // MIN_USER_PRBS)
    if num_users == 1:
        return [total]
    cuts = np.sort(
        rng.choice(
            np.arange(1, total - num_users * (MIN_USER_PRBS - 1)),
            size=num_users - 1,
            replace=False,
        )
    )
    parts = np.diff(np.concatenate([[0], cuts, [total - num_users * (MIN_USER_PRBS - 1)]]))
    return [int(p) + MIN_USER_PRBS - 1 for p in parts]


def build_multiuser_workload(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    max_users: int = 4,
    full_prb: bool = True,
    timing_model: Optional[LinearTimingModel] = None,
    iteration_model: Optional[IterationModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mix: Optional["ServiceMix"] = None,
) -> List[SubframeJob]:
    """Materialize a multi-user workload over the standard traces.

    With ``full_prb=True`` (default) every subframe occupies all 50
    PRBs split across a random number of users at the load's spectral
    efficiency — byte-comparable to the single-user workload, only the
    task granularity differs.  With ``full_prb=False`` the occupied PRB
    count itself scales with load ("varying PRB utilization").

    ``mix`` optionally assigns each *user* a traffic class by share
    (drawn from the dedicated ``mu-class`` stream, so passing no mix
    leaves the workload byte-identical to before).  The subframe-level
    job is as urgent as its most critical user: its deadline is the
    minimum per-user budget and its class tag that user's class.
    """
    if max_users < 1:
        raise ValueError("max_users must be >= 1")
    streams = RngStreams(seed)
    timing = timing_model if timing_model is not None else LinearTimingModel()
    iters = iteration_model if iteration_model is not None else IterationModel(
        max_iterations=config.max_iterations
    )
    noise = noise_model if noise_model is not None else PlatformNoiseModel()
    mapper = GrantMapper(num_antennas=config.num_antennas)

    if loads is None:
        generator = CellularTraceGenerator(seed=seed)
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}"
        )

    grid = GridConfig(10.0)
    split_rng = streams.stream("mu-split")
    iter_rng = streams.stream("mu-iterations")
    noise_rng = streams.stream("mu-noise")
    class_rng = streams.stream("mu-class") if mix is not None else None
    mix_shares = None
    if mix is not None:
        mix_shares = np.array([c.share for c in mix.classes], dtype=np.float64)
        mix_shares = mix_shares / mix_shares.sum()

    # One vectorized pass over the whole trace instead of a per-subframe
    # table walk; elementwise identical to mcs_for_load (see mapping.py).
    mcs_all = mapper.mcs_for_trace(loads).tolist()
    load_all = loads.tolist()

    jobs: List[SubframeJob] = []
    for bs in range(config.num_basestations):
        for j in range(num_subframes):
            load = load_all[bs][j]
            mcs = mcs_all[bs][j]
            if full_prb:
                occupied = 50
            else:
                occupied = max(MIN_USER_PRBS, int(round(load * 50)))
            num_users = int(split_rng.integers(1, max_users + 1))
            shares = split_prbs(occupied, num_users, split_rng)
            if mix is None:
                user_classes = None
            elif mix.is_single_class:
                user_classes = [mix.classes[0]] * len(shares)
            else:
                draws = class_rng.choice(
                    len(mix.classes), size=len(shares), p=mix_shares
                )
                user_classes = [mix.classes[int(d)] for d in draws]
            grants = [
                interned_grant(
                    mcs, p, config.num_antennas,
                    user_classes[u].name if user_classes else "embb",
                )
                for u, p in enumerate(shares)
            ]
            per_user_iters = []
            crc_ok = True
            for grant in grants:
                draw = iters.draw_subframe(
                    grant.mcs, config.snr_db, iter_rng, num_blocks=grant.code_blocks
                )
                per_user_iters.append(draw.iterations)
                crc_ok = crc_ok and draw.crc_pass
            work = build_multiuser_work(
                timing,
                grants,
                per_user_iters,
                max_iterations=config.max_iterations,
                crc_pass=crc_ok,
            )
            # Identity subframe: keep the first grant for bookkeeping.
            subframe = Subframe(
                bs_id=bs,
                index=j,
                grant=grants[0],
                snr_db=config.snr_db,
                transport_latency_us=config.transport_latency_us,
                grid=grid,
            )
            if user_classes:
                # The subframe finishes when its slowest user decodes, so
                # the job inherits the *tightest* user budget present.
                critical = min(user_classes, key=lambda c: c.delay_budget_us)
                deadline_override = subframe.air_time_us + critical.delay_budget_us
                service = critical.name
            else:
                deadline_override = None
                service = "embb"
            jobs.append(
                SubframeJob(
                    subframe=subframe,
                    work=work,
                    noise_us=noise.draw_one(noise_rng),
                    load=load,
                    deadline_override_us=deadline_override,
                    service=service,
                )
            )
    return jobs
