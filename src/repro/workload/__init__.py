"""Cellular workload traces and load-to-grant mapping.

The paper drives its evaluation with basestation load traces measured
off the air in a metropolitan area (USRPs logging Band-13/17 downlink
and correlating against average signal energy every 1 ms).  Public
traces being unavailable, this subpackage generates synthetic traces
shaped to the published properties — large subframe-to-subframe
variation (Fig. 1) and distinct per-basestation load CDFs (Fig. 14) —
and emulates the energy-correlation measurement itself.
"""

from repro.workload.classes import (
    STANDARD_CLASSES,
    ServiceClass,
    ServiceMix,
    parse_class_spec,
    single_class_mix,
)
from repro.workload.mapping import GrantMapper
from repro.workload.mixed import build_mixed_workload
from repro.workload.traces import (
    BasestationTraceConfig,
    CellularTraceGenerator,
    default_basestation_configs,
    measure_load_from_energy,
)

__all__ = [
    "GrantMapper",
    "BasestationTraceConfig",
    "CellularTraceGenerator",
    "default_basestation_configs",
    "measure_load_from_energy",
    "STANDARD_CLASSES",
    "ServiceClass",
    "ServiceMix",
    "parse_class_spec",
    "single_class_mix",
    "build_mixed_workload",
]
