"""Partitioned scheduler (paper sec. 3.1.1).

Subframe ``j`` of basestation ``i`` is processed on core
``i*ceil(Tmax) + j mod ceil(Tmax)`` — a schedule fixed offline.  With
``ceil(Tmax) = 2`` each core sees one subframe of its basestation every
2 ms, which exceeds the Tmax upper bound, so a core is always free when
its next subframe arrives: partitioned scheduling is queue-free by
construction (and this implementation asserts it).

Deadline enforcement follows sec. 4.1: before each task the thread
checks the remaining slack against the task model and drops the
subframe if even the optimistic execution cannot fit; an overrunning
task is terminated at the deadline.  Either case is a deadline miss.
The resulting idle gaps (``~2 ms - Trxproc``) are recorded — they are
exactly the resource RT-OPEX later harvests (Fig. 16).

With a :class:`~repro.obs.trace.RunTrace` attached the run emits the
full timeline: arrival instants, per-task busy spans (clipped at the
deadline on termination), idle-gap spans, and one deadline verdict per
subframe.  Per-core busy time is accounted either way and returned in
``SchedulerResult.core_busy_us``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.trace import RunTrace
from repro.sched.base import (
    CRanConfig,
    SchedulerResult,
    SubframeJob,
    SubframeRecord,
    assigned_core_for,
    next_partitioned_activation,
)


class PartitionedScheduler:
    """Offline partitioned schedule with slack-check dropping."""

    name = "partitioned"

    def __init__(self, config: CRanConfig, trace: Optional[RunTrace] = None):
        self.config = config
        self.trace = trace

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        """Replay ``jobs`` (any order) through the fixed schedule."""
        config = self.config
        trace = self.trace
        core_free_at: Dict[int, float] = {}
        busy: Dict[int, float] = {}
        records: List[SubframeRecord] = []

        for job in sorted(jobs, key=lambda j: (j.arrival_us, j.subframe.bs_id)):
            sf = job.subframe
            core = assigned_core_for(job, config.cores_per_bs)
            record = SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                core_id=core,
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )
            # With ceil(Tmax) >= 2 cores per BS the core is always free by
            # construction (processing terminates at the 2 ms deadline,
            # before the next assigned arrival).  Under-provisioned
            # configurations (cores_per_bs = 1) make the thread busy-wait
            # on the semaphore, which surfaces as queueing delay here.
            start = max(job.arrival_us, core_free_at.get(core, 0.0))
            record.queue_delay_us = start - job.arrival_us
            record.start_us = start
            if trace is not None:
                trace.arrival(job.arrival_us, core, sf.bs_id, sf.index)
            finish = self._execute(job, start, record, busy, trace)
            record.finish_us = finish
            core_free_at[core] = finish
            slot = sf.index % config.cores_per_bs
            activation = next_partitioned_activation(
                sf.bs_id, slot, finish, config.cores_per_bs, config.transport_latency_us
            )
            record.gap_us = max(0.0, activation - finish)
            if trace is not None:
                trace.deadline(
                    finish, core, record.missed or record.dropped,
                    sf.bs_id, sf.index, drop_stage=record.drop_stage,
                    service=record.service,
                )
                # A slack-check drop frees the core early but the gap is
                # "not used" (sec. 4.1); flag it so the aggregators can
                # separate harvestable gaps from framework-reserved ones.
                trace.gap(
                    core, finish, record.gap_us, sf.bs_id, sf.index,
                    usable=not record.dropped,
                )
            records.append(record)

        return SchedulerResult(self.name, config, records, core_busy_us=busy)

    def _execute(
        self,
        job: SubframeJob,
        start: float,
        record: SubframeRecord,
        busy: Optional[Dict[int, float]] = None,
        trace: Optional[RunTrace] = None,
    ) -> float:
        """Serial task-by-task execution with slack checks; returns finish."""
        now = start
        deadline = job.deadline_us
        noise_left = job.noise_us
        core = record.core_id
        for task in job.work.tasks:
            duration = task.serial_duration_us
            if task.name == "demod":
                # The platform error E lands on the owning thread's
                # serial path; demod is the always-serial stage.
                duration += noise_left
                noise_left = 0.0
            if self.config.drop_on_slack_check:
                optimistic = self._optimistic_task_time(job, task.name)
                if now + optimistic > deadline:
                    record.dropped = True
                    record.drop_stage = task.name
                    record.missed = True
                    return now  # the remaining gap is not used (sec. 4.1)
            end = now + duration
            executed_until = min(end, deadline)
            if busy is not None and executed_until > now:
                busy[core] = busy.get(core, 0.0) + (executed_until - now)
            if trace is not None:
                trace.task(core, task.name, now, executed_until, record.bs_id, record.index)
            now = end
            if now > deadline:
                record.missed = True
                return deadline  # terminated at the deadline
        return now

    def _optimistic_task_time(self, job: SubframeJob, task_name: str) -> float:
        """Model-based lower bound on a task's execution time.

        FFT/demod are deterministic; decode's bound assumes one
        iteration per code block (L = 1), so a drop happens only when
        the deadline is unreachable even in the best case.
        """
        task = job.work.task(task_name)
        if task_name != "decode":
            return task.serial_duration_us
        if not task.subtasks:
            return task.serial_duration_us
        one_iter_total = sum(
            s.duration_us / l for s, l in zip(task.subtasks, job.work.iterations)
        )
        return task.serial_us + one_iter_total
