"""RT-OPEX: partitioned scheduling + opportunistic subtask migration.

This is the paper's contribution (sec. 3.2).  The base placement is the
partitioned schedule; at each parallelizable task boundary (FFT and
decode) the processing thread runs Algorithm 1 against the *currently
idle* cores and migrates subtasks into their free windows.  Design
points implemented faithfully:

* **Free-window computation** — the partitioned schedule makes arrivals
  deterministic, so the free time of an idle core k is the span until
  its next activation; it is additionally clipped at the migrating
  subframe's own deadline, since results arriving later are useless.
  This clipping is why gaps "get narrower" as RTT/2 grows (sec. 4.3) —
  the deadline moves earlier relative to the decode start.
* **Preemption** — a migrated subtask still running when the helper
  core's own subframe arrives is abandoned (*result not ready*); the
  helper always starts its own work on time, so migration can never
  hurt other basestations.
* **Recovery** — the owning thread recomputes any not-ready migrated
  subtasks locally after finishing its local share, bounding RT-OPEX's
  worst case at the serial baseline (sec. 3.2.1 B).
* **Migration cost** — the paper measures a fixed ~20 us per migrated
  task, dominated by fetching the shared OAI state into the helper's
  cache (Fig. 18); Fig. 4 shows a ~6 us incremental cost for extra
  subtasks on the same core.  We therefore split delta into a per-batch
  component (paid once per helper core) and a small per-subtask
  component, and feed their sum per subtask into Algorithm 1's R1 bound.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import SUBFRAME_US
from repro.obs.trace import RunTrace
from repro.sched.base import (
    CRanConfig,
    MigrationEvent,
    SchedulerResult,
    SubframeJob,
    SubframeRecord,
    assigned_core_for,
    next_partitioned_activation,
)
from repro.sim.engine import Simulator
from repro.timing.platform import PlatformNoiseModel

#: Fixed cost of the first migration to a helper core (shared-state fetch).
DEFAULT_BATCH_OVERHEAD_US = 20.0
#: Incremental cost per additional migrated subtask in the same batch.
DEFAULT_SUBTASK_OVERHEAD_US = 0.5


@dataclass(frozen=True)
class _BatchOutcome:
    """Result of executing one migrated batch on a helper core."""

    target_core: int
    num_subtasks: int
    completed: int
    ready_time: float  # when the last *completed* subtask's flag was set
    recovered_durations: Tuple[float, ...]  # actual times of unfinished subtasks
    planned_us: float
    actual_us: float


class RtOpexScheduler:
    """RT-OPEX on top of the partitioned base schedule."""

    name = "rt-opex"

    def __init__(
        self,
        config: CRanConfig,
        rng: Optional[np.random.Generator] = None,
        batch_overhead_us: float = DEFAULT_BATCH_OVERHEAD_US,
        subtask_overhead_us: float = DEFAULT_SUBTASK_OVERHEAD_US,
        flag_patience_us: float = 30.0,
        remote_noise: Optional[PlatformNoiseModel] = None,
        migrate_fft: bool = True,
        migrate_decode: bool = True,
        planner=None,
        trace: Optional[RunTrace] = None,
    ):
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.batch_overhead_us = batch_overhead_us
        self.subtask_overhead_us = subtask_overhead_us
        self.flag_patience_us = flag_patience_us
        self.remote_noise = remote_noise if remote_noise is not None else PlatformNoiseModel()
        self.migrate_fft = migrate_fft
        self.migrate_decode = migrate_decode
        self.trace = trace
        # Migration planner: Algorithm 1 by default; the ablations swap
        # in plan_steal_half / plan_migrate_all from repro.sched.migration.
        if planner is None:
            from repro.sched.migration import plan_migration

            planner = plan_migration
        self.planner = planner

    # ------------------------------------------------------------------ run

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        config = self.config
        num_cores = config.num_basestations * config.cores_per_bs
        # Per-core bookkeeping as parallel float lists: the planner scans
        # every core at every parallelizable boundary, so attribute
        # access on per-core objects is measurable overhead there.
        busy_until = [0.0] * num_cores  # own (local) processing
        remote_cursor = [0.0] * num_cores  # end of last booked migrated batch
        records: List[SubframeRecord] = []
        busy: Dict[int, float] = {}
        trace = self.trace
        sim = Simulator()
        # Migration batch ids, stamped into the planned/executed/returned
        # events so the exporters can link one batch's three instants
        # into a Perfetto flow across core tracks.  Allocated in
        # decision order, so serial and parallel runs agree.
        batch_counter = itertools.count()

        def note_busy(core: int, start: float, end: float) -> None:
            if end > start:
                busy[core] = busy.get(core, 0.0) + (end - start)

        # Actual arrival times per core: the preemption instants for
        # migrated batches (equals the planned activations when the
        # transport delay is fixed).
        core_arrivals: Dict[int, List[float]] = {c: [] for c in range(num_cores)}
        ordered_jobs = sorted(jobs, key=lambda j: (j.arrival_us, j.subframe.bs_id))
        for job in ordered_jobs:
            core = assigned_core_for(job, config.cores_per_bs)
            core_arrivals[core].append(job.arrival_us)
        for core in sorted(core_arrivals):
            core_arrivals[core].sort()

        # Index of each core's next not-yet-dispatched arrival.  The
        # preemption horizon must come from this cursor, not from a
        # timestamp search: when two subframes arrive at the same
        # instant, the owner processed first would otherwise see the
        # helper's pre-arrival idle state, skip the simultaneous arrival
        # in the lookup, and book a batch that overlaps the helper's own
        # processing.  A pending arrival bars the core no matter how its
        # timestamp compares to the window start.
        arrival_cursor = [0] * num_cores
        #: Next pending arrival per core (``inf`` once the trace is
        #: exhausted) — write-through so planning never searches.
        core_arrival = [
            core_arrivals[c][0] if core_arrivals[c] else math.inf
            for c in range(num_cores)
        ]

        # Donor-window memoization: a core's free window can only change
        # on one of three mutations — its own arrival (cursor bump), a
        # local completion (``busy_until`` write), or a booked migrated
        # batch (``remote_cursor`` write).  Every mutation site bumps
        # that core's epoch; ``free_windows`` recomputes a core's window
        # floor only when its epoch moved since the floor was cached.
        # Invariant: ``core_epoch[c]`` strictly increases on every write
        # to ``busy_until[c]``, ``remote_cursor[c]`` or
        # ``arrival_cursor[c]``; a stale epoch therefore proves
        # ``window_start[c]`` still equals
        # ``max(busy_until[c], remote_cursor[c])``.
        core_epoch = [0] * num_cores
        window_epoch = [-1] * num_cores
        window_start = [0.0] * num_cores
        # Past the arrival trace the preemption horizon comes from the
        # closed-form partitioned rule; the last value is cached per
        # core and revalidated against the activation period instead of
        # recomputed (the rule yields the smallest activation > start,
        # so a cached value is still correct iff start lies within one
        # period below it).
        closed_act = [0.0] * num_cores
        cores_per_bs = config.cores_per_bs
        transport = config.transport_latency_us
        activation_period = cores_per_bs * SUBFRAME_US

        # -------------------------------------------------------- helpers

        def free_windows(
            now: float, me: int, deadline: float
        ) -> Tuple[List[Tuple[int, float]], Dict[int, float]]:
            """Free time per waiting-state helper core, largest first.

            A helper qualifies when its *local* processing is done; a
            migrated batch already queued on it only delays the start
            (the waiting thread executes migrated subtasks back to
            back), so the new batch is booked behind it.  Returns the
            ``(core, fck)`` list Algorithm 1 consumes plus each core's
            batch start time.
            """
            windows: List[Tuple[int, float]] = []
            starts: Dict[int, float] = {}
            for c in range(num_cores):
                if c == me:
                    continue
                # The shared CPU-state structure exposes "active, idle —
                # with remaining time" (sec. 4.1): an active core with a
                # known completion time is a valid target, its window
                # simply starts when it goes idle (and behind any batch
                # already queued on it).
                if window_epoch[c] != core_epoch[c]:
                    window_epoch[c] = core_epoch[c]
                    b = busy_until[c]
                    r = remote_cursor[c]
                    window_start[c] = b if b >= r else r
                start = window_start[c]
                if start < now:
                    start = now
                # "The underlying scheduler should be able to inform
                # when each idle core will be preempted" (sec. 3.2):
                # arrivals are deterministic under the partitioned
                # schedule, so planning consults the arrival table; the
                # closed-form rule covers the span past the trace end.
                activation = core_arrival[c]
                if activation == math.inf:
                    # Valid iff ``start`` sits within one period below
                    # the cached activation (``activation - period`` is
                    # exact: activations and the period are integral).
                    activation = closed_act[c]
                    if not (
                        activation > start
                        and activation - activation_period <= start
                    ):
                        activation = next_partitioned_activation(
                            c // cores_per_bs, c % cores_per_bs,
                            start, cores_per_bs, transport,
                        )
                        closed_act[c] = activation
                horizon = activation if activation < deadline else deadline
                fck = horizon - start
                if fck > 0:
                    windows.append((c, fck))
                    starts[c] = start
            windows.sort(key=lambda item: (-item[1], item[0]))
            return windows, starts

        def execute_batch(
            target: int,
            start: float,
            actual_durations: Sequence[float],
            planned_us: float,
            local_end: float,
            task_name: str = "",
            owner: int = -1,
            bs_id: int = -1,
            sf_index: int = -1,
            batch_id: int = -1,
        ) -> _BatchOutcome:
            """Book and execute a migrated batch on ``target``.

            Subtasks run back-to-back after the one-off state fetch.  A
            subtask's result counts only if its flag is set by the time
            the owner checks it — the later of the owner's local finish
            and the batch's *planned* completion (Algorithm 1 sized the
            batch from the model, so the owner waits that long and no
            longer).  A subtask still running at the helper's next
            arrival is preempted.  Either way the owner recomputes
            whatever is not ready (the recovery state, sec. 3.2.1 B).
            """
            preempt_at = core_arrival[target]
            # The owner polls the flag until the batch's planned end plus
            # a small patience margin for nominal kernel jitter; it will
            # not stall behind a helper hit by a long preemption.
            flag_check_at = max(local_end, start + planned_us + self.flag_patience_us)
            usable_until = min(preempt_at, flag_check_at)

            # Execution timeline on the helper, independent of whether
            # the owner ends up using the results.
            cursor = start + self.batch_overhead_us + self.remote_noise.draw_one(self.rng)
            subtask_ends: List[float] = []
            for duration in actual_durations:
                cursor = cursor + duration + self.subtask_overhead_us
                subtask_ends.append(cursor)
            # The helper burns cycles until it finishes or is preempted.
            booked_until = min(max(cursor, start), preempt_at)
            if booked_until > remote_cursor[target]:
                remote_cursor[target] = booked_until
                core_epoch[target] += 1
            note_busy(target, start, booked_until)

            # Results are usable up to the first not-ready subtask;
            # execution is sequential so usability is a prefix.
            completed = 0
            ready_time = start
            for end in subtask_ends:
                if end <= usable_until:
                    completed += 1
                    ready_time = end
                else:
                    break
            recovered = list(actual_durations[completed:])
            if trace is not None:
                trace.migration_executed(
                    target, task_name, start, booked_until,
                    owner_core=owner, shipped=len(actual_durations),
                    completed=completed, bs_id=bs_id, sf_index=sf_index,
                    batch=batch_id,
                )
                # Per-subtask spans, nested in the batch span: fully
                # executed subtasks plus the one the preemption cut.
                for k, sub_end in enumerate(subtask_ends):
                    sub_start = sub_end - actual_durations[k] - self.subtask_overhead_us
                    if sub_start >= booked_until:
                        break
                    trace.subtask(
                        target, f"{task_name}[{k}]",
                        sub_start, min(sub_end, booked_until),
                        bs_id=bs_id, sf_index=sf_index,
                        preempted=sub_end > booked_until,
                    )
            actual_total = (subtask_ends[completed - 1] - start) if completed else 0.0
            return _BatchOutcome(
                target_core=target,
                num_subtasks=len(actual_durations),
                completed=completed,
                ready_time=ready_time,
                recovered_durations=tuple(recovered),
                planned_us=planned_us,
                actual_us=actual_total,
            )

        def run_parallelizable_stage(
            job: SubframeJob,
            record: SubframeRecord,
            task_name: str,
            now: float,
            me: int,
            enabled: bool,
        ) -> float:
            """Execute one parallelizable task with migration; returns end time."""
            task = job.work.task(task_name)
            subtasks = task.subtasks
            serial_total = task.serial_duration_us
            if not subtasks or not enabled:
                return now + serial_total

            tp_planned = max(s.planned_us for s in subtasks)
            per_subtask_delta = self.batch_overhead_us / max(1, len(subtasks) // 2)
            # Algorithm 1 charges delta per subtask; amortize the batch
            # fetch over the largest batch R3 allows, plus the true
            # per-subtask increment.
            delta = per_subtask_delta + self.subtask_overhead_us
            windows, starts = free_windows(now + task.serial_us, me, job.deadline_us)
            decision = self.planner(len(subtasks), tp_planned, delta, windows)
            if not decision.assignments:
                return now + serial_total

            # Dominance guard (sec. 3.2.1 B): migration must leave the
            # thread no worse off than serial execution.  A batch whose
            # *planned* completion (WCET subtasks + overheads, from its
            # possibly delayed start behind already-queued batches) lands
            # after the serial baseline is not worth shipping — keep
            # those subtasks local instead.
            earliest_start = now + task.serial_us
            serial_end = now + serial_total
            assignments = []
            for target, count in decision.assignments:
                batch_start = max(earliest_start, starts.get(target, earliest_start))
                planned = self.batch_overhead_us + count * (
                    tp_planned + self.subtask_overhead_us
                )
                if batch_start + planned <= serial_end:
                    assignments.append((target, count, batch_start, planned))
            if not assignments:
                return now + serial_total

            # Local share: the serial prologue plus the kept subtasks.
            # The thread cannot predict which code block will need more
            # iterations, so the split is positional: the head of the
            # list stays local, the tail ships out.
            shipped = sum(count for _, count, _, _ in assignments)
            local_count = len(subtasks) - shipped
            local_end = now + task.serial_us + sum(
                s.duration_us for s in subtasks[:local_count]
            )
            batch_ids = [next(batch_counter) for _ in assignments]
            if trace is not None:
                trace.migration_planned(
                    earliest_start, me, task_name, shipped,
                    [target for target, _, _, _ in assignments],
                    bs_id=record.bs_id, sf_index=record.index,
                    batches=batch_ids,
                )

            stage_end = local_end
            cursor = 0
            for batch_id, (target, num, batch_start, planned) in zip(
                batch_ids, assignments
            ):
                # Positional split: remote subtasks are the tail, taken
                # contiguously in decision order.
                first = local_count + cursor
                cursor += num
                durations = [s.duration_us for s in subtasks[first : first + num]]
                outcome = execute_batch(
                    target, batch_start, durations, planned, local_end,
                    task_name=task_name, owner=me,
                    bs_id=record.bs_id, sf_index=record.index,
                    batch_id=batch_id,
                )
                if outcome.completed:
                    stage_end = max(stage_end, outcome.ready_time)
                # Recovery: recompute preempted subtasks locally, after
                # everything else this thread was doing.
                recovery = sum(outcome.recovered_durations)
                if recovery:
                    stage_end = max(stage_end, local_end) + recovery
                if trace is not None:
                    trace.migration_returned(
                        max(local_end, outcome.ready_time), me, task_name,
                        completed=outcome.completed,
                        recovered=len(outcome.recovered_durations),
                        bs_id=record.bs_id, sf_index=record.index,
                        batch=batch_id,
                    )
                record.migrations.append(
                    MigrationEvent(
                        task=task_name,
                        num_subtasks=outcome.completed,
                        target_core=target,
                        planned_us=outcome.planned_us,
                        actual_us=outcome.actual_us,
                        recovered_subtasks=len(outcome.recovered_durations),
                    )
                )
            return stage_end

        # ------------------------------------------------------- pipeline

        def start_decode(job: SubframeJob, record: SubframeRecord, now: float, me: int) -> None:
            deadline = job.deadline_us
            decode = job.work.task("decode")
            optimistic = decode.serial_us + sum(
                s.duration_us / l for s, l in zip(decode.subtasks, job.work.iterations)
            ) if decode.subtasks else decode.serial_duration_us
            if self.config.drop_on_slack_check and now + optimistic > deadline:
                record.dropped = True
                record.missed = True
                record.drop_stage = "decode"
                finalize(job, record, now, me)
                return
            end = run_parallelizable_stage(job, record, "decode", now, me, self.migrate_decode)
            if end > deadline:
                record.missed = True
                end = deadline
            # The owner occupies its core for the whole stage — local
            # subtasks, flag polling, and recovery are one busy span.
            note_busy(me, now, end)
            if trace is not None:
                trace.task(me, "decode", now, end, record.bs_id, record.index)
            finalize(job, record, end, me)

        def finalize(job: SubframeJob, record: SubframeRecord, finish: float, me: int) -> None:
            record.finish_us = finish
            slot = job.subframe.index % config.cores_per_bs
            activation = next_partitioned_activation(
                job.subframe.bs_id,
                slot,
                finish,
                config.cores_per_bs,
                config.transport_latency_us,
            )
            record.gap_us = max(0.0, activation - finish)
            if record.dropped:
                # "The resulting gaps are, however, not used for
                # migration" (sec. 4.1): a slack-check drop frees the
                # core early but the framework keeps it out of the
                # helper pool until its next activation.
                busy_until[me] = activation
            else:
                busy_until[me] = finish
            core_epoch[me] += 1
            if trace is not None:
                trace.deadline(
                    finish, me, record.missed or record.dropped,
                    record.bs_id, record.index, drop_stage=record.drop_stage,
                    service=record.service,
                )
                trace.gap(
                    me, finish, record.gap_us, record.bs_id, record.index,
                    usable=not record.dropped,
                )

        def arrive(job: SubframeJob) -> None:
            sf = job.subframe
            me = assigned_core_for(job, config.cores_per_bs)
            # This arrival is being dispatched: the next preemption
            # barrier on this core is the one after it.
            idx = arrival_cursor[me] = arrival_cursor[me] + 1
            arrivals = core_arrivals[me]
            core_arrival[me] = arrivals[idx] if idx < len(arrivals) else math.inf
            record = SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                core_id=me,
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )
            records.append(record)
            now = max(job.arrival_us, busy_until[me])
            record.queue_delay_us = now - job.arrival_us
            record.start_us = now
            if trace is not None:
                trace.arrival(job.arrival_us, me, sf.bs_id, sf.index)
            # The arrival preempts any migrated batch on this core.
            remote_cursor[me] = min(remote_cursor[me], now)
            busy_until[me] = job.deadline_us  # refined when finish is known
            core_epoch[me] += 1

            # Serial-only jobs (downlink Tx encodes) have no
            # parallelizable stages: run to completion on this core.
            task_names = {t.name for t in job.work.tasks}
            if "fft" not in task_names or "decode" not in task_names:
                end = now + job.serial_time_us
                if end > job.deadline_us:
                    record.missed = True
                    end = job.deadline_us
                note_busy(me, now, end)
                if trace is not None:
                    trace.task(me, "serial", now, end, sf.bs_id, sf.index)
                finalize(job, record, end, me)
                return

            # FFT stage (parallelizable).
            fft_end = run_parallelizable_stage(job, record, "fft", now, me, self.migrate_fft)
            # demod stage: serial; the platform error E lands here.
            demod_end = fft_end + job.work.task("demod").serial_duration_us + job.noise_us
            deadline = job.deadline_us
            note_busy(me, now, min(fft_end, deadline))
            note_busy(me, fft_end, min(demod_end, deadline))
            if trace is not None:
                trace.task(me, "fft", now, min(fft_end, deadline), sf.bs_id, sf.index)
                trace.task(me, "demod", fft_end, min(demod_end, deadline), sf.bs_id, sf.index)
            if demod_end > job.deadline_us:
                record.missed = True
                finalize(job, record, job.deadline_us, me)
                return
            if demod_end > busy_until[me]:
                busy_until[me] = demod_end
                core_epoch[me] += 1
            sim.schedule(demod_end, lambda: start_decode(job, record, demod_end, me), priority=1)

        for job in ordered_jobs:
            sim.schedule(job.arrival_us, lambda j=job: arrive(j))
        sim.run()
        if trace is not None:
            trace.meta["sim"] = sim.stats()
        return SchedulerResult(self.name, config, records, core_busy_us=busy)
