"""CloudIQ-style scheduler: WCET-provisioned partitioned scheduling.

Table 2 characterizes CloudIQ [15]: no migration, fixed resources,
task-granular scheduling, and — critically — it "assumes fixed
processing time (equal to the WCET) for each LTE subframe".  On a single
node that amounts to the partitioned schedule plus a WCET admission
test: a subframe whose worst-case time (Eq. (1) at L = Lm plus the
transport share) does not fit the processing budget is rejected *at
arrival*, guaranteeing the schedule stays feasible for everything that
is admitted.

The contrast this exposes against both partitioned-with-termination and
RT-OPEX: CloudIQ never wastes cycles on a frame it cannot guarantee,
but it also forfeits every frame that would usually have finished in
fewer than Lm iterations — exactly the conservatism the paper's
Fig. 15/17 penalize.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.trace import RunTrace
from repro.sched.base import (
    CRanConfig,
    SchedulerResult,
    SubframeJob,
    SubframeRecord,
    assigned_core_for,
)
from repro.sched.partitioned import PartitionedScheduler
from repro.timing.model import LinearTimingModel


class CloudIqScheduler(PartitionedScheduler):
    """Partitioned schedule with WCET admission control."""

    name = "cloudiq"

    def __init__(
        self,
        config: CRanConfig,
        timing_model: Optional[LinearTimingModel] = None,
        trace: Optional[RunTrace] = None,
    ):
        super().__init__(config, trace=trace)
        self.timing_model = timing_model if timing_model is not None else LinearTimingModel()

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        admitted: List[SubframeJob] = []
        rejected: List[SubframeJob] = []
        for job in jobs:
            wcet = self.timing_model.worst_case_time(
                job.subframe.grant, self.config.max_iterations
            )
            if wcet <= job.subframe.processing_budget_us:
                admitted.append(job)
            else:
                rejected.append(job)

        result = super().run(admitted)
        result.scheduler_name = self.name
        # Rejected subframes are deadline misses by definition: the
        # admission test refused to decode them.
        for job in rejected:
            sf = job.subframe
            if self.trace is not None:
                core = assigned_core_for(job, self.config.cores_per_bs)
                self.trace.arrival(job.arrival_us, core, sf.bs_id, sf.index)
                self.trace.deadline(
                    job.arrival_us, core, True, sf.bs_id, sf.index,
                    drop_stage="admission", service=job.service,
                )
            record = SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                start_us=job.arrival_us,
                finish_us=job.arrival_us,
                missed=True,
                dropped=True,
                drop_stage="admission",
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )
            result.records.append(record)
        result.records.sort(key=lambda r: (r.index, r.bs_id))
        return result

    def admitted_fraction(self, jobs: Sequence[SubframeJob]) -> float:
        """Fraction of the offered subframes the WCET test admits."""
        if not jobs:
            return 0.0
        admitted = sum(
            1
            for job in jobs
            if self.timing_model.worst_case_time(job.subframe.grant, self.config.max_iterations)
            <= job.subframe.processing_budget_us
        )
        return admitted / len(jobs)
