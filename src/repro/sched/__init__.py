"""C-RAN schedulers: partitioned, global (FIFO/EDF), and RT-OPEX.

All three schedulers consume the same precomputed workload (so
comparisons are paired) and produce :class:`~repro.sched.base.SchedulerResult`
records.  The module map follows the paper's sec. 3:

* :mod:`repro.sched.partitioned` — offline partitioned schedule,
  ``ceil(Tmax)`` cores per basestation, round-robin subframe placement;
* :mod:`repro.sched.global_` — shared ring-buffer queue with an EDF
  dispatcher and per-core cache-affinity penalties;
* :mod:`repro.sched.migration` — Algorithm 1, the greedy migration
  planner (pure function, property-tested);
* :mod:`repro.sched.rtopex` — RT-OPEX: partitioned base schedule plus
  opportunistic migration of FFT/decode subtasks into idle-core gaps,
  with the recovery path for preempted migrations;
* :mod:`repro.sched.das` — delay-aware shared-queue baseline for the
  mixed-service scenario (budget-criticality × channel-quality order);
* :mod:`repro.sched.runner` — workload construction and the
  one-call-per-experiment entry points.
"""

from repro.sched.base import (
    CRanConfig,
    SchedulerResult,
    SubframeJob,
    SubframeRecord,
)
from repro.sched.cloudiq import CloudIqScheduler
from repro.sched.das import DelayAwareScheduler
from repro.sched.global_ import GlobalScheduler
from repro.sched.migration import MigrationDecision, plan_migration
from repro.sched.partitioned import PartitionedScheduler
from repro.sched.pran import PranScheduler
from repro.sched.rtopex import RtOpexScheduler
from repro.sched.runner import build_workload, run_scheduler

__all__ = [
    "CRanConfig",
    "SchedulerResult",
    "SubframeJob",
    "SubframeRecord",
    "CloudIqScheduler",
    "DelayAwareScheduler",
    "GlobalScheduler",
    "MigrationDecision",
    "plan_migration",
    "PartitionedScheduler",
    "PranScheduler",
    "RtOpexScheduler",
    "build_workload",
    "run_scheduler",
]
