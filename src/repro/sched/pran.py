"""PRAN-style scheduler: plan-ahead subtask splitting, no runtime adaptation.

The paper's Table 2 and sec. 6 characterize PRAN [31] as the closest
related system: it pools compute dynamically and splits processing into
subtasks that can run on different cores, **but its scheduling decisions
are made before wireless frames are received**, so it "cannot account
for processing time variations due to channel conditions".

This implementation captures exactly that contrast with RT-OPEX:

* at each subframe boundary the planner knows the grants (load/MCS) of
  the arriving subframes and builds a parallel execution plan using the
  *expected* per-code-block decode time (the iteration model's mean) —
  information genuinely available before reception;
* the serial FFT+demod prologue runs on a home core; decode code blocks
  are spread longest-plan-first (LPT) over the pool cores by planned
  availability;
* execution then uses the *actual* durations.  When the channel demands
  more iterations than planned, the plan's cores overrun back-to-back
  and the subframe can miss — there is no runtime migration to absorb
  the surprise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.trace import RunTrace
from repro.sched.base import CRanConfig, SchedulerResult, SubframeJob, SubframeRecord
from repro.timing.cache import MigrationCostModel
from repro.timing.iterations import IterationModel


@dataclass
class _PlannedPiece:
    """One decode code block placed on a pool core."""

    job_key: tuple
    planned_us: float
    actual_us: float
    bs_id: int
    sf_index: int


class PranScheduler:
    """Plan-ahead pooled scheduler (PRAN-like baseline)."""

    name = "pran"

    def __init__(
        self,
        config: CRanConfig,
        iteration_model: Optional[IterationModel] = None,
        dispatch_cost: Optional[MigrationCostModel] = None,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[RunTrace] = None,
    ):
        self.config = config
        self.iterations = iteration_model if iteration_model is not None else IterationModel(
            max_iterations=config.max_iterations
        )
        self.dispatch_cost = dispatch_cost if dispatch_cost is not None else MigrationCostModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trace = trace

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        config = self.config
        num_cores = config.total_cores
        core_free = [0.0] * num_cores
        records: List[SubframeRecord] = []
        busy: Dict[int, float] = {}

        # Group arrivals per subframe boundary (they share one plan).
        by_arrival: Dict[float, List[SubframeJob]] = {}
        for job in jobs:
            by_arrival.setdefault(job.arrival_us, []).append(job)

        for arrival in sorted(by_arrival):
            batch = sorted(by_arrival[arrival], key=lambda j: j.subframe.bs_id)
            self._plan_and_execute(arrival, batch, core_free, records, busy)

        return SchedulerResult(self.name, config, records, core_busy_us=busy)

    # ------------------------------------------------------------------

    def _expected_subtask_us(self, job: SubframeJob) -> float:
        """Planned per-code-block decode time from pre-reception info."""
        grant = job.subframe.grant
        mean_l = self.iterations.mean_iterations(grant.mcs, job.subframe.snr_db)
        decode = job.work.task("decode")
        if not decode.subtasks:
            return 0.0
        # actual duration scales linearly with L; rescale one subtask's
        # WCET plan (built at Lm) down to the expected iteration count.
        return decode.subtasks[0].planned_us * mean_l / self.config.max_iterations

    def _plan_and_execute(
        self,
        arrival: float,
        batch: Sequence[SubframeJob],
        core_free: List[float],
        records: List[SubframeRecord],
        busy: Dict[int, float],
    ) -> None:
        num_cores = len(core_free)
        trace = self.trace

        # --- planning pass (only grant-derived information) -----------
        # Home core per subframe: the least-loaded cores at the boundary.
        order = np.argsort(core_free)
        home: Dict[tuple, int] = {}
        for i, job in enumerate(batch):
            home[job.subframe.key()] = int(order[i % num_cores])

        planned_avail = list(core_free)
        serial_done: Dict[tuple, float] = {}
        for job in batch:
            sf = job.subframe
            core = home[sf.key()]
            start = max(arrival, planned_avail[core])
            fft_us = job.work.task("fft").serial_duration_us
            demod_us = job.work.task("demod").serial_duration_us
            init_us = job.work.task("decode").serial_us
            if trace is not None:
                trace.arrival(arrival, core, sf.bs_id, sf.index)
                cursor = start
                for name, dur in (
                    ("fft", fft_us), ("demod", demod_us), ("decode_init", init_us),
                ):
                    trace.task(core, name, cursor, cursor + dur, sf.bs_id, sf.index)
                    cursor += dur
            prologue = fft_us + demod_us + init_us
            busy[core] = busy.get(core, 0.0) + prologue
            serial_done[sf.key()] = start + prologue
            planned_avail[core] = start + prologue

        # Decode pieces, longest planned first, onto earliest-available
        # cores (classic LPT on the planned estimates).
        pieces: List[_PlannedPiece] = []
        for job in batch:
            expected = self._expected_subtask_us(job)
            for sub in job.work.task("decode").subtasks:
                pieces.append(
                    _PlannedPiece(
                        job_key=job.subframe.key(),
                        planned_us=expected,
                        actual_us=sub.duration_us,
                        bs_id=job.subframe.bs_id,
                        sf_index=job.subframe.index,
                    )
                )
        pieces.sort(key=lambda p: -p.planned_us)
        assignment: List[List[_PlannedPiece]] = [[] for _ in range(num_cores)]
        planned_load = list(planned_avail)
        for piece in pieces:
            core = int(np.argmin(planned_load))
            assignment[core].append(piece)
            planned_load[core] += piece.planned_us + self.dispatch_cost.planning_cost()

        # --- execution pass (actual durations, no replanning) ----------
        finish: Dict[tuple, float] = dict(serial_done)
        for core in range(num_cores):
            cursor = planned_avail[core]
            for piece in assignment[core]:
                # A piece cannot start before its subframe's prologue is
                # done (precedence), even if the plan hoped otherwise.
                cursor = max(cursor, serial_done[piece.job_key])
                piece_start = cursor
                cursor += piece.actual_us + self.dispatch_cost.draw(self.rng)
                # The dispatch overhead occupies the pool core, so the
                # span (and busy accounting) includes it.
                if trace is not None:
                    trace.task(
                        core, "decode", piece_start, cursor,
                        piece.bs_id, piece.sf_index,
                    )
                busy[core] = busy.get(core, 0.0) + (cursor - piece_start)
                finish[piece.job_key] = max(finish[piece.job_key], cursor)
            core_free[core] = cursor

        for job in batch:
            sf = job.subframe
            end = finish[sf.key()] + job.noise_us
            record = SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                core_id=home[sf.key()],
                start_us=arrival,
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )
            if end > job.deadline_us:
                record.missed = True
                end = job.deadline_us
            record.finish_us = end
            if trace is not None:
                trace.deadline(
                    record.finish_us, home[sf.key()], record.missed,
                    sf.bs_id, sf.index, service=record.service,
                )
            records.append(record)
