"""Global scheduler (paper sec. 3.1.2).

A single shared ring-buffer queue holds incoming subframes from all
basestations; a scheduling thread on its own core dispatches them to
idle processing cores in EDF order (equivalent to FIFO when all
basestations share one transport delay, as the paper notes).  Each core
processes at most one subframe, terminates at the deadline if it
overruns, and returns to idle.

The paper's "surprising" global-scheduler behaviour comes from runtime
overheads, which we model explicitly:

* a **dispatch overhead** per assignment (semaphore wake-up + queue
  bookkeeping on the scheduling thread);
* a **cache-affinity penalty** when a core processes a basestation
  other than the one it processed last (Fig. 19): with more cores each
  basestation's subframes scatter more widely, so more dispatches run
  cold — which is why 16 cores perform no better (and partly worse)
  than 8.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.trace import RunTrace
from repro.sched.base import CRanConfig, SchedulerResult, SubframeJob, SubframeRecord
from repro.sim.engine import Simulator
from repro.timing.cache import CacheAffinityModel

#: Scheduling-thread cost per dispatch (semaphore signal + ring buffer).
DEFAULT_DISPATCH_OVERHEAD_US = 12.0


@dataclass(order=True)
class _QueueEntry:
    deadline_us: float
    seq: int
    job: SubframeJob = field(compare=False)
    record: SubframeRecord = field(compare=False)


class GlobalScheduler:
    """EDF/FIFO global scheduler over a shared queue."""

    name = "global"

    def __init__(
        self,
        config: CRanConfig,
        rng: Optional[np.random.Generator] = None,
        cache_model: Optional[CacheAffinityModel] = None,
        dispatch_overhead_us: float = DEFAULT_DISPATCH_OVERHEAD_US,
        queue_capacity: int = 256,
        trace: Optional[RunTrace] = None,
    ):
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.cache = cache_model if cache_model is not None else CacheAffinityModel()
        self.dispatch_overhead_us = dispatch_overhead_us
        self.queue_capacity = queue_capacity
        self.trace = trace

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        sim = Simulator()
        trace = self.trace
        num_cores = self.config.total_cores
        core_idle: List[bool] = [True] * num_cores
        queue: List[_QueueEntry] = []
        records: List[SubframeRecord] = []
        busy: Dict[int, float] = {}
        seq_counter = [0]
        self.cache.reset()

        def make_record(job: SubframeJob) -> SubframeRecord:
            sf = job.subframe
            return SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )

        def try_dispatch() -> None:
            while queue:
                idle = [c for c in range(num_cores) if core_idle[c]]
                if not idle:
                    return
                # The waiting processing threads all block on the same
                # semaphore; which one wakes first is up to the kernel, so
                # the dispatched core is effectively arbitrary.  (A
                # deterministic lowest-index pick would accidentally
                # recreate per-BS affinity and hide the cache thrashing
                # the paper observes.)
                idle_core = int(idle[self.rng.integers(0, len(idle))])
                entry = heapq.heappop(queue)
                job, record = entry.job, entry.record
                start = sim.now + self.dispatch_overhead_us
                # A queued subframe whose deadline cannot possibly be met
                # any more is dropped by the dispatcher.
                if start + job.optimistic_time_us > job.deadline_us:
                    record.dropped = True
                    record.missed = True
                    record.drop_stage = "dispatch"
                    record.start_us = sim.now
                    record.finish_us = sim.now
                    if trace is not None:
                        trace.deadline(
                            sim.now, -1, True,
                            record.bs_id, record.index, drop_stage="dispatch",
                            service=record.service,
                        )
                    continue
                core_idle[idle_core] = False
                record.core_id = idle_core
                record.start_us = start
                record.queue_delay_us = start - job.arrival_us
                penalty = self.cache.penalty(
                    idle_core, job.subframe.bs_id, job.subframe.index, self.rng
                )
                record.cache_penalty_us = penalty
                finish = start + job.serial_time_us + penalty
                if finish > job.deadline_us:
                    record.missed = True
                    finish = job.deadline_us  # terminated at the deadline
                record.finish_us = finish
                if finish > start:
                    busy[idle_core] = busy.get(idle_core, 0.0) + (finish - start)
                if trace is not None:
                    trace.task(
                        idle_core, "process", start, finish,
                        record.bs_id, record.index,
                        cache_penalty_us=penalty,
                    )
                    trace.deadline(
                        finish, idle_core, record.missed, record.bs_id, record.index,
                        service=record.service,
                    )

                def complete(core: int = idle_core) -> None:
                    core_idle[core] = True
                    try_dispatch()

                sim.schedule(finish, complete)

        def arrive(job: SubframeJob) -> None:
            record = make_record(job)
            records.append(record)
            if trace is not None:
                trace.arrival(job.arrival_us, -1, record.bs_id, record.index)
            if len(queue) >= self.queue_capacity:
                # Ring buffer full: the transport thread overwrites the
                # oldest pending entry (it can never block, sec. 4.1).
                oldest = heapq.heappop(queue)
                oldest.record.dropped = True
                oldest.record.missed = True
                oldest.record.drop_stage = "queue-overflow"
                oldest.record.start_us = sim.now
                oldest.record.finish_us = sim.now
                if trace is not None:
                    trace.deadline(
                        sim.now, -1, True,
                        oldest.record.bs_id, oldest.record.index,
                        drop_stage="queue-overflow",
                        service=oldest.record.service,
                    )
            seq_counter[0] += 1
            heapq.heappush(
                queue,
                _QueueEntry(
                    deadline_us=job.deadline_us, seq=seq_counter[0], job=job, record=record
                ),
            )
            # Dispatch runs after every same-instant arrival has been
            # enqueued (priority 1 > arrivals' 0), so EDF orders a burst
            # of simultaneous subframes by deadline rather than by the
            # order the transport threads happened to signal.
            sim.schedule(sim.now, try_dispatch, priority=1)

        for job in sorted(jobs, key=lambda j: (j.arrival_us, j.subframe.bs_id)):
            sim.schedule(job.arrival_us, lambda j=job: arrive(j))
        sim.run()
        if trace is not None:
            trace.meta["sim"] = sim.stats()
        return SchedulerResult(
            f"{self.name}-{num_cores}", self.config, records, core_busy_us=busy
        )
