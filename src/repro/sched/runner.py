"""Workload construction and scheduler entry points.

``build_workload`` materializes the evaluation workload exactly as the
paper does (sec. 4.2): per-basestation load traces drive the MCS of each
subframe; the channel is AWGN at a fixed SNR; iteration counts come from
the iteration model; the platform error E is drawn per subframe; the
transport delay RTT/2 is fixed (emulating the various deployment
scenarios after replacing the live WARP transport).

``run_scheduler`` is the single switch the experiments use to compare
policies over the *same* job list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe
from repro.sched.base import CRanConfig, SchedulerResult, SubframeJob
from repro.sched.global_ import GlobalScheduler
from repro.sched.partitioned import PartitionedScheduler
from repro.sched.rtopex import RtOpexScheduler
from repro.sim.rng import RngStreams
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel
from repro.timing.platform import PlatformNoiseModel
from repro.timing.tasks import build_subframe_work
from repro.workload.mapping import GrantMapper
from repro.workload.traces import CellularTraceGenerator


def build_workload(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    timing_model: Optional[LinearTimingModel] = None,
    iteration_model: Optional[IterationModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mapper: Optional[GrantMapper] = None,
    transport_jitter: Optional[np.ndarray] = None,
) -> List[SubframeJob]:
    """Materialize the per-subframe jobs for one experiment.

    Parameters
    ----------
    loads:
        Optional ``(num_basestations, num_subframes)`` normalized-load
        array; generated from the default trace model when omitted.
    transport_jitter:
        Optional per-(bs, subframe) additive jitter on top of the fixed
        ``config.transport_latency_us`` (e.g. drawn from the cloud
        model); zero by default, matching the paper's fixed-RTT runs.
    """
    streams = RngStreams(seed)
    timing = timing_model if timing_model is not None else LinearTimingModel()
    iters = iteration_model if iteration_model is not None else IterationModel(
        max_iterations=config.max_iterations
    )
    noise = noise_model if noise_model is not None else PlatformNoiseModel()
    grants = mapper if mapper is not None else GrantMapper(num_antennas=config.num_antennas)

    if loads is None:
        generator = CellularTraceGenerator(seed=seed)
        if generator.num_basestations < config.num_basestations:
            raise ValueError(
                "default trace model has fewer basestations than the config; pass loads="
            )
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}, got {loads.shape}"
        )
    if transport_jitter is not None:
        transport_jitter = np.asarray(transport_jitter, dtype=np.float64)
        if transport_jitter.shape != loads.shape:
            raise ValueError("transport_jitter must match the loads shape")

    grid = GridConfig(10.0)
    iter_rng = streams.stream("iterations")
    noise_rng = streams.stream("platform-noise")

    jobs: List[SubframeJob] = []
    for bs in range(config.num_basestations):
        for j in range(num_subframes):
            load = float(loads[bs, j])
            grant = grants.grant_for_load(load)
            draw = iters.draw_subframe(
                grant.mcs, config.snr_db, iter_rng, num_blocks=grant.code_blocks
            )
            work = build_subframe_work(
                timing,
                grant,
                draw.iterations,
                max_iterations=config.max_iterations,
                crc_pass=draw.crc_pass,
            )
            latency = config.transport_latency_us
            if transport_jitter is not None:
                latency += float(transport_jitter[bs, j])
            subframe = Subframe(
                bs_id=bs,
                index=j,
                grant=grant,
                snr_db=config.snr_db,
                transport_latency_us=latency,
                grid=grid,
            )
            jobs.append(
                SubframeJob(
                    subframe=subframe,
                    work=work,
                    noise_us=noise.draw_one(noise_rng),
                    load=load,
                )
            )
    return jobs


def run_scheduler(
    name: str,
    config: CRanConfig,
    jobs: Sequence[SubframeJob],
    seed: int = 2016,
    **kwargs,
) -> SchedulerResult:
    """Run one scheduler over a prepared job list.

    ``name`` is one of ``partitioned``, ``global`` (respects
    ``config.num_cores``), or ``rt-opex``; extra keyword arguments are
    forwarded to the scheduler constructor.

    When an ambient tracer is installed (see :mod:`repro.obs`), each
    invocation opens its own :class:`~repro.obs.trace.RunTrace` — one
    Perfetto process per scheduler run — and the instrumented schedulers
    emit their timelines into it.  Tracing never touches the RNG
    streams, so traced and untraced runs produce identical results.
    """
    from repro.obs.trace import get_tracer
    from repro.sched.cloudiq import CloudIqScheduler
    from repro.sched.pran import PranScheduler

    tracer = get_tracer()
    if tracer is not None and name in (
        "partitioned", "global", "rt-opex", "rtopex"
    ) and "trace" not in kwargs:
        label = (
            f"{name} rtt={config.transport_latency_us:g}us "
            f"cores={config.total_cores}"
        )
        kwargs["trace"] = tracer.begin_run(
            label,
            scheduler=name,
            meta={
                "rtt_us": config.transport_latency_us,
                "cores": config.total_cores,
                "jobs": len(jobs),
                "seed": seed,
            },
        )

    streams = RngStreams(seed)
    if name == "partitioned":
        return PartitionedScheduler(config, **kwargs).run(jobs)
    if name == "global":
        return GlobalScheduler(config, rng=streams.stream("global"), **kwargs).run(jobs)
    if name in ("rt-opex", "rtopex"):
        return RtOpexScheduler(config, rng=streams.stream("rtopex"), **kwargs).run(jobs)
    if name == "pran":
        return PranScheduler(config, rng=streams.stream("pran"), **kwargs).run(jobs)
    if name == "cloudiq":
        return CloudIqScheduler(config, **kwargs).run(jobs)
    raise ValueError(f"unknown scheduler {name!r}")


def compare_schedulers(
    config: CRanConfig,
    jobs: Sequence[SubframeJob],
    names: Sequence[str] = ("partitioned", "global", "rt-opex"),
    seed: int = 2016,
) -> Dict[str, SchedulerResult]:
    """Run several schedulers over identical jobs (paired comparison)."""
    return {name: run_scheduler(name, config, jobs, seed=seed) for name in names}
