"""Workload construction and scheduler entry points.

``build_workload`` materializes the evaluation workload exactly as the
paper does (sec. 4.2): per-basestation load traces drive the MCS of each
subframe; the channel is AWGN at a fixed SNR; iteration counts come from
the iteration model; the platform error E is drawn per subframe; the
transport delay RTT/2 is fixed (emulating the various deployment
scenarios after replacing the live WARP transport).

``run_scheduler`` is the single switch the experiments use to compare
policies over the *same* job list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.lte.grid import GridConfig
from repro.lte.subframe import Subframe
from repro.sched.base import CRanConfig, SchedulerResult, SubframeJob
from repro.sched.global_ import GlobalScheduler
from repro.sched.partitioned import PartitionedScheduler
from repro.sched.rtopex import RtOpexScheduler
from repro.sim.rng import RngStreams
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel
from repro.timing.platform import PlatformNoiseModel
from repro.timing.tasks import build_subframe_work
from repro.workload.mapping import GrantMapper
from repro.workload.traces import CellularTraceGenerator


def build_workload(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    timing_model: Optional[LinearTimingModel] = None,
    iteration_model: Optional[IterationModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mapper: Optional[GrantMapper] = None,
    transport_jitter: Optional[np.ndarray] = None,
) -> List[SubframeJob]:
    """Materialize the per-subframe jobs for one experiment.

    Dispatches to the array-native pipeline
    (:mod:`repro.workload.soa`) whenever the mapper/iteration/timing
    models are the stock types whose vectorized forms are proven
    bit-identical; subclasses overriding the scalar hooks fall back to
    :func:`build_workload_legacy`.  Both paths consume the RNG streams
    identically and return equal job lists (asserted by the golden and
    property tests), so callers never observe which one ran.

    Parameters
    ----------
    loads:
        Optional ``(num_basestations, num_subframes)`` normalized-load
        array; generated from the default trace model when omitted.
    transport_jitter:
        Optional per-(bs, subframe) additive jitter on top of the fixed
        ``config.transport_latency_us`` (e.g. drawn from the cloud
        model); zero by default, matching the paper's fixed-RTT runs.
    """
    fast = (
        (mapper is None or type(mapper) is GrantMapper)
        and (iteration_model is None or type(iteration_model) is IterationModel)
        and (timing_model is None or type(timing_model) is LinearTimingModel)
    )
    if fast:
        from repro.workload.soa import build_workload_arrays, materialize_jobs

        arrays = build_workload_arrays(
            config,
            num_subframes,
            seed=seed,
            loads=loads,
            timing_model=timing_model,
            iteration_model=iteration_model,
            noise_model=noise_model,
            mapper=mapper,
            transport_jitter=transport_jitter,
        )
        return materialize_jobs(arrays)
    return build_workload_legacy(
        config,
        num_subframes,
        seed=seed,
        loads=loads,
        timing_model=timing_model,
        iteration_model=iteration_model,
        noise_model=noise_model,
        mapper=mapper,
        transport_jitter=transport_jitter,
    )


def build_workload_legacy(
    config: CRanConfig,
    num_subframes: int,
    seed: int = 2016,
    loads: Optional[np.ndarray] = None,
    timing_model: Optional[LinearTimingModel] = None,
    iteration_model: Optional[IterationModel] = None,
    noise_model: Optional[PlatformNoiseModel] = None,
    mapper: Optional[GrantMapper] = None,
    transport_jitter: Optional[np.ndarray] = None,
) -> List[SubframeJob]:
    """The scalar per-subframe builder (reference implementation).

    Retained verbatim as the semantic ground truth for the SoA fast
    path: the identity tests build the same experiment through both
    and require equal job lists.
    """
    streams = RngStreams(seed)
    timing = timing_model if timing_model is not None else LinearTimingModel()
    iters = iteration_model if iteration_model is not None else IterationModel(
        max_iterations=config.max_iterations
    )
    noise = noise_model if noise_model is not None else PlatformNoiseModel()
    grants = mapper if mapper is not None else GrantMapper(num_antennas=config.num_antennas)

    if loads is None:
        generator = CellularTraceGenerator(seed=seed)
        if generator.num_basestations < config.num_basestations:
            raise ValueError(
                "default trace model has fewer basestations than the config; pass loads="
            )
        loads = generator.generate(num_subframes)[: config.num_basestations]
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (config.num_basestations, num_subframes):
        raise ValueError(
            f"loads must be shaped {(config.num_basestations, num_subframes)}, got {loads.shape}"
        )
    if transport_jitter is not None:
        transport_jitter = np.asarray(transport_jitter, dtype=np.float64)
        if transport_jitter.shape != loads.shape:
            raise ValueError("transport_jitter must match the loads shape")

    grid = GridConfig(10.0)
    iter_rng = streams.stream("iterations")
    noise_rng = streams.stream("platform-noise")

    jobs: List[SubframeJob] = []
    for bs in range(config.num_basestations):
        for j in range(num_subframes):
            load = float(loads[bs, j])
            grant = grants.grant_for_load(load)
            draw = iters.draw_subframe(
                grant.mcs, config.snr_db, iter_rng, num_blocks=grant.code_blocks
            )
            work = build_subframe_work(
                timing,
                grant,
                draw.iterations,
                max_iterations=config.max_iterations,
                crc_pass=draw.crc_pass,
            )
            latency = config.transport_latency_us
            if transport_jitter is not None:
                latency += float(transport_jitter[bs, j])
            subframe = Subframe(
                bs_id=bs,
                index=j,
                grant=grant,
                snr_db=config.snr_db,
                transport_latency_us=latency,
                grid=grid,
            )
            jobs.append(
                SubframeJob(
                    subframe=subframe,
                    work=work,
                    noise_us=noise.draw_one(noise_rng),
                    load=load,
                )
            )
    return jobs


#: Schedulers that accept a ``trace=`` keyword — all six policies.
TRACEABLE_SCHEDULERS = (
    "partitioned", "global", "rt-opex", "rtopex", "pran", "cloudiq", "das"
)


def run_scheduler(
    name: str,
    config: CRanConfig,
    jobs: Sequence[SubframeJob],
    seed: int = 2016,
    capture_trace: object = False,
    sanitize: Optional[bool] = None,
    **kwargs,
) -> SchedulerResult:
    """Run one scheduler over a prepared job list.

    ``name`` is one of ``partitioned``, ``global`` (respects
    ``config.num_cores``), ``rt-opex``, ``pran``, ``cloudiq``, or
    ``das`` (the delay-aware mixed-service baseline; also respects
    ``config.num_cores``); extra keyword arguments are forwarded to the
    scheduler constructor.

    When an ambient tracer is installed (see :mod:`repro.obs`), each
    invocation opens its own :class:`~repro.obs.trace.RunTrace` — one
    Perfetto process per scheduler run — and the instrumented schedulers
    emit their timelines into it.  Tracing never touches the RNG
    streams, so traced and untraced runs produce identical results.

    ``capture_trace`` additionally buffers this run's events on
    ``result.trace_run`` for programmatic analysis
    (:mod:`repro.analysis.tracestats`) — pass ``True`` for all kinds or
    an iterable of kind names (see
    :func:`repro.obs.events.resolve_kinds`) to capture a subset.  The
    capture buffer is private: it works with no ambient tracer
    installed, and with one it *tees*, leaving the ambient run's
    filtering and streaming untouched.

    ``sanitize`` tees a :class:`~repro.check.sanitizer.SanitizingTrace`
    behind the run: every emitted event is validated online against the
    virtual-time invariants and a :class:`~repro.check.SanitizerError`
    is raised on the first violation.  ``None`` (the default) defers to
    the ``RTOPEX_SANITIZE`` environment variable, which is how the test
    suite turns every scheduler run into a sanitized one.
    """
    from repro.check.sanitizer import SanitizingTrace, sanitize_enabled
    from repro.obs.events import resolve_kinds
    from repro.obs.trace import RunTrace, TeeRunTrace, get_tracer
    from repro.sched.cloudiq import CloudIqScheduler
    from repro.sched.pran import PranScheduler

    if sanitize is None:
        sanitize = sanitize_enabled()
    tracer = get_tracer()
    capture_run: Optional[RunTrace] = None
    sanitizing_run: Optional[SanitizingTrace] = None
    if name in TRACEABLE_SCHEDULERS and "trace" not in kwargs:
        label = (
            f"{name} rtt={config.transport_latency_us:g}us "
            f"cores={config.total_cores}"
        )
        meta = {
            "rtt_us": config.transport_latency_us,
            "cores": config.total_cores,
            "jobs": len(jobs),
            "seed": seed,
        }
        ambient_run = None
        if tracer is not None:
            ambient_run = tracer.begin_run(label, scheduler=name, meta=meta)
        if capture_trace:
            kinds = None if capture_trace is True else resolve_kinds(capture_trace)
            capture_run = RunTrace(label, scheduler=name, meta=meta, kinds=kinds)
        if sanitize:
            sanitizing_run = SanitizingTrace(label, scheduler=name, meta=meta)
        targets = [
            run for run in (ambient_run, capture_run, sanitizing_run)
            if run is not None
        ]
        if len(targets) > 1:
            kwargs["trace"] = TeeRunTrace(targets[0], *targets[1:])
        elif targets:
            kwargs["trace"] = targets[0]

    streams = RngStreams(seed)
    if name == "partitioned":
        result = PartitionedScheduler(config, **kwargs).run(jobs)
    elif name == "global":
        result = GlobalScheduler(config, rng=streams.stream("global"), **kwargs).run(jobs)
    elif name in ("rt-opex", "rtopex"):
        result = RtOpexScheduler(config, rng=streams.stream("rtopex"), **kwargs).run(jobs)
    elif name == "pran":
        result = PranScheduler(config, rng=streams.stream("pran"), **kwargs).run(jobs)
    elif name == "cloudiq":
        result = CloudIqScheduler(config, **kwargs).run(jobs)
    elif name == "das":
        from repro.sched.das import DelayAwareScheduler

        result = DelayAwareScheduler(config, rng=streams.stream("das"), **kwargs).run(jobs)
    else:
        raise ValueError(f"unknown scheduler {name!r}")
    if sanitizing_run is not None:
        # End-of-run validation (dangling migration batches) + attestation.
        sanitizing_run.finish()
        result.sanitizer_report = sanitizing_run.report()
    if capture_run is not None:
        result.trace_run = capture_run
    return result


def compare_schedulers(
    config: CRanConfig,
    jobs: Sequence[SubframeJob],
    names: Sequence[str] = ("partitioned", "global", "rt-opex"),
    seed: int = 2016,
) -> Dict[str, SchedulerResult]:
    """Run several schedulers over identical jobs (paired comparison)."""
    return {name: run_scheduler(name, config, jobs, seed=seed) for name in names}
