"""Algorithm 1: the greedy migration planner of RT-OPEX.

Given ``P`` equal-cost subtasks on the local core, a set of idle cores
with known free-time budgets, and a per-subtask migration cost ``delta``,
decide how many subtasks to offload to each idle core.  The three
requirements of the paper (sec. 3.2.1 B):

* **R1** — a core k can absorb at most ``limoff = floor(fck / (tp + delta))``
  subtasks: each migrated subtask costs its execution time plus the
  migration overhead, and the batch must fit the core's free window;
* **R2** — after migrating, the subtasks kept locally must be at least
  the largest batch already placed on any other core
  (``S - noff >= maxoff``), so the local core never finishes before the
  busiest helper in the ideal case;
* **R3** — at most half of the remaining subtasks move to any single
  core (``noff <= floor(S/2)``), since R2 does not yet count the batch
  being placed on core k itself.

Together these implement the paper's guarantee that "the performance of
RT-OPEX must be equal to or strictly better than the case without use of
migration": by the time the local core finishes its kept subtasks, every
migrated batch has (in the ideal case) finished too.
"""

from __future__ import annotations

import math
from operator import itemgetter
from typing import List, NamedTuple, Sequence, Tuple

_CORE = itemgetter(0)
_FREE = itemgetter(1)


def _ordered_windows(
    free_times_us: Sequence[Tuple[int, float]]
) -> Sequence[Tuple[int, float]]:
    """Canonical consideration order: biggest window first, core id as a
    deterministic tie-break.  Sorting *inside* the planners means caller
    ordering can never change a :class:`MigrationDecision` — previously
    this was only a documented convention, and an unsorted caller would
    silently fill small windows before large ones.

    The scheduler's ``free_windows`` already emits this exact order, so
    an O(n) already-sorted scan first avoids re-sorting on the hot path
    (and returns the input without copying — the planners only iterate).
    Arbitrary-order callers get two stable passes with C ``itemgetter``
    keys: core ascending, then free descending — stability makes the
    second pass keep core order within equal windows, matching the
    ``(-free, core)`` keyed sort this replaces without building the
    decorated/undecorated intermediate lists."""
    prev_core = 0
    prev_free = math.inf
    for core, free in free_times_us:
        if free > prev_free or (free == prev_free and core < prev_core):
            ordered = sorted(free_times_us, key=_CORE)
            ordered.sort(key=_FREE, reverse=True)
            return ordered
        prev_core = core
        prev_free = free
    return free_times_us


class MigrationDecision(NamedTuple):
    """Output of Algorithm 1.

    ``assignments`` pairs each considered core (by caller-provided id)
    with the number of subtasks placed on it; cores given zero subtasks
    are omitted.  ``local_subtasks`` is what the owning thread keeps.

    A ``NamedTuple`` rather than a dataclass: it is constructed at every
    planning decision, and tuple construction is a single C call where a
    frozen dataclass pays ``object.__setattr__`` per field.
    """

    assignments: Tuple[Tuple[int, int], ...]
    local_subtasks: int

    @property
    def migrated_subtasks(self) -> int:
        return sum(count for _, count in self.assignments)

    @property
    def num_targets(self) -> int:
        return len(self.assignments)


def plan_migration(
    num_subtasks: int,
    subtask_time_us: float,
    migration_overhead_us: float,
    free_times_us: Sequence[Tuple[int, float]],
) -> MigrationDecision:
    """Run Algorithm 1.

    Parameters
    ----------
    num_subtasks:
        P — parallelizable subtasks of the current task.
    subtask_time_us:
        tp — the planning-time (WCET-style) execution time per subtask.
    migration_overhead_us:
        delta — fixed per-subtask migration cost (paper: ~20 us).
    free_times_us:
        ``(core_id, fck)`` pairs for each idle core, in any order: the
        planner sorts them by descending free time (core id breaking
        ties) so the biggest gaps absorb the most work regardless of
        how the caller enumerated the cores.

    Returns
    -------
    MigrationDecision
        Never migrates more than ``P - 1`` subtasks in total and honours
        R1-R3 per core (property-tested in ``tests/sched/test_migration``).
    """
    if num_subtasks < 0:
        raise ValueError("num_subtasks must be >= 0")
    if subtask_time_us <= 0:
        # Zero-cost subtasks have nothing to gain from migration.
        return MigrationDecision(assignments=(), local_subtasks=num_subtasks)
    if migration_overhead_us < 0:
        raise ValueError("migration_overhead_us must be >= 0")

    remaining = num_subtasks  # S in the paper's notation
    max_offloaded = 0  # maxoff
    assignments: List[Tuple[int, int]] = []
    per_subtask_cost = subtask_time_us + migration_overhead_us

    for core_id, free_time in _ordered_windows(free_times_us):
        if remaining <= 1:
            break
        if free_time < per_subtask_cost:
            # Windows are sorted descending: if this one cannot hold a
            # single subtask (R1 gives zero), none of the rest can.
            break
        limoff = int(free_time / per_subtask_cost)  # R1 (floor; operands > 0)
        # noff = min(remaining - max_offloaded, limoff, remaining // 2),
        # spelled out: R2 keeps the local share at least the largest
        # placed batch, R3 caps any one core at half the remainder.
        noff = remaining - max_offloaded
        if limoff < noff:
            noff = limoff
        half = remaining // 2
        if half < noff:
            noff = half
        if noff <= 0:
            continue
        assignments.append((core_id, noff))
        if noff > max_offloaded:
            max_offloaded = noff
        remaining -= noff

    return MigrationDecision(assignments=tuple(assignments), local_subtasks=remaining)


def plan_steal_half(
    num_subtasks: int,
    subtask_time_us: float,
    migration_overhead_us: float,
    free_times_us: Sequence[Tuple[int, float]],
) -> MigrationDecision:
    """Work-stealing variant: each idle core takes half of what is left.

    The paper notes RT-OPEX "can be viewed as a specific application of
    work-stealing [17]"; this planner is the classic steal-half policy
    with only the R1 capacity bound — no R2 dominance coupling.  Used by
    the ablation benchmarks to measure what Algorithm 1's extra guards
    buy (and cost).
    """
    if num_subtasks < 0:
        raise ValueError("num_subtasks must be >= 0")
    if subtask_time_us <= 0:
        return MigrationDecision(assignments=(), local_subtasks=num_subtasks)
    if migration_overhead_us < 0:
        raise ValueError("migration_overhead_us must be >= 0")
    remaining = num_subtasks
    assignments: List[Tuple[int, int]] = []
    per_subtask_cost = subtask_time_us + migration_overhead_us
    for core_id, free_time in _ordered_windows(free_times_us):
        if remaining <= 1:
            break
        if free_time < per_subtask_cost:
            break  # sorted descending: no later window fits a subtask
        limoff = int(free_time / per_subtask_cost)
        noff = min(limoff, remaining // 2)
        if noff <= 0:
            continue
        assignments.append((core_id, noff))
        remaining -= noff
    return MigrationDecision(assignments=tuple(assignments), local_subtasks=remaining)


def plan_migrate_all(
    num_subtasks: int,
    subtask_time_us: float,
    migration_overhead_us: float,
    free_times_us: Sequence[Tuple[int, float]],
) -> MigrationDecision:
    """Pathological baseline: ship everything the windows can hold.

    Keeps only the single subtask Algorithm 1's loop condition always
    retains.  Exists to demonstrate *why* R2/R3 matter: without them the
    busiest helper can end up holding more work than the local core, so
    the parallel makespan degenerates (see the ablation benchmarks).
    """
    if num_subtasks < 0:
        raise ValueError("num_subtasks must be >= 0")
    if subtask_time_us <= 0:
        return MigrationDecision(assignments=(), local_subtasks=num_subtasks)
    if migration_overhead_us < 0:
        raise ValueError("migration_overhead_us must be >= 0")
    remaining = num_subtasks
    assignments: List[Tuple[int, int]] = []
    per_subtask_cost = subtask_time_us + migration_overhead_us
    for core_id, free_time in _ordered_windows(free_times_us):
        if remaining <= 1:
            break
        if free_time < per_subtask_cost:
            break  # sorted descending: no later window fits a subtask
        noff = min(int(free_time / per_subtask_cost), remaining - 1)
        if noff <= 0:
            continue
        assignments.append((core_id, noff))
        remaining -= noff
    return MigrationDecision(assignments=tuple(assignments), local_subtasks=remaining)
