"""Shared scheduler types: configuration, workload jobs, result records.

The unit the schedulers move around is a :class:`SubframeJob`: a
subframe plus its fully materialized task graph (durations drawn ahead
of time from the timing and iteration models) and its platform-noise
sample.  Drawing the workload *before* scheduling keeps comparisons
paired — every scheduler sees byte-identical work — and mirrors the
paper's trace-replay methodology.
"""

from __future__ import annotations

import math
from functools import cached_property
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_CORES_PER_BS,
    DEFAULT_MAX_TURBO_ITERATIONS,
    DEFAULT_NUM_ANTENNAS,
    DEFAULT_NUM_BASESTATIONS,
    RX_BUDGET_US,
    SUBFRAME_US,
)
from repro.lte.subframe import Subframe
from repro.timing.tasks import SubframeWork


@dataclass(frozen=True)
class CRanConfig:
    """Static configuration of one C-RAN compute node experiment.

    ``transport_latency_us`` is the fixed RTT/2 the evaluation sweeps
    (0.4-0.7 ms, sec. 4.2); the planning-time expected value equals it
    unless a stochastic transport model supplied jitter per subframe.
    """

    num_basestations: int = DEFAULT_NUM_BASESTATIONS
    cores_per_bs: int = DEFAULT_CORES_PER_BS
    num_cores: int = 0  # 0 -> num_basestations * cores_per_bs
    num_antennas: int = DEFAULT_NUM_ANTENNAS
    transport_latency_us: float = 500.0
    snr_db: float = 30.0
    max_iterations: int = DEFAULT_MAX_TURBO_ITERATIONS
    drop_on_slack_check: bool = True

    def __post_init__(self) -> None:
        if self.num_basestations < 1:
            raise ValueError("num_basestations must be >= 1")
        if self.cores_per_bs < 1:
            raise ValueError("cores_per_bs must be >= 1")
        if self.transport_latency_us < 0:
            raise ValueError("transport_latency_us must be >= 0")

    @property
    def total_cores(self) -> int:
        """Processing cores available to the scheduler."""
        if self.num_cores:
            return self.num_cores
        return self.num_basestations * self.cores_per_bs

    @property
    def processing_budget_us(self) -> float:
        """Tmax = 2 ms - RTT/2 (Eq. (3))."""
        return RX_BUDGET_US - self.transport_latency_us


@dataclass(frozen=True)
class SubframeJob:
    """One subframe's materialized workload.

    Attributes
    ----------
    subframe:
        Identity, grant, arrival and deadline times.
    work:
        Task graph with actual (drawn) durations and WCET plans.
    noise_us:
        Platform error E for the owning thread's serial execution.
    load:
        The normalized trace load that produced this grant (for Fig. 17).
    kind:
        ``"rx"`` for uplink decode jobs (the default) or ``"tx"`` for
        downlink encode jobs (Fig. 8's other timeline); Tx jobs carry
        their own arrival/deadline via the overrides below.
    arrival_override_us, deadline_override_us:
        When set, replace the subframe-derived times — used by jobs
        whose timing is not the standard uplink 2 ms budget.
    service:
        Traffic-class tag (``urllc``/``embb``/``mmtc``); the default
        ``embb`` is the paper's single-class workload.  Mixed-service
        builders set this together with ``deadline_override_us`` so the
        job carries its class's packet delay budget.
    """

    subframe: Subframe
    work: SubframeWork
    noise_us: float
    load: float
    kind: str = "rx"
    arrival_override_us: Optional[float] = None
    deadline_override_us: Optional[float] = None
    service: str = "embb"

    @cached_property
    def arrival_us(self) -> float:
        if self.arrival_override_us is not None:
            return self.arrival_override_us
        return self.subframe.arrival_us

    @cached_property
    def deadline_us(self) -> float:
        if self.deadline_override_us is not None:
            return self.deadline_override_us
        return self.subframe.deadline_us

    @cached_property
    def serial_time_us(self) -> float:
        """Single-core execution time including platform noise."""
        return self.work.total_serial_us + self.noise_us

    @cached_property
    def delay_budget_us(self) -> float:
        """Packet delay budget: deadline relative to over-the-air receipt.

        Equals ``RX_BUDGET_US`` for the default single-class uplink
        workload; per-class deadline overrides shrink or stretch it.
        """
        return self.deadline_us - self.subframe.air_time_us

    @property
    def optimistic_time_us(self) -> float:
        """Lower bound used by the slack check: L = 1 on every block."""
        decode = self.work.decode_task
        best_subtask = min((s.duration_us / i for s, i in
                            zip(decode.subtasks, self.work.iterations)), default=0.0)
        if decode.subtasks:
            optimistic_decode = decode.serial_us + best_subtask * len(decode.subtasks)
        else:
            optimistic_decode = decode.serial_us
        other = sum(t.serial_duration_us for t in self.work.tasks[:-1])
        return other + optimistic_decode


@dataclass
class MigrationEvent:
    """One migration batch RT-OPEX executed (for Fig. 16/18 stats)."""

    task: str  # "fft" or "decode"
    num_subtasks: int
    target_core: int
    planned_us: float
    actual_us: float
    recovered_subtasks: int = 0


@dataclass
class SubframeRecord:
    """Outcome of scheduling one subframe."""

    bs_id: int
    index: int
    mcs: int
    load: float
    arrival_us: float
    deadline_us: float
    start_us: float = math.nan
    finish_us: float = math.nan
    missed: bool = False
    dropped: bool = False
    drop_stage: Optional[str] = None
    core_id: int = -1
    queue_delay_us: float = 0.0
    cache_penalty_us: float = 0.0
    gap_us: float = math.nan
    iterations: Tuple[int, ...] = ()
    crc_pass: bool = True
    migrations: List[MigrationEvent] = field(default_factory=list)
    #: Reloaded results (CSV round-trips) carry only the migrated-subtask
    #: total, not the per-batch events; this override preserves the count.
    migrated_override: Optional[int] = None
    #: Traffic-class tag of the job this record came from.  Not part of
    #: the result-CSV schema (like per-batch migration events), so CSV
    #: round-trips fall back to the default class.
    service: str = "embb"

    @property
    def processing_time_us(self) -> float:
        """Wall time from processing start to finish (Trxproc realized)."""
        return self.finish_us - self.start_us

    @property
    def response_time_us(self) -> float:
        """Arrival to finish, including any queueing delay."""
        return self.finish_us - self.arrival_us

    @property
    def acked(self) -> bool:
        """ACK sent: decoded in time and CRC passed."""
        return (not self.missed) and (not self.dropped) and self.crc_pass

    @property
    def migrated_subtasks(self) -> int:
        if self.migrated_override is not None:
            return self.migrated_override
        return sum(m.num_subtasks for m in self.migrations)


class SchedulerResult:
    """All per-subframe records of one run, with analysis helpers.

    ``core_busy_us`` is the scheduler's own per-core occupancy
    accounting (local task execution plus migrated batches booked on
    helper cores).  The tracing subsystem derives the same numbers from
    the emitted busy spans, and the consistency tests hold the two equal
    to within 1e-6 — a cross-check between the simulation and its
    timeline export.  Results reloaded from CSV carry an empty dict.
    """

    def __init__(
        self,
        scheduler_name: str,
        config: CRanConfig,
        records: Sequence[SubframeRecord],
        core_busy_us: Optional[Dict[int, float]] = None,
    ):
        self.scheduler_name = scheduler_name
        self.config = config
        self.records: List[SubframeRecord] = list(records)
        self.core_busy_us: Dict[int, float] = dict(core_busy_us or {})
        #: Buffered RunTrace set by ``run_scheduler(capture_trace=...)``;
        #: ``None`` unless the caller asked for a private capture.
        self.trace_run = None
        #: Attestation counters from the virtual-time sanitizer; set by
        #: ``run_scheduler`` when sanitizing was enabled for this run.
        self.sanitizer_report: Optional[Dict[str, object]] = None

    def __len__(self) -> int:
        return len(self.records)

    def utilization(self, horizon_us: Optional[float] = None) -> Dict[int, float]:
        """Per-core busy fraction over ``horizon_us`` (default: the last
        recorded finish time).  Empty when the run predates busy
        accounting (e.g. CSV-reloaded results)."""
        if not self.core_busy_us:
            return {}
        if horizon_us is None:
            finishes = [r.finish_us for r in self.records if not math.isnan(r.finish_us)]
            horizon_us = max(finishes) if finishes else 0.0
        if not horizon_us or horizon_us <= 0:
            return {core: 0.0 for core in sorted(self.core_busy_us)}
        return {
            core: busy / horizon_us
            for core, busy in sorted(self.core_busy_us.items())
        }

    # -- headline metrics ---------------------------------------------------

    def miss_count(self) -> int:
        return sum(1 for r in self.records if r.missed or r.dropped)

    def miss_rate(self) -> float:
        """Deadline-miss rate: the paper's primary metric."""
        if not self.records:
            return 0.0
        return self.miss_count() / len(self.records)

    def miss_rate_by_mcs(self) -> Dict[int, float]:
        """Per-MCS miss rate (the Fig. 17 breakdown)."""
        totals: Dict[int, int] = {}
        misses: Dict[int, int] = {}
        for r in self.records:
            totals[r.mcs] = totals.get(r.mcs, 0) + 1
            if r.missed or r.dropped:
                misses[r.mcs] = misses.get(r.mcs, 0) + 1
        return {m: misses.get(m, 0) / totals[m] for m in sorted(totals)}

    def miss_rate_by_bs(self) -> Dict[int, float]:
        totals: Dict[int, int] = {}
        misses: Dict[int, int] = {}
        for r in self.records:
            totals[r.bs_id] = totals.get(r.bs_id, 0) + 1
            if r.missed or r.dropped:
                misses[r.bs_id] = misses.get(r.bs_id, 0) + 1
        return {b: misses.get(b, 0) / totals[b] for b in sorted(totals)}

    def miss_rate_by_class(self) -> Dict[str, float]:
        """Per-service-class miss rate (the mixed-scenario breakdown)."""
        totals: Dict[str, int] = {}
        misses: Dict[str, int] = {}
        for r in self.records:
            totals[r.service] = totals.get(r.service, 0) + 1
            if r.missed or r.dropped:
                misses[r.service] = misses.get(r.service, 0) + 1
        return {s: misses.get(s, 0) / totals[s] for s in sorted(totals)}

    def records_by_class(self) -> Dict[str, List[SubframeRecord]]:
        grouped: Dict[str, List[SubframeRecord]] = {}
        for r in self.records:
            grouped.setdefault(r.service, []).append(r)
        return {s: grouped[s] for s in sorted(grouped)}

    # -- distributions --------------------------------------------------------

    def processing_times(self, mcs: Optional[int] = None) -> np.ndarray:
        values = [
            r.processing_time_us
            for r in self.records
            if not r.dropped and not math.isnan(r.finish_us) and (mcs is None or r.mcs == mcs)
        ]
        return np.array(values)

    def gaps(self) -> np.ndarray:
        """Idle gaps after each completed subframe (partitioned/RT-OPEX)."""
        return np.array([r.gap_us for r in self.records if not math.isnan(r.gap_us)])

    def migration_counts(self) -> Dict[str, int]:
        """Total migrated subtasks per task type."""
        counts: Dict[str, int] = {"fft": 0, "decode": 0}
        for r in self.records:
            for m in r.migrations:
                counts[m.task] = counts.get(m.task, 0) + m.num_subtasks
        return counts

    def migration_fraction(self, task: str) -> float:
        """Fraction of subframes that migrated at least one ``task`` subtask."""
        if not self.records:
            return 0.0
        hits = sum(
            1 for r in self.records
            if any(m.task == task and m.num_subtasks > 0 for m in r.migrations)
        )
        return hits / len(self.records)

    def ack_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.acked) / len(self.records)

    def summary(self) -> Dict[str, float]:
        times = self.processing_times()
        return {
            "subframes": float(len(self.records)),
            "miss_rate": self.miss_rate(),
            "ack_rate": self.ack_rate(),
            "mean_proc_us": float(times.mean()) if times.size else math.nan,
            "p99_proc_us": float(np.percentile(times, 99)) if times.size else math.nan,
        }


def partitioned_core_for(bs_id: int, subframe_index: int, cores_per_bs: int) -> int:
    """The paper's placement rule: core ``i*ceil(Tmax) + j mod ceil(Tmax)``."""
    return bs_id * cores_per_bs + (subframe_index % cores_per_bs)


def assigned_core_for(job: "SubframeJob", cores_per_bs: int) -> int:
    """Partitioned core for any job kind.

    Rx subframe ``j`` follows the paper's rule.  The Tx job encoding
    downlink subframe ``k`` goes to the *opposite* slot (``k+1``): it
    starts 1 ms before transmission, exactly inside the window before
    that core's next uplink arrival (the interleaving of Fig. 8).
    """
    sf = job.subframe
    index = sf.index + (1 if job.kind == "tx" else 0)
    return partitioned_core_for(sf.bs_id, index, cores_per_bs)


def next_partitioned_activation(
    bs_id: int,
    core_slot: int,
    after_us: float,
    cores_per_bs: int,
    transport_latency_us: float,
) -> float:
    """Expected arrival of the next subframe assigned to this core.

    Core ``(bs_id, slot)`` serves subframes ``j ≡ slot (mod cores_per_bs)``,
    which arrive every ``cores_per_bs`` ms at ``j*1ms + RTT/2``.  This is
    the preemption horizon Algorithm 1 plans against.
    """
    del bs_id  # placement is per-BS but the arrival phase only needs the slot
    period = cores_per_bs * SUBFRAME_US
    phase = core_slot * SUBFRAME_US + transport_latency_us
    k = math.floor((after_us - phase) / period) + 1
    candidate = phase + max(k, 0) * period
    if candidate <= after_us:
        candidate += period
    return candidate
