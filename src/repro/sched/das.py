"""Delay-aware scheduler (DAS): budget-criticality × channel quality.

The mixed-service baseline the traffic-class extension adds alongside
the paper's five policies.  Like the global scheduler it keeps one
shared queue and dispatches to idle cores, but instead of EDF it ranks
the pending subframes by an M-LWDF-style priority recomputed at every
dispatch instant:

``priority = (head_of_line_delay + optimistic_time) / delay_budget
             × (1 + channel_efficiency)``

* the first factor is *budget criticality* — the fraction of the job's
  packet delay budget that will have elapsed by the earliest possible
  finish, so a URLLC frame at 60% of a 1 ms budget outranks an eMBB
  frame at 20% of 2 ms even though the eMBB absolute deadline may be
  earlier;
* ``channel_efficiency`` is the grant's spectral efficiency relative to
  the top MCS (the M-LWDF ``r_i/R̄_i`` term collapsed to its static
  part — the workload draws no per-dispatch fading), nudging ties
  toward frames that deliver more bits per scheduled core.

On a single-class workload every job shares one budget, so criticality
ordering degenerates to EDF-with-a-throughput-tiebreak; the scheduler
exists for the mixed case, where per-class budgets make EDF order and
urgency order diverge.

Runtime overheads mirror the global scheduler exactly — per-dispatch
overhead, arbitrary idle-core wake-up (cache-affinity penalty), a
capacity-bounded ring buffer, and drop-at-dispatch for frames whose
optimistic finish already overshoots — so DAS-vs-global deltas isolate
the *ordering* policy.  Fully traced: arrivals, busy spans, and
deadline verdicts (with class tags) flow through the same
:class:`~repro.obs.trace.RunTrace` surface the sanitizer validates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lte.mcs import max_mcs, throughput_mbps
from repro.obs.trace import RunTrace
from repro.sched.base import CRanConfig, SchedulerResult, SubframeJob, SubframeRecord
from repro.sched.global_ import DEFAULT_DISPATCH_OVERHEAD_US
from repro.sim.engine import Simulator
from repro.timing.cache import CacheAffinityModel


class _Pending:
    """A queued job plus its record and FIFO sequence number."""

    __slots__ = ("job", "record", "seq")

    def __init__(self, job: SubframeJob, record: SubframeRecord, seq: int):
        self.job = job
        self.record = record
        self.seq = seq


class DelayAwareScheduler:
    """Shared-queue scheduler ordered by budget criticality × channel."""

    name = "das"

    def __init__(
        self,
        config: CRanConfig,
        rng: Optional[np.random.Generator] = None,
        cache_model: Optional[CacheAffinityModel] = None,
        dispatch_overhead_us: float = DEFAULT_DISPATCH_OVERHEAD_US,
        queue_capacity: int = 256,
        trace: Optional[RunTrace] = None,
    ):
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.cache = cache_model if cache_model is not None else CacheAffinityModel()
        self.dispatch_overhead_us = dispatch_overhead_us
        self.queue_capacity = queue_capacity
        self.trace = trace
        self._peak_throughput = throughput_mbps(max_mcs())

    def _priority(self, job: SubframeJob, now: float) -> float:
        """M-LWDF-style urgency of dispatching ``job`` at ``now``."""
        hol_delay = max(0.0, now - job.subframe.air_time_us)
        criticality = (hol_delay + job.optimistic_time_us) / job.delay_budget_us
        efficiency = throughput_mbps(job.subframe.grant.mcs) / self._peak_throughput
        return criticality * (1.0 + efficiency)

    def run(self, jobs: Sequence[SubframeJob]) -> SchedulerResult:
        sim = Simulator()
        trace = self.trace
        num_cores = self.config.total_cores
        core_idle: List[bool] = [True] * num_cores
        queue: List[_Pending] = []
        records: List[SubframeRecord] = []
        busy: Dict[int, float] = {}
        seq_counter = [0]
        self.cache.reset()

        def make_record(job: SubframeJob) -> SubframeRecord:
            sf = job.subframe
            return SubframeRecord(
                bs_id=sf.bs_id,
                index=sf.index,
                mcs=sf.grant.mcs,
                load=job.load,
                arrival_us=job.arrival_us,
                deadline_us=job.deadline_us,
                iterations=job.work.iterations,
                crc_pass=job.work.crc_pass,
                service=job.service,
            )

        def pop_most_urgent() -> _Pending:
            # Priorities depend on the current instant, so they are
            # recomputed per dispatch over the pending set (the queue is
            # capacity-bounded, keeping the scan O(capacity)).  Ties
            # break deterministically: deadline, then identity.
            def rank(p: _Pending) -> Tuple[float, float, int, int]:
                return (
                    -self._priority(p.job, sim.now),
                    p.job.deadline_us,
                    p.job.subframe.bs_id,
                    p.seq,
                )

            best_i = 0
            best_rank = rank(queue[0])
            for i in range(1, len(queue)):
                r = rank(queue[i])
                if r < best_rank:
                    best_i, best_rank = i, r
            return queue.pop(best_i)

        def drop(record: SubframeRecord, stage: str) -> None:
            record.dropped = True
            record.missed = True
            record.drop_stage = stage
            record.start_us = sim.now
            record.finish_us = sim.now
            if trace is not None:
                trace.deadline(
                    sim.now, -1, True, record.bs_id, record.index,
                    drop_stage=stage, service=record.service,
                )

        def try_dispatch() -> None:
            while queue:
                idle = [c for c in range(num_cores) if core_idle[c]]
                if not idle:
                    return
                # Same arbitrary-wake-up semantics as the global
                # scheduler: the kernel picks which blocked worker gets
                # the semaphore.
                idle_core = int(idle[self.rng.integers(0, len(idle))])
                entry = pop_most_urgent()
                job, record = entry.job, entry.record
                start = sim.now + self.dispatch_overhead_us
                if start + job.optimistic_time_us > job.deadline_us:
                    drop(record, "dispatch")
                    continue
                core_idle[idle_core] = False
                record.core_id = idle_core
                record.start_us = start
                record.queue_delay_us = start - job.arrival_us
                penalty = self.cache.penalty(
                    idle_core, job.subframe.bs_id, job.subframe.index, self.rng
                )
                record.cache_penalty_us = penalty
                finish = start + job.serial_time_us + penalty
                if finish > job.deadline_us:
                    record.missed = True
                    finish = job.deadline_us  # terminated at the deadline
                record.finish_us = finish
                if finish > start:
                    busy[idle_core] = busy.get(idle_core, 0.0) + (finish - start)
                if trace is not None:
                    trace.task(
                        idle_core, "process", start, finish,
                        record.bs_id, record.index,
                        cache_penalty_us=penalty,
                    )
                    trace.deadline(
                        finish, idle_core, record.missed,
                        record.bs_id, record.index, service=record.service,
                    )

                def complete(core: int = idle_core) -> None:
                    core_idle[core] = True
                    try_dispatch()

                sim.schedule(finish, complete)

        def arrive(job: SubframeJob) -> None:
            record = make_record(job)
            records.append(record)
            if trace is not None:
                trace.arrival(job.arrival_us, -1, record.bs_id, record.index)
            if len(queue) >= self.queue_capacity:
                # Ring buffer full: overwrite the *least urgent* pending
                # frame — the delay-aware twist on the global
                # scheduler's overwrite-oldest.
                victim_i = max(
                    range(len(queue)),
                    key=lambda i: (
                        -self._priority(queue[i].job, sim.now),
                        queue[i].seq,
                    ),
                )
                victim = queue.pop(victim_i)
                drop(victim.record, "queue-overflow")
            seq_counter[0] += 1
            queue.append(_Pending(job, record, seq_counter[0]))
            # Like the global scheduler: dispatch after every
            # same-instant arrival is queued so a burst is ordered by
            # priority, not transport-thread wake-up order.
            sim.schedule(sim.now, try_dispatch, priority=1)

        for job in sorted(jobs, key=lambda j: (j.arrival_us, j.subframe.bs_id)):
            sim.schedule(job.arrival_us, lambda j=job: arrive(j))
        sim.run()
        if trace is not None:
            trace.meta["sim"] = sim.stats()
        return SchedulerResult(
            f"{self.name}-{num_cores}", self.config, records, core_busy_us=busy
        )
