"""RT-OPEX reproduction: flexible scheduling for Cloud-RAN processing.

A from-scratch Python reproduction of *RT-OPEX: Flexible Scheduling for
Cloud-RAN Processing* (Garikipati, Fawaz, Shin — CoNEXT 2016), built on
a deterministic discrete-event simulation of a multicore C-RAN compute
node (see DESIGN.md for the testbed-to-simulation substitutions).

Quick tour of the public API::

    from repro import CRanConfig, build_workload, run_scheduler

    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes=5000)
    result = run_scheduler("rt-opex", cfg, jobs)
    print(result.miss_rate())

Subpackages:

* ``repro.lte`` — MCS/TBS tables, grid geometry, code-block segmentation;
* ``repro.phy`` — a functional numpy LTE uplink chain (OFDM, QAM, turbo);
* ``repro.timing`` — Eq. (1) timing model, task graphs, platform noise;
* ``repro.transport`` — fronthaul/cloud/WARP latency models;
* ``repro.sim`` — the discrete-event engine;
* ``repro.sched`` — partitioned, global, and RT-OPEX schedulers;
* ``repro.workload`` — cellular load traces and grant mapping;
* ``repro.experiments`` — one driver per paper table/figure.
"""

from repro.lte.subframe import Subframe, UplinkGrant
from repro.sched import (
    CRanConfig,
    GlobalScheduler,
    PartitionedScheduler,
    RtOpexScheduler,
    SchedulerResult,
    build_workload,
    run_scheduler,
)
from repro.sched.migration import MigrationDecision, plan_migration
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel, ModelCoefficients, fit_linear_model

__version__ = "1.0.0"

__all__ = [
    "Subframe",
    "UplinkGrant",
    "CRanConfig",
    "GlobalScheduler",
    "PartitionedScheduler",
    "RtOpexScheduler",
    "SchedulerResult",
    "build_workload",
    "run_scheduler",
    "MigrationDecision",
    "plan_migration",
    "IterationModel",
    "LinearTimingModel",
    "ModelCoefficients",
    "fit_linear_model",
    "__version__",
]
