"""Virtualization platform profiles (the paper's explicit future work).

Sec. 4.2: "The evaluation with virtualization platforms such as
containers is left to future work", and sec. 6 cites [23, 25, 33] for
the observation that "a container approach to virtualization was shown
to have a slightly better performance than a hypervisor approach".

This module implements that study.  A platform profile scales the
Eq. (1) coefficients (steady-state overhead: syscall/vmexit costs,
nested paging, softirq routing) and swaps in a heavier platform-noise
model (jitter from the hypervisor scheduler or cgroup throttling):

* **native** — the paper's bare-metal low-latency kernel (identity);
* **container** — a few percent steady overhead, slightly more jitter;
* **vm** — noticeably higher steady overhead and a much heavier noise
  tail from hypervisor preemptions.

Numbers follow the qualitative ordering of the cited studies (container
close to native, hypervisor clearly behind); they are knobs, not
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.timing.model import LinearTimingModel, ModelCoefficients
from repro.timing.platform import PlatformNoiseModel


@dataclass(frozen=True)
class VirtualizationProfile:
    """Execution-environment overhead profile."""

    name: str
    time_multiplier: float
    noise: PlatformNoiseModel

    def __post_init__(self) -> None:
        if self.time_multiplier < 1.0:
            raise ValueError("a platform cannot be faster than bare metal here")

    def scaled_timing_model(
        self, base: Optional[LinearTimingModel] = None
    ) -> LinearTimingModel:
        """The Eq. (1) model with every coefficient scaled."""
        base = base if base is not None else LinearTimingModel()
        c = base.coefficients
        scaled = ModelCoefficients(
            w0=c.w0 * self.time_multiplier,
            w1=c.w1 * self.time_multiplier,
            w2=c.w2 * self.time_multiplier,
            w3=c.w3 * self.time_multiplier,
        )
        return LinearTimingModel(coefficients=scaled)


def native_profile() -> VirtualizationProfile:
    """Bare-metal low-latency kernel: the paper's platform."""
    return VirtualizationProfile(
        name="native", time_multiplier=1.0, noise=PlatformNoiseModel()
    )


def container_profile() -> VirtualizationProfile:
    """Containers: near-native CPU, modestly more scheduling jitter."""
    return VirtualizationProfile(
        name="container",
        time_multiplier=1.03,
        noise=PlatformNoiseModel(
            base_mean_us=24.0, spike_probability=2.0e-3, tail_probability=2.0e-5
        ),
    )


def vm_profile() -> VirtualizationProfile:
    """Hypervisor VM: steady vmexit overhead plus heavy jitter tails."""
    return VirtualizationProfile(
        name="vm",
        time_multiplier=1.08,
        noise=PlatformNoiseModel(
            base_mean_us=35.0,
            spike_probability=8.0e-3,
            spike_low_us=150.0,
            spike_high_us=500.0,
            tail_probability=1.0e-4,
            tail_low_us=500.0,
            tail_high_us=1200.0,
        ),
    )


def standard_profiles() -> Dict[str, VirtualizationProfile]:
    """The three platforms the extension experiment compares."""
    profiles = (native_profile(), container_profile(), vm_profile())
    return {p.name: p for p in profiles}
