"""The paper's linear processing-time model (Eq. (1)) and its regression.

``Trxproc = w0 + w1*N + w2*K + w3*D*L + E``

Table 1 gives the GPP coefficients (31.4, 169.1, 49.7, 93.0) us with
r^2 = 0.992 over 4e6 measurements.  :class:`LinearTimingModel` evaluates
the model and decomposes it into the three-task chain of sec. 2.2:

* **FFT** — per-antenna subtasks; the paper's Fig. 18 median FFT task
  time of 108 us at N = 2 fixes the per-antenna share at 54 us, with the
  remainder of ``w1*N`` (equalization, memory copies) assigned to demod.
* **demod** — the constant ``w0``, the non-FFT antenna share, and half of
  the constellation term ``w2*K`` (the demapper).
* **decode** — the other half of ``w2*K`` (rate dematcher, descrambler)
  as a serial prologue plus the turbo term ``w3*D*L`` split evenly across
  code blocks (the migratable subtasks).

The decomposition sums back to Eq. (1) exactly, which the tests assert.
:func:`fit_linear_model` recovers the coefficients from (N, K, D*L,
Trxproc) samples by least squares — the Table 1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import W0_US, W1_US, W2_US, W3_US
from repro.lte.subframe import UplinkGrant

#: Per-antenna FFT share of w1 (us): Fig. 18's 108 us FFT task at N = 2.
FFT_PER_ANTENNA_US = 54.0
#: Fraction of the w2*K constellation term spent in the demapper (demod
#: task); the rest (dematcher + descrambler) opens the decode task.
DEMAP_FRACTION = 0.5


@dataclass(frozen=True)
class ModelCoefficients:
    """Coefficients of Eq. (1), in microseconds."""

    w0: float = W0_US
    w1: float = W1_US
    w2: float = W2_US
    w3: float = W3_US

    def as_array(self) -> np.ndarray:
        return np.array([self.w0, self.w1, self.w2, self.w3])


@dataclass(frozen=True)
class LinearTimingModel:
    """Evaluates Eq. (1) and its per-task decomposition."""

    coefficients: ModelCoefficients = ModelCoefficients()

    # -- Eq. (1) ----------------------------------------------------------

    def total_time(
        self, num_antennas: int, modulation_order: int, load: float, iterations: float
    ) -> float:
        """Noise-free Trxproc in us for the given workload parameters."""
        c = self.coefficients
        return c.w0 + c.w1 * num_antennas + c.w2 * modulation_order + c.w3 * load * iterations

    def total_time_for_grant(self, grant: UplinkGrant, iterations: float) -> float:
        """Eq. (1) evaluated for an uplink grant."""
        return self.total_time(
            grant.num_antennas, grant.modulation_order, grant.subcarrier_load, iterations
        )

    def worst_case_time(self, grant: UplinkGrant, max_iterations: int) -> float:
        """WCET bound: Eq. (1) with L = Lm (paper sec. 2.1)."""
        return self.total_time_for_grant(grant, float(max_iterations))

    def best_case_time(self, grant: UplinkGrant) -> float:
        """Optimistic bound with a single decoder iteration.

        Used by the slack check before launching a task ("we check if the
        execution time is less than the slack time, else we drop",
        sec. 4.1): a subframe is dropped only when even the best case
        cannot meet the deadline.
        """
        return self.total_time_for_grant(grant, 1.0)

    # -- task decomposition ------------------------------------------------

    def fft_task_time(self, num_antennas: int) -> float:
        """Serial FFT-task time: per-antenna subtasks."""
        return FFT_PER_ANTENNA_US * num_antennas

    def fft_subtask_time(self) -> float:
        """One FFT subtask = all 14 symbols of one antenna (Fig. 5)."""
        return FFT_PER_ANTENNA_US

    def demod_task_time(self, num_antennas: int, modulation_order: int) -> float:
        """Channel estimation + equalization + demapping (serial)."""
        c = self.coefficients
        non_fft_antenna = (c.w1 - FFT_PER_ANTENNA_US) * num_antennas
        return c.w0 + non_fft_antenna + DEMAP_FRACTION * c.w2 * modulation_order

    def decode_prologue_time(self, modulation_order: int) -> float:
        """Serial decode prologue: rate dematcher + descrambler."""
        return (1.0 - DEMAP_FRACTION) * self.coefficients.w2 * modulation_order

    def decode_subtask_time(self, load: float, iterations: float, num_blocks: int) -> float:
        """Turbo decode time of one code block at ``iterations``."""
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        return self.coefficients.w3 * load * iterations / num_blocks

    def decode_task_time(
        self,
        load: float,
        modulation_order: int,
        per_block_iterations: Sequence[float],
    ) -> float:
        """Serial decode-task time given each block's iteration count."""
        num_blocks = len(per_block_iterations)
        turbo = sum(
            self.decode_subtask_time(load, l, num_blocks) for l in per_block_iterations
        )
        return self.decode_prologue_time(modulation_order) + turbo


@dataclass(frozen=True)
class FitResult:
    """Recovered Eq. (1) coefficients and goodness of fit."""

    coefficients: ModelCoefficients
    r_squared: float
    residuals: np.ndarray

    def summary_row(self) -> List[float]:
        c = self.coefficients
        return [c.w0, c.w1, c.w2, c.w3, self.r_squared]


def fit_linear_model(
    antennas: np.ndarray,
    modulation_orders: np.ndarray,
    load_iterations: np.ndarray,
    times_us: np.ndarray,
) -> FitResult:
    """Least-squares fit of Eq. (1) — the Table 1 experiment.

    Parameters mirror the regressors: ``N``, ``K``, and the product
    ``D * L``; ``times_us`` are the measured totals.
    """
    antennas = np.asarray(antennas, dtype=np.float64)
    modulation_orders = np.asarray(modulation_orders, dtype=np.float64)
    load_iterations = np.asarray(load_iterations, dtype=np.float64)
    times_us = np.asarray(times_us, dtype=np.float64)
    n = times_us.size
    if not (antennas.size == modulation_orders.size == load_iterations.size == n):
        raise ValueError("all regressor arrays must have the same length")
    if n < 4:
        raise ValueError("need at least 4 samples to fit 4 coefficients")
    design = np.column_stack(
        [np.ones(n), antennas, modulation_orders, load_iterations]
    )
    solution, _, rank, _ = np.linalg.lstsq(design, times_us, rcond=None)
    if rank < 4:
        raise ValueError("design matrix is rank-deficient; vary all regressors")
    predicted = design @ solution
    residuals = times_us - predicted
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((times_us - times_us.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    coeffs = ModelCoefficients(*[float(v) for v in solution])
    return FitResult(coefficients=coeffs, r_squared=r2, residuals=residuals)
