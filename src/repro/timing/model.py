"""The paper's linear processing-time model (Eq. (1)) and its regression.

``Trxproc = w0 + w1*N + w2*K + w3*D*L + E``

Table 1 gives the GPP coefficients (31.4, 169.1, 49.7, 93.0) us with
r^2 = 0.992 over 4e6 measurements.  :class:`LinearTimingModel` evaluates
the model and decomposes it into the three-task chain of sec. 2.2:

* **FFT** — per-antenna subtasks; the paper's Fig. 18 median FFT task
  time of 108 us at N = 2 fixes the per-antenna share at 54 us, with the
  remainder of ``w1*N`` (equalization, memory copies) assigned to demod.
* **demod** — the constant ``w0``, the non-FFT antenna share, and half of
  the constellation term ``w2*K`` (the demapper).
* **decode** — the other half of ``w2*K`` (rate dematcher, descrambler)
  as a serial prologue plus the turbo term ``w3*D*L`` split evenly across
  code blocks (the migratable subtasks).

The decomposition sums back to Eq. (1) exactly, which the tests assert.
:func:`fit_linear_model` recovers the coefficients from (N, K, D*L,
Trxproc) samples by least squares — the Table 1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.constants import W0_US, W1_US, W2_US, W3_US
from repro.lte.mcs import modulation_order, subcarrier_load
from repro.lte.segmentation import num_code_blocks
from repro.lte.subframe import UplinkGrant

#: Per-antenna FFT share of w1 (us): Fig. 18's 108 us FFT task at N = 2.
FFT_PER_ANTENNA_US = 54.0
#: Fraction of the w2*K constellation term spent in the demapper (demod
#: task); the rest (dematcher + descrambler) opens the decode task.
DEMAP_FRACTION = 0.5


@dataclass(frozen=True)
class ModelCoefficients:
    """Coefficients of Eq. (1), in microseconds."""

    w0: float = W0_US
    w1: float = W1_US
    w2: float = W2_US
    w3: float = W3_US

    def as_array(self) -> np.ndarray:
        return np.array([self.w0, self.w1, self.w2, self.w3])


@dataclass(frozen=True)
class LinearTimingModel:
    """Evaluates Eq. (1) and its per-task decomposition."""

    coefficients: ModelCoefficients = ModelCoefficients()

    # -- Eq. (1) ----------------------------------------------------------

    def total_time(
        self, num_antennas: int, modulation_order: int, load: float, iterations: float
    ) -> float:
        """Noise-free Trxproc in us for the given workload parameters."""
        c = self.coefficients
        return c.w0 + c.w1 * num_antennas + c.w2 * modulation_order + c.w3 * load * iterations

    def total_time_for_grant(self, grant: UplinkGrant, iterations: float) -> float:
        """Eq. (1) evaluated for an uplink grant."""
        return self.total_time(
            grant.num_antennas, grant.modulation_order, grant.subcarrier_load, iterations
        )

    def worst_case_time(self, grant: UplinkGrant, max_iterations: int) -> float:
        """WCET bound: Eq. (1) with L = Lm (paper sec. 2.1)."""
        return self.total_time_for_grant(grant, float(max_iterations))

    def best_case_time(self, grant: UplinkGrant) -> float:
        """Optimistic bound with a single decoder iteration.

        Used by the slack check before launching a task ("we check if the
        execution time is less than the slack time, else we drop",
        sec. 4.1): a subframe is dropped only when even the best case
        cannot meet the deadline.
        """
        return self.total_time_for_grant(grant, 1.0)

    # -- task decomposition ------------------------------------------------

    def fft_task_time(self, num_antennas: int) -> float:
        """Serial FFT-task time: per-antenna subtasks."""
        return FFT_PER_ANTENNA_US * num_antennas

    def fft_subtask_time(self) -> float:
        """One FFT subtask = all 14 symbols of one antenna (Fig. 5)."""
        return FFT_PER_ANTENNA_US

    def demod_task_time(self, num_antennas: int, modulation_order: int) -> float:
        """Channel estimation + equalization + demapping (serial)."""
        c = self.coefficients
        non_fft_antenna = (c.w1 - FFT_PER_ANTENNA_US) * num_antennas
        return c.w0 + non_fft_antenna + DEMAP_FRACTION * c.w2 * modulation_order

    def decode_prologue_time(self, modulation_order: int) -> float:
        """Serial decode prologue: rate dematcher + descrambler."""
        return (1.0 - DEMAP_FRACTION) * self.coefficients.w2 * modulation_order

    def decode_subtask_time(self, load: float, iterations: float, num_blocks: int) -> float:
        """Turbo decode time of one code block at ``iterations``."""
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        return self.coefficients.w3 * load * iterations / num_blocks

    def decode_task_time(
        self,
        load: float,
        modulation_order: int,
        per_block_iterations: Sequence[float],
    ) -> float:
        """Serial decode-task time given each block's iteration count."""
        num_blocks = len(per_block_iterations)
        turbo = sum(
            self.decode_subtask_time(load, l, num_blocks) for l in per_block_iterations
        )
        return self.decode_prologue_time(modulation_order) + turbo


# -- memoized duration oracle ----------------------------------------------


@dataclass(frozen=True)
class GrantDurations:
    """Every Eq. (1) task/subtask duration for one grant shape.

    The durations are a pure function of
    ``(mcs, num_prbs, num_antennas, max_iterations)`` given the model
    coefficients — everything except the stochastic per-code-block
    iteration draw.  ``decode_cb_us[l - 1]`` is the turbo time of one
    code block at ``l`` iterations, computed by the exact scalar
    formulas of :class:`LinearTimingModel`, so materializing a task
    graph from a cached instance is bit-identical to recomputing it.
    """

    mcs: int
    num_prbs: int
    num_antennas: int
    max_iterations: int
    code_blocks: int
    modulation_order: int
    subcarrier_load: float
    fft_subtask_us: float
    fft_serial_us: float
    demod_us: float
    prologue_us: float
    planned_cb_us: float
    decode_cb_us: Tuple[float, ...]


@dataclass(frozen=True)
class DurationTables:
    """Per-MCS lookup tables for vectorized Eq. (1) evaluation.

    Arrays are indexed by MCS (axis 0); ``decode_cb_us`` is
    ``(mcs_cap + 1, max_iterations)`` with the iteration count on
    axis 1 (``l`` at column ``l - 1``).  Values are exactly the scalar
    ones from :class:`GrantDurations` — the tables only gather them.
    """

    num_prbs: int
    num_antennas: int
    max_iterations: int
    code_blocks: np.ndarray
    modulation_order: np.ndarray
    subcarrier_load: np.ndarray
    fft_subtask_us: float
    demod_us: np.ndarray
    prologue_us: np.ndarray
    planned_cb_us: np.ndarray
    decode_cb_us: np.ndarray

    def decode_subtask_us(self, mcs: np.ndarray, iterations: np.ndarray) -> np.ndarray:
        """Per-code-block decode durations for aligned (mcs, L) arrays."""
        return self.decode_cb_us[mcs, np.asarray(iterations, dtype=np.int64) - 1]

    def total_us(self, mcs: np.ndarray, mean_iterations: np.ndarray) -> np.ndarray:
        """Eq. (1) over a whole MCS trace (noise-free, vectorized)."""
        mcs = np.asarray(mcs, dtype=np.int64)
        serial = (
            self.fft_subtask_us * self.num_antennas
            + self.demod_us[mcs]
            + self.prologue_us[mcs]
        )
        per_block = self.decode_cb_us[mcs, 0]  # one iteration per block
        return serial + per_block * self.code_blocks[mcs] * np.asarray(
            mean_iterations, dtype=np.float64
        )


class DurationOracle:
    """Content-addressed cache of Eq. (1) durations per grant shape.

    One oracle exists per (model coefficients, Lm) pair — obtain it via
    :func:`duration_oracle`, which interns oracles on the frozen
    :class:`LinearTimingModel` itself, so two equal models share one
    cache (content addressing) and a *different* model can never serve
    stale durations (the key embeds every coefficient).  Invalidation
    is therefore structural: entries are immutable and only ever added.

    The per-key values are computed once with the model's scalar
    methods; the hot paths then do dictionary lookups (scalar use) or
    numpy gathers (:meth:`tables` for whole-trace batch evaluation),
    leaving the stochastic iteration draw as the only per-subframe
    work.
    """

    def __init__(self, model: LinearTimingModel, max_iterations: int):
        self.model = model
        self.max_iterations = int(max_iterations)
        self._grants: Dict[Tuple[int, int, int], GrantDurations] = {}
        self._tables: Dict[Tuple[int, int, int], DurationTables] = {}
        self._user_decode: Dict[Tuple[int, int, int, int], Tuple[float, float]] = {}

    def grant_durations(
        self, mcs: int, num_prbs: int = 50, num_antennas: int = 2
    ) -> GrantDurations:
        """The memoized duration bundle for one grant shape."""
        key = (int(mcs), int(num_prbs), int(num_antennas))
        cached = self._grants.get(key)
        if cached is None:
            cached = self._compute(*key)
            self._grants[key] = cached
        return cached

    def for_grant(self, grant: UplinkGrant) -> GrantDurations:
        return self.grant_durations(grant.mcs, grant.num_prbs, grant.num_antennas)

    def tables(
        self, num_prbs: int = 50, num_antennas: int = 2, mcs_cap: int = 27
    ) -> DurationTables:
        """Per-MCS gather tables over ``0..mcs_cap`` (vectorized eval)."""
        key = (int(num_prbs), int(num_antennas), int(mcs_cap))
        cached = self._tables.get(key)
        if cached is None:
            grants = [
                self.grant_durations(m, num_prbs, num_antennas)
                for m in range(mcs_cap + 1)
            ]
            cached = DurationTables(
                num_prbs=int(num_prbs),
                num_antennas=int(num_antennas),
                max_iterations=self.max_iterations,
                code_blocks=np.array([g.code_blocks for g in grants], dtype=np.int64),
                modulation_order=np.array(
                    [g.modulation_order for g in grants], dtype=np.int64
                ),
                subcarrier_load=np.array([g.subcarrier_load for g in grants]),
                fft_subtask_us=self.model.fft_subtask_time(),
                demod_us=np.array([g.demod_us for g in grants]),
                prologue_us=np.array([g.prologue_us for g in grants]),
                planned_cb_us=np.array([g.planned_cb_us for g in grants]),
                decode_cb_us=np.array([g.decode_cb_us for g in grants]),
            )
            self._tables[key] = cached
        return cached

    def user_decode_us(
        self, mcs: int, num_prbs: int, subframe_prbs: int, iterations: int
    ) -> Tuple[float, float]:
        """(actual, planned) decode-subtask times for a multi-user slice.

        Mirrors :func:`repro.timing.multiuser.build_multiuser_work`'s
        per-code-block arithmetic exactly: the user's subcarrier load is
        scaled by its PRB fraction before entering Eq. (1).
        """
        key = (int(mcs), int(num_prbs), int(subframe_prbs), int(iterations))
        cached = self._user_decode.get(key)
        if cached is None:
            blocks = num_code_blocks_for(mcs, num_prbs)
            frac = num_prbs / subframe_prbs
            scaled = subcarrier_load(mcs, num_prbs) * frac
            cached = (
                self.model.decode_subtask_time(scaled, float(iterations), blocks),
                self.model.decode_subtask_time(
                    scaled, float(self.max_iterations), blocks
                ),
            )
            self._user_decode[key] = cached
        return cached

    def _compute(self, mcs: int, num_prbs: int, num_antennas: int) -> GrantDurations:
        model = self.model
        q_m = modulation_order(mcs)
        load = subcarrier_load(mcs, num_prbs)
        blocks = num_code_blocks_for(mcs, num_prbs)
        return GrantDurations(
            mcs=mcs,
            num_prbs=num_prbs,
            num_antennas=num_antennas,
            max_iterations=self.max_iterations,
            code_blocks=blocks,
            modulation_order=q_m,
            subcarrier_load=load,
            fft_subtask_us=model.fft_subtask_time(),
            fft_serial_us=model.fft_task_time(num_antennas),
            demod_us=model.demod_task_time(num_antennas, q_m),
            prologue_us=model.decode_prologue_time(q_m),
            planned_cb_us=model.decode_subtask_time(
                load, float(self.max_iterations), blocks
            ),
            decode_cb_us=tuple(
                model.decode_subtask_time(load, float(l), blocks)
                for l in range(1, self.max_iterations + 1)
            ),
        )


@lru_cache(maxsize=None)
def num_code_blocks_for(mcs: int, num_prbs: int) -> int:
    """Code-block count for a grant shape (cached on the shape key)."""
    from repro.lte.mcs import transport_block_size

    return num_code_blocks(transport_block_size(mcs, num_prbs))


@lru_cache(maxsize=None)
def duration_oracle(
    model: LinearTimingModel, max_iterations: int
) -> DurationOracle:
    """The shared oracle for ``model`` — interned on its coefficients."""
    return DurationOracle(model, max_iterations)


@dataclass(frozen=True)
class FitResult:
    """Recovered Eq. (1) coefficients and goodness of fit."""

    coefficients: ModelCoefficients
    r_squared: float
    residuals: np.ndarray

    def summary_row(self) -> List[float]:
        c = self.coefficients
        return [c.w0, c.w1, c.w2, c.w3, self.r_squared]


def fit_linear_model(
    antennas: np.ndarray,
    modulation_orders: np.ndarray,
    load_iterations: np.ndarray,
    times_us: np.ndarray,
) -> FitResult:
    """Least-squares fit of Eq. (1) — the Table 1 experiment.

    Parameters mirror the regressors: ``N``, ``K``, and the product
    ``D * L``; ``times_us`` are the measured totals.
    """
    antennas = np.asarray(antennas, dtype=np.float64)
    modulation_orders = np.asarray(modulation_orders, dtype=np.float64)
    load_iterations = np.asarray(load_iterations, dtype=np.float64)
    times_us = np.asarray(times_us, dtype=np.float64)
    n = times_us.size
    if not (antennas.size == modulation_orders.size == load_iterations.size == n):
        raise ValueError("all regressor arrays must have the same length")
    if n < 4:
        raise ValueError("need at least 4 samples to fit 4 coefficients")
    design = np.column_stack(
        [np.ones(n), antennas, modulation_orders, load_iterations]
    )
    solution, _, rank, _ = np.linalg.lstsq(design, times_us, rcond=None)
    if rank < 4:
        raise ValueError("design matrix is rank-deficient; vary all regressors")
    predicted = design @ solution
    residuals = times_us - predicted
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((times_us - times_us.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    coeffs = ModelCoefficients(*[float(v) for v in solution])
    return FitResult(coefficients=coeffs, r_squared=r2, residuals=residuals)
