"""Multi-user subframe task graphs.

The paper's evaluation assumes "a single user uplink transmission and
100% PRB utilization" and notes this "constitutes a conservative
scenario ... This reduces, on average, the opportunities of migrations
(resulting in lower performance gains) as compared to a realistic
scenario with multiple users and varying PRB utilization" (sec. 4.2).
They could not locate decodable multi-user traces; the simulation has
no such constraint, so this module builds the realistic variant.

A multi-user subframe carries several grants, each over its own PRB
slice.  Eq. (1) generalizes per user with each user's terms weighted by
its share of the subframe's resource elements:

``Trxproc = w0 + w1*N + sum_u frac_u * (w2*K_u + w3*D_u*L_u)``

which reduces exactly to Eq. (1) for one user at 100% PRBs.  Each
user's transport block segments into its own code blocks, so the decode
task has *more, smaller* subtasks — precisely the granularity RT-OPEX
packs into gaps.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.timing.model import LinearTimingModel, duration_oracle
from repro.timing.tasks import SubframeWork, SubtaskSpec, TaskSpec


def _check_grants(grants) -> int:
    if not grants:
        raise ValueError("need at least one grant")
    antennas = {g.num_antennas for g in grants}
    if len(antennas) != 1:
        raise ValueError("all users share the basestation's antenna count")
    total_prbs = sum(g.num_prbs for g in grants)
    if total_prbs > 110:
        raise ValueError(f"PRB allocations sum to {total_prbs} > 110")
    return total_prbs


def build_multiuser_work(
    model: LinearTimingModel,
    grants: Sequence,
    per_user_iterations: Sequence[Sequence[int]],
    max_iterations: int,
    subframe_prbs: int = 50,
    crc_pass: bool = True,
) -> SubframeWork:
    """Task graph for a subframe shared by several users.

    ``per_user_iterations[u]`` holds user ``u``'s per-code-block turbo
    iteration counts.  FFT stays per-antenna (the samples are shared);
    demod and the decode prologue carry each user's constellation terms
    weighted by its PRB fraction; the decode task has one subtask per
    (user, code block).
    """
    total_prbs = _check_grants(grants)
    if total_prbs > subframe_prbs:
        raise ValueError(
            f"allocations ({total_prbs} PRBs) exceed the subframe ({subframe_prbs})"
        )
    if len(per_user_iterations) != len(grants):
        raise ValueError("need one iteration list per grant")

    num_antennas = grants[0].num_antennas
    fft_sub = model.fft_subtask_time()
    fft = TaskSpec(
        name="fft",
        serial_us=0.0,
        subtasks=tuple(
            SubtaskSpec(f"fft/ant{a}", fft_sub, fft_sub) for a in range(num_antennas)
        ),
        parallelizable=True,
    )

    # Effective modulation-order term: per-user K weighted by PRB share.
    effective_k = sum(
        g.modulation_order * (g.num_prbs / subframe_prbs) for g in grants
    )
    demod = TaskSpec(
        name="demod",
        serial_us=model.demod_task_time(num_antennas, 0)
        + 0.5 * model.coefficients.w2 * effective_k,
    )
    # demod_task_time(·, 0) contributed w0 + non-FFT antenna time; the
    # constellation half-share is added with the effective K above.

    prologue = model.decode_prologue_time(1) * effective_k
    # decode_prologue_time is linear in K, so evaluate at K=1 and scale.

    # The oracle memoizes the per-code-block arithmetic below for stock
    # models (same scalar formulas, so the floats are identical);
    # subclasses overriding decode_subtask_time keep the direct path.
    oracle = duration_oracle(model, max_iterations) if type(model) is LinearTimingModel else None

    subtasks: List[SubtaskSpec] = []
    all_iterations: List[int] = []
    for u, (grant, iterations) in enumerate(zip(grants, per_user_iterations)):
        blocks = grant.code_blocks
        if len(iterations) != blocks:
            raise ValueError(
                f"user {u}: need {blocks} iteration counts, got {len(iterations)}"
            )
        frac = grant.num_prbs / subframe_prbs
        load = grant.subcarrier_load  # bits per RE over the user's own PRBs
        for cb, l in enumerate(iterations):
            if oracle is not None:
                duration, planned = oracle.user_decode_us(
                    grant.mcs, grant.num_prbs, subframe_prbs, int(l)
                )
            else:
                duration = model.decode_subtask_time(load * frac, float(l), blocks)
                planned = model.decode_subtask_time(load * frac, float(max_iterations), blocks)
            subtasks.append(
                SubtaskSpec(name=f"decode/u{u}cb{cb}", duration_us=duration, planned_us=planned)
            )
            all_iterations.append(int(l))

    decode = TaskSpec(
        name="decode", serial_us=prologue, subtasks=tuple(subtasks), parallelizable=True
    )
    return SubframeWork(
        tasks=(fft, demod, decode),
        iterations=tuple(all_iterations),
        crc_pass=crc_pass,
    )
