"""Cache-affinity penalty model for multi-basestation scheduling.

The paper attributes the global scheduler's surprising behaviour —
slightly worse than partitioned, and *not* improving from 8 to 16 cores
(Fig. 19) — to cache thrashing: "each core in global scheduling processes
different basestations every few subframes, which leads to frequent
flushing of its memory cache and adds to the processing times".  At 16
cores, more than 10% of MCS-27 subframes took ~80 us longer.

We model this as a per-core affinity: processing a subframe of a
basestation the core has not touched recently costs an extra cold-cache
penalty, while re-processing the same basestation is free.  The penalty
magnitude is drawn per event so the processing-time distribution (not
just the mean) thickens, matching the right-hand plot of Fig. 19.

The same mechanism prices RT-OPEX's migration overhead delta: a migrated
subtask always executes on a core whose cache holds another
basestation's working set, which is why the paper measures a fixed
~18-20 us per migrated task (Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class CacheAffinityModel:
    """Tracks per-core basestation affinity and prices cold starts.

    Parameters
    ----------
    cold_penalty_low_us, cold_penalty_high_us:
        Uniform range of the penalty when a core processes a basestation
        other than the one it processed last.  The paper's Fig. 19
        observation (~80 us extra for a noticeable fraction of
        subframes) sits inside the default range.
    decay_subframes:
        After this many subframes of inactivity the affinity is lost even
        for the same basestation (other kernel work evicts the lines).
    """

    cold_penalty_low_us: float = 40.0
    cold_penalty_high_us: float = 110.0
    decay_subframes: int = 3
    _last_bs: Dict[int, int] = field(default_factory=dict)
    _last_index: Dict[int, int] = field(default_factory=dict)

    def penalty(
        self,
        core_id: int,
        bs_id: int,
        subframe_index: int,
        rng: np.random.Generator,
    ) -> float:
        """Penalty (us) for ``core_id`` processing ``bs_id`` now; updates state."""
        previous = self._last_bs.get(core_id)
        previous_index = self._last_index.get(core_id)
        self._last_bs[core_id] = bs_id
        self._last_index[core_id] = subframe_index
        if previous is None:
            return self._draw(rng)
        stale = (
            previous_index is not None
            and subframe_index - previous_index > self.decay_subframes
        )
        if previous != bs_id or stale:
            return self._draw(rng)
        return 0.0

    def peek_is_warm(self, core_id: int, bs_id: int) -> bool:
        """True when the core's cache currently holds ``bs_id``'s state."""
        return self._last_bs.get(core_id) == bs_id

    def reset(self) -> None:
        self._last_bs.clear()
        self._last_index.clear()

    def _draw(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.cold_penalty_low_us, self.cold_penalty_high_us))


@dataclass(frozen=True)
class MigrationCostModel:
    """Cost of migrating one subtask to another core (the delta of Alg. 1).

    The paper measures the overhead as the time to fetch the global OAI
    variables from shared memory: ~18 us for FFT and ~20 us for decode
    subtasks, "fixed across the subtasks" (sec. 4.4 / Fig. 18).  We use a
    fixed mean with small jitter; ablation benches sweep the mean.
    """

    mean_us: float = 20.0
    jitter_us: float = 2.0

    def planning_cost(self) -> float:
        """Deterministic delta used inside Algorithm 1."""
        return self.mean_us

    def draw(self, rng: Optional[np.random.Generator] = None) -> float:
        """Actual migration cost for one subtask."""
        if rng is None or self.jitter_us <= 0:
            return self.mean_us
        low = max(0.0, self.mean_us - self.jitter_us)
        return float(rng.uniform(low, self.mean_us + self.jitter_us))
