"""Platform-noise models: the error term E and the cyclictest benchmark.

The paper traces the residual of Eq. (1) to the execution environment,
not the model (Fig. 3(d)): the processing runs on a soft real-time kernel
and is occasionally disrupted by interrupt handling and kernel tasks.
Published order statistics we reproduce:

* 99.9% of observations have |E| < 0.15 ms;
* the worst observations reach ~0.7 ms;
* roughly 1 in 1e5 measurements exceeds a few hundred microseconds;
* the cyclictest + hackbench stress test shows a mean latency of 0.2 ms
  with a tail above 0.4 ms.

:class:`PlatformNoiseModel` is the additive E used by the scheduler
simulation; :class:`CyclictestEmulator` reproduces the separate stress
benchmark used to validate that E is platform- (not model-) driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PlatformNoiseModel:
    """Additive execution-time noise E (us), a three-component mixture.

    * a small always-present jitter (scheduler ticks, cache variance),
      gamma-distributed with mean ``base_mean_us``;
    * a moderate interrupt-handling spike (``spike_probability``,
      uniform on [spike_low_us, spike_high_us]);
    * a rare long kernel preemption (``tail_probability``, uniform on
      [tail_low_us, tail_high_us]) — the 0.4-0.7 ms events.
    """

    base_mean_us: float = 18.0
    base_shape: float = 2.0
    spike_probability: float = 1.0e-3
    spike_low_us: float = 100.0
    spike_high_us: float = 350.0
    tail_probability: float = 1.0e-5
    tail_low_us: float = 400.0
    tail_high_us: float = 700.0

    def draw(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent noise samples in microseconds."""
        scale = self.base_mean_us / self.base_shape
        noise = rng.gamma(self.base_shape, scale, size=size)
        u = rng.random(size)
        spikes = u < self.spike_probability
        noise[spikes] += rng.uniform(self.spike_low_us, self.spike_high_us, spikes.sum())
        tails = u > 1.0 - self.tail_probability
        noise[tails] += rng.uniform(self.tail_low_us, self.tail_high_us, tails.sum())
        return noise

    def draw_one(self, rng: np.random.Generator) -> float:
        """One sample, on the scalar fast path.

        Bit-identical to ``draw(rng, 1)[0]`` including the generator
        state afterwards: numpy's scalar draws consume the same stream
        as size-1 arrays, and a size-0 ``uniform`` consumes nothing —
        so the untaken spike/tail branches can simply be skipped.
        """
        noise = rng.gamma(self.base_shape, self.base_mean_us / self.base_shape)
        u = rng.random()
        if u < self.spike_probability:
            noise += rng.uniform(self.spike_low_us, self.spike_high_us)
        if u > 1.0 - self.tail_probability:
            noise += rng.uniform(self.tail_low_us, self.tail_high_us)
        return float(noise)

    def quantile(self, q: float, rng: np.random.Generator, samples: int = 200000) -> float:
        """Monte-Carlo quantile, used by tests to check order statistics."""
        return float(np.quantile(self.draw(rng, samples), q))


@dataclass(frozen=True)
class CyclictestEmulator:
    """Emulates the cyclictest-under-hackbench latency benchmark.

    cyclictest arms a timer and measures wake-up latency; under a
    hackbench load on the low-latency (soft real-time) kernel the paper
    measured a 0.2 ms mean with excursions above 0.4 ms.  Samples are the
    sum of a lognormal body and the same rare-kernel-event tail as the
    platform noise model.
    """

    mean_us: float = 200.0
    sigma: float = 0.18
    tail_probability: float = 1.0e-5
    tail_low_us: float = 400.0
    tail_high_us: float = 800.0

    def run(self, rng: np.random.Generator, samples: int = 100000) -> np.ndarray:
        """Return ``samples`` wake-up latencies in microseconds."""
        mu = np.log(self.mean_us) - 0.5 * self.sigma**2
        body = rng.lognormal(mu, self.sigma, size=samples)
        u = rng.random(samples)
        tails = u < self.tail_probability
        body[tails] = rng.uniform(self.tail_low_us, self.tail_high_us, tails.sum())
        return body
