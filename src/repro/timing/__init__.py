"""Execution-time models: Eq. (1), task graphs, platform noise, cache.

The paper models uplink processing time as

``Trxproc = w0 + w1*N + w2*K + w3*D*L + E``        (Eq. 1)

with N antennas, K modulation order, D subcarrier load, L turbo
iterations and E a platform error term.  This subpackage turns that model
into concrete per-task / per-subtask durations that the discrete-event
schedulers consume, plus the stochastic pieces: the iteration model
(L vs SNR/MCS), kernel-noise model (E), and a cache-affinity penalty
model for global scheduling.
"""

from repro.timing.cache import CacheAffinityModel, MigrationCostModel
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel, ModelCoefficients, fit_linear_model
from repro.timing.platform import CyclictestEmulator, PlatformNoiseModel
from repro.timing.tasks import SubframeWork, SubtaskSpec, TaskSpec, build_subframe_work

__all__ = [
    "CacheAffinityModel",
    "MigrationCostModel",
    "IterationModel",
    "LinearTimingModel",
    "ModelCoefficients",
    "fit_linear_model",
    "CyclictestEmulator",
    "PlatformNoiseModel",
    "SubframeWork",
    "SubtaskSpec",
    "TaskSpec",
    "build_subframe_work",
]
