"""Downlink (Tx) processing-time model and task construction.

The paper's Fig. 8 shows the other half of the node's real-time load:
the Tx processing that encodes each downlink subframe "starts 1 ms
before the actual over-the-air transmission".  The uplink evaluation
abstracts it away; this module restores it so the Tx-aware extension
(``ext-txload``) can measure how encode traffic erodes the idle gaps
RT-OPEX harvests.

Downlink encoding is far cheaper than uplink decoding — no channel
estimation, no equalizer, and turbo *encoding* instead of iterative
decoding — so its model mirrors Eq. (1) without the iteration term:

``Ttxproc = v0 + v1*N + v2*K + v3*D``

with coefficients set to put typical encode times at roughly a quarter
to a third of the corresponding decode times, consistent with the
paper's observation that uplink is "significantly more time-consuming
and varying than downlink".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import SUBFRAME_US
from repro.lte.subframe import UplinkGrant
from repro.timing.tasks import SubframeWork, TaskSpec


@dataclass(frozen=True)
class DownlinkCoefficients:
    """Coefficients of the Tx-time model, in microseconds."""

    v0: float = 20.0  # constant: control generation, buffers
    v1: float = 50.0  # per-antenna: precoding, IFFT, memory copy
    v2: float = 25.0  # per modulation order: mapper, scrambler
    v3: float = 30.0  # per bit/RE: turbo encoder + rate matcher


@dataclass(frozen=True)
class DownlinkTimingModel:
    """Evaluates the downlink encode-time model."""

    coefficients: DownlinkCoefficients = DownlinkCoefficients()

    def total_time(self, num_antennas: int, modulation_order: int, load: float) -> float:
        c = self.coefficients
        return c.v0 + c.v1 * num_antennas + c.v2 * modulation_order + c.v3 * load

    def total_time_for_grant(self, grant: UplinkGrant) -> float:
        """Encode time for a downlink transport of the same shape."""
        return self.total_time(
            grant.num_antennas, grant.modulation_order, grant.subcarrier_load
        )


def build_tx_work(
    model: DownlinkTimingModel, grant: UplinkGrant, noise_us: float = 0.0
) -> SubframeWork:
    """A serial single-task graph for one downlink encode job.

    Encoding is cheap enough that the paper's systems run it serially;
    it is deliberately *not* offered to RT-OPEX as a migration source.
    """
    duration = model.total_time_for_grant(grant) + noise_us
    task = TaskSpec(name="tx-encode", serial_us=duration)
    return SubframeWork(tasks=(task,), iterations=(), crc_pass=True)


def tx_budget_us(transport_latency_us: float) -> float:
    """Processing budget of a Tx job.

    Encoding starts one subframe before over-the-air transmission and
    the samples must still cross the transport to the radio, leaving
    ``1 ms - RTT/2``.
    """
    if transport_latency_us < 0:
        raise ValueError("transport_latency_us must be >= 0")
    return SUBFRAME_US - transport_latency_us
