"""Concrete task graphs: Fig. 5's task/subtask breakdown with durations.

A :class:`SubframeWork` is the schedulable representation of one
subframe: an ordered list of tasks (FFT -> demod -> decode) with a
precedence constraint between stages ("all of its subtasks must complete
execution before moving on to the next stage", sec. 2.2).  Parallelizable
tasks carry their subtasks explicitly; these are the units RT-OPEX
migrates.

Durations come from :class:`repro.timing.model.LinearTimingModel`; the
per-code-block iteration counts are drawn by the caller (usually via
:class:`repro.timing.iterations.IterationModel`) so that planning-time
estimates and actual execution can differ — the source of RT-OPEX's
recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.lte.subframe import UplinkGrant
from repro.timing.model import LinearTimingModel


@dataclass(frozen=True)
class SubtaskSpec:
    """An independently executable unit of a parallelizable task."""

    name: str
    duration_us: float
    #: Planning-time duration the scheduler assumes (WCET-style bound);
    #: actual execution uses ``duration_us``.
    planned_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0 or self.planned_us < 0:
            raise ValueError("subtask durations must be non-negative")


@dataclass(frozen=True)
class TaskSpec:
    """One stage of the processing chain.

    ``serial_us`` is the non-parallelizable prologue executed by the
    owning thread; ``subtasks`` may be empty for fully serial tasks.
    """

    name: str
    serial_us: float
    subtasks: tuple = ()
    parallelizable: bool = False

    @cached_property
    def serial_duration_us(self) -> float:
        """Time to execute the whole task on a single core.

        Cached: the schedulers read this at every stage boundary and
        the specs are immutable (``cached_property`` writes straight to
        ``__dict__``, which a frozen dataclass permits).
        """
        return self.serial_us + sum(s.duration_us for s in self.subtasks)

    @property
    def num_subtasks(self) -> int:
        return len(self.subtasks)


@dataclass(frozen=True)
class SubframeWork:
    """All processing for one subframe, in execution order."""

    tasks: tuple
    iterations: tuple  # per-code-block turbo iterations actually needed
    crc_pass: bool

    @cached_property
    def total_serial_us(self) -> float:
        """Single-core processing time — Eq. (1) without the error term."""
        return sum(t.serial_duration_us for t in self.tasks)

    @property
    def decode_task(self) -> TaskSpec:
        return self.tasks[-1]

    def task(self, name: str) -> TaskSpec:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")


def build_subframe_work(
    model: LinearTimingModel,
    grant: UplinkGrant,
    iterations: Sequence[int],
    max_iterations: int,
    crc_pass: bool = True,
    parallelize_fft: bool = True,
    parallelize_decode: bool = True,
) -> SubframeWork:
    """Build the FFT -> demod -> decode task graph for one subframe.

    ``iterations`` holds the drawn per-code-block iteration counts; the
    planned duration of each decode subtask uses ``max_iterations`` (the
    WCET bound the scheduler can rely on before decoding starts).
    """
    num_blocks = grant.code_blocks
    if len(iterations) != num_blocks:
        raise ValueError(
            f"need {num_blocks} iteration counts for this grant, got {len(iterations)}"
        )

    fft_sub = model.fft_subtask_time()
    fft_subtasks = tuple(
        SubtaskSpec(name=f"fft/ant{a}", duration_us=fft_sub, planned_us=fft_sub)
        for a in range(grant.num_antennas)
    )
    fft = TaskSpec(
        name="fft",
        serial_us=0.0,
        subtasks=fft_subtasks if parallelize_fft else (),
        parallelizable=parallelize_fft,
    )
    if not parallelize_fft:
        fft = TaskSpec(name="fft", serial_us=model.fft_task_time(grant.num_antennas))

    demod = TaskSpec(
        name="demod",
        serial_us=model.demod_task_time(grant.num_antennas, grant.modulation_order),
    )

    load = grant.subcarrier_load
    planned_cb = model.decode_subtask_time(load, float(max_iterations), num_blocks)
    decode_subtasks = tuple(
        SubtaskSpec(
            name=f"decode/cb{i}",
            duration_us=model.decode_subtask_time(load, float(l), num_blocks),
            planned_us=planned_cb,
        )
        for i, l in enumerate(iterations)
    )
    prologue = model.decode_prologue_time(grant.modulation_order)
    decode = TaskSpec(
        name="decode",
        serial_us=prologue,
        subtasks=decode_subtasks if parallelize_decode else (),
        parallelizable=parallelize_decode,
    )
    if not parallelize_decode:
        decode = TaskSpec(
            name="decode",
            serial_us=prologue + sum(s.duration_us for s in decode_subtasks),
        )

    return SubframeWork(
        tasks=(fft, demod, decode),
        iterations=tuple(int(l) for l in iterations),
        crc_pass=crc_pass,
    )
