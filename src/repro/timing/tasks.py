"""Concrete task graphs: Fig. 5's task/subtask breakdown with durations.

A :class:`SubframeWork` is the schedulable representation of one
subframe: an ordered list of tasks (FFT -> demod -> decode) with a
precedence constraint between stages ("all of its subtasks must complete
execution before moving on to the next stage", sec. 2.2).  Parallelizable
tasks carry their subtasks explicitly; these are the units RT-OPEX
migrates.

Durations come from :class:`repro.timing.model.LinearTimingModel`; the
per-code-block iteration counts are drawn by the caller (usually via
:class:`repro.timing.iterations.IterationModel`) so that planning-time
estimates and actual execution can differ — the source of RT-OPEX's
recovery path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Sequence, Tuple

import numpy as np

from repro.lte.subframe import UplinkGrant
from repro.timing.model import DurationTables, LinearTimingModel

#: ``SubtaskArrays.kind`` codes.
KIND_FFT = 0
KIND_DECODE = 1


@dataclass(frozen=True)
class SubtaskSpec:
    """An independently executable unit of a parallelizable task."""

    name: str
    duration_us: float
    #: Planning-time duration the scheduler assumes (WCET-style bound);
    #: actual execution uses ``duration_us``.
    planned_us: float

    def __post_init__(self) -> None:
        if self.duration_us < 0 or self.planned_us < 0:
            raise ValueError("subtask durations must be non-negative")


@dataclass(frozen=True)
class TaskSpec:
    """One stage of the processing chain.

    ``serial_us`` is the non-parallelizable prologue executed by the
    owning thread; ``subtasks`` may be empty for fully serial tasks.
    """

    name: str
    serial_us: float
    subtasks: tuple = ()
    parallelizable: bool = False

    @cached_property
    def serial_duration_us(self) -> float:
        """Time to execute the whole task on a single core.

        Cached: the schedulers read this at every stage boundary and
        the specs are immutable (``cached_property`` writes straight to
        ``__dict__``, which a frozen dataclass permits).
        """
        return self.serial_us + sum(s.duration_us for s in self.subtasks)

    @property
    def num_subtasks(self) -> int:
        return len(self.subtasks)


@dataclass(frozen=True)
class SubframeWork:
    """All processing for one subframe, in execution order."""

    tasks: tuple
    iterations: tuple  # per-code-block turbo iterations actually needed
    crc_pass: bool

    @cached_property
    def total_serial_us(self) -> float:
        """Single-core processing time — Eq. (1) without the error term."""
        return sum(t.serial_duration_us for t in self.tasks)

    @property
    def decode_task(self) -> TaskSpec:
        return self.tasks[-1]

    def task(self, name: str) -> TaskSpec:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"no task named {name!r}")


def build_subframe_work(
    model: LinearTimingModel,
    grant: UplinkGrant,
    iterations: Sequence[int],
    max_iterations: int,
    crc_pass: bool = True,
    parallelize_fft: bool = True,
    parallelize_decode: bool = True,
) -> SubframeWork:
    """Build the FFT -> demod -> decode task graph for one subframe.

    ``iterations`` holds the drawn per-code-block iteration counts; the
    planned duration of each decode subtask uses ``max_iterations`` (the
    WCET bound the scheduler can rely on before decoding starts).
    """
    num_blocks = grant.code_blocks
    if len(iterations) != num_blocks:
        raise ValueError(
            f"need {num_blocks} iteration counts for this grant, got {len(iterations)}"
        )

    fft_sub = model.fft_subtask_time()
    fft_subtasks = tuple(
        SubtaskSpec(name=f"fft/ant{a}", duration_us=fft_sub, planned_us=fft_sub)
        for a in range(grant.num_antennas)
    )
    fft = TaskSpec(
        name="fft",
        serial_us=0.0,
        subtasks=fft_subtasks if parallelize_fft else (),
        parallelizable=parallelize_fft,
    )
    if not parallelize_fft:
        fft = TaskSpec(name="fft", serial_us=model.fft_task_time(grant.num_antennas))

    demod = TaskSpec(
        name="demod",
        serial_us=model.demod_task_time(grant.num_antennas, grant.modulation_order),
    )

    load = grant.subcarrier_load
    planned_cb = model.decode_subtask_time(load, float(max_iterations), num_blocks)
    decode_subtasks = tuple(
        SubtaskSpec(
            name=f"decode/cb{i}",
            duration_us=model.decode_subtask_time(load, float(l), num_blocks),
            planned_us=planned_cb,
        )
        for i, l in enumerate(iterations)
    )
    prologue = model.decode_prologue_time(grant.modulation_order)
    decode = TaskSpec(
        name="decode",
        serial_us=prologue,
        subtasks=decode_subtasks if parallelize_decode else (),
        parallelizable=parallelize_decode,
    )
    if not parallelize_decode:
        decode = TaskSpec(
            name="decode",
            serial_us=prologue + sum(s.duration_us for s in decode_subtasks),
        )

    return SubframeWork(
        tasks=(fft, demod, decode),
        iterations=tuple(int(l) for l in iterations),
        crc_pass=crc_pass,
    )


# -- structure-of-arrays fast path ------------------------------------------


@dataclass(frozen=True)
class SubtaskArrays:
    """Structure-of-arrays representation of a workload's subtasks.

    One flat row per subtask across *all* subframes of a workload, laid
    out per subframe as ``[fft x num_antennas, decode x code_blocks]``
    (the execution order of :func:`build_subframe_work`).  Columns are
    numpy arrays built in one vectorized pass — no per-subtask Python
    objects exist until :meth:`materialize_works` lazily re-creates the
    legacy dataclasses for schedulers that still need them.

    ``offsets[i]:offsets[i + 1]`` is subframe ``i``'s subtask range;
    ``row`` maps each subtask back to its subframe;
    ``iterations``/``block_offsets`` carry the ragged per-code-block
    draw exactly as the decode rows consume it.
    """

    num_antennas: int
    #: per-subtask columns (flat)
    kind: np.ndarray  # uint8: KIND_FFT | KIND_DECODE
    cb_index: np.ndarray  # antenna index for fft rows, code-block index for decode
    duration_us: np.ndarray
    planned_us: np.ndarray
    bs_id: np.ndarray
    subframe_index: np.ndarray
    row: np.ndarray  # owning subframe (index into the per-subframe columns)
    #: per-subframe columns
    offsets: np.ndarray  # (n + 1,) subtask ranges
    mcs: np.ndarray
    iterations: np.ndarray  # ragged per-code-block draws, flattened
    block_offsets: np.ndarray  # (n + 1,) ranges into ``iterations``

    @property
    def num_subframes(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_subtasks(self) -> int:
        return len(self.kind)

    def materialize_works(
        self, materializer: "WorkMaterializer", crc_pass: Sequence[bool]
    ) -> List[SubframeWork]:
        """Lazily materialize the legacy :class:`SubframeWork` objects."""
        mcs = self.mcs.tolist()
        iters = self.iterations.tolist()
        bounds = self.block_offsets.tolist()
        return [
            materializer.work_for(
                mcs[i], tuple(iters[bounds[i]:bounds[i + 1]]), bool(crc_pass[i])
            )
            for i in range(self.num_subframes)
        ]


def build_subtask_arrays(
    tables: DurationTables,
    mcs: np.ndarray,
    bs_ids: np.ndarray,
    subframe_indices: np.ndarray,
    iterations: np.ndarray,
    block_offsets: np.ndarray,
) -> SubtaskArrays:
    """One vectorized pass from (MCS trace, iteration draws) to the SoA.

    ``iterations`` is the flattened per-code-block draw;
    ``block_offsets`` its per-subframe ranges (``block_offsets[i + 1] -
    block_offsets[i] == tables.code_blocks[mcs[i]]``).  Durations are
    gathered from the oracle tables, so every float equals the scalar
    value :func:`build_subframe_work` would compute.
    """
    mcs = np.asarray(mcs, dtype=np.int64)
    bs_ids = np.asarray(bs_ids, dtype=np.int64)
    subframe_indices = np.asarray(subframe_indices, dtype=np.int64)
    iterations = np.asarray(iterations, dtype=np.int64)
    block_offsets = np.asarray(block_offsets, dtype=np.int64)
    n = mcs.size
    num_antennas = tables.num_antennas
    blocks = np.diff(block_offsets)
    counts = num_antennas + blocks
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    row = np.repeat(np.arange(n, dtype=np.int64), counts)
    pos = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    decode = pos >= num_antennas
    kind = decode.astype(np.uint8)  # KIND_FFT = 0, KIND_DECODE = 1
    cb_index = np.where(decode, pos - num_antennas, pos)
    duration_us = np.full(total, tables.fft_subtask_us, dtype=np.float64)
    planned_us = np.full(total, tables.fft_subtask_us, dtype=np.float64)
    decode_mcs = mcs[row[decode]]
    duration_us[decode] = tables.decode_cb_us[decode_mcs, iterations - 1]
    planned_us[decode] = tables.planned_cb_us[decode_mcs]
    return SubtaskArrays(
        num_antennas=num_antennas,
        kind=kind,
        cb_index=cb_index,
        duration_us=duration_us,
        planned_us=planned_us,
        bs_id=bs_ids[row],
        subframe_index=subframe_indices[row],
        row=row,
        offsets=offsets,
        mcs=mcs,
        iterations=iterations,
        block_offsets=block_offsets,
    )


class WorkMaterializer:
    """Materializes byte-identical :class:`SubframeWork` objects from SoA rows.

    Frozen specs are value objects, so equal pieces are *interned*: one
    ``fft`` task per materializer, one ``demod`` task per MCS, one
    decode :class:`SubtaskSpec` per (MCS, block index, L) and one
    :class:`SubframeWork` per (MCS, iteration vector, CRC) — the whole
    population the evaluation can produce is a few hundred distinct
    objects.  Every float comes from the oracle tables, which computed
    it with the exact scalar formulas, so ``work_for`` output compares
    equal, field for field, with :func:`build_subframe_work`.
    """

    def __init__(self, tables: DurationTables):
        self.tables = tables
        fft_us = float(tables.fft_subtask_us)
        self._fft_task = TaskSpec(
            name="fft",
            serial_us=0.0,
            subtasks=tuple(
                SubtaskSpec(name=f"fft/ant{a}", duration_us=fft_us, planned_us=fft_us)
                for a in range(tables.num_antennas)
            ),
            parallelizable=True,
        )
        self._demod_us = tables.demod_us.tolist()
        self._prologue_us = tables.prologue_us.tolist()
        self._planned_cb_us = tables.planned_cb_us.tolist()
        self._decode_cb_us = tables.decode_cb_us.tolist()
        self._demod_tasks: dict = {}
        self._decode_subtasks: dict = {}
        self._works: dict = {}

    def work_for(
        self, mcs: int, iterations: Tuple[int, ...], crc_pass: bool
    ) -> SubframeWork:
        """The (interned) task graph for one subframe."""
        key = (mcs, iterations, crc_pass)
        work = self._works.get(key)
        if work is None:
            work = self._build(mcs, iterations, crc_pass)
            self._works[key] = work
        return work

    def _build(
        self, mcs: int, iterations: Tuple[int, ...], crc_pass: bool
    ) -> SubframeWork:
        demod = self._demod_tasks.get(mcs)
        if demod is None:
            demod = TaskSpec(name="demod", serial_us=self._demod_us[mcs])
            self._demod_tasks[mcs] = demod
        subtasks = self._decode_subtasks
        planned_us = self._planned_cb_us[mcs]
        durations = self._decode_cb_us[mcs]
        decode_subtasks = []
        for cb, l in enumerate(iterations):
            sub_key = (mcs, cb, l)
            spec = subtasks.get(sub_key)
            if spec is None:
                spec = SubtaskSpec(
                    name=f"decode/cb{cb}",
                    duration_us=durations[l - 1],
                    planned_us=planned_us,
                )
                subtasks[sub_key] = spec
            decode_subtasks.append(spec)
        decode = TaskSpec(
            name="decode",
            serial_us=self._prologue_us[mcs],
            subtasks=tuple(decode_subtasks),
            parallelizable=True,
        )
        return SubframeWork(
            tasks=(self._fft_task, demod, decode),
            iterations=iterations,
            crc_pass=crc_pass,
        )
