"""Turbo iteration-count model: the stochastic ``L`` of Eq. (1).

The paper observes that ``L`` "is in general non-deterministic (even for
fixed SNR) and may take any value in [1, Lm]" and that its distribution
shifts with SNR and MCS (Fig. 3(a)/(b)).  Two published anchors calibrate
this model:

* decreasing SNR from 20 dB to 10 dB increases processing time by more
  than 50% between MCS 13 and 25 (Fig. 3(b)) — i.e. mid/high MCS move
  from ~2 to ~3.5 iterations over that SNR range;
* at the evaluation point (30 dB, Lm = 4) subframes with MCS > 20
  frequently need 3–4 iterations — sec. 4.3 attributes the partitioned
  scheduler's misses at Tmax < 1600 us to exactly these subframes.

The model separates *decode effort* (how many iterations the max-log-MAP
decoder runs) from *decode success* (whether the CRC finally passes):
effort saturates near Lm as the SNR margin shrinks, while success only
requires the margin to be positive.  This mirrors the behaviour of the
paper's OAI decoder, which runs up to Lm iterations with CRC-gated early
stopping.  Parameters are exposed so ablations can explore other decoder
profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_MAX_TURBO_ITERATIONS


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


@dataclass(frozen=True)
class IterationModel:
    """Stochastic turbo iteration count as a function of (MCS, SNR).

    Parameters
    ----------
    max_iterations:
        Lm — the decoder's iteration cap (paper: 4).
    effort_offset, effort_slope:
        SNR (dB) at which MCS ``m`` decodes quickly:
        ``effort_threshold = effort_offset + effort_slope * m``.
    effort_scale, effort_midpoint:
        Shape of the sigmoid mapping SNR margin to mean iterations.
    success_offset, success_slope:
        Decode-success SNR threshold per MCS (CRC pass).
    spike_probability:
        Chance of one extra iteration regardless of margin — the paper's
        fixed-SNR non-determinism.
    """

    max_iterations: int = DEFAULT_MAX_TURBO_ITERATIONS
    effort_offset: float = -10.0
    effort_slope: float = 1.33
    #: Extra per-step threshold increase above MCS 24: the highest code
    #: rates lose coding gain much faster than the linear trend, which is
    #: what makes MCS 25-27 iteration-hungry even at 30 dB (sec. 4.3).
    effort_steepening: float = 1.2
    effort_steepening_start: int = 24
    effort_scale: float = 3.0
    effort_midpoint: float = 4.0
    success_offset: float = -7.0
    success_slope: float = 0.95
    spike_probability: float = 0.03
    jitter_scale: float = 0.45

    def effort_threshold(self, mcs: int) -> float:
        """SNR (dB) above which MCS ``mcs`` decodes in ~1 iteration."""
        base = self.effort_offset + self.effort_slope * mcs
        extra = max(0, mcs - self.effort_steepening_start) * self.effort_steepening
        return base + extra

    def effort_margin(self, mcs: int, snr_db: float) -> float:
        """SNR headroom over the fast-decode threshold (dB)."""
        return snr_db - self.effort_threshold(mcs)

    def mean_iterations(self, mcs: int, snr_db: float) -> float:
        """Expected L: 1 at large margins, saturating to Lm as it shrinks."""
        margin = self.effort_margin(mcs, snr_db)
        frac = _sigmoid(-(margin - self.effort_midpoint) / self.effort_scale)
        return 1.0 + (self.max_iterations - 1) * frac

    def success_probability(self, mcs: int, snr_db: float) -> float:
        """Probability the transport block finally passes CRC."""
        margin = snr_db - (self.success_offset + self.success_slope * mcs)
        return _sigmoid(margin / 0.8)

    def draw(
        self,
        mcs: int,
        snr_db: float,
        rng: np.random.Generator,
        num_blocks: int = 1,
    ) -> List[int]:
        """Draw per-code-block iteration counts.

        Each code block decodes independently (the basis of the paper's
        decode parallelism), so each gets its own draw around the mean.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        mean = self.mean_iterations(mcs, snr_db)
        draws: List[int] = []
        for _ in range(num_blocks):
            jitter = rng.logistic(loc=0.0, scale=self.jitter_scale)
            value = mean + jitter
            if rng.random() < self.spike_probability:
                value += 1.0
            value = int(round(value))
            draws.append(max(1, min(self.max_iterations, value)))
        return draws

    def draw_array(
        self,
        mcs: np.ndarray,
        snr_db: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized draw: one iteration count per (mcs, snr) pair.

        Used by the Table 1 regression, which needs millions of samples;
        semantically identical to :meth:`draw` with ``num_blocks=1``.
        """
        mcs = np.asarray(mcs, dtype=np.float64)
        snr_db = np.asarray(snr_db, dtype=np.float64)
        base = self.effort_offset + self.effort_slope * mcs
        extra = np.maximum(0.0, mcs - self.effort_steepening_start) * self.effort_steepening
        margin = snr_db - (base + extra)
        frac = 1.0 / (
            1.0 + np.exp(np.clip((margin - self.effort_midpoint) / self.effort_scale, -60, 60))
        )
        mean = 1.0 + (self.max_iterations - 1) * frac
        jitter = rng.logistic(loc=0.0, scale=self.jitter_scale, size=mean.shape)
        value = mean + jitter
        value += (rng.random(mean.shape) < self.spike_probability).astype(np.float64)
        return np.clip(np.round(value), 1, self.max_iterations).astype(np.int64)

    def draw_subframe(
        self,
        mcs: int,
        snr_db: float,
        rng: np.random.Generator,
        num_blocks: int = 1,
    ) -> "IterationDraw":
        """Draw iterations plus the ACK/NACK outcome for one subframe."""
        iterations = self.draw(mcs, snr_db, rng, num_blocks)
        success = rng.random() < self.success_probability(mcs, snr_db)
        if not success:
            # A failing block burns the full iteration budget.
            worst = rng.integers(0, num_blocks)
            iterations[worst] = self.max_iterations
        return IterationDraw(iterations=iterations, crc_pass=success)

    def draw_trace(
        self,
        mcs: np.ndarray,
        snr_db: float,
        rng: np.random.Generator,
        block_offsets: np.ndarray,
    ) -> "TraceDraw":
        """Stream-exact batch of :meth:`draw_subframe` over an MCS trace.

        Consumes ``rng``'s bitstream exactly as the per-subframe scalar
        calls would — each subframe's ``2 * B + 1`` uniforms are drawn
        as one array (numpy's scalar ``logistic``/``random`` consume one
        double each off the same stream, and the logistic transform is
        ``scale * log(u / (1 - u))``), and the CRC-failure path draws the
        same bounded integer.  The per-MCS mean/success probabilities are
        computed once instead of per subframe, and ``math.log`` keeps the
        libm scalar semantics (``np.log`` may vectorize differently), so
        the draws — and the generator state afterwards — are
        bit-identical to the legacy loop.
        """
        mcs_list = np.asarray(mcs, dtype=np.int64).tolist()
        offsets = np.asarray(block_offsets, dtype=np.int64).tolist()
        means: dict = {}
        success_p: dict = {}
        scale = self.jitter_scale
        p_spike = self.spike_probability
        cap = self.max_iterations
        log = math.log
        iterations: List[int] = []
        crc: List[bool] = []
        for i, m in enumerate(mcs_list):
            mean = means.get(m)
            if mean is None:
                mean = self.mean_iterations(m, snr_db)
                means[m] = mean
                success_p[m] = self.success_probability(m, snr_db)
            num_blocks = offsets[i + 1] - offsets[i]
            u = rng.random(2 * num_blocks + 1).tolist()
            draws: List[int] = []
            for k in range(num_blocks):
                uu = u[2 * k]
                value = mean + scale * log(uu / (1.0 - uu))
                if u[2 * k + 1] < p_spike:
                    value += 1.0
                value = int(round(value))
                draws.append(max(1, min(cap, value)))
            success = u[2 * num_blocks] < success_p[m]
            if not success:
                worst = rng.integers(0, num_blocks)
                draws[worst] = cap
            iterations.extend(draws)
            crc.append(success)
        return TraceDraw(
            iterations=np.asarray(iterations, dtype=np.int64),
            crc_pass=np.asarray(crc, dtype=bool),
        )


@dataclass(frozen=True)
class IterationDraw:
    """Per-code-block iteration counts and the final CRC outcome."""

    iterations: List[int]
    crc_pass: bool

    @property
    def mean(self) -> float:
        return sum(self.iterations) / len(self.iterations)

    @property
    def total(self) -> int:
        return sum(self.iterations)


@dataclass(frozen=True)
class TraceDraw:
    """Batched :class:`IterationDraw`: flat per-code-block iterations.

    ``iterations`` concatenates every subframe's per-block draws in
    trace order (the caller's ``block_offsets`` delimit subframes);
    ``crc_pass`` holds one ACK/NACK outcome per subframe.
    """

    iterations: np.ndarray
    crc_pass: np.ndarray


def empirical_iteration_model(
    samples: Optional[np.ndarray] = None,
    max_iterations: int = DEFAULT_MAX_TURBO_ITERATIONS,
) -> IterationModel:
    """Convenience constructor used by examples; returns the default model.

    Hook point for calibrating the model against iteration counts logged
    from the functional chain (:mod:`repro.phy.chain`); with no samples
    the published-figure calibration above is returned.
    """
    del samples  # calibration from real chain logs is future work
    return IterationModel(max_iterations=max_iterations)
