"""LTE numerology and platform constants used throughout the reproduction.

All times in this package are expressed in **microseconds** unless a name
says otherwise; LTE's natural unit (the subframe) is 1000 us, and the paper
reports every latency in ms or us.  Keeping a single unit avoids the classic
ms/us confusion when mixing transport and processing latencies.

The platform coefficients at the bottom are the paper's Table 1 estimates,
measured on an Intel Xeon E5-2660 (SandyBridge) GPP; they are the duration
oracle for the discrete-event simulation (see ``repro.timing.model``).
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# LTE numerology (3GPP TS 36.211, normal cyclic prefix)
# --------------------------------------------------------------------------

#: Duration of one subframe -- the basic unit of processing -- in us.
SUBFRAME_US = 1000.0

#: OFDM symbols per subframe with normal cyclic prefix (2 slots x 7 symbols).
SYMBOLS_PER_SUBFRAME = 14

#: Subcarriers per physical resource block (PRB).
SUBCARRIERS_PER_PRB = 12

#: Resource elements carried by one PRB over a full subframe.
RES_PER_PRB = SUBCARRIERS_PER_PRB * SYMBOLS_PER_SUBFRAME  # 168

#: Bandwidth (MHz) -> number of PRBs (TS 36.104 Table 5.6-1).
PRBS_PER_BANDWIDTH = {1.4: 6, 3.0: 15, 5.0: 25, 10.0: 50, 15.0: 75, 20.0: 100}

#: Bandwidth (MHz) -> complex sampling rate in Msps (FFT size x 15 kHz).
SAMPLE_RATE_MSPS = {1.4: 1.92, 3.0: 3.84, 5.0: 7.68, 10.0: 15.36, 15.0: 23.04, 20.0: 30.72}

#: Bandwidth (MHz) -> FFT size.
FFT_SIZE = {1.4: 128, 3.0: 256, 5.0: 512, 10.0: 1024, 15.0: 1536, 20.0: 2048}

#: Bytes per complex IQ sample on the fronthaul (16-bit I + 16-bit Q).
IQ_SAMPLE_BYTES = 4

#: Maximum turbo code block size in bits (TS 36.212 sec. 5.1.2).
MAX_CODE_BLOCK_BITS = 6144

#: CRC length appended to the transport block and to each code block.
TB_CRC_BITS = 24
CB_CRC_BITS = 24

# --------------------------------------------------------------------------
# End-to-end timing (paper sec. 2.4)
# --------------------------------------------------------------------------

#: HARQ round trip: uplink subframe N is acknowledged in downlink N+4 (ms->us).
HARQ_DEADLINE_US = 3000.0

#: Tx processing of the response starts 1 ms before over-the-air transmission,
#: so only 2 ms is effectively available for Rx processing plus transport.
RX_BUDGET_US = 2000.0

#: Default maximum number of turbo decoder iterations (paper sec. 2.1).
DEFAULT_MAX_TURBO_ITERATIONS = 4

# --------------------------------------------------------------------------
# Table 1: linear processing-time model coefficients (us), GPP platform
# --------------------------------------------------------------------------

#: Constant term w0 of Eq. (1).
W0_US = 31.4
#: Per-antenna cost w1 of Eq. (1).
W1_US = 169.1
#: Per-modulation-order cost w2 of Eq. (1).
W2_US = 49.7
#: Per (subcarrier-load x iteration) cost w3 of Eq. (1).
W3_US = 93.0
#: Goodness of fit the paper reports for the GPP platform.
TABLE1_R2 = 0.992

# --------------------------------------------------------------------------
# Evaluation defaults (paper sec. 4.2)
# --------------------------------------------------------------------------

#: Number of basestations multiplexed on the compute node.
DEFAULT_NUM_BASESTATIONS = 4
#: Antennas per basestation.
DEFAULT_NUM_ANTENNAS = 2
#: Evaluation bandwidth in MHz (50 PRBs).
DEFAULT_BANDWIDTH_MHZ = 10.0
#: Cores assigned per basestation under partitioned scheduling (ceil(Tmax)).
DEFAULT_CORES_PER_BS = 2
#: Subframes logged per basestation in the paper's evaluation.
DEFAULT_TRACE_SUBFRAMES = 30000
#: Fixed AWGN SNR used in the evaluation (dB).
DEFAULT_EVAL_SNR_DB = 30.0
#: Migration overhead delta measured in the paper (us, sec. 4.4).
DEFAULT_MIGRATION_OVERHEAD_US = 20.0
