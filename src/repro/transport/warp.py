"""WARP testbed transport model (paper Fig. 7).

The paper's testbed connects 16 WARPv3 radios over 1 GbE ports into a
1/10 GbE switch that aggregates into the GPP's 10 GbE port, using the
CWARP transport library for reads/writes.  The one-way latency of a
subframe is dominated by two serializations:

* each radio pushing its subframe's IQ samples through its 1 GbE port
  (these happen in parallel across radios), and
* the switch pushing the *aggregate* of all radios through the single
  10 GbE GPP port (serialized).

This model reproduces the published anchor points: a maximum one-way
latency of ~620 us for 5 MHz x 16 radios, ~0.9 ms for 10 MHz x 8
antennas, and above 1 ms for 10 MHz x 16 — hence "at most 8 antennas at
10 MHz can be supported" without queueing (sec. 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SUBFRAME_US
from repro.lte.grid import GridConfig
from repro.transport.link import serialization_delay_us


@dataclass(frozen=True)
class WarpTransportModel:
    """Aggregate radio-to-GPP transport latency for the WARP testbed."""

    radio_rate_gbps: float = 1.0
    aggregate_rate_gbps: float = 10.0
    read_overhead_us: float = 25.0  # CWARP read call + driver overhead
    per_radio_overhead_us: float = 2.0  # per-stream socket/copy cost
    jitter_us: float = 15.0

    def one_way_latency_us(self, grid: GridConfig, num_antennas: int) -> float:
        """Deterministic component of the one-way transport latency."""
        if num_antennas < 1:
            raise ValueError("num_antennas must be >= 1")
        per_radio_bytes = grid.subframe_bytes(1)
        radio_leg = serialization_delay_us(per_radio_bytes, self.radio_rate_gbps)
        aggregate_leg = serialization_delay_us(
            per_radio_bytes * num_antennas, self.aggregate_rate_gbps
        )
        overhead = self.read_overhead_us + self.per_radio_overhead_us * num_antennas
        return radio_leg + aggregate_leg + overhead

    def draw(self, grid: GridConfig, num_antennas: int, rng: np.random.Generator) -> float:
        """Sample a one-way latency including switch/driver jitter."""
        base = self.one_way_latency_us(grid, num_antennas)
        return base + float(rng.uniform(0.0, self.jitter_us))

    def max_supported_antennas(self, grid: GridConfig) -> int:
        """Largest antenna count with latency under one subframe period.

        If transport exceeds 1 ms, arrivals outpace delivery and queueing
        delay grows without bound (the paper's 8-antenna limit at 10 MHz).
        """
        count = 0
        for antennas in range(1, 129):
            if self.one_way_latency_us(grid, antennas) >= SUBFRAME_US:
                break
            count = antennas
        return count
