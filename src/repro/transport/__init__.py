"""Transport models: fronthaul fiber, cloud network, and WARP testbed.

A subframe's end-to-end budget (Eq. (2)) is split between processing and
transport: ``Trxproc + Tfronthaul + Tcloud <= 2 ms``, with the combined
transport latency written RTT/2.  This subpackage models each leg:

* :mod:`repro.transport.link` — serialization/propagation primitives and
  CPRI line-rate calculations;
* :mod:`repro.transport.fronthaul` — the fixed-delay, negligible-jitter
  optical fronthaul (sec. 2.3);
* :mod:`repro.transport.cloud` — the long-tailed cloud-network latency
  measured in Fig. 6;
* :mod:`repro.transport.warp` — the WARPv3-radio-to-GPP aggregate
  transport of the paper's testbed (Fig. 7).
"""

from repro.transport.cloud import CloudNetworkModel
from repro.transport.fronthaul import FronthaulModel
from repro.transport.link import (
    cpri_line_rate_gbps,
    propagation_delay_us,
    serialization_delay_us,
)
from repro.transport.warp import WarpTransportModel

__all__ = [
    "CloudNetworkModel",
    "FronthaulModel",
    "cpri_line_rate_gbps",
    "propagation_delay_us",
    "serialization_delay_us",
    "WarpTransportModel",
]
