"""Cloud-network latency model (paper Fig. 6).

The cloud leg — optical switch to GPP through datacenter Ethernet — "is
less deterministic as it involves a mix of hardware, software and
virtualized interfaces".  The paper measured one-way latency at 1000
packets/s over 1 GbE and 10 GbE and found:

* a mean around 0.15 ms for both rates;
* a long tail: about 1 in 1e4 packets above 0.25 ms for both rates.

We model the body as a lognormal around the mean (10 GbE slightly
tighter) plus a rare uniform tail event, and expose the empirical CDF
helpers the Fig. 6 experiment prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.link import serialization_delay_us


@dataclass(frozen=True)
class CloudNetworkModel:
    """Stochastic one-way cloud latency for a given Ethernet rate."""

    rate_gbps: float = 10.0
    mean_us: float = 150.0
    tail_probability: float = 1.0e-4
    tail_low_us: float = 250.0
    tail_high_us: float = 500.0

    def _sigma(self) -> float:
        """Lognormal spread: 1 GbE shows more software-queueing variance.

        Calibrated so the body stays below 250 us and the explicit tail
        term dominates P(>250 us) ~ 1e-4, matching Fig. 6.
        """
        return 0.10 if self.rate_gbps >= 10.0 else 0.13

    def draw(self, rng: np.random.Generator, size: int = 1, payload_bytes: int = 0) -> np.ndarray:
        """Sample one-way latencies in microseconds."""
        sigma = self._sigma()
        mu = np.log(self.mean_us) - 0.5 * sigma**2
        body = rng.lognormal(mu, sigma, size=size)
        tails = rng.random(size) < self.tail_probability
        body[tails] = rng.uniform(self.tail_low_us, self.tail_high_us, tails.sum())
        if payload_bytes:
            body += serialization_delay_us(payload_bytes, self.rate_gbps)
        return body

    def draw_one(self, rng: np.random.Generator, payload_bytes: int = 0) -> float:
        return float(self.draw(rng, 1, payload_bytes)[0])

    def measure(self, rng: np.random.Generator, packets: int = 100000) -> np.ndarray:
        """Emulate the paper's measurement run: ``packets`` samples.

        The paper sends 1000 packets/s (LTE's subframe rate) between an
        external host and the cloud resource and reports the latency
        distribution.
        """
        return self.draw(rng, packets)
