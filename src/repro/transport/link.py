"""Link-level primitives: serialization, propagation, CPRI line rates.

Keeps the physics in one place so the fronthaul, cloud, and WARP models
all agree on units (microseconds, bytes, Gbps).
"""

from __future__ import annotations

from repro.constants import IQ_SAMPLE_BYTES, SAMPLE_RATE_MSPS

#: Speed of light in optical fiber: ~5 us per kilometre (paper sec. 2.3).
FIBER_DELAY_US_PER_KM = 5.0

#: Ethernet framing overhead per packet: preamble + header + FCS + IPG.
ETHERNET_OVERHEAD_BYTES = 38
#: Conventional maximum Ethernet payload.
DEFAULT_MTU_BYTES = 1500


def serialization_delay_us(
    payload_bytes: int, rate_gbps: float, mtu_bytes: int = DEFAULT_MTU_BYTES
) -> float:
    """Time to push ``payload_bytes`` onto a link of ``rate_gbps``.

    Includes per-packet Ethernet overhead for the number of MTU-sized
    packets the payload fragments into.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if rate_gbps <= 0:
        raise ValueError("rate_gbps must be positive")
    if payload_bytes == 0:
        return 0.0
    packets = -(-payload_bytes // mtu_bytes)
    total_bytes = payload_bytes + packets * ETHERNET_OVERHEAD_BYTES
    bits = total_bytes * 8
    return bits / (rate_gbps * 1000.0)  # Gbps == kilobits/us


def propagation_delay_us(distance_km: float) -> float:
    """One-way fiber propagation delay."""
    if distance_km < 0:
        raise ValueError("distance_km must be >= 0")
    return distance_km * FIBER_DELAY_US_PER_KM


def cpri_line_rate_gbps(
    bandwidth_mhz: float,
    num_antennas: int,
    bits_per_sample: int = 2 * 8 * IQ_SAMPLE_BYTES // 2,
    overhead_factor: float = 16.0 / 15.0,
) -> float:
    """Required CPRI-style fronthaul rate for raw IQ transport.

    ``rate = sample_rate * bits_per_sample * antennas * overhead`` with
    the CPRI 16/15 control-word overhead.  For 10 MHz x 2 antennas at
    16-bit I/Q this is ~1.05 Gbps — the reason C-RAN fronthaul needs
    fiber, motivating the paper's Fig. 7 measurements.
    """
    if bandwidth_mhz not in SAMPLE_RATE_MSPS:
        raise ValueError(f"unsupported bandwidth {bandwidth_mhz} MHz")
    if num_antennas < 1:
        raise ValueError("num_antennas must be >= 1")
    msps = SAMPLE_RATE_MSPS[bandwidth_mhz]
    return msps * bits_per_sample * num_antennas * overhead_factor / 1000.0
