"""Fronthaul model: fixed fiber delay, negligible jitter (paper sec. 2.3).

The fronthaul connects remote radios to the optical switch in the cloud
over up to 20-40 km of fiber, giving a one-way propagation delay of
0.1-0.2 ms plus (de)packetization.  The paper treats this leg as a fixed
delay with almost no jitter, which is what this model provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.link import propagation_delay_us, serialization_delay_us


@dataclass(frozen=True)
class FronthaulModel:
    """Deterministic fronthaul latency for one subframe.

    Parameters
    ----------
    distance_km:
        Fiber length between radio and cloud (paper: up to 20-40 km).
    switch_overhead_us:
        Optical switching plus (de)packetization overhead.
    rate_gbps:
        Line rate used to serialize the IQ payload.
    """

    distance_km: float = 20.0
    switch_overhead_us: float = 10.0
    rate_gbps: float = 10.0

    def one_way_latency_us(self, payload_bytes: int = 0) -> float:
        """Propagation + switching + (optional) serialization delay."""
        latency = propagation_delay_us(self.distance_km) + self.switch_overhead_us
        if payload_bytes:
            latency += serialization_delay_us(payload_bytes, self.rate_gbps)
        return latency

    def draw(self, rng: np.random.Generator, payload_bytes: int = 0) -> float:
        """Sample interface for symmetry with the cloud model.

        Jitter is negligible on the optical path; a sub-microsecond
        uniform term keeps downstream distributions non-degenerate.
        """
        return self.one_way_latency_us(payload_bytes) + float(rng.uniform(0.0, 0.5))
