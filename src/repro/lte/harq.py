"""HARQ retransmission accounting on top of scheduler results.

The deadline the schedulers fight for exists because of HARQ: the
ACK/NACK for uplink subframe N must ride downlink subframe N+4 (paper
sec. 2.4).  This module closes the loop the paper leaves implicit — it
converts per-subframe scheduler outcomes into user-visible reliability
and goodput:

* a subframe whose processing **missed the deadline** cannot be
  acknowledged; LTE's synchronous UL HARQ treats the missing ACK as
  NACK and the UE retransmits 8 ms later;
* a subframe that **decoded in time but failed CRC** is NACKed and
  retransmitted; chase combining raises the effective SNR by roughly
  3 dB per attempt, so retries usually succeed;
* after ``max_transmissions`` the transport block is lost (residual
  BLER).

This lets the extension experiment (``ext-harq``) translate "miss rate
1e-2 vs 1e-3" into goodput and residual-loss numbers an operator cares
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.lte.mcs import transport_block_size
from repro.sched.base import SchedulerResult
from repro.timing.iterations import IterationModel

#: LTE uplink synchronous HARQ round-trip in subframes.
HARQ_RTT_SUBFRAMES = 8
#: Per-retransmission combining gain (chase combining), dB.
COMBINING_GAIN_DB = 3.0


@dataclass(frozen=True)
class HarqOutcome:
    """Aggregate HARQ statistics for one scheduler run."""

    transport_blocks: int
    first_attempt_acks: int
    retransmissions: int
    residual_losses: int
    delivered_bits: int
    offered_bits: int
    mean_delivery_delay_ms: float

    @property
    def residual_bler(self) -> float:
        if self.transport_blocks == 0:
            return 0.0
        return self.residual_losses / self.transport_blocks

    @property
    def goodput_fraction(self) -> float:
        if self.offered_bits == 0:
            return 0.0
        return self.delivered_bits / self.offered_bits

    @property
    def retransmission_rate(self) -> float:
        if self.transport_blocks == 0:
            return 0.0
        return self.retransmissions / self.transport_blocks


def simulate_harq(
    result: SchedulerResult,
    snr_db: float = 30.0,
    max_transmissions: int = 4,
    iteration_model: Optional[IterationModel] = None,
    rng: Optional[np.random.Generator] = None,
    miss_rate_by_mcs: Optional[Dict[int, float]] = None,
) -> HarqOutcome:
    """Replay a scheduler run through the HARQ state machine.

    Retransmissions re-enter the same node, so each retry faces the same
    deadline-miss probability its MCS class experienced in the original
    run (``miss_rate_by_mcs``; computed from ``result`` by default) but
    a decode-success probability boosted by the combining gain.
    """
    if max_transmissions < 1:
        raise ValueError("max_transmissions must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    iters = iteration_model if iteration_model is not None else IterationModel()
    miss_by_mcs = (
        miss_rate_by_mcs if miss_rate_by_mcs is not None else result.miss_rate_by_mcs()
    )

    blocks = 0
    first_acks = 0
    retransmissions = 0
    losses = 0
    delivered = 0
    offered = 0
    delays = []
    for record in result.records:
        blocks += 1
        tbs = transport_block_size(record.mcs)
        offered += tbs
        attempt = 1
        acked = record.acked
        if acked:
            first_acks += 1
        while not acked and attempt < max_transmissions:
            attempt += 1
            retransmissions += 1
            # Retry: may again miss the processing deadline...
            if rng.random() < miss_by_mcs.get(record.mcs, 0.0):
                continue
            # ...otherwise decode with the combining-boosted SNR.
            boosted = snr_db + COMBINING_GAIN_DB * (attempt - 1)
            if rng.random() < iters.success_probability(record.mcs, boosted):
                acked = True
        if acked:
            delivered += tbs
            delays.append(1.0 + (attempt - 1) * HARQ_RTT_SUBFRAMES)
        else:
            losses += 1
    mean_delay = float(np.mean(delays)) if delays else float("nan")
    return HarqOutcome(
        transport_blocks=blocks,
        first_attempt_acks=first_acks,
        retransmissions=retransmissions,
        residual_losses=losses,
        delivered_bits=delivered,
        offered_bits=offered,
        mean_delivery_delay_ms=mean_delay,
    )
