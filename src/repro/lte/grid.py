"""Resource-grid geometry for an LTE uplink subframe.

The paper's workload model reduces a subframe to a handful of geometric
quantities: the number of PRBs, the number of resource elements (REs)
available for data, and the IQ sample count that must cross the fronthaul.
``GridConfig`` derives all of them from the channel bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import (
    FFT_SIZE,
    IQ_SAMPLE_BYTES,
    PRBS_PER_BANDWIDTH,
    RES_PER_PRB,
    SAMPLE_RATE_MSPS,
    SUBFRAME_US,
    SYMBOLS_PER_SUBFRAME,
)


@dataclass(frozen=True)
class GridConfig:
    """Geometry of an LTE uplink resource grid for one bandwidth.

    Parameters
    ----------
    bandwidth_mhz:
        Channel bandwidth; must be one of the standard LTE bandwidths
        (1.4, 3, 5, 10, 15, 20 MHz).

    Notes
    -----
    The paper evaluates a 10 MHz system: 50 PRBs, 8400 REs per subframe
    and 15360 complex samples per subframe per antenna (15.36 Msps).
    """

    bandwidth_mhz: float = 10.0
    num_prbs: int = field(init=False)
    fft_size: int = field(init=False)
    sample_rate_msps: float = field(init=False)

    def __post_init__(self) -> None:
        if self.bandwidth_mhz not in PRBS_PER_BANDWIDTH:
            valid = sorted(PRBS_PER_BANDWIDTH)
            raise ValueError(
                f"unsupported LTE bandwidth {self.bandwidth_mhz} MHz; expected one of {valid}"
            )
        object.__setattr__(self, "num_prbs", PRBS_PER_BANDWIDTH[self.bandwidth_mhz])
        object.__setattr__(self, "fft_size", FFT_SIZE[self.bandwidth_mhz])
        object.__setattr__(self, "sample_rate_msps", SAMPLE_RATE_MSPS[self.bandwidth_mhz])

    @property
    def num_subcarriers(self) -> int:
        """Occupied data subcarriers (12 per PRB)."""
        return self.num_prbs * 12

    @property
    def resource_elements(self) -> int:
        """Total REs in one subframe across all data symbols.

        The paper quotes 8400 REs for 10 MHz (50 PRBs x 12 subcarriers x
        14 symbols); consistent with treating all symbols as data-bearing
        for the purpose of the subcarrier-load metric.
        """
        return self.num_prbs * RES_PER_PRB

    def resource_elements_for(self, num_prbs: int) -> int:
        """REs available in a subframe for an allocation of ``num_prbs``."""
        self._check_prbs(num_prbs)
        return num_prbs * RES_PER_PRB

    @property
    def samples_per_subframe(self) -> int:
        """Complex IQ samples per subframe per antenna (sample rate x 1 ms)."""
        return int(round(self.sample_rate_msps * SUBFRAME_US))

    @property
    def samples_per_symbol(self) -> int:
        """Nominal samples per OFDM symbol (ignores CP length variation)."""
        return self.samples_per_subframe // SYMBOLS_PER_SUBFRAME

    def subframe_bytes(self, num_antennas: int) -> int:
        """Fronthaul bytes for one subframe across ``num_antennas`` antennas."""
        if num_antennas < 1:
            raise ValueError("num_antennas must be >= 1")
        return self.samples_per_subframe * IQ_SAMPLE_BYTES * num_antennas

    def _check_prbs(self, num_prbs: int) -> None:
        if not 1 <= num_prbs <= self.num_prbs:
            raise ValueError(
                f"PRB allocation {num_prbs} outside [1, {self.num_prbs}] for "
                f"{self.bandwidth_mhz} MHz"
            )
