"""MCS and transport-block-size tables (TS 36.213).

The paper maps its measured basestation load onto uplink MCS indices 0-27
and derives the *subcarrier load* ``D`` -- data bits per resource element --
from the transport block size (TBS).  For 10 MHz / 50 PRBs, ``D`` spans
0.16 (MCS 0) to 3.7 (MCS 27) bits per RE, matching sec. 2.1 of the paper.

The 50-PRB TBS column is taken from TS 36.213 Table 7.1.7.2.1-1.  For other
PRB allocations we scale the per-PRB spectral efficiency of the 50-PRB
column and round to a byte boundary; this is an approximation of the full
110-column standard table (documented in DESIGN.md) that preserves
monotonicity and the load range the paper's evaluation exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.constants import RES_PER_PRB

#: Reference PRB count for the exact TBS column below.
_REFERENCE_PRBS = 50

#: TS 36.213 Table 7.1.7.2.1-1, N_PRB = 50 column, I_TBS = 0..26 (bits).
_TBS_50PRB = (
    1384,   # I_TBS 0
    1800,   # I_TBS 1
    2216,   # I_TBS 2
    2856,   # I_TBS 3
    3624,   # I_TBS 4
    4392,   # I_TBS 5
    5160,   # I_TBS 6
    6200,   # I_TBS 7
    6968,   # I_TBS 8
    7992,   # I_TBS 9
    8760,   # I_TBS 10
    9912,   # I_TBS 11
    11448,  # I_TBS 12
    12960,  # I_TBS 13
    14112,  # I_TBS 14
    15264,  # I_TBS 15
    16416,  # I_TBS 16
    17568,  # I_TBS 17
    19848,  # I_TBS 18
    21384,  # I_TBS 19
    22920,  # I_TBS 20
    25456,  # I_TBS 21
    27376,  # I_TBS 22
    28336,  # I_TBS 23
    30576,  # I_TBS 24
    31704,  # I_TBS 25
    32856,  # I_TBS 26
)


@dataclass(frozen=True)
class McsEntry:
    """One row of the PUSCH MCS table (TS 36.213 Table 8.6.1-1)."""

    index: int
    modulation_order: int  # Q_m: 2 = QPSK, 4 = 16QAM, 6 = 64QAM
    tbs_index: int  # I_TBS

    @property
    def modulation_name(self) -> str:
        return {2: "QPSK", 4: "16QAM", 6: "64QAM"}[self.modulation_order]


def _build_mcs_table() -> tuple:
    """PUSCH MCS 0..28: Q_m and I_TBS per TS 36.213 Table 8.6.1-1."""
    entries = []
    for mcs in range(0, 11):
        entries.append(McsEntry(mcs, 2, mcs))
    for mcs in range(11, 21):
        entries.append(McsEntry(mcs, 4, mcs - 1))
    for mcs in range(21, 29):
        entries.append(McsEntry(mcs, 6, mcs - 2))
    return tuple(entries)


#: The full PUSCH MCS table, indexed by MCS.
MCS_TABLE = _build_mcs_table()


def max_mcs() -> int:
    """Highest MCS the evaluation uses (the paper sweeps 0-27)."""
    return 27


def mcs_entry(mcs: int) -> McsEntry:
    """Return the table row for ``mcs``, validating the index."""
    if not 0 <= mcs < len(MCS_TABLE):
        raise ValueError(f"MCS {mcs} outside [0, {len(MCS_TABLE) - 1}]")
    return MCS_TABLE[mcs]


def modulation_order(mcs: int) -> int:
    """Modulation order Q_m (2/4/6) for an MCS index.

    This is the ``K`` term of the paper's Eq. (1).
    """
    return mcs_entry(mcs).modulation_order


@lru_cache(maxsize=None)
def transport_block_size(mcs: int, num_prbs: int = _REFERENCE_PRBS) -> int:
    """Transport block size in bits for ``mcs`` over ``num_prbs`` PRBs.

    Exact for 50 PRBs; proportional per-PRB scaling (rounded to a byte)
    otherwise.  Monotone in both arguments.  Cached: the workload
    builders evaluate it for every (grant, subframe) pair but the key
    space is tiny (28 MCS x the PRB splits in use).
    """
    if num_prbs < 1:
        raise ValueError("num_prbs must be >= 1")
    tbs50 = _TBS_50PRB[mcs_entry(mcs).tbs_index]
    if num_prbs == _REFERENCE_PRBS:
        return tbs50
    scaled = tbs50 * num_prbs / _REFERENCE_PRBS
    # Round down to a whole byte but never below the smallest code block
    # payload (16 bits + CRC is the 40-bit turbo minimum, see segmentation).
    return max(16, int(scaled // 8) * 8)


@lru_cache(maxsize=None)
def subcarrier_load(mcs: int, num_prbs: int = _REFERENCE_PRBS) -> float:
    """Subcarrier load ``D``: data bits per resource element.

    ``D = TBS / REs``; the paper quotes D in [0.16, 3.7] bits/RE for
    10 MHz (8400 REs) between MCS 0 and MCS 27.
    """
    res = num_prbs * RES_PER_PRB
    return transport_block_size(mcs, num_prbs) / res


def throughput_mbps(mcs: int, num_prbs: int = _REFERENCE_PRBS) -> float:
    """Nominal PHY throughput in Mbps (one TBS per 1 ms subframe).

    The paper's Fig. 17 x-axis: 1.3 Mbps at MCS 0 up to 31.7 Mbps at
    MCS 27 for 50 PRBs.
    """
    return transport_block_size(mcs, num_prbs) / 1000.0


def mcs_for_throughput(target_mbps: float, num_prbs: int = _REFERENCE_PRBS) -> int:
    """Smallest MCS whose nominal throughput reaches ``target_mbps``.

    Saturates at :func:`max_mcs` when the target exceeds the peak rate.
    """
    if target_mbps <= 0:
        return 0
    for mcs in range(max_mcs() + 1):
        if throughput_mbps(mcs, num_prbs) >= target_mbps:
            return mcs
    return max_mcs()
