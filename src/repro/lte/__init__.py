"""LTE standard substrate: MCS/TBS tables, grid geometry, segmentation.

This subpackage encodes the small slice of 3GPP TS 36.211/36.212/36.213
that the paper's workload depends on: how a modulation-and-coding scheme
(MCS) and a PRB allocation turn into a transport block size, a subcarrier
load ``D`` (bits per resource element), and a set of turbo code blocks that
can be decoded in parallel.
"""

from repro.lte.grid import GridConfig
from repro.lte.mcs import (
    MCS_TABLE,
    McsEntry,
    max_mcs,
    mcs_entry,
    modulation_order,
    subcarrier_load,
    throughput_mbps,
    transport_block_size,
)
from repro.lte.segmentation import SegmentationResult, segment_transport_block
from repro.lte.subframe import Subframe, UplinkGrant

__all__ = [
    "GridConfig",
    "MCS_TABLE",
    "McsEntry",
    "max_mcs",
    "mcs_entry",
    "modulation_order",
    "subcarrier_load",
    "throughput_mbps",
    "transport_block_size",
    "SegmentationResult",
    "segment_transport_block",
    "Subframe",
    "UplinkGrant",
]
