"""Code-block segmentation (TS 36.212 sec. 5.1.2).

Turbo decoding is the most expensive task in the uplink chain, and the
paper parallelizes it *per code block*: "at MCS 27, LTE utilizes 6
code-blocks all of which can be decoded concurrently".  The number and
sizes of code blocks therefore determine RT-OPEX's decode subtask
granularity, so we implement the standard segmentation rule faithfully:

* a 24-bit CRC is appended to the transport block;
* if the result exceeds Z = 6144 bits it is split into C blocks, each of
  which gets its own 24-bit CRC;
* block sizes are drawn from the turbo interleaver size table (K+ / K-),
  with filler bits F padding the first block.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from functools import lru_cache

from repro.constants import CB_CRC_BITS, MAX_CODE_BLOCK_BITS, TB_CRC_BITS


def _interleaver_sizes() -> tuple:
    """Valid turbo interleaver block sizes K (TS 36.212 Table 5.1.3-3)."""
    sizes = list(range(40, 512 + 1, 8))
    sizes += list(range(528, 1024 + 1, 16))
    sizes += list(range(1056, 2048 + 1, 32))
    sizes += list(range(2112, 6144 + 1, 64))
    return tuple(sizes)


#: All 188 valid turbo code block sizes, ascending.
TURBO_BLOCK_SIZES = _interleaver_sizes()


def smallest_block_size_at_least(bits: int) -> int:
    """Smallest valid turbo block size K >= ``bits``."""
    if bits > TURBO_BLOCK_SIZES[-1]:
        raise ValueError(f"{bits} exceeds the maximum turbo block size")
    return TURBO_BLOCK_SIZES[bisect_left(TURBO_BLOCK_SIZES, bits)]


def largest_block_size_below(bits: int) -> int:
    """Largest valid turbo block size K < ``bits`` (K- in the standard)."""
    index = bisect_left(TURBO_BLOCK_SIZES, bits)
    if index == 0:
        raise ValueError(f"no turbo block size below {bits}")
    return TURBO_BLOCK_SIZES[index - 1]


@dataclass(frozen=True)
class SegmentationResult:
    """Outcome of segmenting one transport block.

    Attributes
    ----------
    num_code_blocks:
        C -- the decode parallelism RT-OPEX can exploit.
    k_plus, k_minus:
        The two block sizes used (K- is 0 when every block is K+).
    c_plus, c_minus:
        How many blocks of each size.
    filler_bits:
        F -- padding bits prepended to the first block.
    payload_bits:
        B' -- total bits across blocks including per-block CRCs.
    """

    num_code_blocks: int
    k_plus: int
    k_minus: int
    c_plus: int
    c_minus: int
    filler_bits: int
    payload_bits: int

    @property
    def block_sizes(self) -> tuple:
        """Sizes of every code block, K- blocks first (standard order)."""
        return (self.k_minus,) * self.c_minus + (self.k_plus,) * self.c_plus

    def __post_init__(self) -> None:
        if self.c_minus + self.c_plus != self.num_code_blocks:
            raise ValueError("c_plus + c_minus must equal num_code_blocks")


@lru_cache(maxsize=None)
def segment_transport_block(tbs_bits: int) -> SegmentationResult:
    """Segment a transport block of ``tbs_bits`` payload bits.

    Follows TS 36.212 sec. 5.1.2.  For the paper's headline case
    (TBS 31704 at MCS 27 / 50 PRBs) this yields C = 6 code blocks.
    Cached: the result is a pure function of the TBS, the key space is
    the MCS/PRB grid in use, and both the workload builders and the PHY
    chain (encode *and* decode of the same grant) re-ask constantly.
    """
    if tbs_bits < 1:
        raise ValueError("tbs_bits must be positive")
    b = tbs_bits + TB_CRC_BITS
    z = MAX_CODE_BLOCK_BITS
    if b <= z:
        num_blocks = 1
        b_prime = b
    else:
        num_blocks = math.ceil(b / (z - CB_CRC_BITS))
        b_prime = b + num_blocks * CB_CRC_BITS

    # First segmentation size: K+ is the smallest K with C * K >= B'.
    k_plus = smallest_block_size_at_least(math.ceil(b_prime / num_blocks))
    if num_blocks == 1:
        k_minus, c_minus, c_plus = 0, 0, 1
    else:
        k_minus = largest_block_size_below(k_plus)
        delta_k = k_plus - k_minus
        c_minus = math.floor((num_blocks * k_plus - b_prime) / delta_k)
        c_plus = num_blocks - c_minus
    filler = c_plus * k_plus + c_minus * k_minus - b_prime
    return SegmentationResult(
        num_code_blocks=num_blocks,
        k_plus=k_plus,
        k_minus=k_minus,
        c_plus=c_plus,
        c_minus=c_minus,
        filler_bits=filler,
        payload_bits=b_prime,
    )


def num_code_blocks(tbs_bits: int) -> int:
    """Convenience wrapper: just the code-block count C."""
    return segment_transport_block(tbs_bits).num_code_blocks
