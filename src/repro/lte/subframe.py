"""Subframe and grant dataclasses — the unit of work in the scheduler.

A :class:`Subframe` is what the transport component hands to the
processing component every 1 ms per basestation (paper sec. 3).  It
carries everything the timing model and the schedulers need: the uplink
grant (MCS, PRBs, antennas), the channel state (SNR), and the arrival
time at the compute node (subframe boundary + transport latency).
"""

from __future__ import annotations

from functools import cached_property, lru_cache
from dataclasses import dataclass, field

from repro.constants import RX_BUDGET_US, SUBFRAME_US
from repro.lte.grid import GridConfig
from repro.lte.mcs import modulation_order, subcarrier_load, transport_block_size
from repro.lte.segmentation import num_code_blocks


@dataclass(frozen=True)
class UplinkGrant:
    """Uplink scheduling grant for a single-user subframe.

    The paper's evaluation assumes a single user at 100% PRB utilization,
    varying MCS according to the load trace; multi-user subframes are
    expressed as multiple grants in :mod:`repro.workload`.  ``service``
    tags the grant's traffic class (``urllc``/``embb``/``mmtc``); the
    default matches the paper's single-class broadband workload.
    """

    mcs: int
    num_prbs: int = 50
    num_antennas: int = 2
    service: str = "embb"

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ValueError("num_antennas must be >= 1")
        if self.num_prbs < 1:
            raise ValueError("num_prbs must be >= 1")
        # Validate MCS eagerly so bad grants fail at construction.
        modulation_order(self.mcs)

    @property
    def tbs_bits(self) -> int:
        """Transport block size in bits."""
        return transport_block_size(self.mcs, self.num_prbs)

    @property
    def modulation_order(self) -> int:
        """Q_m — the ``K`` term of Eq. (1)."""
        return modulation_order(self.mcs)

    @property
    def subcarrier_load(self) -> float:
        """``D`` — data bits per resource element."""
        return subcarrier_load(self.mcs, self.num_prbs)

    @property
    def code_blocks(self) -> int:
        """Number of independently decodable turbo code blocks."""
        return num_code_blocks(self.tbs_bits)


@lru_cache(maxsize=None)
def interned_grant(
    mcs: int, num_prbs: int = 50, num_antennas: int = 2, service: str = "embb"
) -> UplinkGrant:
    """A shared :class:`UplinkGrant` instance for a grant shape.

    Grants are frozen value objects, so workload builders that create
    one per (basestation, subframe) slot can share a single instance per
    distinct (mcs, prbs, antennas, service) tuple — the key space the
    evaluation exercises is tiny, while the construction (with its
    eager MCS validation) is not free at fleet scale.
    """
    return UplinkGrant(
        mcs=mcs, num_prbs=num_prbs, num_antennas=num_antennas, service=service
    )


@dataclass(frozen=True)
class Subframe:
    """One uplink subframe awaiting decode on the compute node.

    Attributes
    ----------
    bs_id:
        Basestation index (the paper's notation ``(i, j)`` is
        ``(bs_id, index)``).
    index:
        Subframe number; subframe ``j`` is received over the air at
        ``j * 1000`` us.
    grant:
        The uplink grant describing the workload.
    snr_db:
        Post-combining SNR; drives the turbo iteration count.
    transport_latency_us:
        RTT/2 — fronthaul plus cloud latency for this subframe.
    """

    bs_id: int
    index: int
    grant: UplinkGrant
    snr_db: float = 30.0
    transport_latency_us: float = 0.0
    grid: GridConfig = field(default_factory=GridConfig)

    @cached_property
    def air_time_us(self) -> float:
        """Time the subframe is fully received at the radio (end of SF)."""
        return self.index * SUBFRAME_US

    @cached_property
    def arrival_us(self) -> float:
        """Time the subframe becomes available at the compute node."""
        return self.air_time_us + self.transport_latency_us

    @cached_property
    def deadline_us(self) -> float:
        """Absolute processing deadline.

        Rx processing plus transport must fit in 2 ms (Eq. (2)); the
        processing itself must therefore finish by
        ``air_time + RX_BUDGET_US``.
        """
        return self.air_time_us + RX_BUDGET_US

    @property
    def processing_budget_us(self) -> float:
        """Tmax = 2 ms - RTT/2 (Eq. (3))."""
        return RX_BUDGET_US - self.transport_latency_us

    def key(self) -> tuple:
        """Stable identity used in logs and miss records."""
        return (self.bs_id, self.index)
