"""OFDM modulation/demodulation and resource-grid mapping.

The FFT task in the paper "runs on each of the 14 OFDM symbols of each
antenna" and is the easiest block to parallelize (Fig. 4(a): splitting 14
symbols over two cores nearly halves the time).  The grid layout here
mirrors that structure: the time-domain subframe is a ``(symbols,
samples)`` array per antenna, and demodulation is independent per symbol,
which is exactly the subtask boundary RT-OPEX migrates.

We use a simplified numerology with a fixed-length cyclic prefix per
symbol (the true LTE CP alternates 160/144 samples); the approximation is
irrelevant to scheduling and keeps symbol boundaries uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import SYMBOLS_PER_SUBFRAME
from repro.lte.grid import GridConfig


def _cp_length(fft_size: int) -> int:
    """Cyclic prefix samples per symbol (uniform simplification)."""
    return fft_size // 16  # ~ 6.25%, close to LTE's normal CP ratio


def occupied_bins(fft_size: int, num_subcarriers: int) -> np.ndarray:
    """FFT bin indices for the occupied subcarriers, DC excluded.

    Subcarriers are centred on DC: negative frequencies map to the top
    half of the FFT, positive to the bottom, skipping bin 0.
    """
    if num_subcarriers >= fft_size:
        raise ValueError("occupied subcarriers must be fewer than the FFT size")
    half = num_subcarriers // 2
    negative = np.arange(fft_size - half, fft_size)
    positive = np.arange(1, num_subcarriers - half + 1)
    return np.concatenate([negative, positive])


@dataclass(frozen=True)
class OfdmModulator:
    """Maps frequency-domain symbols onto a time-domain subframe."""

    grid: GridConfig

    def modulate(self, grid_symbols: np.ndarray) -> np.ndarray:
        """IFFT + CP for a ``(14, num_subcarriers)`` grid.

        Returns a ``(14, fft+cp)`` time-domain array — one row per OFDM
        symbol, the unit the FFT subtasks operate on.
        """
        nfft = self.grid.fft_size
        nsc = self.grid.num_subcarriers
        grid_symbols = np.asarray(grid_symbols, dtype=np.complex128)
        if grid_symbols.shape != (SYMBOLS_PER_SUBFRAME, nsc):
            raise ValueError(
                f"expected grid shape {(SYMBOLS_PER_SUBFRAME, nsc)}, got {grid_symbols.shape}"
            )
        bins = occupied_bins(nfft, nsc)
        freq = np.zeros((SYMBOLS_PER_SUBFRAME, nfft), dtype=np.complex128)
        freq[:, bins] = grid_symbols
        time = np.fft.ifft(freq, axis=1) * np.sqrt(nfft)
        cp = _cp_length(nfft)
        return np.concatenate([time[:, -cp:], time], axis=1)


@dataclass(frozen=True)
class OfdmDemodulator:
    """Strips CP and FFTs each OFDM symbol back to subcarriers."""

    grid: GridConfig

    @property
    def symbol_samples(self) -> int:
        """Time-domain samples per OFDM symbol including CP."""
        return self.grid.fft_size + _cp_length(self.grid.fft_size)

    def demodulate(self, time_symbols: np.ndarray) -> np.ndarray:
        """FFT of a ``(14, fft+cp)`` array back to ``(14, subcarriers)``.

        Each row is independent — this is the per-symbol FFT subtask.
        """
        nfft = self.grid.fft_size
        cp = _cp_length(nfft)
        time_symbols = np.asarray(time_symbols, dtype=np.complex128)
        expected = (SYMBOLS_PER_SUBFRAME, nfft + cp)
        if time_symbols.shape != expected:
            raise ValueError(f"expected shape {expected}, got {time_symbols.shape}")
        freq = np.fft.fft(time_symbols[:, cp:], axis=1) / np.sqrt(nfft)
        return freq[:, occupied_bins(nfft, self.grid.num_subcarriers)]

    def demodulate_batch(self, time_symbols: np.ndarray) -> np.ndarray:
        """Demodulate all antennas in one FFT call.

        ``time_symbols`` is ``(antennas, 14, fft+cp)``; returns
        ``(antennas, 14, subcarriers)``.  pocketfft computes each 1-D
        transform independently of its batch shape, so every row equals
        :meth:`demodulate` of that antenna bit for bit (asserted by the
        PHY tests).
        """
        nfft = self.grid.fft_size
        cp = _cp_length(nfft)
        time_symbols = np.asarray(time_symbols, dtype=np.complex128)
        expected = (SYMBOLS_PER_SUBFRAME, nfft + cp)
        if time_symbols.ndim != 3 or time_symbols.shape[1:] != expected:
            raise ValueError(
                f"expected shape (antennas, {expected[0]}, {expected[1]}), "
                f"got {time_symbols.shape}"
            )
        freq = np.fft.fft(time_symbols[:, :, cp:], axis=2) / np.sqrt(nfft)
        return freq[:, :, occupied_bins(nfft, self.grid.num_subcarriers)]

    def demodulate_symbol(self, time_symbol: np.ndarray) -> np.ndarray:
        """Demodulate a single OFDM symbol (one FFT subtask)."""
        return self.demodulate(
            np.broadcast_to(time_symbol, (SYMBOLS_PER_SUBFRAME, time_symbol.size)).copy()
        )[0]


def map_symbols_to_grid(symbols: np.ndarray, num_subcarriers: int) -> np.ndarray:
    """Fill a 14-symbol grid column-major with QAM symbols, zero-padded.

    The functional chain treats every RE as data-bearing, matching the
    8400-RE accounting of the paper's subcarrier-load metric.
    """
    capacity = SYMBOLS_PER_SUBFRAME * num_subcarriers
    symbols = np.asarray(symbols, dtype=np.complex128).ravel()
    if symbols.size > capacity:
        raise ValueError(f"{symbols.size} symbols exceed grid capacity {capacity}")
    flat = np.zeros(capacity, dtype=np.complex128)
    flat[: symbols.size] = symbols
    return flat.reshape(SYMBOLS_PER_SUBFRAME, num_subcarriers)


def extract_symbols_from_grid(grid_symbols: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`map_symbols_to_grid`."""
    flat = np.asarray(grid_symbols, dtype=np.complex128).ravel()
    if count > flat.size:
        raise ValueError(f"cannot extract {count} symbols from grid of {flat.size}")
    return flat[:count]
