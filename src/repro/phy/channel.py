"""Wireless channel models and SNR utilities.

The paper's evaluation fixes an AWGN channel at 30 dB SNR and emulates
load through MCS variation (sec. 4.2); the model-validation sweep (Fig. 3)
varies SNR from 0 to 30 dB.  We provide AWGN and a per-subframe block
Rayleigh fading channel for multi-antenna reception.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def snr_db_to_noise_var(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex noise variance for a target SNR at ``signal_power``."""
    return signal_power / (10.0 ** (snr_db / 10.0))


def measure_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR between a clean reference and its noisy version."""
    clean = np.asarray(clean)
    noise = np.asarray(noisy) - clean
    p_sig = float(np.mean(np.abs(clean) ** 2))
    p_noise = float(np.mean(np.abs(noise) ** 2))
    if p_noise == 0:
        return float("inf")
    return 10.0 * np.log10(p_sig / p_noise)


@dataclass
class AwgnChannel:
    """Additive white Gaussian noise channel, replicated per antenna.

    Each receive antenna observes the same transmitted waveform with
    independent noise, the setting under which MRC combining yields the
    well-known ``10*log10(N)`` array gain.
    """

    snr_db: float
    num_antennas: int = 1
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Return a ``(num_antennas, ...)`` stack of noisy observations."""
        waveform = np.asarray(waveform, dtype=np.complex128)
        power = float(np.mean(np.abs(waveform) ** 2))
        if power == 0:
            power = 1.0
        nvar = snr_db_to_noise_var(self.snr_db, power)
        shape = (self.num_antennas,) + waveform.shape
        noise = self.rng.normal(scale=np.sqrt(nvar / 2.0), size=shape + (2,))
        noise = noise[..., 0] + 1j * noise[..., 1]
        return waveform[None, ...] + noise

    def noise_variance(self, signal_power: float = 1.0) -> float:
        """Per-antenna complex noise variance for unit signal power."""
        return snr_db_to_noise_var(self.snr_db, signal_power)


@dataclass
class BlockFadingChannel:
    """Per-subframe flat Rayleigh fading with independent antenna gains.

    The complex gain is constant over a subframe (block fading), the
    standard assumption for 1 ms LTE scheduling studies; the receiver is
    assumed to estimate it perfectly (the paper's channel estimator is
    part of the demod task but its accuracy is not evaluated).
    """

    snr_db: float
    num_antennas: int = 1
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    last_gains: Optional[np.ndarray] = field(default=None, init=False)

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Fade + AWGN; records the drawn gains in :attr:`last_gains`."""
        waveform = np.asarray(waveform, dtype=np.complex128)
        gains = self.rng.normal(scale=np.sqrt(0.5), size=(self.num_antennas, 2))
        gains = gains[:, 0] + 1j * gains[:, 1]
        self.last_gains = gains
        power = float(np.mean(np.abs(waveform) ** 2)) or 1.0
        nvar = snr_db_to_noise_var(self.snr_db, power)
        shape = (self.num_antennas,) + waveform.shape
        noise = self.rng.normal(scale=np.sqrt(nvar / 2.0), size=shape + (2,))
        noise = noise[..., 0] + 1j * noise[..., 1]
        faded = gains.reshape((self.num_antennas,) + (1,) * waveform.ndim) * waveform[None, ...]
        return faded + noise

    def noise_variance(self, signal_power: float = 1.0) -> float:
        return snr_db_to_noise_var(self.snr_db, signal_power)
