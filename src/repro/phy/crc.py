"""Cyclic redundancy checks used by the LTE transport channel (TS 36.212).

LTE attaches CRC-24A to the transport block and CRC-24B to each code
block; the turbo decoder uses the per-block CRC to stop iterating early
("decoding and CRC check can be done independently on each code-block",
paper sec. 2.2).  CRC-16 is included for the smaller control payloads.

Implementation: polynomial division over GF(2) on numpy bit arrays.  A
vectorized byte-table variant is used when the input length is a multiple
of 8, which keeps the functional chain fast enough for tests.
"""

from __future__ import annotations

import numpy as np

#: Generator polynomials, MSB-first, excluding the leading x^n term.
_POLY_24A = 0x864CFB  # x^24 + x^23 + x^18 + x^17 + x^14 + x^11 + x^10 + ...
_POLY_24B = 0x800063  # x^24 + x^23 + x^6 + x^5 + x + 1
_POLY_16 = 0x1021  # CCITT x^16 + x^12 + x^5 + 1


def _bits_to_int(bits: np.ndarray) -> int:
    value = 0
    for b in bits:
        value = (value << 1) | int(b)
    return value


def _crc_generic(bits: np.ndarray, poly: int, width: int) -> np.ndarray:
    """Long-division CRC over GF(2); returns ``width`` parity bits."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    reg = 0
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for b in bits:
        reg ^= int(b) << (width - 1)
        if reg & top:
            reg = ((reg << 1) ^ poly) & mask
        else:
            reg = (reg << 1) & mask
    out = np.zeros(width, dtype=np.uint8)
    for i in range(width):
        out[i] = (reg >> (width - 1 - i)) & 1
    return out


def crc24a(bits: np.ndarray) -> np.ndarray:
    """CRC-24A parity bits for a transport block."""
    return _crc_generic(bits, _POLY_24A, 24)


def crc24b(bits: np.ndarray) -> np.ndarray:
    """CRC-24B parity bits for a code block."""
    return _crc_generic(bits, _POLY_24B, 24)


def crc16(bits: np.ndarray) -> np.ndarray:
    """CRC-16-CCITT parity bits."""
    return _crc_generic(bits, _POLY_16, 16)


def attach_crc(bits: np.ndarray, kind: str = "24a") -> np.ndarray:
    """Return ``bits`` with the selected CRC appended."""
    fn = {"24a": crc24a, "24b": crc24b, "16": crc16}.get(kind)
    if fn is None:
        raise ValueError(f"unknown CRC kind {kind!r}")
    bits = np.asarray(bits, dtype=np.uint8)
    return np.concatenate([bits, fn(bits)])


def crc_check(bits_with_crc: np.ndarray, kind: str = "24a") -> bool:
    """True when the trailing CRC matches the payload.

    The check is done by recomputing the CRC over the payload; a whole-
    message division would be equivalent (remainder zero) but this form is
    easier to reason about and test.
    """
    width = {"24a": 24, "24b": 24, "16": 16}.get(kind)
    if width is None:
        raise ValueError(f"unknown CRC kind {kind!r}")
    bits_with_crc = np.asarray(bits_with_crc, dtype=np.uint8)
    if bits_with_crc.size <= width:
        return False
    payload = bits_with_crc[:-width]
    expected = attach_crc(payload, kind)[-width:]
    return bool(np.array_equal(expected, bits_with_crc[-width:]))
