"""Functional LTE uplink baseband in numpy.

This subpackage is the reproduction's substitute for the OpenAirInterface
PHY library the paper builds on.  It implements a working (bit-exact
encode/decode round trip) uplink chain:

``bits -> CRC -> segmentation -> turbo encode -> rate match -> scramble ->
QAM -> OFDM grid -> channel -> FFT -> equalize -> LLR demap -> descramble ->
rate dematch -> turbo decode (CRC-gated iterations) -> bits``

Its role in the reproduction is twofold:

1. it grounds the task/subtask decomposition used by the schedulers
   (per-antenna/symbol FFT subtasks, per-code-block decode subtasks), and
2. it produces a *genuine* stochastic turbo iteration count ``L`` as a
   function of SNR and MCS, which is the main source of processing-time
   variation in the paper's Eq. (1).

It is intentionally a clean-room simplified implementation (max-log-MAP,
simplified rate matching) rather than a bit-compatible 36.212 codec; see
DESIGN.md for the substitution rationale.
"""

from repro.phy.chain import ChainResult, UplinkReceiver, UplinkTransmitter
from repro.phy.channel import AwgnChannel, BlockFadingChannel
from repro.phy.crc import crc16, crc24a, crc24b, crc_check
from repro.phy.equalizer import mrc_combine, zf_equalize
from repro.phy.ofdm import OfdmModulator, OfdmDemodulator
from repro.phy.qam import qam_demap_llr, qam_map
from repro.phy.turbo import TurboCodec, TurboDecodeResult

__all__ = [
    "ChainResult",
    "UplinkReceiver",
    "UplinkTransmitter",
    "AwgnChannel",
    "BlockFadingChannel",
    "crc16",
    "crc24a",
    "crc24b",
    "crc_check",
    "mrc_combine",
    "zf_equalize",
    "OfdmModulator",
    "OfdmDemodulator",
    "qam_demap_llr",
    "qam_map",
    "TurboCodec",
    "TurboDecodeResult",
]
