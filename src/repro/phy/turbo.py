"""LTE-style turbo codec with CRC-gated early stopping.

Turbo decoding dominates uplink processing time and is the paper's main
source of variability: the iteration count ``L`` is "in general
non-deterministic (even for fixed SNR) and may take any value in
[1, Lm]" (sec. 2.1).  This module provides the codec that generates that
behaviour for the reproduction:

* rate-1/3 parallel-concatenated convolutional code with the LTE
  constituent RSC (feedback 1 + D^2 + D^3, feedforward 1 + D + D^3) and
  trellis termination;
* a quadratic permutation polynomial (QPP) interleaver.  The coefficient
  pairs are *searched* per block size rather than copied from TS 36.212
  Table 5.1.3-3 (documented substitution in DESIGN.md): any valid QPP
  preserves the properties that matter here — bijectivity and
  contention-free parallel decoding;
* a max-log-MAP (BCJR) decoder that runs up to ``max_iterations``
  half-iteration pairs and stops as soon as the hard decision passes the
  attached CRC — producing the stochastic ``L`` the timing model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import gcd
from typing import Callable, Optional

import numpy as np

from repro.phy.crc import crc_check

_NUM_STATES = 8
_TAIL_STEPS = 3
#: Tail bits appended by termination: 3 (sys+par) pairs per encoder.
TAIL_BITS = 4 * _TAIL_STEPS


# --------------------------------------------------------------------------
# QPP interleaver
# --------------------------------------------------------------------------


@lru_cache(maxsize=None)
def qpp_coefficients(block_size: int) -> tuple:
    """Find a valid QPP coefficient pair (f1, f2) for ``block_size``.

    A QPP ``pi(i) = (f1*i + f2*i^2) mod K`` must be a bijection on
    [0, K).  We search deterministically: the smallest odd f1 coprime
    with K (starting at 3), then the smallest positive even f2 that
    makes the map injective.  The search is cached per K.
    """
    if block_size < 8:
        raise ValueError("block_size must be >= 8")
    k = block_size
    f1 = 3
    while gcd(f1, k) != 1:
        f1 += 2
    i = np.arange(k, dtype=np.int64)
    for f2 in range(2, k, 2):
        perm = (f1 * i + f2 * i * i) % k
        if np.unique(perm).size == k:
            return (f1, int(f2))
    raise ValueError(f"no QPP coefficients found for K={k}")


@lru_cache(maxsize=None)
def qpp_interleaver(block_size: int) -> tuple:
    """Return the QPP permutation for ``block_size`` as a tuple of ints."""
    f1, f2 = qpp_coefficients(block_size)
    i = np.arange(block_size, dtype=np.int64)
    return tuple(((f1 * i + f2 * i * i) % block_size).tolist())


def _interleave(values: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """out[i] = values[perm[i]] — the decoder-facing orientation."""
    return values[perm]


def _deinterleave(values: np.ndarray, perm: np.ndarray) -> np.ndarray:
    out = np.empty_like(values)
    out[perm] = values
    return out


# --------------------------------------------------------------------------
# Constituent RSC trellis
# --------------------------------------------------------------------------


@lru_cache(maxsize=1)
def _trellis() -> dict:
    """Precompute the 8-state LTE RSC trellis.

    State is the register (r0, r1, r2) with r0 the most recent feedback
    bit; for input x the feedback is ``a = x ^ r1 ^ r2`` and the parity
    output ``a ^ r0 ^ r2``.
    """
    next_state = np.zeros((_NUM_STATES, 2), dtype=np.int64)
    parity = np.zeros((_NUM_STATES, 2), dtype=np.int64)
    term_input = np.zeros(_NUM_STATES, dtype=np.int64)
    for state in range(_NUM_STATES):
        r0, r1, r2 = (state >> 2) & 1, (state >> 1) & 1, state & 1
        for x in (0, 1):
            a = x ^ r1 ^ r2
            p = a ^ r0 ^ r2
            ns = (a << 2) | (r0 << 1) | r1
            next_state[state, x] = ns
            parity[state, x] = p
        # Input that drives the feedback to zero (for termination).
        term_input[state] = r1 ^ r2
    return {"next_state": next_state, "parity": parity, "term_input": term_input}


def _rsc_encode(bits: np.ndarray) -> tuple:
    """Encode with termination; returns (parity, tail_sys, tail_par)."""
    tr = _trellis()
    next_state, parity_tbl, term = tr["next_state"], tr["parity"], tr["term_input"]
    state = 0
    parity = np.empty(bits.size, dtype=np.uint8)
    for i, x in enumerate(bits):
        parity[i] = parity_tbl[state, x]
        state = next_state[state, x]
    tail_sys = np.empty(_TAIL_STEPS, dtype=np.uint8)
    tail_par = np.empty(_TAIL_STEPS, dtype=np.uint8)
    for i in range(_TAIL_STEPS):
        x = int(term[state])
        tail_sys[i] = x
        tail_par[i] = parity_tbl[state, x]
        state = next_state[state, x]
    if state != 0:
        raise AssertionError("termination failed to return trellis to zero")
    return parity, tail_sys, tail_par


# --------------------------------------------------------------------------
# Max-log-MAP SISO decoder
# --------------------------------------------------------------------------

_NEG_INF = -1e30


def _siso_decode(
    llr_sys: np.ndarray,
    llr_par: np.ndarray,
    llr_apriori: np.ndarray,
    tail_sys: np.ndarray,
    tail_par: np.ndarray,
) -> np.ndarray:
    """One max-log-MAP pass; returns the extrinsic LLRs.

    LLR convention: positive favours bit 0 (sign ``+1``).  Branch metric
    for input u and parity c (as signs): ``0.5*(s_u*(Lsys+Lapr) +
    s_c*Lpar)``.  Tail sections carry no a priori and produce no output.
    """
    tr = _trellis()
    next_state, parity_tbl = tr["next_state"], tr["parity"]
    k = llr_sys.size
    total = k + _TAIL_STEPS

    full_sys = np.concatenate([llr_sys + llr_apriori, tail_sys])
    full_par = np.concatenate([llr_par, tail_par])

    # Signs for bit values 0/1.
    sign = np.array([1.0, -1.0])
    # gamma[t, s, u]: branch metric leaving state s with input u at step t.
    par_sign = sign[parity_tbl]  # (8, 2)
    gamma = 0.5 * (
        full_sys[:, None, None] * sign[None, None, :]
        + full_par[:, None, None] * par_sign[None, :, :]
    )

    alpha = np.full((total + 1, _NUM_STATES), _NEG_INF)
    alpha[0, 0] = 0.0
    for t in range(total):
        nxt = np.full(_NUM_STATES, _NEG_INF)
        cand = alpha[t][:, None] + gamma[t]  # (8, 2)
        for u in (0, 1):
            np.maximum.at(nxt, next_state[:, u], cand[:, u])
        alpha[t + 1] = nxt

    beta = np.full((total + 1, _NUM_STATES), _NEG_INF)
    beta[total, 0] = 0.0  # terminated trellis
    for t in range(total - 1, -1, -1):
        cand = gamma[t] + beta[t + 1][next_state]  # (8, 2)
        beta[t] = np.max(cand, axis=1)

    # Posterior LLR over the K information steps only.
    beta_next = beta[1 : k + 1]  # (k, 8)
    m0 = alpha[:k] + gamma[:k, :, 0] + np.take_along_axis(
        beta_next, np.broadcast_to(next_state[:, 0], (k, _NUM_STATES)), axis=1
    )
    m1 = alpha[:k] + gamma[:k, :, 1] + np.take_along_axis(
        beta_next, np.broadcast_to(next_state[:, 1], (k, _NUM_STATES)), axis=1
    )
    llr_post = m0.max(axis=1) - m1.max(axis=1)
    return llr_post - llr_sys - llr_apriori


# --------------------------------------------------------------------------
# Public codec
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TurboDecodeResult:
    """Outcome of decoding a single code block.

    Attributes
    ----------
    bits:
        Hard-decided information bits (including any attached CRC).
    iterations:
        Number of full decoder iterations executed — the ``L`` of Eq. (1).
    crc_pass:
        Whether the stopping CRC matched (always False when no CRC checker
        was supplied and ``converged`` is reported instead).
    """

    bits: np.ndarray
    iterations: int
    crc_pass: bool


class TurboCodec:
    """Rate-1/3 turbo codec for one code block.

    Parameters
    ----------
    block_size:
        Information bits per block, K.  Any size >= 8 works; LTE sizes
        (:data:`repro.lte.segmentation.TURBO_BLOCK_SIZES`) are typical.
    max_iterations:
        Lm — iteration cap (the paper uses 4).
    """

    def __init__(self, block_size: int, max_iterations: int = 4):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self.block_size = block_size
        self.max_iterations = max_iterations
        self._perm = np.array(qpp_interleaver(block_size), dtype=np.int64)

    # -- encoding ---------------------------------------------------------

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode K bits to ``3K + 12`` coded bits.

        Layout: systematic K | parity1 K | parity2 K | tail 12 (sys1,
        par1, sys2, par2 interleaved by step).
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size != self.block_size:
            raise ValueError(f"expected {self.block_size} bits, got {bits.size}")
        parity1, tail_sys1, tail_par1 = _rsc_encode(bits)
        interleaved = _interleave(bits, self._perm)
        parity2, tail_sys2, tail_par2 = _rsc_encode(interleaved)
        tail = np.empty(TAIL_BITS, dtype=np.uint8)
        tail[0::4] = tail_sys1
        tail[1::4] = tail_par1
        tail[2::4] = tail_sys2
        tail[3::4] = tail_par2
        return np.concatenate([bits, parity1, parity2, tail])

    @property
    def coded_bits(self) -> int:
        """Total encoder output bits: 3K + 12."""
        return 3 * self.block_size + TAIL_BITS

    # -- decoding ---------------------------------------------------------

    def decode(
        self,
        llrs: np.ndarray,
        crc_checker: Optional[Callable[[np.ndarray], bool]] = None,
    ) -> TurboDecodeResult:
        """Iteratively decode channel LLRs (positive favours bit 0).

        ``llrs`` must follow the :meth:`encode` layout.  After every full
        iteration the hard decision is tested with ``crc_checker`` (e.g. a
        CRC-24B check); decoding stops at the first pass.  Without a
        checker, a sign-agreement convergence test between consecutive
        iterations is used, and ``crc_pass`` reports that convergence.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        if llrs.size != self.coded_bits:
            raise ValueError(f"expected {self.coded_bits} LLRs, got {llrs.size}")
        k = self.block_size
        l_sys = llrs[:k]
        l_par1 = llrs[k : 2 * k]
        l_par2 = llrs[2 * k : 3 * k]
        tail = llrs[3 * k :]
        tail_sys1, tail_par1 = tail[0::4], tail[1::4]
        tail_sys2, tail_par2 = tail[2::4], tail[3::4]
        l_sys_int = _interleave(l_sys, self._perm)

        apriori1 = np.zeros(k)
        prev_hard = None
        bits = np.zeros(k, dtype=np.uint8)
        iterations = 0
        passed = False
        for iterations in range(1, self.max_iterations + 1):
            ext1 = _siso_decode(l_sys, l_par1, apriori1, tail_sys1, tail_par1)
            apriori2 = _interleave(ext1, self._perm)
            ext2 = _siso_decode(l_sys_int, l_par2, apriori2, tail_sys2, tail_par2)
            apriori1 = _deinterleave(ext2, self._perm)
            posterior = l_sys + apriori1 + ext1
            bits = (posterior < 0).astype(np.uint8)
            if crc_checker is not None:
                if crc_checker(bits):
                    passed = True
                    break
            else:
                if prev_hard is not None and np.array_equal(prev_hard, bits):
                    passed = True
                    break
                prev_hard = bits.copy()
        return TurboDecodeResult(bits=bits, iterations=iterations, crc_pass=passed)


@lru_cache(maxsize=None)
def turbo_codec(block_size: int, max_iterations: int = 4) -> TurboCodec:
    """A shared :class:`TurboCodec` per ``(K, Lm)``.

    The codec is stateless after construction (``encode``/``decode``
    only read the QPP permutation), so callers that process one code
    block at a time — the PHY chain builds a codec per block per
    subframe — can share a single instance per key and skip the
    permutation rebuild.
    """
    return TurboCodec(block_size, max_iterations)


def bpsk_llrs(coded_bits: np.ndarray, snr_db: float, rng: np.random.Generator) -> np.ndarray:
    """Helper: BPSK-over-AWGN channel LLRs for coded bits (for tests).

    Bit 0 maps to +1; LLR = 2*y/sigma^2 with positive favouring bit 0.
    """
    coded_bits = np.asarray(coded_bits, dtype=np.uint8)
    symbols = 1.0 - 2.0 * coded_bits.astype(np.float64)
    sigma2 = 10.0 ** (-snr_db / 10.0)
    noisy = symbols + rng.normal(scale=np.sqrt(sigma2), size=symbols.shape)
    return 2.0 * noisy / sigma2
