"""Rate matching: sub-block interleaver + circular buffer (TS 36.212 5.1.4).

Rate matching fits each turbo-encoded code block into its share of the
subframe's coded-bit budget ``G = REs * Q_m``.  We implement the standard
structure — a 32-column sub-block interleaver per stream and a circular
buffer with cyclic bit selection — with one documented simplification:
the 12 trellis-termination bits bypass the buffer and are always
transmitted (the standard folds them into the streams).  This keeps the
transform exactly invertible, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.phy.turbo import TAIL_BITS

#: TS 36.212 Table 5.1.4-1 inter-column permutation for turbo rate matching.
COLUMN_PERMUTATION = (
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
    1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
)
_NUM_COLUMNS = 32


@lru_cache(maxsize=None)
def _subblock_read_order(stream_len: int) -> tuple:
    """Source indices in interleaved read order; -1 marks dummy padding.

    The stream is written row-wise into an R x 32 matrix padded with
    dummies *at the front*, columns are permuted, and the matrix is read
    column-wise.
    """
    rows = -(-stream_len // _NUM_COLUMNS)
    padded = rows * _NUM_COLUMNS
    matrix = np.full(padded, -1, dtype=np.int64)
    matrix[padded - stream_len :] = np.arange(stream_len)
    matrix = matrix.reshape(rows, _NUM_COLUMNS)
    order = matrix[:, list(COLUMN_PERMUTATION)].T.ravel()
    return tuple(order.tolist())


@lru_cache(maxsize=None)
def circular_buffer_order(block_size: int) -> tuple:
    """Codeword indices (into the 3K body) in circular-buffer order.

    Buffer layout per the standard: interleaved systematic stream first,
    then the two parity streams interlaced element-by-element.  Dummies
    are skipped, so the result is a permutation of ``range(3K)``.
    """
    k = block_size
    sys_order = np.array(_subblock_read_order(k), dtype=np.int64)
    par_order = sys_order.copy()

    buffer = []
    for src in sys_order:
        if src >= 0:
            buffer.append(src)  # systematic: offset 0
    for p1, p2 in zip(par_order, par_order):
        if p1 >= 0:
            buffer.append(k + p1)  # parity 1: offset K
        if p2 >= 0:
            buffer.append(2 * k + p2)  # parity 2: offset 2K
    order = tuple(buffer)
    if len(order) != 3 * k:
        raise AssertionError("circular buffer must be a permutation of 3K indices")
    return order


@dataclass(frozen=True)
class RateMatchConfig:
    """Rate-matching geometry for one code block."""

    block_size: int  # K, information bits
    num_output_bits: int  # E, bits this block contributes to the subframe

    def __post_init__(self) -> None:
        if self.num_output_bits < TAIL_BITS + 1:
            raise ValueError(
                f"E={self.num_output_bits} cannot even carry the {TAIL_BITS} tail bits"
            )

    @property
    def body_bits(self) -> int:
        """Bits selected from the circular buffer (tail excluded)."""
        return self.num_output_bits - TAIL_BITS


def rate_match(coded: np.ndarray, config: RateMatchConfig) -> np.ndarray:
    """Select ``E`` transmit bits from a ``3K + 12`` turbo codeword.

    Cyclic selection from the circular buffer (repetition when E > 3K,
    puncturing when E < 3K) plus the always-transmitted tail.
    """
    coded = np.asarray(coded, dtype=np.uint8)
    k = config.block_size
    expected = 3 * k + TAIL_BITS
    if coded.size != expected:
        raise ValueError(f"expected {expected} coded bits, got {coded.size}")
    order = np.array(circular_buffer_order(k), dtype=np.int64)
    body = coded[order[np.arange(config.body_bits) % order.size]]
    return np.concatenate([body, coded[3 * k :]])


def rate_dematch(llrs: np.ndarray, config: RateMatchConfig) -> np.ndarray:
    """Invert :func:`rate_match` on soft values.

    Repeated positions accumulate (chase combining); punctured positions
    stay at LLR 0 (erasure).  Output follows the encoder layout
    ``sys | par1 | par2 | tail``.
    """
    llrs = np.asarray(llrs, dtype=np.float64)
    if llrs.size != config.num_output_bits:
        raise ValueError(f"expected {config.num_output_bits} LLRs, got {llrs.size}")
    k = config.block_size
    order = np.array(circular_buffer_order(k), dtype=np.int64)
    out = np.zeros(3 * k + TAIL_BITS, dtype=np.float64)
    positions = order[np.arange(config.body_bits) % order.size]
    np.add.at(out, positions, llrs[: config.body_bits])
    out[3 * k :] = llrs[config.body_bits :]
    return out


def bits_per_code_block(total_bits: int, num_blocks: int, modulation_order: int) -> list:
    """Split the subframe's coded-bit budget ``G`` across ``C`` blocks.

    Mirrors TS 36.212 sec. 5.1.4.1.2: every block's share is a multiple
    of ``Q_m``; the first blocks get the floor share and the remainder
    blocks one extra symbol's worth of bits.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be >= 1")
    if total_bits % modulation_order:
        raise ValueError("total_bits must be a multiple of the modulation order")
    symbols = total_bits // modulation_order
    base = symbols // num_blocks
    extra = symbols % num_blocks
    shares = [base] * (num_blocks - extra) + [base + 1] * extra
    return [s * modulation_order for s in shares]
