"""Multi-antenna combining and equalization.

The demod task of the paper's three-task chain contains channel
estimation, equalization and demapping; equalization "runs on each OFDM
symbol" and is therefore parallelizable per symbol (sec. 2.2).  We
implement maximum-ratio combining (MRC) — the paper's footnote 1 assumes
MRC — plus a zero-forcing equalizer for single-stream channels.
"""

from __future__ import annotations

import numpy as np


def mrc_combine(observations: np.ndarray, gains: np.ndarray) -> tuple:
    """Maximum-ratio combine per-antenna observations of one stream.

    Parameters
    ----------
    observations:
        ``(num_antennas, ...)`` received frequency-domain symbols.
    gains:
        ``(num_antennas,)`` complex channel gains (flat fading), or a
        broadcastable per-RE gain array.

    Returns
    -------
    (combined, effective_noise_scale):
        ``combined`` has the antenna axis removed and unit channel gain;
        ``effective_noise_scale`` is the factor by which the per-antenna
        noise variance is reduced (divide noise_var by it for demapping).
    """
    observations = np.asarray(observations, dtype=np.complex128)
    gains = np.asarray(gains, dtype=np.complex128)
    if observations.shape[0] != gains.shape[0]:
        raise ValueError("antenna axes of observations and gains differ")
    g = gains.reshape((gains.shape[0],) + (1,) * (observations.ndim - 1))
    total = np.sum(np.abs(g) ** 2, axis=0)
    if np.any(total == 0):
        raise ValueError("all-zero channel gains cannot be combined")
    combined = np.sum(np.conj(g) * observations, axis=0) / total
    # Post-MRC noise variance is nvar / sum(|g|^2).
    return combined, float(np.mean(total))


def zf_equalize(observation: np.ndarray, gain: np.ndarray) -> np.ndarray:
    """Zero-forcing equalization of a single-antenna observation."""
    observation = np.asarray(observation, dtype=np.complex128)
    gain = np.asarray(gain, dtype=np.complex128)
    if np.any(gain == 0):
        raise ValueError("zero channel gain cannot be inverted")
    return observation / gain


def estimate_flat_gains(observations: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Least-squares flat-fading gain estimate per antenna.

    Emulates the chain's channel-estimation block using the (known)
    transmitted grid as pilots; the scheduling study does not depend on
    estimation error, so perfect pilots are acceptable.
    """
    observations = np.asarray(observations, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    denom = np.sum(np.abs(reference) ** 2)
    if denom == 0:
        raise ValueError("reference grid has zero energy")
    flat_ref = reference.ravel()
    # vdot conjugates its first argument, so this is sum(conj(ref) * obs),
    # the least-squares estimate of g in obs = g * ref + noise.
    return np.array(
        [np.vdot(flat_ref, obs.ravel()) / denom for obs in observations],
        dtype=np.complex128,
    )
