"""End-to-end uplink transmitter/receiver chain.

This composes the PHY blocks into the paper's three-task pipeline
(sec. 2.2):

* **FFT task** — per-antenna, per-symbol OFDM demodulation;
* **demod task** — channel estimation, MRC equalization, LLR demapping;
* **decode task** — descrambling, rate dematching, per-code-block turbo
  decoding with CRC-gated early stopping.

The receiver reports per-code-block iteration counts — the stochastic
``L`` that drives Eq. (1) — and exposes the subtask structure
(antenna x symbol FFTs, per-code-block decodes) that RT-OPEX migrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_MAX_TURBO_ITERATIONS
from repro.lte.grid import GridConfig
from repro.lte.segmentation import SegmentationResult, segment_transport_block
from repro.lte.subframe import UplinkGrant
from repro.phy.crc import attach_crc, crc_check
from repro.phy.equalizer import estimate_flat_gains, mrc_combine
from repro.phy.ofdm import (
    OfdmDemodulator,
    OfdmModulator,
    extract_symbols_from_grid,
    map_symbols_to_grid,
)
from repro.phy.qam import qam_demap_llr, qam_map
from repro.phy.ratematch import RateMatchConfig, bits_per_code_block, rate_dematch, rate_match
from repro.phy.sequences import descramble_llrs, pusch_c_init, scramble
from repro.phy.turbo import turbo_codec


def _segment_payload(payload_crc: np.ndarray, seg: SegmentationResult) -> List[np.ndarray]:
    """Split TB+CRC bits into code blocks with fillers and CB CRCs."""
    blocks: List[np.ndarray] = []
    cursor = 0
    first = True
    for size in seg.block_sizes:
        data_bits = size - (24 if seg.num_code_blocks > 1 else 0)
        filler = seg.filler_bits if first else 0
        take = data_bits - filler
        chunk = payload_crc[cursor : cursor + take]
        cursor += take
        body = np.concatenate([np.zeros(filler, dtype=np.uint8), chunk])
        if seg.num_code_blocks > 1:
            body = attach_crc(body, "24b")
        blocks.append(body)
        first = False
    if cursor != payload_crc.size:
        raise AssertionError("segmentation did not consume the whole transport block")
    return blocks


def _reassemble_payload(blocks: List[np.ndarray], seg: SegmentationResult) -> np.ndarray:
    """Inverse of :func:`_segment_payload` (drops fillers and CB CRCs)."""
    parts = []
    first = True
    for block in blocks:
        body = block[:-24] if seg.num_code_blocks > 1 else block
        if first:
            body = body[seg.filler_bits :]
            first = False
        parts.append(body)
    return np.concatenate(parts)


@dataclass(frozen=True)
class EncodedSubframe:
    """Transmitter output: the waveform plus ground truth for testing."""

    waveform: np.ndarray  # (14, fft+cp) time-domain subframe
    payload: np.ndarray  # original information bits
    grant: UplinkGrant
    num_symbols: int  # QAM symbols actually carried


@dataclass(frozen=True)
class ChainResult:
    """Receiver output for one subframe.

    ``iterations`` has one entry per code block — the decode subtask
    granularity; ``crc_ok`` is the transport-block ACK/NACK decision.
    """

    bits: np.ndarray
    crc_ok: bool
    iterations: List[int]
    code_blocks: int
    cb_crc_pass: List[bool]

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations)

    @property
    def max_iterations_used(self) -> int:
        return max(self.iterations) if self.iterations else 0


@dataclass
class UplinkTransmitter:
    """Builds the uplink waveform for a single-user grant."""

    grid: GridConfig = field(default_factory=GridConfig)
    rnti: int = 0x003D
    cell_id: int = 1
    max_iterations: int = DEFAULT_MAX_TURBO_ITERATIONS

    def encode(
        self,
        grant: UplinkGrant,
        subframe_index: int = 0,
        payload: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> EncodedSubframe:
        """Encode ``payload`` (random if omitted) into a time-domain subframe."""
        rng = rng or np.random.default_rng(0)
        tbs = grant.tbs_bits
        if payload is None:
            payload = rng.integers(0, 2, tbs).astype(np.uint8)
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.size != tbs:
            raise ValueError(f"payload must be TBS={tbs} bits, got {payload.size}")

        seg = segment_transport_block(tbs)
        blocks = _segment_payload(attach_crc(payload, "24a"), seg)

        n_re = self.grid.resource_elements_for(grant.num_prbs)
        q_m = grant.modulation_order
        total_bits = n_re * q_m
        shares = bits_per_code_block(total_bits, seg.num_code_blocks, q_m)

        coded_parts = []
        for block, e_bits in zip(blocks, shares):
            codec = turbo_codec(block.size, self.max_iterations)
            coded = codec.encode(block)
            coded_parts.append(rate_match(coded, RateMatchConfig(block.size, e_bits)))
        coded_bits = np.concatenate(coded_parts)

        scrambled = scramble(coded_bits, pusch_c_init(self.rnti, subframe_index, self.cell_id))
        symbols = qam_map(scrambled, q_m)
        grid_syms = map_symbols_to_grid(symbols, self.grid.num_subcarriers)
        waveform = OfdmModulator(self.grid).modulate(grid_syms)
        return EncodedSubframe(
            waveform=waveform, payload=payload, grant=grant, num_symbols=symbols.size
        )


@dataclass
class UplinkReceiver:
    """Decodes a multi-antenna observation of an uplink subframe."""

    grid: GridConfig = field(default_factory=GridConfig)
    rnti: int = 0x003D
    cell_id: int = 1
    max_iterations: int = DEFAULT_MAX_TURBO_ITERATIONS

    def decode(
        self,
        observations: np.ndarray,
        grant: UplinkGrant,
        noise_var: float,
        subframe_index: int = 0,
        channel_gains: Optional[np.ndarray] = None,
        reference_grid: Optional[np.ndarray] = None,
    ) -> ChainResult:
        """Run FFT -> demod -> decode on ``(antennas, 14, fft+cp)`` samples.

        ``channel_gains`` may be supplied (genie) or estimated from
        ``reference_grid`` pilots; with neither, a unit-gain channel is
        assumed (pure AWGN).
        """
        observations = np.asarray(observations, dtype=np.complex128)
        if observations.ndim != 3:
            raise ValueError("observations must be (antennas, symbols, samples)")

        # ---- FFT task: independent per antenna (and per symbol). --------
        # One batched FFT over (antennas, symbols); bit-identical to the
        # per-antenna loop (each 1-D transform is computed independently).
        demod = OfdmDemodulator(self.grid)
        grids = demod.demodulate_batch(observations)

        # ---- demod task: estimate, combine, demap. -----------------------
        if channel_gains is None:
            if reference_grid is not None:
                channel_gains = estimate_flat_gains(grids, reference_grid)
            else:
                channel_gains = np.ones(observations.shape[0], dtype=np.complex128)
        combined, noise_gain = mrc_combine(grids, channel_gains)

        seg = segment_transport_block(grant.tbs_bits)
        n_re = self.grid.resource_elements_for(grant.num_prbs)
        q_m = grant.modulation_order
        num_symbols = n_re
        symbols = extract_symbols_from_grid(combined, num_symbols)
        eff_noise_var = noise_var / noise_gain
        llrs = qam_demap_llr(symbols, q_m, eff_noise_var)

        # ---- decode task: descramble, dematch, turbo per code block. ----
        llrs = descramble_llrs(llrs, pusch_c_init(self.rnti, subframe_index, self.cell_id))
        shares = bits_per_code_block(n_re * q_m, seg.num_code_blocks, q_m)

        blocks: List[np.ndarray] = []
        iterations: List[int] = []
        cb_pass: List[bool] = []
        # Array-computed slice bounds instead of a running cursor.
        offsets = np.zeros(len(shares) + 1, dtype=np.int64)
        np.cumsum(shares, out=offsets[1:])
        crc_kind = "24b" if seg.num_code_blocks > 1 else "24a"

        def checker(bits: np.ndarray) -> bool:
            return crc_check(bits, crc_kind)

        for i, (size, e_bits) in enumerate(zip(seg.block_sizes, shares)):
            chunk = llrs[offsets[i] : offsets[i + 1]]
            codec = turbo_codec(size, self.max_iterations)
            soft = rate_dematch(chunk, RateMatchConfig(size, e_bits))
            result = codec.decode(soft, crc_checker=checker)
            blocks.append(result.bits)
            iterations.append(result.iterations)
            cb_pass.append(result.crc_pass)

        payload_crc = _reassemble_payload(blocks, seg)
        crc_ok = crc_check(payload_crc, "24a")
        return ChainResult(
            bits=payload_crc[:-24],
            crc_ok=crc_ok,
            iterations=iterations,
            code_blocks=seg.num_code_blocks,
            cb_crc_pass=cb_pass,
        )
