"""Pseudo-random (Gold) sequences for scrambling (TS 36.211 sec. 7.2).

The uplink chain scrambles coded bits with a length-31 Gold sequence seeded
from the cell identity and subframe number.  Scrambling is cheap but it is
part of the ``decode`` task boundary in the paper's task decomposition
(descrambler lives in the decode task), so we implement the real sequence
rather than a placeholder XOR.
"""

from __future__ import annotations

import numpy as np

#: Fixed initialization of the first m-sequence (TS 36.211).
_X1_INIT = 1
#: Offset before sequence output is taken (Nc in the standard).
_NC = 1600


def gold_sequence(length: int, c_init: int) -> np.ndarray:
    """Generate ``length`` bits of the LTE Gold sequence for seed ``c_init``.

    Vectorized generation: both constituent m-sequences are produced with
    the linear recurrences

    ``x1(n+31) = x1(n+3) + x1(n)``
    ``x2(n+31) = x2(n+3) + x2(n+2) + x2(n+1) + x2(n)``  (mod 2)

    and combined as ``c(n) = x1(n + Nc) + x2(n + Nc)``.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    if not 0 <= c_init < (1 << 31):
        raise ValueError("c_init must fit in 31 bits")
    total = length + _NC + 31
    x1 = np.zeros(total, dtype=np.uint8)
    x2 = np.zeros(total, dtype=np.uint8)
    for i in range(31):
        x1[i] = (_X1_INIT >> i) & 1
        x2[i] = (c_init >> i) & 1
    for n in range(total - 31):
        x1[n + 31] = x1[n + 3] ^ x1[n]
        x2[n + 31] = x2[n + 3] ^ x2[n + 2] ^ x2[n + 1] ^ x2[n]
    return (x1[_NC : _NC + length] ^ x2[_NC : _NC + length]).astype(np.uint8)


def pusch_c_init(rnti: int, subframe: int, cell_id: int) -> int:
    """Scrambler seed for PUSCH (TS 36.211 sec. 5.3.1).

    ``c_init = rnti * 2^14 + floor(ns/2) * 2^9 + cell_id`` with ``ns`` the
    slot number; we pass the subframe and use its first slot.
    """
    if not 0 <= cell_id < 504:
        raise ValueError("cell_id must be in [0, 503]")
    ns = (subframe % 10) * 2
    return ((rnti << 14) + ((ns // 2) << 9) + cell_id) & ((1 << 31) - 1)


def scramble(bits: np.ndarray, c_init: int) -> np.ndarray:
    """XOR ``bits`` with the Gold sequence; involutive (self-inverse)."""
    bits = np.asarray(bits, dtype=np.uint8)
    seq = gold_sequence(bits.size, c_init)
    return bits ^ seq


def descramble_llrs(llrs: np.ndarray, c_init: int) -> np.ndarray:
    """Descramble soft values: flip LLR sign where the sequence bit is 1."""
    llrs = np.asarray(llrs, dtype=np.float64)
    seq = gold_sequence(llrs.size, c_init)
    signs = 1.0 - 2.0 * seq.astype(np.float64)
    return llrs * signs
