"""QAM mapping and soft demapping (TS 36.211 sec. 7.1).

The demapper is one of the constellation-level blocks whose processing
time the paper models as a function of the modulation order ``K`` (Eq. (1)
observation (ii)).  We implement the LTE Gray mappings for QPSK, 16QAM and
64QAM and an exact max-log-MAP LLR demapper.

LLR convention: positive LLR means "bit is 0" (LLR = log P(b=0)/P(b=1)),
matching the turbo decoder in :mod:`repro.phy.turbo`.
"""

from __future__ import annotations

import numpy as np


def _lte_constellation(q_m: int) -> np.ndarray:
    """Constellation points indexed by the integer formed from Q_m bits.

    Bit order follows TS 36.211: even-position bits select I, odd-position
    bits select Q (MSB first within each axis).
    """
    if q_m == 2:
        scale = np.sqrt(2.0)

        def axis(bits):
            (b,) = bits
            return 1 - 2 * b

    elif q_m == 4:
        scale = np.sqrt(10.0)

        def axis(bits):
            b0, b1 = bits
            return (1 - 2 * b0) * (2 - (1 - 2 * b1))

    elif q_m == 6:
        scale = np.sqrt(42.0)

        def axis(bits):
            b0, b1, b2 = bits
            return (1 - 2 * b0) * (4 - (1 - 2 * b1) * (2 - (1 - 2 * b2)))

    else:
        raise ValueError(f"unsupported modulation order {q_m}")

    points = np.empty(1 << q_m, dtype=np.complex128)
    half = q_m // 2
    for idx in range(1 << q_m):
        bits = [(idx >> (q_m - 1 - i)) & 1 for i in range(q_m)]
        i_val = axis(bits[0::2][:half])
        q_val = axis(bits[1::2][:half])
        points[idx] = (i_val + 1j * q_val) / scale
    return points


#: Cache of unit-energy constellations keyed by modulation order.
_CONSTELLATIONS = {q: _lte_constellation(q) for q in (2, 4, 6)}


def constellation(q_m: int) -> np.ndarray:
    """Unit-average-energy constellation for modulation order ``q_m``."""
    if q_m not in _CONSTELLATIONS:
        raise ValueError(f"unsupported modulation order {q_m}")
    return _CONSTELLATIONS[q_m]


def qam_map(bits: np.ndarray, q_m: int) -> np.ndarray:
    """Map a bit array (length divisible by ``q_m``) to complex symbols."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % q_m:
        raise ValueError(f"bit count {bits.size} not divisible by Q_m={q_m}")
    groups = bits.reshape(-1, q_m)
    weights = 1 << np.arange(q_m - 1, -1, -1)
    indices = groups @ weights
    return constellation(q_m)[indices]


def qam_demap_llr(symbols: np.ndarray, q_m: int, noise_var: float) -> np.ndarray:
    """Exact max-log LLRs for each transmitted bit.

    ``LLR(b_i) = (min_{s: b_i=1} |y-s|^2 - min_{s: b_i=0} |y-s|^2) / N0``

    Positive values favour bit 0.  ``noise_var`` is the complex noise
    variance per symbol after equalization.
    """
    if noise_var <= 0:
        raise ValueError("noise_var must be positive")
    symbols = np.asarray(symbols, dtype=np.complex128).ravel()
    points = constellation(q_m)
    # Squared distance from every received symbol to every point.
    dist = np.abs(symbols[:, None] - points[None, :]) ** 2
    llrs = np.empty((symbols.size, q_m), dtype=np.float64)
    idx = np.arange(points.size)
    for bit in range(q_m):
        mask1 = (idx >> (q_m - 1 - bit)) & 1 == 1
        d1 = dist[:, mask1].min(axis=1)
        d0 = dist[:, ~mask1].min(axis=1)
        llrs[:, bit] = (d1 - d0) / noise_var
    return llrs.ravel()


def hard_bits_from_llrs(llrs: np.ndarray) -> np.ndarray:
    """Hard decision: bit 0 when LLR >= 0."""
    return (np.asarray(llrs) < 0).astype(np.uint8)
