"""Observability: structured event tracing for the discrete-event runs.

``repro.obs`` gives every scheduler run a microsecond-resolution
timeline: the schedulers emit typed :class:`~repro.obs.events.TraceEvent`
objects (subframe arrivals, task/subtask spans, migration
planned/executed/returned, idle gaps, deadline verdicts) into a
:class:`~repro.obs.trace.RunTrace`, one per scheduler invocation,
collected by a :class:`~repro.obs.trace.Tracer`.

Tracing is strictly opt-in: with no tracer installed the schedulers pay
one ``is None`` check per emission site and allocate nothing.  The CLI
installs a process-wide tracer (``--trace PATH``) via
:func:`~repro.obs.trace.tracing`; forked worker processes inherit it and
ship their events back through the runner, so ``--jobs N`` runs produce
byte-identical trace files to serial ones.

Exporters: :func:`~repro.obs.export.write_chrome_trace` emits the Chrome
trace-event JSON that ``chrome://tracing`` and Perfetto load (one process
per scheduler run, one thread track per core);
:func:`~repro.obs.export.write_jsonl_trace` emits a line-per-event format
for programmatic analysis (see :mod:`repro.analysis.tracestats`).
"""

from repro.obs.events import (
    ARRIVAL,
    BUSY_KINDS,
    DEADLINE,
    EVENT_KINDS,
    GAP,
    KIND_GROUPS,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SUBTASK,
    TASK,
    TraceEvent,
    resolve_kinds,
)
from repro.obs.export import (
    ChromeTraceSink,
    JsonlTraceSink,
    chrome_trace_dict,
    chrome_trace_json,
    iter_jsonl_lines,
    open_sink,
    read_jsonl_trace,
    replay_to_sink,
    write_chrome_trace,
    write_jsonl_trace,
)
from repro.obs.schema import (
    assert_valid_chrome_trace,
    validate_chrome_trace,
    validate_jsonl_line,
    validate_jsonl_trace,
)
from repro.obs.trace import (
    RunTrace,
    TeeRunTrace,
    Tracer,
    TraceSink,
    TraceStats,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "ARRIVAL",
    "BUSY_KINDS",
    "ChromeTraceSink",
    "DEADLINE",
    "EVENT_KINDS",
    "GAP",
    "JsonlTraceSink",
    "KIND_GROUPS",
    "MIGRATION_EXECUTED",
    "MIGRATION_PLANNED",
    "MIGRATION_RETURNED",
    "RunTrace",
    "SUBTASK",
    "TASK",
    "TeeRunTrace",
    "TraceEvent",
    "TraceSink",
    "TraceStats",
    "Tracer",
    "assert_valid_chrome_trace",
    "chrome_trace_dict",
    "chrome_trace_json",
    "get_tracer",
    "iter_jsonl_lines",
    "open_sink",
    "read_jsonl_trace",
    "replay_to_sink",
    "resolve_kinds",
    "set_tracer",
    "tracing",
    "validate_chrome_trace",
    "validate_jsonl_line",
    "validate_jsonl_trace",
    "write_chrome_trace",
    "write_jsonl_trace",
]
