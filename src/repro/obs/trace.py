"""Trace collection: per-run event buffers and the process-wide tracer.

A :class:`RunTrace` is one scheduler invocation's timeline — typed emit
helpers append :class:`~repro.obs.events.TraceEvent` objects to a flat
list.  A :class:`Tracer` owns the run list for a whole CLI/runner
invocation and round-trips through a JSON-native payload so forked
worker processes can ship their runs back to the parent (see
:meth:`Tracer.drain_payload` / :meth:`Tracer.ingest_payload`).

The ambient-tracer context (:func:`set_tracer` / :func:`get_tracer` /
:func:`tracing`) is how tracing reaches the schedulers without touching
every experiment driver's signature: ``run_scheduler`` begins a run on
the ambient tracer when one is installed and passes the resulting
``RunTrace`` down.  With no tracer installed every hot path sees
``None`` and emits nothing — the zero-overhead-when-disabled contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.obs.events import (
    ARRIVAL,
    DEADLINE,
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SUBTASK,
    TASK,
    TraceEvent,
)


class RunTrace:
    """Event buffer for one scheduler run, with typed emit helpers.

    The helpers mirror the event vocabulary one-to-one; schedulers call
    them only behind an ``is not None`` guard, so a disabled trace costs
    one pointer comparison per site.
    """

    __slots__ = ("label", "scheduler", "meta", "events")

    def __init__(
        self,
        label: str,
        scheduler: str = "",
        meta: Optional[Mapping[str, object]] = None,
    ):
        self.label = label
        self.scheduler = scheduler or label
        self.meta: Dict[str, object] = dict(meta or {})
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    # -- typed emitters ------------------------------------------------------

    def arrival(self, ts_us: float, core: int, bs_id: int, sf_index: int) -> None:
        self.events.append(
            TraceEvent(ARRIVAL, ts_us, core, bs_id=bs_id, sf_index=sf_index)
        )

    def task(
        self,
        core: int,
        name: str,
        start_us: float,
        end_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        **args: object,
    ) -> None:
        """One pipeline-stage span; silently skipped when empty."""
        if end_us <= start_us:
            return
        self.events.append(
            TraceEvent(
                TASK, start_us, core, name=name, dur_us=end_us - start_us,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def subtask(
        self,
        core: int,
        name: str,
        start_us: float,
        end_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        **args: object,
    ) -> None:
        if end_us <= start_us:
            return
        self.events.append(
            TraceEvent(
                SUBTASK, start_us, core, name=name, dur_us=end_us - start_us,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def migration_planned(
        self,
        ts_us: float,
        core: int,
        task: str,
        shipped: int,
        targets: Sequence[int],
        bs_id: int = -1,
        sf_index: int = -1,
    ) -> None:
        self.events.append(
            TraceEvent(
                MIGRATION_PLANNED, ts_us, core, name=task,
                bs_id=bs_id, sf_index=sf_index,
                args={"shipped": shipped, "targets": list(targets)},
            )
        )

    def migration_executed(
        self,
        core: int,
        task: str,
        start_us: float,
        end_us: float,
        owner_core: int,
        shipped: int,
        completed: int,
        bs_id: int = -1,
        sf_index: int = -1,
    ) -> None:
        if end_us <= start_us:
            return
        self.events.append(
            TraceEvent(
                MIGRATION_EXECUTED, start_us, core, name=task,
                dur_us=end_us - start_us, bs_id=bs_id, sf_index=sf_index,
                args={"owner": owner_core, "shipped": shipped, "completed": completed},
            )
        )

    def migration_returned(
        self,
        ts_us: float,
        core: int,
        task: str,
        completed: int,
        recovered: int,
        bs_id: int = -1,
        sf_index: int = -1,
    ) -> None:
        self.events.append(
            TraceEvent(
                MIGRATION_RETURNED, ts_us, core, name=task,
                bs_id=bs_id, sf_index=sf_index,
                args={"completed": completed, "recovered": recovered},
            )
        )

    def gap(
        self,
        core: int,
        start_us: float,
        dur_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        usable: bool = True,
    ) -> None:
        """Idle span after a subframe; ``usable=False`` marks slack-check
        drops whose gap the framework keeps out of the helper pool."""
        if dur_us <= 0:
            return
        self.events.append(
            TraceEvent(
                GAP, start_us, core, dur_us=dur_us,
                bs_id=bs_id, sf_index=sf_index, args={"usable": usable},
            )
        )

    def deadline(
        self,
        ts_us: float,
        core: int,
        missed: bool,
        bs_id: int = -1,
        sf_index: int = -1,
        drop_stage: Optional[str] = None,
    ) -> None:
        args: Dict[str, object] = {"missed": missed}
        if drop_stage:
            args["drop_stage"] = drop_stage
        self.events.append(
            TraceEvent(
                DEADLINE, ts_us, core,
                name="miss" if missed else "hit",
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    # -- payload round-trip --------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "scheduler": self.scheduler,
            "meta": dict(self.meta),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RunTrace":
        run = cls(
            label=str(payload["label"]),
            scheduler=str(payload.get("scheduler", "")),
            meta=dict(payload.get("meta", {})),
        )
        run.events = [TraceEvent.from_dict(e) for e in payload.get("events", [])]
        return run


class Tracer:
    """All trace runs of one runner/CLI invocation, in emission order."""

    def __init__(self) -> None:
        self.runs: List[RunTrace] = []

    def __len__(self) -> int:
        return len(self.runs)

    def begin_run(
        self,
        label: str,
        scheduler: str = "",
        meta: Optional[Mapping[str, object]] = None,
    ) -> RunTrace:
        run = RunTrace(label, scheduler=scheduler, meta=meta)
        self.runs.append(run)
        return run

    def num_events(self) -> int:
        return sum(len(run) for run in self.runs)

    def clear(self) -> None:
        self.runs = []

    def summary(self) -> Dict[str, object]:
        """JSON-native roll-up for telemetry reports."""
        kinds: Dict[str, int] = {}
        misses = 0
        for run in self.runs:
            for event in run.events:
                kinds[event.kind] = kinds.get(event.kind, 0) + 1
                if event.kind == DEADLINE and event.args.get("missed"):
                    misses += 1
        return {
            "runs": len(self.runs),
            "events": self.num_events(),
            "deadline_misses": misses,
            "kinds": dict(sorted(kinds.items())),
        }

    # -- cross-process transport ---------------------------------------------

    def payload(self) -> Dict[str, object]:
        return {"runs": [run.to_payload() for run in self.runs]}

    def drain_payload(self) -> Dict[str, object]:
        """Payload of everything collected so far, then reset.

        Worker processes call this after each work unit so runs never
        leak between units executed by the same pool worker.
        """
        payload = self.payload()
        self.clear()
        return payload

    def ingest_payload(self, payload: Mapping[str, object]) -> None:
        """Append runs shipped back from a worker process."""
        for run_payload in payload.get("runs", []):
            self.runs.append(RunTrace.from_payload(run_payload))


# -- ambient tracer context ---------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or, with ``None``, remove) the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def get_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
