"""Trace collection: per-run event buffers, streaming, and the tracer.

A :class:`RunTrace` is one scheduler invocation's timeline — typed emit
helpers build :class:`~repro.obs.events.TraceEvent` objects and funnel
them through :meth:`RunTrace.emit`, where the per-kind filter and the
streaming sink are applied.  Two collection modes:

* **buffered** (the default): events append to ``run.events``, the mode
  the in-memory aggregators (:mod:`repro.analysis.tracestats`) and the
  cross-process payloads use;
* **streaming**: with a sink attached (see :mod:`repro.obs.export`)
  every event is written to disk at emit time and *nothing* is
  buffered — exporter memory stays O(1) in the event count, which is
  what makes paper-scale ``all --scale 1.0`` runs traceable.

A :class:`Tracer` owns the run list for a whole CLI/runner invocation
and round-trips through a JSON-native payload so forked worker
processes can ship their runs back to the parent (see
:meth:`Tracer.drain_payload` / :meth:`Tracer.ingest_payload`).  Workers
always buffer (the parent owns the file handle); the parent re-emits
ingested payloads through the same filter/sink path, so a parallel run
streams exactly the bytes a serial run would.

The ambient-tracer context (:func:`set_tracer` / :func:`get_tracer` /
:func:`tracing`) is how tracing reaches the schedulers without touching
every experiment driver's signature: ``run_scheduler`` begins a run on
the ambient tracer when one is installed and passes the resulting
``RunTrace`` down.  With no tracer installed every hot path sees
``None`` and emits nothing — the zero-overhead-when-disabled contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.obs.events import (
    ARRIVAL,
    DEADLINE,
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SUBTASK,
    TASK,
    TraceEvent,
)


@runtime_checkable
class TraceSink(Protocol):
    """Structural interface every streaming sink implements.

    The exporters (:mod:`repro.obs.export`) and the sanitizing wrapper
    (:class:`repro.check.SanitizingSink`) all satisfy it: a run header
    hook, a per-event hook, and a close.  ``RunTrace``/:class:`Tracer`
    accept any object with this shape.
    """

    def begin_run(self, run: "RunTrace") -> None: ...

    def event(self, run: "RunTrace", event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class TraceStats:
    """Per-kind counters maintained at emit time.

    Streaming mode buffers nothing, so the end-of-run summary
    (``--json`` telemetry) cannot be recomputed from ``run.events``;
    these counters are updated on every accepted emission instead and
    are exact in both modes.
    """

    __slots__ = ("kinds", "deadline_misses")

    def __init__(self) -> None:
        self.kinds: Dict[str, int] = {}
        self.deadline_misses = 0

    def record(self, event: TraceEvent) -> None:
        self.kinds[event.kind] = self.kinds.get(event.kind, 0) + 1
        if event.kind == DEADLINE and event.args.get("missed"):
            self.deadline_misses += 1

    def total(self) -> int:
        return sum(self.kinds.values())


class RunTrace:
    """Event buffer (or stream head) for one scheduler run.

    The typed helpers mirror the event vocabulary one-to-one;
    schedulers call them only behind an ``is not None`` guard, so a
    disabled trace costs one pointer comparison per site.  Every helper
    funnels through :meth:`emit`, the single point where the kind
    filter, the stats counters, and the streaming sink apply.
    """

    __slots__ = (
        "label", "scheduler", "meta", "begin_meta", "events", "kinds", "sink",
        "stats",
    )

    def __init__(
        self,
        label: str,
        scheduler: str = "",
        meta: Optional[Mapping[str, object]] = None,
        kinds: Optional[FrozenSet[str]] = None,
        sink: Optional[TraceSink] = None,
        stats: Optional[TraceStats] = None,
    ):
        self.label = label
        self.scheduler = scheduler or label
        self.meta: Dict[str, object] = dict(meta or {})
        # Snapshot of the metadata known when the run began.  Streaming
        # sinks write their run header immediately, before the scheduler
        # has a chance to add end-of-run metadata (e.g. the simulator
        # stats), so serialized headers always carry this snapshot — the
        # only way a live stream and a buffered replay can agree
        # byte-for-byte.
        self.begin_meta: Dict[str, object] = dict(self.meta)
        self.events: List[TraceEvent] = []
        self.kinds = kinds
        self.sink = sink
        self.stats = stats

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, event: TraceEvent) -> None:
        """Accept one event: filter, count, then stream or buffer it."""
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self.stats is not None:
            self.stats.record(event)
        if self.sink is not None:
            self.sink.event(self, event)
        else:
            self.events.append(event)

    # -- typed emitters ------------------------------------------------------

    def arrival(self, ts_us: float, core: int, bs_id: int, sf_index: int) -> None:
        self.emit(TraceEvent(ARRIVAL, ts_us, core, bs_id=bs_id, sf_index=sf_index))

    def task(
        self,
        core: int,
        name: str,
        start_us: float,
        end_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        **args: object,
    ) -> None:
        """One pipeline-stage span; silently skipped when empty."""
        if end_us <= start_us:
            return
        self.emit(
            TraceEvent(
                TASK, start_us, core, name=name, dur_us=end_us - start_us,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def subtask(
        self,
        core: int,
        name: str,
        start_us: float,
        end_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        **args: object,
    ) -> None:
        if end_us <= start_us:
            return
        self.emit(
            TraceEvent(
                SUBTASK, start_us, core, name=name, dur_us=end_us - start_us,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def migration_planned(
        self,
        ts_us: float,
        core: int,
        task: str,
        shipped: int,
        targets: Sequence[int],
        bs_id: int = -1,
        sf_index: int = -1,
        batches: Optional[Sequence[int]] = None,
    ) -> None:
        args: Dict[str, object] = {"shipped": shipped, "targets": list(targets)}
        if batches is not None:
            args["batches"] = list(batches)
        self.emit(
            TraceEvent(
                MIGRATION_PLANNED, ts_us, core, name=task,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def migration_executed(
        self,
        core: int,
        task: str,
        start_us: float,
        end_us: float,
        owner_core: int,
        shipped: int,
        completed: int,
        bs_id: int = -1,
        sf_index: int = -1,
        batch: int = -1,
    ) -> None:
        if end_us <= start_us:
            return
        args: Dict[str, object] = {
            "owner": owner_core, "shipped": shipped, "completed": completed,
        }
        if batch >= 0:
            args["batch"] = batch
        self.emit(
            TraceEvent(
                MIGRATION_EXECUTED, start_us, core, name=task,
                dur_us=end_us - start_us, bs_id=bs_id, sf_index=sf_index,
                args=args,
            )
        )

    def migration_returned(
        self,
        ts_us: float,
        core: int,
        task: str,
        completed: int,
        recovered: int,
        bs_id: int = -1,
        sf_index: int = -1,
        batch: int = -1,
    ) -> None:
        args: Dict[str, object] = {"completed": completed, "recovered": recovered}
        if batch >= 0:
            args["batch"] = batch
        self.emit(
            TraceEvent(
                MIGRATION_RETURNED, ts_us, core, name=task,
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    def gap(
        self,
        core: int,
        start_us: float,
        dur_us: float,
        bs_id: int = -1,
        sf_index: int = -1,
        usable: bool = True,
    ) -> None:
        """Idle span after a subframe; ``usable=False`` marks slack-check
        drops whose gap the framework keeps out of the helper pool."""
        if dur_us <= 0:
            return
        self.emit(
            TraceEvent(
                GAP, start_us, core, dur_us=dur_us,
                bs_id=bs_id, sf_index=sf_index, args={"usable": usable},
            )
        )

    def deadline(
        self,
        ts_us: float,
        core: int,
        missed: bool,
        bs_id: int = -1,
        sf_index: int = -1,
        drop_stage: Optional[str] = None,
        service: str = "embb",
    ) -> None:
        args: Dict[str, object] = {"missed": missed}
        if drop_stage:
            args["drop_stage"] = drop_stage
        # The default class is implicit so single-class trace files stay
        # byte-identical to the pre-mixed-service goldens.
        if service != "embb":
            args["service"] = service
        self.emit(
            TraceEvent(
                DEADLINE, ts_us, core,
                name="miss" if missed else "hit",
                bs_id=bs_id, sf_index=sf_index, args=args,
            )
        )

    # -- payload round-trip --------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "scheduler": self.scheduler,
            "meta": dict(self.meta),
            "begin_meta": dict(self.begin_meta),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "RunTrace":
        meta = dict(payload.get("meta", {}))
        run = cls(
            label=str(payload["label"]),
            scheduler=str(payload.get("scheduler", "")),
            meta=dict(payload.get("begin_meta", meta)),
        )
        run.meta.update(meta)
        events = payload.get("events", [])
        if isinstance(events, list):
            run.events = [TraceEvent.from_dict(e) for e in events]
        return run


class TeeRunTrace(RunTrace):
    """Forward every emission to several :class:`RunTrace` targets.

    ``run_scheduler`` uses this when a caller asks for a private
    capture trace *and* an ambient tracer is installed: the scheduler
    sees one trace object, the ambient run streams/buffers as
    configured, and the capture run keeps its own (possibly filtered)
    buffer.  ``meta`` is shared with the primary target so scheduler
    metadata (e.g. the simulator stats) lands on the real run.
    """

    __slots__ = ("targets",)

    def __init__(self, primary: RunTrace, *others: RunTrace):
        super().__init__(primary.label, scheduler=primary.scheduler)
        self.meta = primary.meta
        self.targets = (primary,) + others

    def emit(self, event: TraceEvent) -> None:
        for target in self.targets:
            target.emit(event)


class Tracer:
    """All trace runs of one runner/CLI invocation, in emission order.

    ``kinds`` (optional) filters every run's emissions at emit time;
    ``sink`` (optional) streams accepted events to disk instead of
    buffering them.  Both propagate to runs created by
    :meth:`begin_run` and to payloads re-emitted by
    :meth:`ingest_payload`.
    """

    def __init__(
        self,
        kinds: Optional[FrozenSet[str]] = None,
        sink: Optional[TraceSink] = None,
    ) -> None:
        self.runs: List[RunTrace] = []
        self.kinds = kinds
        self.sink = sink
        self.stats = TraceStats()

    def __len__(self) -> int:
        return len(self.runs)

    def begin_run(
        self,
        label: str,
        scheduler: str = "",
        meta: Optional[Mapping[str, object]] = None,
    ) -> RunTrace:
        run = RunTrace(
            label, scheduler=scheduler, meta=meta,
            kinds=self.kinds, sink=self.sink, stats=self.stats,
        )
        self.runs.append(run)
        if self.sink is not None:
            self.sink.begin_run(run)
        return run

    def num_events(self) -> int:
        """Accepted events so far (exact in both buffered and streaming
        modes — counted at emit time, not from the buffers)."""
        return self.stats.total()

    def clear(self) -> None:
        self.runs = []
        self.stats = TraceStats()

    def summary(self) -> Dict[str, object]:
        """JSON-native roll-up for telemetry reports."""
        return {
            "runs": len(self.runs),
            "events": self.stats.total(),
            "deadline_misses": self.stats.deadline_misses,
            "kinds": dict(sorted(self.stats.kinds.items())),
        }

    # -- cross-process transport ---------------------------------------------

    def payload(self) -> Dict[str, object]:
        return {"runs": [run.to_payload() for run in self.runs]}

    def drain_payload(self) -> Dict[str, object]:
        """Payload of everything collected so far, then reset.

        Worker processes call this after each work unit so runs never
        leak between units executed by the same pool worker.
        """
        payload = self.payload()
        self.clear()
        return payload

    def ingest_payload(self, payload: Mapping[str, object]) -> None:
        """Re-emit runs shipped back from a worker process.

        Events pass through :meth:`RunTrace.emit`, so the parent's
        filter, counters, and streaming sink apply exactly as they
        would have for a serial in-process run.
        """
        runs = payload.get("runs", [])
        if not isinstance(runs, list):
            return
        for run_payload in runs:
            meta = dict(run_payload.get("meta", {}))
            # begin_run writes the streamed header, so it must see the
            # worker's begin-time meta snapshot (what a serial run's
            # header carried); end-of-run metadata is restored after.
            run = self.begin_run(
                str(run_payload["label"]),
                scheduler=str(run_payload.get("scheduler", "")),
                meta=dict(run_payload.get("begin_meta", meta)),
            )
            run.meta.update(meta)
            events = run_payload.get("events", [])
            if isinstance(events, list):
                for event_payload in events:
                    run.emit(TraceEvent.from_dict(event_payload))


# -- ambient tracer context ---------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or, with ``None``, remove) the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def get_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
