"""Trace exporters: Chrome trace-event JSON and line-delimited JSON.

Chrome format (``--trace-format chrome``, the default) targets
``chrome://tracing`` and Perfetto's legacy-JSON importer: each scheduler
run becomes one *process* (pid = run index, named by the run label) and
each core one *thread* track inside it, so per-core occupancy reads
directly off the timeline.  Idle gaps are rendered on a parallel
``core N gaps`` track to keep the busy tracks strictly non-overlapping.
Timestamps are emitted in microseconds — the Chrome format's native
unit and the simulator's clock resolution — so no scaling happens on
either side.

JSONL format (``--trace-format jsonl``) is one JSON object per line:
``{"type": "run", ...}`` headers followed by their ``{"type": "event",
...}`` lines, which :func:`read_jsonl_trace` and
:mod:`repro.analysis.tracestats` consume without loading the whole file
into a JSON parser.

Both writers serialize with sorted keys and fixed separators, so two
tracers holding equal runs produce byte-identical files — the property
the serial-vs-parallel determinism tests pin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.events import GAP, SPAN_KINDS, TraceEvent
from repro.obs.trace import RunTrace, Tracer

PathLike = Union[str, Path]

#: Thread id used for queue-level events (``core == -1``).
QUEUE_TID = 999
#: Offset separating each core's gap track from its busy track.
GAP_TID_OFFSET = 1000


def _tid_for(event: TraceEvent) -> int:
    if event.core < 0:
        return QUEUE_TID
    if event.kind == GAP:
        return GAP_TID_OFFSET + event.core
    return event.core


def _thread_name(tid: int) -> str:
    if tid == QUEUE_TID:
        return "queue"
    if tid >= GAP_TID_OFFSET:
        return f"core {tid - GAP_TID_OFFSET} gaps"
    return f"core {tid}"


def chrome_trace_dict(tracer: Tracer) -> Dict[str, object]:
    """Render a tracer as a Chrome trace-event document (JSON-native)."""
    events: List[Dict[str, object]] = []
    for pid, run in enumerate(tracer.runs):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": run.label},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
        for tid in sorted({_tid_for(e) for e in run.events}):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": _thread_name(tid)},
                }
            )
        for event in run.events:
            args: Dict[str, object] = dict(event.args)
            if event.bs_id >= 0:
                args["bs"] = event.bs_id
            if event.sf_index >= 0:
                args["sf"] = event.sf_index
            chrome: Dict[str, object] = {
                "name": event.name or event.kind,
                "cat": event.kind,
                "ts": event.ts_us,
                "pid": pid,
                "tid": _tid_for(event),
                "args": args,
            }
            if event.kind in SPAN_KINDS:
                chrome["ph"] = "X"
                chrome["dur"] = event.dur_us
            else:
                chrome["ph"] = "i"
                chrome["s"] = "t"
            events.append(chrome)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "runs": [run.label for run in tracer.runs],
        },
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Deterministically serialized Chrome trace document."""
    return json.dumps(chrome_trace_dict(tracer), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: PathLike, tracer: Tracer) -> None:
    Path(path).write_text(chrome_trace_json(tracer) + "\n")


def write_jsonl_trace(path: PathLike, tracer: Tracer) -> None:
    """One JSON object per line: run headers followed by their events."""
    with open(Path(path), "w") as handle:
        for index, run in enumerate(tracer.runs):
            header = {
                "type": "run",
                "index": index,
                "label": run.label,
                "scheduler": run.scheduler,
                "meta": dict(run.meta),
            }
            handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
            for event in run.events:
                line = {"type": "event", "run": index, **event.to_dict()}
                handle.write(json.dumps(line, sort_keys=True, separators=(",", ":")))
                handle.write("\n")


def read_jsonl_trace(path: PathLike) -> Tracer:
    """Reload a JSONL trace into a :class:`Tracer` (events reconstructed)."""
    tracer = Tracer()
    current: RunTrace = None  # type: ignore[assignment]
    with open(Path(path)) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "run":
                current = tracer.begin_run(
                    str(payload["label"]),
                    scheduler=str(payload.get("scheduler", "")),
                    meta=dict(payload.get("meta", {})),
                )
            elif payload.get("type") == "event":
                if current is None:
                    raise ValueError(f"{path}: event line before any run header")
                current.emit(TraceEvent.from_dict(payload))
            else:
                raise ValueError(f"{path}: unknown line type {payload.get('type')!r}")
    return tracer
