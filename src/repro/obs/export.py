"""Trace exporters: incremental sinks for Chrome JSON and JSONL.

Both formats are written through *streaming sinks*: a sink receives
``begin_run(run)`` and ``event(run, event)`` calls as the trace is
produced and appends to its file immediately, so exporter memory is
O(1) in the event count — the property that makes paper-scale
``all --scale 1.0`` runs traceable (PR 2's exporters buffered every
event and fell over exactly there).

Chrome format (``--trace-format chrome``, the default) targets
``chrome://tracing`` and Perfetto's legacy-JSON importer: each scheduler
run becomes one *process* (pid = run index, named by the run label) and
each core one *thread* track inside it, so per-core occupancy reads
directly off the timeline.  Idle gaps are rendered on a parallel
``core N gaps`` track to keep the busy tracks strictly non-overlapping.
Migration batches additionally emit Perfetto *flow* events (``ph`` =
``s``/``t``/``f``) linking the planned instant on the owner core, the
executed span on the helper core, and the returned instant back on the
owner — the arrows that make a migration legible across tracks.  The
stream is written as ``{"traceEvents":[`` followed by one serialized
event at a time; thread-name metadata is emitted the first time a track
appears.  Timestamps are microseconds — the Chrome format's native unit
and the simulator's clock resolution.

JSONL format (``--trace-format jsonl``) is one JSON object per line:
``{"type": "run", ...}`` headers followed by their ``{"type": "event",
...}`` lines.  Because each line is flushed independently, a run killed
mid-flight leaves a valid, schema-checkable prefix behind —
:func:`read_jsonl_trace` with ``allow_partial=True`` tolerates the one
possibly-truncated final line.

All writers serialize with sorted keys and fixed separators, so two
tracers fed equal event streams produce byte-identical files — the
property the serial-vs-parallel determinism tests pin.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.events import (
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SPAN_KINDS,
    TraceEvent,
)
from repro.obs.trace import RunTrace, Tracer

PathLike = Union[str, Path]

#: Thread id used for queue-level events (``core == -1``).
QUEUE_TID = 999
#: Offset separating each core's gap track from its busy track.
GAP_TID_OFFSET = 1000
#: Flow ids are ``pid * FLOW_ID_STRIDE + batch`` so ids stay unique
#: across the document (Chrome flow ids are global, not per-process).
FLOW_ID_STRIDE = 2 ** 32


def _tid_for(event: TraceEvent) -> int:
    if event.core < 0:
        return QUEUE_TID
    if event.kind == GAP:
        return GAP_TID_OFFSET + event.core
    return event.core


def _thread_name(tid: int) -> str:
    if tid == QUEUE_TID:
        return "queue"
    if tid >= GAP_TID_OFFSET:
        return f"core {tid - GAP_TID_OFFSET} gaps"
    return f"core {tid}"


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class _ChromeRunEncoder:
    """Translate one run's events into Chrome trace-event objects.

    Stateful so it works incrementally: thread-name metadata is emitted
    the first time a track appears, and migration flow events are
    derived from the batch ids the schedulers stamp into event args.
    Both the streaming sink and the in-memory document builder use this
    encoder, so the two paths cannot drift.
    """

    def __init__(self, pid: int, label: str):
        self.pid = pid
        self.label = label
        self._seen_tids: set = set()

    def preamble(self) -> List[Dict[str, object]]:
        return [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.pid,
                "tid": 0,
                "args": {"name": self.label},
            },
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": self.pid,
                "tid": 0,
                "args": {"sort_index": self.pid},
            },
        ]

    def _flow(self, phase: str, batch: int, ts_us: float, tid: int) -> Dict[str, object]:
        flow: Dict[str, object] = {
            "name": "migration",
            "cat": "migration",
            "ph": phase,
            "id": self.pid * FLOW_ID_STRIDE + batch,
            "ts": ts_us,
            "pid": self.pid,
            "tid": tid,
        }
        if phase == "f":
            flow["bp"] = "e"
        return flow

    def _flows_for(self, event: TraceEvent, tid: int) -> List[Dict[str, object]]:
        if event.kind == MIGRATION_PLANNED:
            batches = event.args.get("batches")
            if isinstance(batches, list):
                return [
                    self._flow("s", int(batch), event.ts_us, tid)
                    for batch in batches
                ]
        elif event.kind == MIGRATION_EXECUTED:
            batch = event.args.get("batch")
            if isinstance(batch, int):
                return [self._flow("t", batch, event.ts_us, tid)]
        elif event.kind == MIGRATION_RETURNED:
            batch = event.args.get("batch")
            if isinstance(batch, int):
                return [self._flow("f", batch, event.ts_us, tid)]
        return []

    def encode(self, event: TraceEvent) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        tid = _tid_for(event)
        if tid not in self._seen_tids:
            self._seen_tids.add(tid)
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": tid,
                    "args": {"name": _thread_name(tid)},
                }
            )
        args: Dict[str, object] = dict(event.args)
        if event.bs_id >= 0:
            args["bs"] = event.bs_id
        if event.sf_index >= 0:
            args["sf"] = event.sf_index
        chrome: Dict[str, object] = {
            "name": event.name or event.kind,
            "cat": event.kind,
            "ts": event.ts_us,
            "pid": self.pid,
            "tid": tid,
            "args": args,
        }
        if event.kind in SPAN_KINDS:
            chrome["ph"] = "X"
            chrome["dur"] = event.dur_us
        else:
            chrome["ph"] = "i"
            chrome["s"] = "t"
        out.append(chrome)
        out.extend(self._flows_for(event, tid))
        return out


class ChromeTraceSink:
    """Incremental Chrome trace-event writer.

    Events are appended to the ``traceEvents`` array as they arrive;
    :meth:`close` writes the document tail (``displayTimeUnit`` and
    ``otherData``, including the run-label list).  Only per-run encoder
    state and the label list are held in memory.
    """

    def __init__(self, path: PathLike):
        self._handle = open(Path(path), "w")
        self._handle.write('{"traceEvents":[')
        self._first_event = True
        self._labels: List[str] = []
        self._encoders: Dict[int, _ChromeRunEncoder] = {}

    def begin_run(self, run: RunTrace) -> None:
        encoder = _ChromeRunEncoder(len(self._labels), run.label)
        self._labels.append(run.label)
        self._encoders[id(run)] = encoder
        self._write(encoder.preamble())

    def event(self, run: RunTrace, event: TraceEvent) -> None:
        self._write(self._encoders[id(run)].encode(event))

    def _write(self, chrome_events: List[Dict[str, object]]) -> None:
        parts = []
        for obj in chrome_events:
            if not self._first_event:
                parts.append(",")
            self._first_event = False
            parts.append(_dumps(obj))
        self._handle.write("".join(parts))

    def close(self) -> None:
        tail = {"source": "repro.obs", "runs": self._labels}
        self._handle.write(
            '],"displayTimeUnit":"ms","otherData":' + _dumps(tail) + "}\n"
        )
        self._handle.close()


class JsonlTraceSink:
    """Incremental line-delimited JSON writer (one object per line)."""

    def __init__(self, path: PathLike):
        self._handle = open(Path(path), "w")
        self._indices: Dict[int, int] = {}
        self._count = 0

    def begin_run(self, run: RunTrace) -> None:
        index = self._count
        self._count += 1
        self._indices[id(run)] = index
        # Headers carry the run's *begin-time* meta snapshot: a live
        # stream writes this line before the scheduler finishes (and
        # possibly appends end-of-run metadata), so using the snapshot in
        # every path keeps streamed and replayed files byte-identical.
        header = {
            "type": "run",
            "index": index,
            "label": run.label,
            "scheduler": run.scheduler,
            "meta": dict(run.begin_meta),
        }
        self._handle.write(_dumps(header) + "\n")

    def event(self, run: RunTrace, event: TraceEvent) -> None:
        line = {"type": "event", "run": self._indices[id(run)], **event.to_dict()}
        self._handle.write(_dumps(line) + "\n")

    def close(self) -> None:
        self._handle.close()


def open_sink(path: PathLike, fmt: str):
    """Sink factory for the CLI: ``chrome`` or ``jsonl``."""
    if fmt == "chrome":
        return ChromeTraceSink(path)
    if fmt == "jsonl":
        return JsonlTraceSink(path)
    raise ValueError(f"unknown trace format {fmt!r}")


def replay_to_sink(tracer: Tracer, sink) -> None:
    """Feed a buffered tracer's runs through a sink, in order.

    This is how the buffered ``write_*`` helpers share the streaming
    code path: a buffered trace replayed through a sink is
    byte-identical to the same events streamed live.
    """
    for run in tracer.runs:
        sink.begin_run(run)
        for event in run.events:
            sink.event(run, event)


def chrome_trace_dict(tracer: Tracer) -> Dict[str, object]:
    """Render a buffered tracer as a Chrome trace document (JSON-native)."""
    events: List[Dict[str, object]] = []
    for pid, run in enumerate(tracer.runs):
        encoder = _ChromeRunEncoder(pid, run.label)
        events.extend(encoder.preamble())
        for event in run.events:
            events.extend(encoder.encode(event))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "runs": [run.label for run in tracer.runs],
        },
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Deterministically serialized Chrome trace document."""
    return _dumps(chrome_trace_dict(tracer))


def write_chrome_trace(path: PathLike, tracer: Tracer) -> None:
    """Stream a buffered tracer to ``path`` in Chrome trace format."""
    sink = ChromeTraceSink(path)
    try:
        replay_to_sink(tracer, sink)
    finally:
        sink.close()


def write_jsonl_trace(path: PathLike, tracer: Tracer) -> None:
    """Stream a buffered tracer to ``path`` as line-delimited JSON."""
    sink = JsonlTraceSink(path)
    try:
        replay_to_sink(tracer, sink)
    finally:
        sink.close()


def iter_jsonl_lines(
    path: PathLike, allow_partial: bool = False
) -> Iterator[Dict[str, object]]:
    """Yield parsed JSONL lines without loading the file into memory.

    With ``allow_partial=True`` a final line that fails to parse (a
    writer killed mid-line) is silently dropped; a malformed line
    anywhere else still raises.
    """
    pending_error: Optional[ValueError] = None
    with open(Path(path)) as handle:
        for lineno, line in enumerate(handle, start=1):
            if pending_error is not None:
                raise pending_error
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                if not allow_partial:
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
                # Defer: only the *last* line may be truncated.
                pending_error = ValueError(f"{path}:{lineno}: {exc}")
    # A deferred error on the final line is forgiven under allow_partial.


def read_jsonl_trace(path: PathLike, allow_partial: bool = False) -> Tracer:
    """Reload a JSONL trace into a :class:`Tracer` (events reconstructed)."""
    tracer = Tracer()
    current: Optional[RunTrace] = None
    for payload in iter_jsonl_lines(path, allow_partial=allow_partial):
        kind = payload.get("type")
        if kind == "run":
            current = tracer.begin_run(
                str(payload["label"]),
                scheduler=str(payload.get("scheduler", "")),
                meta=dict(payload.get("meta", {})),
            )
        elif kind == "event":
            if current is None:
                raise ValueError(f"{path}: event line before any run header")
            current.emit(TraceEvent.from_dict(payload))
        else:
            raise ValueError(f"{path}: unknown line type {payload.get('type')!r}")
    return tracer
