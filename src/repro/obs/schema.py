"""Minimal JSON schema for the Chrome trace export, plus a validator.

The schema pins exactly what Perfetto's legacy-JSON importer needs from
our files — the shape the CI smoke test freezes so format drift fails
fast.  It is expressed as a (subset of) JSON Schema for documentation
and hand-validated so the check runs without any third-party dependency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.events import EVENT_KINDS

#: JSON-Schema-style description of the emitted Chrome trace document.
CHROME_TRACE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"enum": ["M", "X", "i"]},
                    "cat": {"enum": list(EVENT_KINDS)},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "s": {"enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}


def validate_chrome_trace(document: object) -> List[str]:
    """Check ``document`` against :data:`CHROME_TRACE_SCHEMA`.

    Returns a list of human-readable violations (empty = valid).  The
    checks mirror the schema above; keeping them in plain Python avoids
    a ``jsonschema`` dependency in the test image.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    if "displayTimeUnit" in document and document["displayTimeUnit"] not in ("ms", "ns"):
        errors.append(f"displayTimeUnit invalid: {document['displayTimeUnit']!r}")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required key {key!r}")
        if not isinstance(event.get("name", ""), str):
            errors.append(f"{where}: name is not a string")
        ph = event.get("ph")
        if ph not in ("M", "X", "i"):
            errors.append(f"{where}: unexpected phase {ph!r}")
        for key in ("pid", "tid"):
            value = event.get(key, 0)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"{where}: {key} must be a non-negative integer")
        if ph in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
            cat = event.get("cat")
            if cat not in EVENT_KINDS:
                errors.append(f"{where}: unknown category {cat!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: duration event needs dur >= 0")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s in t/p/g")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args is not an object")
    return errors


def assert_valid_chrome_trace(document: object) -> None:
    """Raise ``ValueError`` listing every violation when invalid."""
    errors = validate_chrome_trace(document)
    if errors:
        preview = "; ".join(errors[:10])
        more = f" (+{len(errors) - 10} more)" if len(errors) > 10 else ""
        raise ValueError(f"invalid Chrome trace: {preview}{more}")
