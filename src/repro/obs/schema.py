"""Minimal JSON schemas for both trace exports, plus validators.

The Chrome schema pins exactly what Perfetto's legacy-JSON importer
needs from our files — the shape the CI smoke test freezes so format
drift fails fast.  The JSONL schema pins the line-delimited format the
streaming sink appends during a run, which is what the kill-mid-run
test checks line by line.  Both are expressed as (subsets of) JSON
Schema for documentation and hand-validated so the checks run without
any third-party dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.obs.events import EVENT_KINDS

#: Phases the Chrome export emits: metadata, complete spans, instants,
#: and the flow start/step/end triplet linking migration events.
CHROME_PHASES = ("M", "X", "i", "s", "t", "f")
FLOW_PHASES = ("s", "t", "f")

#: JSON-Schema-style description of the emitted Chrome trace document.
CHROME_TRACE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"enum": list(CHROME_PHASES)},
                    "cat": {"enum": list(EVENT_KINDS) + ["migration"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer", "minimum": 0},
                    "tid": {"type": "integer", "minimum": 0},
                    "s": {"enum": ["t", "p", "g"]},
                    "id": {"type": "integer", "minimum": 0},
                    "bp": {"enum": ["e"]},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}

#: JSON-Schema-style description of one JSONL trace line.
JSONL_LINE_SCHEMA: Dict[str, object] = {
    "oneOf": [
        {
            "type": "object",
            "required": ["type", "index", "label"],
            "properties": {
                "type": {"const": "run"},
                "index": {"type": "integer", "minimum": 0},
                "label": {"type": "string"},
                "scheduler": {"type": "string"},
                "meta": {"type": "object"},
            },
        },
        {
            "type": "object",
            "required": ["type", "run", "kind", "ts_us", "core"],
            "properties": {
                "type": {"const": "event"},
                "run": {"type": "integer", "minimum": 0},
                "kind": {"enum": list(EVENT_KINDS)},
                "ts_us": {"type": "number", "minimum": 0},
                "core": {"type": "integer"},
                "name": {"type": "string"},
                "dur_us": {"type": "number", "minimum": 0},
                "bs_id": {"type": "integer", "minimum": 0},
                "sf_index": {"type": "integer", "minimum": 0},
                "args": {"type": "object"},
            },
        },
    ],
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_chrome_trace(document: object) -> List[str]:
    """Check ``document`` against :data:`CHROME_TRACE_SCHEMA`.

    Returns a list of human-readable violations (empty = valid).  The
    checks mirror the schema above; keeping them in plain Python avoids
    a ``jsonschema`` dependency in the test image.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    if "displayTimeUnit" in document and document["displayTimeUnit"] not in ("ms", "ns"):
        errors.append(f"displayTimeUnit invalid: {document['displayTimeUnit']!r}")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing required key {key!r}")
        if not isinstance(event.get("name", ""), str):
            errors.append(f"{where}: name is not a string")
        ph = event.get("ph")
        if ph not in CHROME_PHASES:
            errors.append(f"{where}: unexpected phase {ph!r}")
        for key in ("pid", "tid"):
            value = event.get(key, 0)
            if not _is_int(value) or value < 0:
                errors.append(f"{where}: {key} must be a non-negative integer")
        if ph in ("X", "i", "s", "t", "f"):
            ts = event.get("ts")
            if not _is_number(ts) or ts < 0:
                errors.append(f"{where}: ts must be a non-negative number")
        if ph in ("X", "i"):
            cat = event.get("cat")
            if cat not in EVENT_KINDS:
                errors.append(f"{where}: unknown category {cat!r}")
        if ph == "X":
            dur = event.get("dur")
            if not _is_number(dur) or dur < 0:
                errors.append(f"{where}: duration event needs dur >= 0")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant event needs scope s in t/p/g")
        if ph in FLOW_PHASES:
            flow_id = event.get("id")
            if not _is_int(flow_id) or flow_id < 0:
                errors.append(f"{where}: flow event needs a non-negative integer id")
            if ph == "f" and event.get("bp") not in (None, "e"):
                errors.append(f"{where}: flow end bp must be 'e' when present")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: args is not an object")
    return errors


def assert_valid_chrome_trace(document: object) -> None:
    """Raise ``ValueError`` listing every violation when invalid."""
    errors = validate_chrome_trace(document)
    if errors:
        preview = "; ".join(errors[:10])
        more = f" (+{len(errors) - 10} more)" if len(errors) > 10 else ""
        raise ValueError(f"invalid Chrome trace: {preview}{more}")


def validate_jsonl_line(payload: object) -> List[str]:
    """Check one parsed JSONL trace line against :data:`JSONL_LINE_SCHEMA`."""
    if not isinstance(payload, dict):
        return ["line is not a JSON object"]
    kind = payload.get("type")
    if kind == "run":
        errors = []
        if not _is_int(payload.get("index")) or payload.get("index", -1) < 0:
            errors.append("run header needs a non-negative integer index")
        if not isinstance(payload.get("label"), str):
            errors.append("run header needs a string label")
        if "meta" in payload and not isinstance(payload["meta"], dict):
            errors.append("run meta is not an object")
        return errors
    if kind == "event":
        errors = []
        if not _is_int(payload.get("run")) or payload.get("run", -1) < 0:
            errors.append("event needs a non-negative integer run index")
        if payload.get("kind") not in EVENT_KINDS:
            errors.append(f"unknown event kind {payload.get('kind')!r}")
        if not _is_number(payload.get("ts_us")) or payload.get("ts_us", -1) < 0:
            errors.append("event needs ts_us >= 0")
        if not _is_int(payload.get("core")):
            errors.append("event needs an integer core")
        if "dur_us" in payload and (
            not _is_number(payload["dur_us"]) or payload["dur_us"] < 0
        ):
            errors.append("dur_us must be a non-negative number")
        if "args" in payload and not isinstance(payload["args"], dict):
            errors.append("args is not an object")
        return errors
    return [f"unknown line type {kind!r}"]


def validate_jsonl_trace(lines: Iterable[object]) -> List[str]:
    """Validate a sequence of parsed JSONL lines (order-aware).

    Checks every line against the line schema and that event lines only
    reference run headers already seen — the property that makes any
    prefix of a streamed file independently loadable.
    """
    errors: List[str] = []
    runs_seen = -1
    for i, payload in enumerate(lines):
        for error in validate_jsonl_line(payload):
            errors.append(f"line {i + 1}: {error}")
        if isinstance(payload, dict):
            if payload.get("type") == "run":
                index = payload.get("index")
                if _is_int(index):
                    if index != runs_seen + 1:
                        errors.append(
                            f"line {i + 1}: run index {index} out of order"
                        )
                    runs_seen = max(runs_seen, index)
            elif payload.get("type") == "event":
                run = payload.get("run")
                if _is_int(run) and run > runs_seen:
                    errors.append(
                        f"line {i + 1}: event references unseen run {run}"
                    )
    return errors
