"""The typed trace-event vocabulary.

One event type, :class:`TraceEvent`, carries every timeline entry; the
``kind`` field selects the semantics.  Span kinds (``dur_us > 0``) mark
core occupancy; instant kinds mark scheduling decisions and verdicts.
Timestamps are virtual microseconds from the owning scheduler run's
time zero (subframe 0's nominal radio start), exactly the resolution the
discrete-event engine works in.

Kinds
-----
``arrival``
    A subframe (or Tx job) reached its core's input queue; instant.
    ``core == -1`` for the global scheduler's shared queue.
``task``
    One pipeline stage (``fft``/``demod``/``decode``/``serial``)
    executing on its owning core; span.  Task spans are *busy* time.
``subtask``
    One migrated subtask executing on a helper core; span, always
    nested inside a ``migration_executed`` span (and therefore excluded
    from busy-time accounting to avoid double counting).
``migration_planned``
    Algorithm 1 decided to offload; instant on the owner core.  Args
    carry the task name, subtasks shipped, and target cores.
``migration_executed``
    One migrated batch occupying a helper core, from state fetch to
    completion or preemption; span.  Busy time on the helper.
``migration_returned``
    The owner collected a batch's results (and recomputed whatever was
    not ready); instant on the owner core.
``gap``
    Idle span between a core finishing a subframe and its next
    activation — the resource RT-OPEX harvests (Fig. 16).
``deadline``
    Per-subframe verdict at processing end; instant.  ``args["missed"]``
    is the scheduler's miss-or-drop flag, so summing these events
    reproduces ``SchedulerResult.miss_count()`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

ARRIVAL = "arrival"
TASK = "task"
SUBTASK = "subtask"
MIGRATION_PLANNED = "migration_planned"
MIGRATION_EXECUTED = "migration_executed"
MIGRATION_RETURNED = "migration_returned"
GAP = "gap"
DEADLINE = "deadline"

#: Every kind a well-formed trace may contain.
EVENT_KINDS = (
    ARRIVAL,
    TASK,
    SUBTASK,
    MIGRATION_PLANNED,
    MIGRATION_EXECUTED,
    MIGRATION_RETURNED,
    GAP,
    DEADLINE,
)

#: Span kinds that count as core busy time.  ``subtask`` spans nest
#: inside ``migration_executed`` spans and are deliberately excluded.
BUSY_KINDS = (TASK, MIGRATION_EXECUTED)

#: Kinds rendered as duration ("X") events in the Chrome export.
SPAN_KINDS = (TASK, SUBTASK, MIGRATION_EXECUTED, GAP)

#: Per-kind ``args`` vocabulary: every key an emit site may legally put
#: in :attr:`TraceEvent.args`.  The exporters, the sanitizer, the trace
#: statistics, and the replay validator all dispatch on these names, so
#: the set is closed by design — a new field is added *here first*,
#: then at the emit site (``repro.check analyze`` RTX010 enforces the
#: order).  The emit helpers in :class:`repro.obs.trace.RunTrace` only
#: ever populate keys from this table.
EVENT_ARG_FIELDS: Dict[str, "frozenset[str]"] = {
    ARRIVAL: frozenset(),
    TASK: frozenset({"cache_penalty_us"}),
    SUBTASK: frozenset({"preempted"}),
    MIGRATION_PLANNED: frozenset({"shipped", "targets", "batches"}),
    MIGRATION_EXECUTED: frozenset({"owner", "shipped", "completed", "batch"}),
    MIGRATION_RETURNED: frozenset({"completed", "recovered", "batch"}),
    GAP: frozenset({"usable"}),
    DEADLINE: frozenset({"missed", "drop_stage", "service"}),
}

#: ``--trace-kinds`` vocabulary: every concrete kind selects itself, and
#: the ``migration`` alias selects the whole planned/executed/returned
#: family so a filter spec does not need to spell out all three.
KIND_GROUPS: Dict[str, tuple] = {
    **{kind: (kind,) for kind in EVENT_KINDS},
    "migration": (MIGRATION_PLANNED, MIGRATION_EXECUTED, MIGRATION_RETURNED),
}


def resolve_kinds(spec) -> "frozenset[str]":
    """Expand a kind-filter spec into a concrete kind set.

    ``spec`` is a comma-separated string (``"deadline,migration,gap"``)
    or an iterable of names; each name must be a concrete kind or a
    :data:`KIND_GROUPS` alias.  Raises ``ValueError`` on unknown names.
    """
    if isinstance(spec, str):
        names = [name.strip() for name in spec.split(",") if name.strip()]
    else:
        names = [str(name) for name in spec]
    if not names:
        raise ValueError("empty trace-kind filter")
    kinds = set()
    for name in names:
        try:
            kinds.update(KIND_GROUPS[name])
        except KeyError:
            known = ", ".join(sorted(KIND_GROUPS))
            raise ValueError(
                f"unknown trace kind {name!r} (known: {known})"
            ) from None
    return frozenset(kinds)


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry of a scheduler run.

    ``core`` is the track the event belongs to (``-1`` = the shared
    queue / scheduling thread).  ``dur_us`` is zero for instants.
    ``args`` holds kind-specific detail and must stay JSON-native — the
    event crosses process boundaries and lands in the export verbatim.
    """

    kind: str
    ts_us: float
    core: int
    name: str = ""
    dur_us: float = 0.0
    bs_id: int = -1
    sf_index: int = -1
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us

    def to_dict(self) -> Dict[str, object]:
        """JSON-native form (the JSONL line and cross-process payload)."""
        out: Dict[str, object] = {
            "kind": self.kind,
            "ts_us": self.ts_us,
            "core": self.core,
        }
        if self.name:
            out["name"] = self.name
        if self.dur_us:
            out["dur_us"] = self.dur_us
        if self.bs_id >= 0:
            out["bs_id"] = self.bs_id
        if self.sf_index >= 0:
            out["sf_index"] = self.sf_index
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceEvent":
        return cls(
            kind=str(payload["kind"]),
            ts_us=float(payload["ts_us"]),
            core=int(payload["core"]),
            name=str(payload.get("name", "")),
            dur_us=float(payload.get("dur_us", 0.0)),
            bs_id=int(payload.get("bs_id", -1)),
            sf_index=int(payload.get("sf_index", -1)),
            args=dict(payload.get("args", {})),
        )
