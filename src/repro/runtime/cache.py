"""Content-addressed on-disk cache for experiment results.

Entries are keyed by a sha256 over the *identity* of a computation —
experiment id, unit key, scale, seed, unit parameters — plus a
fingerprint of the ``repro`` source tree, so editing any module under
``src/repro/`` automatically invalidates every cached result.  Payloads
are JSON (``ExperimentOutput.data`` / unit-result dicts), sharded as
``<root>/<key[:2]>/<key>.json`` with atomic writes so concurrent runs
sharing a cache directory never observe torn files.

The JSON round-trip canonicalizes container types (tuples and numpy
arrays become lists, non-string dict keys become strings): warm-cache
payloads are value-identical to cold ones but not type-identical.
Cold runs never read back through the cache, so serial/parallel
byte-identity is unaffected.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "RTOPEX_CACHE_DIR"

_fingerprint_cache: Dict[str, str] = {}


def default_cache_dir() -> Path:
    """``$RTOPEX_CACHE_DIR`` if set, else ``~/.cache/rtopex-repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "rtopex-repro"


def code_fingerprint() -> str:
    """sha256 over every ``.py`` file of the installed ``repro`` package.

    Computed once per process; part of every cache key, so results
    produced by a different code version can never be served.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    cache_key = str(root)
    if cache_key in _fingerprint_cache:
        return _fingerprint_cache[cache_key]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py"), key=lambda p: p.relative_to(root).as_posix()):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprint_cache[cache_key] = fingerprint
    return fingerprint


def _json_default(obj: object) -> object:
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(f"{type(obj).__name__} is not JSON-serializable")


class ResultCache:
    """Content-addressed experiment-result store with hit/miss counters."""

    def __init__(self, root: PathLike, fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(
        self,
        experiment_id: str,
        unit_key: str,
        scale: float,
        seed: int,
        params: Optional[Mapping[str, object]] = None,
    ) -> str:
        identity = {
            "experiment_id": experiment_id,
            "unit_key": unit_key,
            "scale": scale,
            "seed": seed,
            "params": dict(params) if params else {},
            "fingerprint": self.fingerprint,
        }
        blob = json.dumps(identity, sort_keys=True, default=_json_default)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload, or ``None`` (corrupt entries count as misses)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, default=_json_default)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entry_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
