"""Run telemetry: per-unit timings, cache counters, failure summary.

The runner records one :class:`UnitStat` per executed (or cache-served)
work unit and aggregates them into a :class:`RunReport` that the CLI
prints after every run and can export as JSON (``--json``) for CI
dashboards and regression tracking.
"""

from __future__ import annotations

import pstats
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Hotspot rows exported into the ``--json`` report under ``profile``.
PROFILE_TOP_N = 20


def profile_summary(profiler, limit: int = PROFILE_TOP_N) -> Dict[str, object]:
    """Condense a ``cProfile.Profile`` into the report's ``profile`` dict.

    The top ``limit`` functions by *cumulative* time — the view that
    surfaces the hot call chains (engine drain loop, planner windows)
    rather than leaf noise.  Rows are JSON-native so the dict drops
    straight into :meth:`RunReport.to_json_dict`.
    """
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, object]] = []
    for func in (stats.fcn_list or [])[:limit]:
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "calls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return {
        "total_time_s": round(stats.total_tt, 6),  # type: ignore[attr-defined]
        "total_calls": stats.total_calls,  # type: ignore[attr-defined]
        "top": rows,
    }


@dataclass
class UnitStat:
    """Telemetry for one work unit (a sweep point or a whole driver)."""

    experiment_id: str
    unit_key: str  # sweep-point key, or "__whole__" for undecomposed runs
    wall_s: float
    events: Optional[int] = None  # subframes processed; None if unknown
    cached: bool = False
    error: Optional[str] = None


@dataclass
class RunReport:
    """Aggregate view of one runner invocation."""

    jobs: int
    scale: float
    seed: int
    #: Experiment options of the run (e.g. fleet grid parameters); they
    #: are part of every whole-run/unit cache key, so exporting them
    #: makes a ``--json`` report self-describing: the artifact names the
    #: exact sweep it measured.
    options: Dict[str, str] = field(default_factory=dict)
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False
    #: Why the cache is off when the user did not ask for that (e.g.
    #: ``--trace`` forces it off); ``None`` when enabled or explicitly
    #: disabled with ``--no-cache``.
    cache_disabled_reason: Optional[str] = None
    units: List[UnitStat] = field(default_factory=list)
    #: experiment id -> error message, for drivers that raised.
    failures: Dict[str, str] = field(default_factory=dict)
    #: Tracer roll-up (runs/events/misses + output path) when ``--trace``
    #: was active; ``None`` for untraced runs.
    trace_summary: Optional[Dict[str, object]] = None
    #: Virtual-time sanitizer attestation (runs/events validated) when
    #: ``--sanitize`` was active; ``None`` for unsanitized runs.
    sanitizer_summary: Optional[Dict[str, object]] = None
    #: cProfile hotspot roll-up (see :func:`profile_summary`) when
    #: ``--profile`` was active; ``None`` for unprofiled runs.
    profile: Optional[Dict[str, object]] = None

    @property
    def experiment_ids(self) -> List[str]:
        seen: List[str] = []
        for stat in self.units:
            if stat.experiment_id not in seen:
                seen.append(stat.experiment_id)
        return seen

    def events_processed(self) -> int:
        """Total subframes processed across units that reported a count."""
        return sum(stat.events for stat in self.units if stat.events is not None)

    def compute_seconds(self) -> float:
        """Summed per-unit wall time (>= ``wall_s`` when running parallel)."""
        return sum(stat.wall_s for stat in self.units)

    def summary_text(self) -> str:
        executed = sum(1 for s in self.units if not s.cached and s.error is None)
        cached = sum(1 for s in self.units if s.cached)
        parts = [
            f"{len(self.experiment_ids)} experiments, {len(self.units)} units "
            f"({executed} executed, {cached} from cache)",
            f"jobs={self.jobs}",
        ]
        if self.cache_enabled:
            parts.append(f"cache {self.cache_hits} hits / {self.cache_misses} misses")
        else:
            parts.append("cache off")
        events = self.events_processed()
        if events:
            parts.append(f"{events} subframes")
        parts.append(f"{self.wall_s:.1f}s wall ({self.compute_seconds():.1f}s compute)")
        if self.trace_summary is not None:
            parts.append(
                "trace {runs} runs / {events} events -> {path}".format(
                    runs=self.trace_summary.get("runs", 0),
                    events=self.trace_summary.get("events", 0),
                    path=self.trace_summary.get("path", "?"),
                )
            )
        if self.sanitizer_summary is not None:
            parts.append(
                "sanitizer OK ({runs} runs / {events} events)".format(
                    runs=self.sanitizer_summary.get("runs", 0),
                    events=self.sanitizer_summary.get("events_checked", 0),
                )
            )
        if self.profile is not None:
            parts.append(
                "profiled {total_s}s / {calls} calls".format(
                    total_s=self.profile.get("total_time_s", 0),
                    calls=self.profile.get("total_calls", 0),
                )
            )
        lines = ["[runtime] " + " | ".join(parts)]
        if self.failures:
            failed = ", ".join(sorted(self.failures))
            lines.append(f"[runtime] FAILED: {failed}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "scale": self.scale,
            "seed": self.seed,
            "options": dict(self.options),
            "wall_s": self.wall_s,
            "compute_s": self.compute_seconds(),
            "events_processed": self.events_processed(),
            "cache": {
                "enabled": self.cache_enabled,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "disabled_reason": self.cache_disabled_reason,
            },
            "units": [
                {
                    "experiment_id": s.experiment_id,
                    "unit_key": s.unit_key,
                    "wall_s": s.wall_s,
                    "events": s.events,
                    "cached": s.cached,
                    "error": s.error,
                }
                for s in self.units
            ],
            "failures": dict(self.failures),
            "trace": self.trace_summary,
            "sanitizer": self.sanitizer_summary,
            "profile": self.profile,
        }
