"""Parallel experiment runtime: process-pool fan-out, result cache,
run telemetry.

This is the scaling layer the CLI (``python -m repro``), the benchmark
suite, and CI run experiments through::

    from repro.runtime import ExperimentRunner, ResultCache

    runner = ExperimentRunner(jobs=8, cache=ResultCache("~/.cache/rtopex-repro"))
    results, report = runner.run(["fig15", "fig17"], scale=0.2, seed=2016)

See :mod:`repro.runtime.engine` for the serial/parallel equivalence
contract and :mod:`repro.runtime.cache` for the cache layout.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    code_fingerprint,
    default_cache_dir,
)
from repro.runtime.engine import (
    WHOLE_UNIT_KEY,
    ExperimentResult,
    ExperimentRunner,
    outputs_match,
)
from repro.runtime.telemetry import RunReport, UnitStat

__all__ = [
    "CACHE_DIR_ENV",
    "ExperimentResult",
    "ExperimentRunner",
    "ResultCache",
    "RunReport",
    "UnitStat",
    "WHOLE_UNIT_KEY",
    "code_fingerprint",
    "default_cache_dir",
    "outputs_match",
]
