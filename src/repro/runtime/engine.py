"""Process-pool experiment runner with unit-level result caching.

The runner executes registered experiments three ways, always producing
the same ``ExperimentOutput``:

* **serial** (``jobs=1``): each driver runs inline, exactly as
  ``run_experiment`` would — the reference path;
* **parallel** (``jobs>1``): experiments that declare a
  :class:`~repro.experiments.base.SweepSpec` are decomposed into their
  independent work units (RTT/2 points, schedulers, core counts) and
  fanned out over a process pool together with the undecomposable
  experiments.  Unit results travel back by pickle, so parallel output
  is byte-identical to the serial run;
* **cached**: with a :class:`~repro.runtime.cache.ResultCache` attached,
  finished units and whole experiment outputs are stored on disk and
  warm reruns are served without executing any driver.

Worker processes are forked (POSIX only), so experiments registered at
runtime — including test-local ones — are visible to the pool.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import (
    Experiment,
    ExperimentOutput,
    UnitResult,
    WorkUnit,
    get_experiment,
)
from repro.runtime.cache import ResultCache
from repro.runtime.telemetry import RunReport, UnitStat

#: Unit key recorded for a whole (undecomposed) experiment run.
WHOLE_UNIT_KEY = "__whole__"


@dataclass
class ExperimentResult:
    """One experiment's outcome within a runner invocation."""

    experiment_id: str
    output: Optional[ExperimentOutput] = None
    error: Optional[str] = None
    wall_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


ResultCallback = Callable[[ExperimentResult], None]


def _output_payload(output: ExperimentOutput) -> Dict[str, object]:
    return {"title": output.title, "text": output.text, "data": output.data}


def _output_from_payload(experiment_id: str, payload: Dict[str, object]) -> ExperimentOutput:
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=str(payload["title"]),
        text=str(payload["text"]),
        data=dict(payload["data"]),
    )


# -- pool workers (module-level so they survive pickling) --------------------
#
# Workers are forked, so they inherit the parent's ambient tracer (see
# repro.obs).  Each worker function clears it before running (fork may
# have copied runs the parent already collected), detaches any streaming
# sink (the parent owns the file handle; workers must buffer), and
# drains the runs it produced into a picklable payload returned
# alongside the result; the parent re-emits payloads through its own
# filter/sink in deterministic experiment x unit order so the streamed
# trace is byte-identical to a serial run's.

def _clear_ambient_trace() -> None:
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    if tracer is not None:
        tracer.clear()
        tracer.sink = None


def _drain_ambient_trace() -> Optional[Dict[str, object]]:
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    if tracer is None:
        return None
    return tracer.drain_payload()


def _worker_whole(
    experiment_id: str,
    scale: float,
    seed: int,
    options: Optional[Dict[str, str]] = None,
) -> Tuple[ExperimentOutput, float, Optional[Dict[str, object]]]:
    from repro.experiments import run_experiment  # registration side effects

    _clear_ambient_trace()
    start = perf_counter()
    output = run_experiment(experiment_id, scale=scale, seed=seed, options=options)
    return output, perf_counter() - start, _drain_ambient_trace()


def _worker_unit(
    experiment_id: str, key: str, params: Dict[str, object], seed: int
) -> Tuple[UnitResult, float, Optional[Dict[str, object]]]:
    import repro.experiments  # noqa: F401  (registration side effects)

    exp = get_experiment(experiment_id)
    if exp.sweep is None:
        raise RuntimeError(f"experiment {experiment_id!r} has no sweep decomposition")
    unit = WorkUnit(experiment_id=experiment_id, key=key, params=params, seed=seed)
    _clear_ambient_trace()
    start = perf_counter()
    result = exp.sweep.run_unit(unit)
    return result, perf_counter() - start, _drain_ambient_trace()


class _TraceSpill:
    """Stream worker trace payloads to the parent tracer, in order.

    Slots are registered in serial-equivalent order (experiments x
    units) at submission time; payloads complete in pool-completion
    order.  A payload is ingested — and its memory released — as soon
    as every slot before it has completed, so the parent holds at most
    the out-of-order window instead of every payload until the end.
    Ingestion re-emits through the parent tracer's own filter and
    streaming sink, which is what keeps ``--jobs N`` trace files
    byte-identical to serial ones.
    """

    def __init__(self) -> None:
        self._payloads: List[Optional[Dict[str, object]]] = []
        self._done: List[bool] = []
        self._indices: Dict[Tuple[str, Optional[int]], int] = {}
        self._next = 0

    def register(self, experiment_id: str, index: Optional[int]) -> None:
        """Claim the next serial-order slot for (experiment, unit)."""
        self._indices[(experiment_id, index)] = len(self._payloads)
        self._payloads.append(None)
        self._done.append(False)

    def complete(
        self,
        experiment_id: str,
        index: Optional[int],
        payload: Optional[Dict[str, object]],
    ) -> None:
        """Deliver a slot's payload (``None`` for cached/failed units)."""
        slot = self._indices[(experiment_id, index)]
        self._payloads[slot] = payload
        self._done[slot] = True
        self._drain()

    def _drain(self) -> None:
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        while self._next < len(self._payloads) and self._done[self._next]:
            payload = self._payloads[self._next]
            self._payloads[self._next] = None
            self._next += 1
            if payload is not None and tracer is not None:
                tracer.ingest_payload(payload)


class ExperimentRunner:
    """Fan experiments (and their sweep units) out over a process pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` runs everything inline.
    cache:
        Optional on-disk result cache shared by units and whole runs.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        # Options of the in-flight run() call; set per invocation.
        self._options: Dict[str, str] = {}

    def _opts_for(self, exp: Experiment) -> Dict[str, str]:
        """The subset of the run's options this experiment declares."""
        return {k: v for k, v in self._options.items() if k in exp.options}

    # -- cache plumbing ------------------------------------------------------

    def _cached_whole(
        self, exp: Experiment, scale: float, seed: int, options: Dict[str, str]
    ) -> Optional[ExperimentOutput]:
        if self.cache is None:
            return None
        # An empty options dict hashes identically to the pre-options
        # cache key, so existing caches stay warm for default runs.
        key = self.cache.key(
            exp.experiment_id, WHOLE_UNIT_KEY, scale, seed, options or None
        )
        payload = self.cache.get(key)
        if payload is None:
            return None
        return _output_from_payload(exp.experiment_id, payload)

    def _store_whole(
        self,
        exp: Experiment,
        scale: float,
        seed: int,
        output: ExperimentOutput,
        options: Dict[str, str],
    ) -> None:
        if self.cache is None:
            return
        key = self.cache.key(
            exp.experiment_id, WHOLE_UNIT_KEY, scale, seed, options or None
        )
        self.cache.put(key, _output_payload(output))

    def _unit_key(self, unit: WorkUnit, scale: float) -> str:
        assert self.cache is not None
        return self.cache.key(
            unit.experiment_id, unit.key, scale, unit.seed, unit.params
        )

    # -- public API ----------------------------------------------------------

    def run(
        self,
        ids: Sequence[str],
        scale: float = 1.0,
        seed: int = 2016,
        on_result: Optional[ResultCallback] = None,
        options: Optional[Dict[str, str]] = None,
    ) -> Tuple[List[ExperimentResult], RunReport]:
        """Run experiments, containing driver failures.

        Unknown ids raise ``KeyError`` up front; a driver (or sweep
        unit) that raises marks only its experiment failed — the rest
        of the batch completes and the failure lands in
        ``report.failures``.  ``on_result`` fires once per experiment
        as it finishes (completion order under ``jobs>1``); the
        returned list is always in ``ids`` order.  ``options`` are
        forwarded to each experiment that declares them (undeclared
        options are dropped per-experiment, so a batch mixing
        option-aware and plain experiments works).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        experiments = [get_experiment(experiment_id) for experiment_id in ids]
        self._options = dict(options or {})
        report = RunReport(
            jobs=self.jobs, scale=scale, seed=seed,
            options=dict(self._options),
            cache_enabled=self.cache is not None,
        )
        hits0, misses0 = (
            (self.cache.hits, self.cache.misses) if self.cache else (0, 0)
        )
        start = perf_counter()
        if self.jobs == 1:
            results = self._run_serial(experiments, scale, seed, report, on_result)
        else:
            results = self._run_parallel(experiments, scale, seed, report, on_result)
        report.wall_s = perf_counter() - start
        if self.cache is not None:
            report.cache_hits = self.cache.hits - hits0
            report.cache_misses = self.cache.misses - misses0
        for result in results:
            if result.error is not None:
                report.failures[result.experiment_id] = result.error
        return results, report

    # -- serial path ---------------------------------------------------------

    def _run_serial(
        self,
        experiments: Sequence[Experiment],
        scale: float,
        seed: int,
        report: RunReport,
        on_result: Optional[ResultCallback],
    ) -> List[ExperimentResult]:
        results = []
        for exp in experiments:
            start = perf_counter()
            opts = self._opts_for(exp)
            cached = self._cached_whole(exp, scale, seed, opts)
            if cached is not None:
                result = ExperimentResult(
                    exp.experiment_id, output=cached,
                    wall_s=perf_counter() - start, cached=True,
                )
            else:
                try:
                    output = exp.fn(scale, seed, **opts)
                except Exception:
                    result = ExperimentResult(
                        exp.experiment_id,
                        error=traceback.format_exc(limit=8),
                        wall_s=perf_counter() - start,
                    )
                else:
                    result = ExperimentResult(
                        exp.experiment_id, output=output,
                        wall_s=perf_counter() - start,
                    )
                    self._store_whole(exp, scale, seed, output, opts)
            report.units.append(
                UnitStat(
                    experiment_id=exp.experiment_id,
                    unit_key=WHOLE_UNIT_KEY,
                    wall_s=result.wall_s,
                    cached=result.cached,
                    error=result.error,
                )
            )
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    # -- parallel path -------------------------------------------------------

    def _run_parallel(
        self,
        experiments: Sequence[Experiment],
        scale: float,
        seed: int,
        report: RunReport,
        on_result: Optional[ResultCallback],
    ) -> List[ExperimentResult]:
        results: Dict[str, ExperimentResult] = {}
        # Per decomposed experiment: its units, gathered unit results
        # (by position), and how many are still outstanding.
        unit_lists: Dict[str, List[WorkUnit]] = {}
        unit_results: Dict[str, List[Optional[UnitResult]]] = {}
        pending_units: Dict[str, int] = {}
        submitted_units: Dict[str, int] = {}
        exp_wall: Dict[str, float] = {}
        # In-order streaming of worker trace payloads to the tracer;
        # slots are registered at submission time (serial order).
        spill = _TraceSpill()

        def finish(result: ExperimentResult) -> None:
            results[result.experiment_id] = result
            if on_result is not None:
                on_result(result)

        def combine_ready(exp: Experiment) -> None:
            experiment_id = exp.experiment_id
            gathered = unit_results[experiment_id]
            try:
                output = exp.sweep.combine(list(gathered), scale, seed)
            except Exception:
                finish(
                    ExperimentResult(
                        experiment_id,
                        error=traceback.format_exc(limit=8),
                        wall_s=exp_wall.get(experiment_id, 0.0),
                    )
                )
                return
            self._store_whole(exp, scale, seed, output, self._opts_for(exp))
            finish(
                ExperimentResult(
                    experiment_id, output=output,
                    wall_s=exp_wall.get(experiment_id, 0.0),
                    cached=submitted_units.get(experiment_id, 0) == 0,
                )
            )

        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=self.jobs, mp_context=ctx) as pool:
            future_meta = {}  # future -> (experiment, unit index or None)
            for exp in experiments:
                opts = self._opts_for(exp)
                cached = self._cached_whole(exp, scale, seed, opts)
                if cached is not None:
                    report.units.append(
                        UnitStat(exp.experiment_id, WHOLE_UNIT_KEY, 0.0, cached=True)
                    )
                    finish(
                        ExperimentResult(exp.experiment_id, output=cached, cached=True)
                    )
                    continue
                if exp.sweep is not None:
                    if exp.sweep.takes_options:
                        units = exp.sweep.units(scale, seed, opts)
                    else:
                        units = exp.sweep.units(scale, seed)
                    unit_lists[exp.experiment_id] = units
                    unit_results[exp.experiment_id] = [None] * len(units)
                    pending_units[exp.experiment_id] = 0
                    submitted_units[exp.experiment_id] = 0
                    exp_wall[exp.experiment_id] = 0.0
                    for i, unit in enumerate(units):
                        payload = (
                            self.cache.get(self._unit_key(unit, scale))
                            if self.cache is not None
                            else None
                        )
                        if payload is not None:
                            unit_results[exp.experiment_id][i] = payload
                            report.units.append(
                                UnitStat(
                                    exp.experiment_id, unit.key, 0.0,
                                    events=payload.get("events"), cached=True,
                                )
                            )
                            continue
                        pending_units[exp.experiment_id] += 1
                        submitted_units[exp.experiment_id] += 1
                        future = pool.submit(
                            _worker_unit,
                            exp.experiment_id, unit.key, dict(unit.params), unit.seed,
                        )
                        future_meta[future] = (exp, i)
                        spill.register(exp.experiment_id, i)
                    if pending_units[exp.experiment_id] == 0:
                        combine_ready(exp)
                else:
                    future = pool.submit(
                        _worker_whole, exp.experiment_id, scale, seed, opts
                    )
                    future_meta[future] = (exp, None)
                    spill.register(exp.experiment_id, None)

            outstanding = set(future_meta)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    exp, index = future_meta.pop(future)
                    experiment_id = exp.experiment_id
                    try:
                        value, wall_s, trace_payload = future.result()
                    except Exception:
                        error = traceback.format_exc(limit=8)
                        spill.complete(experiment_id, index, None)
                        unit_key = (
                            WHOLE_UNIT_KEY if index is None
                            else unit_lists[experiment_id][index].key
                        )
                        report.units.append(
                            UnitStat(experiment_id, unit_key, 0.0, error=error)
                        )
                        if experiment_id not in results:
                            finish(ExperimentResult(experiment_id, error=error))
                        continue
                    spill.complete(experiment_id, index, trace_payload)
                    if index is None:
                        report.units.append(
                            UnitStat(experiment_id, WHOLE_UNIT_KEY, wall_s)
                        )
                        self._store_whole(exp, scale, seed, value, self._opts_for(exp))
                        finish(
                            ExperimentResult(experiment_id, output=value, wall_s=wall_s)
                        )
                        continue
                    unit = unit_lists[experiment_id][index]
                    unit_results[experiment_id][index] = value
                    exp_wall[experiment_id] += wall_s
                    report.units.append(
                        UnitStat(
                            experiment_id, unit.key, wall_s,
                            events=value.get("events"),
                        )
                    )
                    if self.cache is not None:
                        self.cache.put(self._unit_key(unit, scale), value)
                    pending_units[experiment_id] -= 1
                    if pending_units[experiment_id] == 0 and experiment_id not in results:
                        combine_ready(exp)

        ordered = []
        for exp in experiments:
            result = results.get(exp.experiment_id)
            if result is None:  # every unit failed before combining
                result = ExperimentResult(
                    exp.experiment_id, error="no unit results produced"
                )
            ordered.append(result)
        return ordered


def outputs_match(a: ExperimentOutput, b: ExperimentOutput) -> bool:
    """Structural equality of two outputs, treating NaN == NaN.

    Used by the determinism tests and the benchmark assertions to check
    parallel/serial equivalence.
    """
    return (
        a.experiment_id == b.experiment_id
        and a.title == b.title
        and a.text == b.text
        and _values_match(a.data, b.data)
    )


def _values_match(a: object, b: object) -> bool:
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _values_match(a[k], b[k]) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_values_match(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    return type(a) is type(b) and a == b
