"""Fig. 18: processing times of local vs migrated tasks.

The paper measures the migration overhead directly: the median FFT task
grows from 108 us to 126 us when migrated (+18 us), decode overhead is
~20 us — a fixed cost corresponding to fetching the shared OAI state.
We regenerate the local/migrated distributions from the task graph plus
the migration-cost and remote-noise models.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register
from repro.lte.subframe import UplinkGrant
from repro.timing.cache import MigrationCostModel
from repro.timing.model import LinearTimingModel
from repro.timing.platform import PlatformNoiseModel
from repro.timing.tasks import build_subframe_work


@register("fig18", "Local vs migrated task processing times")
def run(scale: float, seed: int) -> ExperimentOutput:
    rng = np.random.default_rng(seed)
    trials = max(2000, int(100_000 * scale))
    model = LinearTimingModel()
    cost = MigrationCostModel()
    noise = PlatformNoiseModel(spike_probability=0.0, tail_probability=0.0)
    grant = UplinkGrant(mcs=27, num_prbs=50, num_antennas=2)
    work = build_subframe_work(model, grant, [2] * grant.code_blocks, max_iterations=4)

    results = {}
    for task_name in ("fft", "decode"):
        task = work.task(task_name)
        base = task.serial_duration_us
        local = base + noise.draw(rng, trials) - noise.base_mean_us
        migrated = local + np.array([cost.draw(rng) for _ in range(trials)])
        results[task_name] = (local, migrated)

    table = Table(
        ["task", "local median (us)", "migrated median (us)", "overhead (us)"],
        title="Fig. 18 (reproduced): MCS 27, N=2",
    )
    data = {}
    for task_name, (local, migrated) in results.items():
        lm, mm = float(np.median(local)), float(np.median(migrated))
        table.add_row([task_name, lm, mm, mm - lm])
        data[task_name] = {"local_median": lm, "migrated_median": mm}
    note = "paper anchors: FFT 108 -> 126 us (+18 us); decode overhead ~20 us"
    return ExperimentOutput(
        experiment_id="fig18",
        title="Migration overhead",
        text=table.render() + "\n" + note,
        data=data,
    )
