"""Fig. 6: distribution of the cloud-network one-way delay.

The paper measures 1000 packets/s between an external host and a cloud
resource over 1 GbE and 10 GbE: a ~0.15 ms mean with a long tail where
~1 in 1e4 packets exceeds 0.25 ms on both links.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.analysis.stats import summarize, tail_fraction
from repro.experiments.base import ExperimentOutput, register
from repro.transport.cloud import CloudNetworkModel


@register("fig6", "Cloud network one-way delay distribution (1/10 GbE)")
def run(scale: float, seed: int) -> ExperimentOutput:
    rng = np.random.default_rng(seed)
    packets = max(20_000, int(1_000_000 * scale))
    table = Table(
        ["link", "mean (us)", "p50", "p99", "p99.99", "max", "P(>250us)"],
        title="Fig. 6 (reproduced)",
    )
    data = {}
    for rate in (1.0, 10.0):
        model = CloudNetworkModel(rate_gbps=rate)
        samples = model.measure(rng, packets)
        s = summarize(samples)
        p9999 = float(np.percentile(samples, 99.99))
        tail = tail_fraction(samples, 250.0)
        table.add_row([f"{int(rate)} GbE", s["mean"], s["p50"], s["p99"], p9999, s["max"], tail])
        data[f"{int(rate)}gbe"] = {**s, "p9999": p9999, "tail_250us": tail}
    note = "paper anchors: mean ~150 us; ~1e-4 of packets above 250 us on both links"
    return ExperimentOutput(
        experiment_id="fig6",
        title="Cloud network delay",
        text=table.render() + "\n" + note,
        data=data,
    )
