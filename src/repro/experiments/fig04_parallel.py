"""Fig. 4: task execution times when parallelized over two cores.

The paper splits the FFT task (14 OFDM symbols x 2 antennas) and the
decode task (6 code blocks at MCS 27) over two cores: FFT nearly halves
(max 6 us overhead) and decode drops from 980 us to 670 us (310 us
saved).  We regenerate both numbers from the task graph plus the
migration cost model.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register
from repro.lte.subframe import UplinkGrant
from repro.sched.migration import plan_migration
from repro.timing.model import LinearTimingModel
from repro.timing.tasks import build_subframe_work


def _two_core_time(subtask_durations, serial_us, batch_overhead_us, per_subtask_us):
    """Makespan of a task split over two cores (local + one helper)."""
    decision = plan_migration(
        len(subtask_durations),
        max(subtask_durations),
        batch_overhead_us / max(1, len(subtask_durations) // 2) + per_subtask_us,
        [(1, 10_000.0)],  # one helper with an ample window
    )
    local = serial_us + sum(subtask_durations[: decision.local_subtasks])
    shipped = subtask_durations[decision.local_subtasks :]
    remote = batch_overhead_us + sum(d + per_subtask_us for d in shipped) if shipped else 0.0
    return max(local, serial_us + remote), decision.migrated_subtasks


@register("fig4", "FFT and decode task times on one vs two cores")
def run(scale: float, seed: int) -> ExperimentOutput:
    del scale, seed
    model = LinearTimingModel()
    grant = UplinkGrant(mcs=27, num_prbs=50, num_antennas=2)
    # Decode at two iterations per block: the operating point of Fig. 4(b).
    work = build_subframe_work(model, grant, [2] * grant.code_blocks, max_iterations=4)

    fft = work.task("fft")
    fft_sub = [s.duration_us for s in fft.subtasks]
    fft_serial = fft.serial_duration_us
    fft_two, fft_moved = _two_core_time(fft_sub, fft.serial_us, 6.0, 0.0)

    decode = work.task("decode")
    dec_sub = [s.duration_us for s in decode.subtasks]
    dec_serial = decode.serial_duration_us
    dec_two, dec_moved = _two_core_time(dec_sub, decode.serial_us, 20.0, 0.5)

    table = Table(
        ["task", "1 core (us)", "2 cores (us)", "saved (us)", "subtasks moved"],
        title="Fig. 4 (reproduced): MCS 27, N=2",
    )
    table.add_row(["fft", fft_serial, fft_two, fft_serial - fft_two, fft_moved])
    table.add_row(["decode", dec_serial, dec_two, dec_serial - dec_two, dec_moved])
    note = (
        "paper anchors: FFT nearly halves with <=6 us overhead; "
        "decode 980 -> 670 us (310 us saved)"
    )
    return ExperimentOutput(
        experiment_id="fig4",
        title="Two-core task parallelization",
        text=table.render() + "\n" + note,
        data={
            "fft": {"serial": fft_serial, "two_core": fft_two},
            "decode": {"serial": dec_serial, "two_core": dec_two},
        },
    )
