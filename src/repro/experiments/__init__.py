"""Experiment drivers: one module per paper table/figure.

Each driver registers itself under the artifact's id (``table1``,
``fig15``, ...) and returns an :class:`~repro.experiments.base.ExperimentOutput`
containing the regenerated rows/series as text plus the raw data.  Run
them via ``python -m repro <id>`` or through the benchmark suite.
"""

from repro.experiments.base import (
    ExperimentOutput,
    get_experiment,
    list_experiments,
    run_experiment,
)

# Import for registration side effects.
from repro.experiments import (  # noqa: F401  (registration imports)
    ext_fleet,
    ext_harq,
    ext_mixed,
    ext_multiuser,
    ext_pooling,
    ext_txload,
    ext_virtualization,
    fig01_traces,
    fig03_processing,
    fig04_parallel,
    fig06_cloud,
    fig07_warp,
    fig14_load_cdf,
    fig15_deadline,
    fig16_gaps,
    fig17_load,
    fig18_overhead,
    fig19_global,
    table1,
    table2,
)

__all__ = ["ExperimentOutput", "get_experiment", "list_experiments", "run_experiment"]
