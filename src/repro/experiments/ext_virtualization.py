"""Extension: virtualization platforms (the paper's stated future work).

Sec. 4.2 defers "evaluation with virtualization platforms such as
containers" to future work.  This experiment runs the Fig. 15 point at
RTT/2 = 500 us on three execution environments — native, container,
VM — by scaling Eq. (1) and swapping the platform-noise model
(:mod:`repro.timing.virtualization`).  Expected ordering per the
literature the paper cites: container close to native, hypervisor VM
clearly behind; RT-OPEX's advantage survives on all three.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.timing.virtualization import standard_profiles


@register("ext-virt", "Native vs container vs VM platforms (extension)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = max(1000, scaled_subframes(scale) // 2)
    cfg = CRanConfig(transport_latency_us=500.0)
    table = Table(
        ["platform", "partitioned", "global-8", "rt-opex"],
        title=f"Deadline-miss rate per platform, RTT/2=500us ({num_subframes} subframes/BS)",
    )
    data = {}
    for name, profile in standard_profiles().items():
        jobs = build_workload(
            cfg,
            num_subframes,
            seed=seed,
            timing_model=profile.scaled_timing_model(),
            noise_model=profile.noise,
        )
        row = {"partitioned": None, "global": None, "rt-opex": None}
        row["partitioned"] = run_scheduler("partitioned", cfg, jobs, seed=seed).miss_rate()
        cfg_g = CRanConfig(transport_latency_us=500.0, num_cores=8)
        row["global"] = run_scheduler("global", cfg_g, jobs, seed=seed).miss_rate()
        row["rt-opex"] = run_scheduler("rt-opex", cfg, jobs, seed=seed).miss_rate()
        table.add_row([name, row["partitioned"], row["global"], row["rt-opex"]])
        data[name] = row
    return ExperimentOutput(
        experiment_id="ext-virt",
        title="Virtualization platforms",
        text=table.render(),
        data=data,
    )
