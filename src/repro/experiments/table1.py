"""Table 1: linear-model coefficient estimates and goodness of fit.

Reproduces the paper's methodology: collect uplink processing-time
measurements over MCS 0-27, SNR 0-30 dB, and 1/2/4 antennas (Lm = 4),
note the load D and iteration count L for each, and run a linear
regression of Eq. (1).  The paper reports (31.4, 169.1, 49.7, 93.0) us
with r^2 = 0.992 from 4e6 measurements; at ``scale=1`` we draw 4e5
(the regression is converged far below that).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.constants import TABLE1_R2, W0_US, W1_US, W2_US, W3_US
from repro.experiments.base import ExperimentOutput, register
from repro.lte.mcs import max_mcs, modulation_order, subcarrier_load
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel, fit_linear_model
from repro.timing.platform import PlatformNoiseModel


def generate_measurements(num_samples: int, seed: int):
    """Simulated measurement campaign over the paper's sweep grid."""
    rng = np.random.default_rng(seed)
    model = LinearTimingModel()
    iterations = IterationModel(max_iterations=4)
    noise = PlatformNoiseModel()

    mcs = rng.integers(0, max_mcs() + 1, size=num_samples)
    snr = rng.uniform(0.0, 30.0, size=num_samples)
    antennas = rng.choice([1, 2, 4], size=num_samples)
    q_m = np.array([modulation_order(int(m)) for m in range(max_mcs() + 1)])[mcs]
    load = np.array([subcarrier_load(int(m)) for m in range(max_mcs() + 1)])[mcs]
    iters = iterations.draw_array(mcs, snr, rng)

    coeffs = model.coefficients
    # The paper's measured w0 already absorbs the mean kernel jitter (the
    # error E in Fig. 3(d) is the *excess* over the fit), so the noise is
    # centred before being added to the synthetic measurements.
    excess = noise.draw(rng, num_samples) - noise.base_mean_us
    times = (
        coeffs.w0
        + coeffs.w1 * antennas
        + coeffs.w2 * q_m
        + coeffs.w3 * load * iters
        + excess
    )
    return antennas, q_m, load * iters, times


@register("table1", "Model parameter estimates (us) and fit quality")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_samples = max(2000, int(400_000 * scale))
    antennas, q_m, load_iters, times = generate_measurements(num_samples, seed)
    fit = fit_linear_model(antennas, q_m, load_iters, times)

    table = Table(["platform", "w0", "w1", "w2", "w3", "r2"], title="Table 1 (reproduced)")
    c = fit.coefficients
    table.add_row(["GPP (paper)", W0_US, W1_US, W2_US, W3_US, TABLE1_R2])
    table.add_row(["GPP (ours)", c.w0, c.w1, c.w2, c.w3, fit.r_squared])
    text = table.render() + f"\n(samples: {num_samples})"
    return ExperimentOutput(
        experiment_id="table1",
        title="Eq. (1) regression",
        text=text,
        data={
            "w": [c.w0, c.w1, c.w2, c.w3],
            "paper_w": [W0_US, W1_US, W2_US, W3_US],
            "r_squared": fit.r_squared,
            "samples": num_samples,
        },
    )
