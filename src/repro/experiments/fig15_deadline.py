"""Fig. 15: deadline-miss rate vs transport latency — the headline result.

Four basestations (N = 2, 10 MHz, 100% PRB, SNR 30 dB) on one GPP node;
RTT/2 swept over 400-700 us.  Schedulers: partitioned (2 cores/BS),
global with 8 and 16 cores, and RT-OPEX.  Expected shape (paper):

* RT-OPEX virtually zero below 500 us and about an order of magnitude
  below partitioned/global throughout (1e-2 -> 1e-3);
* partitioned rising once RTT/2 exceeds 400 us (budget < 1600 us);
* global slightly worse than partitioned and not improved by doubling
  the cores from 8 to 16.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import Table
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.sched import CRanConfig, build_workload, run_scheduler

RTT_SWEEP_US = (400.0, 450.0, 500.0, 550.0, 600.0, 650.0, 700.0)

_SERIES = ("partitioned", "global-8", "global-16", "rt-opex")


def _rates_at(rtt: float, num_subframes: int, seed: int) -> Dict[str, float]:
    """Miss rate of every scheduler at one RTT/2 point (paired workload)."""
    cfg = CRanConfig(transport_latency_us=rtt)
    jobs = build_workload(cfg, num_subframes, seed=seed)
    rates = {
        "partitioned": run_scheduler("partitioned", cfg, jobs).miss_rate(),
        "rt-opex": run_scheduler("rt-opex", cfg, jobs).miss_rate(),
    }
    for cores in (8, 16):
        cfg_g = CRanConfig(transport_latency_us=rtt, num_cores=cores)
        rates[f"global-{cores}"] = run_scheduler("global", cfg_g, jobs).miss_rate()
    return rates


def sweep(num_subframes: int, seed: int, rtts=RTT_SWEEP_US) -> Dict[str, List[float]]:
    """Run the full scheduler comparison; returns miss-rate series."""
    series: Dict[str, List[float]] = {name: [] for name in _SERIES}
    for rtt in rtts:
        rates = _rates_at(rtt, num_subframes, seed)
        for name in _SERIES:
            series[name].append(rates[name])
    return series


def _render(series: Dict[str, List[float]], num_subframes: int) -> ExperimentOutput:
    table = Table(
        ["RTT/2 (us)", "partitioned", "global-8", "global-16", "rt-opex"],
        title=f"Fig. 15 (reproduced): deadline-miss rate, {num_subframes} subframes/BS",
    )
    for i, rtt in enumerate(RTT_SWEEP_US):
        table.add_row([rtt] + [series[name][i] for name in _SERIES])
    return ExperimentOutput(
        experiment_id="fig15",
        title="Deadline-miss vs transport latency",
        text=table.render(),
        data={"rtt_us": list(RTT_SWEEP_US), **series},
    )


@register("fig15", "Deadline-miss rate vs RTT/2 for all schedulers")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    return _render(sweep(num_subframes, seed), num_subframes)


# -- sweep decomposition: one unit per RTT/2 point ---------------------------

def _units(scale: float, seed: int) -> List[WorkUnit]:
    num_subframes = scaled_subframes(scale)
    return [
        WorkUnit(
            experiment_id="fig15",
            key=f"rtt={rtt:g}",
            params={"rtt_us": rtt, "num_subframes": num_subframes},
            seed=seed,
        )
        for rtt in RTT_SWEEP_US
    ]


def _run_unit(unit: WorkUnit) -> UnitResult:
    num_subframes = int(unit.params["num_subframes"])
    rates = _rates_at(float(unit.params["rtt_us"]), num_subframes, unit.seed)
    return {"data": rates, "events": num_subframes}


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    series = {name: [r["data"][name] for r in results] for name in _SERIES}
    return _render(series, scaled_subframes(scale))


attach_sweep("fig15", SweepSpec(units=_units, run_unit=_run_unit, combine=_combine))
