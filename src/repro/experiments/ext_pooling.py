"""Extension: resource pooling vs peak provisioning (sec. 1's 22% claim).

"Resource pooling has been shown to achieve 22% reduction in compute
resources [15]."  This extension quantifies that claim on our own
workload: per-basestation peak provisioning vs one statistical
reservation for the whole node, across fleet sizes and provisioning
quantiles.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.placement import (
    peak_cores_required,
    place_basestations,
    pooled_cores_required,
    pooling_savings,
)
from repro.sched import CRanConfig, build_workload
from repro.workload.traces import BasestationTraceConfig, CellularTraceGenerator


def _fleet_jobs(num_bs: int, num_subframes: int, seed: int):
    base = [
        BasestationTraceConfig(mean=0.62, slow_std=0.18, fast_std=0.12),
        BasestationTraceConfig(mean=0.52, slow_std=0.16, fast_std=0.11),
        BasestationTraceConfig(mean=0.42, slow_std=0.15, fast_std=0.10),
        BasestationTraceConfig(mean=0.33, slow_std=0.13, fast_std=0.09),
    ]
    configs = [base[i % len(base)] for i in range(num_bs)]
    loads = CellularTraceGenerator(configs, seed=seed).generate(num_subframes)
    cfg = CRanConfig(num_basestations=num_bs, transport_latency_us=500.0)
    return build_workload(cfg, num_subframes, seed=seed, loads=loads)


@register("ext-pooling", "Resource pooling vs peak provisioning (extension)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = max(1000, scaled_subframes(scale) // 3)
    table = Table(
        ["basestations", "quantile", "peak cores", "pooled cores", "saving"],
        title=f"Pooling study ({num_subframes} subframes/BS)",
    )
    data = {"rows": []}
    for num_bs in (4, 8, 16):
        jobs = _fleet_jobs(num_bs, num_subframes, seed)
        for quantile in (0.99, 0.999):
            peak = peak_cores_required(jobs, quantile)
            pooled = pooled_cores_required(jobs, quantile)
            saving = pooling_savings(jobs, quantile)
            table.add_row([num_bs, quantile, peak, pooled, saving])
            data["rows"].append(
                {"bs": num_bs, "quantile": quantile, "peak": peak,
                 "pooled": pooled, "saving": saving}
            )

    # Placement demo: pack the 16-cell fleet onto 8-core nodes.
    jobs16 = _fleet_jobs(16, num_subframes, seed)
    placement = place_basestations(jobs16, cores_per_node=8, quantile=0.999)
    note = (
        f"16 cells pack onto {placement.node_count} statistically provisioned "
        f"8-core nodes (vs {-(-peak_cores_required(jobs16, 0.999) // 8)} "
        "peak-provisioned nodes)"
    )
    data["nodes_pooled"] = placement.node_count
    return ExperimentOutput(
        experiment_id="ext-pooling",
        title="Resource pooling",
        text=table.render() + "\n" + note,
        data=data,
    )
