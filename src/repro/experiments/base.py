"""Experiment registry and shared evaluation defaults."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.constants import DEFAULT_TRACE_SUBFRAMES

#: Default seed for every experiment (the paper's publication year).
DEFAULT_SEED = 2016


@dataclass
class ExperimentOutput:
    """What an experiment driver returns.

    ``text`` is the regenerated table/series rendered for the terminal;
    ``data`` holds the raw numbers so tests and EXPERIMENTS.md tooling
    can assert on them without re-parsing text.
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return f"{header}\n{self.text}"


#: Driver signature: (scale, seed) -> ExperimentOutput.
ExperimentFn = Callable[[float, int], ExperimentOutput]


@dataclass(frozen=True)
class Experiment:
    experiment_id: str
    title: str
    fn: ExperimentFn


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment_id: str, title: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering a driver under its artifact id."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(experiment_id, title, fn)
        return fn

    return wrap


def list_experiments() -> List[Experiment]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_experiment(experiment_id: str) -> Experiment:
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def run_experiment(experiment_id: str, scale: float = 1.0, seed: int = DEFAULT_SEED) -> ExperimentOutput:
    """Run one registered experiment.

    ``scale`` shrinks the sample sizes proportionally (CI/benchmarks use
    small scales; ``1.0`` reproduces the paper-sized runs).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return get_experiment(experiment_id).fn(scale, seed)


def scaled_subframes(scale: float, minimum: int = 500) -> int:
    """Trace length for scheduler experiments at a given scale."""
    return max(minimum, int(DEFAULT_TRACE_SUBFRAMES * scale))
