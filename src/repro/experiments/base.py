"""Experiment registry, shared evaluation defaults, and the sweep-point
decomposition API the parallel runtime fans out over."""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.constants import DEFAULT_TRACE_SUBFRAMES

#: Default seed for every experiment (the paper's publication year).
DEFAULT_SEED = 2016


@dataclass
class ExperimentOutput:
    """What an experiment driver returns.

    ``text`` is the regenerated table/series rendered for the terminal;
    ``data`` holds the raw numbers so tests and EXPERIMENTS.md tooling
    can assert on them without re-parsing text.
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return f"{header}\n{self.text}"


#: Driver signature: ``(scale, seed, **options) -> ExperimentOutput``.
#: Options are string-valued keyword arguments the experiment declared
#: at registration (e.g. ``classes="urllc:0.2,embb:0.5,mmtc:0.3"``);
#: drivers that declare none keep the plain two-argument signature.
ExperimentFn = Callable[..., ExperimentOutput]


@dataclass(frozen=True)
class WorkUnit:
    """One independent sweep point of a decomposable experiment.

    ``params`` must be JSON-native (str keys; str/int/float/bool/None
    values, possibly nested in lists/dicts) — it is part of the result
    cache key and crosses process boundaries.
    """

    experiment_id: str
    key: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = DEFAULT_SEED


#: Unit result: a JSON-native dict ``{"data": {...}, "events": int}``
#: where ``events`` counts the subframes (or samples) the unit processed.
UnitResult = Dict[str, object]


@dataclass(frozen=True)
class SweepSpec:
    """How to split one experiment into independent work units.

    ``units(scale, seed)`` enumerates the sweep points; ``run_unit``
    executes one of them (in any process, in any order) and returns a
    JSON-native :data:`UnitResult`; ``combine(results, scale, seed)``
    folds the unit results — in ``units()`` order — back into the exact
    :class:`ExperimentOutput` the serial driver produces.  Decomposed
    runs must be byte-identical to serial ones: ``run_unit`` has to
    perform the same calls, with the same seeds, as the corresponding
    slice of the serial driver.
    """

    units: Callable[..., List[WorkUnit]]
    run_unit: Callable[[WorkUnit], UnitResult]
    combine: Callable[[List[UnitResult], float, int], ExperimentOutput]
    #: When true, ``units`` is called as ``units(scale, seed, options)``
    #: and must bake the options into each unit's ``params`` (making
    #: them part of the cache key and visible to pool workers);
    #: ``combine`` recovers anything it needs from the unit results.
    takes_options: bool = False


def derive_unit_seed(base_seed: int, experiment_id: str, key: str) -> int:
    """Stable per-unit seed for drivers whose sweep points need
    *independent* RNG streams (e.g. replicated-seed studies).

    The paper-artifact sweeps reuse ``base_seed`` at every point (the
    paired-workload methodology), so their units carry it unchanged;
    this helper exists for decompositions where points must not share
    draws.  sha256-based, so it is stable across processes and Python
    versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(
        f"{base_seed}:{experiment_id}:{key}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class Experiment:
    experiment_id: str
    title: str
    fn: ExperimentFn
    sweep: Optional[SweepSpec] = None
    #: Option names the driver accepts as keyword arguments.
    options: Tuple[str, ...] = ()


_REGISTRY: Dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, options: Tuple[str, ...] = ()
) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering a driver under its artifact id."""

    def wrap(fn: ExperimentFn) -> ExperimentFn:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id, title, fn, options=tuple(options)
        )
        return fn

    return wrap


def attach_sweep(experiment_id: str, spec: SweepSpec) -> None:
    """Declare an already-registered experiment decomposable."""
    if experiment_id not in _REGISTRY:
        raise KeyError(f"cannot attach sweep: unknown experiment {experiment_id!r}")
    _REGISTRY[experiment_id] = dataclasses.replace(_REGISTRY[experiment_id], sweep=spec)


def list_experiments() -> List[Experiment]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_experiment(experiment_id: str) -> Experiment:
    if experiment_id not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return _REGISTRY[experiment_id]


def run_experiment(
    experiment_id: str,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    options: Optional[Mapping[str, str]] = None,
) -> ExperimentOutput:
    """Run one registered experiment.

    ``scale`` shrinks the sample sizes proportionally (CI/benchmarks use
    small scales; ``1.0`` reproduces the paper-sized runs).  ``options``
    forwards string-valued keyword arguments the experiment declared at
    registration; passing an undeclared option raises ``ValueError``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    exp = get_experiment(experiment_id)
    opts = dict(options or {})
    unknown = sorted(set(opts) - set(exp.options))
    if unknown:
        raise ValueError(
            f"experiment {experiment_id!r} does not accept option(s) {unknown}; "
            f"declared: {sorted(exp.options) or 'none'}"
        )
    return exp.fn(scale, seed, **opts)


def scaled_subframes(scale: float, minimum: int = 500) -> int:
    """Trace length for scheduler experiments at a given scale."""
    return max(minimum, int(DEFAULT_TRACE_SUBFRAMES * scale))
