"""Fig. 1: variations in cellular load traces over a 50 ms window.

The paper's opening figure shows the normalized downlink load of two
LTE basestations over 50 ms: large swings between consecutive 1 ms
subframes and clear differences across basestations.  We regenerate the
same view from the synthetic trace model and report the
subframe-to-subframe variation statistics that motivate RT-OPEX.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register
from repro.workload.traces import CellularTraceGenerator


@register("fig1", "Variations in cellular load traces (50 ms window)")
def run(scale: float, seed: int) -> ExperimentOutput:
    del scale  # the window is fixed at 50 subframes by the figure
    generator = CellularTraceGenerator(seed=seed)
    # Generate a longer run and take a window away from the initial state.
    traces = generator.generate(1000)[:2, 200:250]

    table = Table(["time (ms)", "BS 1 load", "BS 2 load"], title="Fig. 1 (reproduced)")
    for t in range(traces.shape[1]):
        table.add_row([t + 1, float(traces[0, t]), float(traces[1, t])])

    diffs = np.abs(np.diff(traces, axis=1))
    stats = (
        f"mean |delta load| per subframe: BS1={diffs[0].mean():.3f} BS2={diffs[1].mean():.3f}; "
        f"max swing: BS1={diffs[0].max():.3f} BS2={diffs[1].max():.3f}"
    )
    return ExperimentOutput(
        experiment_id="fig1",
        title="Load trace variations",
        text=table.render() + "\n" + stats,
        data={
            "traces": traces.tolist(),
            "mean_abs_delta": diffs.mean(axis=1).tolist(),
            "max_abs_delta": diffs.max(axis=1).tolist(),
        },
    )
