"""Extension: what deadline misses cost the user (HARQ accounting).

Translates each scheduler's deadline-miss rate into the quantities an
operator provisions for: HARQ retransmission rate, residual block loss
after 4 transmissions, goodput fraction, and mean delivery delay.  A
missed deadline is not just a statistic — it burns an 8 ms HARQ round
trip and risks residual loss.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.lte.harq import simulate_harq
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.sim.rng import RngStreams


@register("ext-harq", "HARQ goodput and residual loss per scheduler (extension)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    cfg = CRanConfig(transport_latency_us=550.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)
    streams = RngStreams(seed)

    table = Table(
        ["scheduler", "miss rate", "retx/TB", "residual BLER",
         "goodput", "mean delay (ms)"],
        title=f"HARQ accounting, RTT/2=550us ({num_subframes} subframes/BS)",
    )
    data = {}
    for name in ("partitioned", "global", "rt-opex"):
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=550.0, num_cores=8
        )
        result = run_scheduler(name, run_cfg, jobs, seed=seed)
        outcome = simulate_harq(
            result, snr_db=cfg.snr_db, rng=streams.stream(f"harq-{name}")
        )
        table.add_row(
            [
                result.scheduler_name,
                result.miss_rate(),
                outcome.retransmission_rate,
                outcome.residual_bler,
                outcome.goodput_fraction,
                outcome.mean_delivery_delay_ms,
            ]
        )
        data[name] = {
            "miss_rate": result.miss_rate(),
            "retx_rate": outcome.retransmission_rate,
            "residual_bler": outcome.residual_bler,
            "goodput": outcome.goodput_fraction,
            "delay_ms": outcome.mean_delivery_delay_ms,
        }
    return ExperimentOutput(
        experiment_id="ext-harq",
        title="HARQ accounting",
        text=table.render(),
        data=data,
    )
