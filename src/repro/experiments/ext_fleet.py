"""Extension: fleet-scale placement sweeps with an optimal baseline.

The paper's separation principle splits Cloud-RAN resource management
into an *offline* placement of cells onto pooled compute nodes and an
*online* scheduler inside each node.  The single-node experiments cover
the online half; this sweep drives the offline half at fleet scale and
closes the loop: place a fleet of N cells onto ``cores_per_node``-core
nodes, then actually *run* a scheduler instance per node over the
placed cells and roll the per-node outcomes up to fleet level.

One grid point is ``(cores_per_node, load, scheduler, placer)``:

* ``cores_per_node`` — the node size axis (``--nodes 8,12``);
* ``load`` — a multiplier on the per-cell mean loads (the fleet-wide
  traffic level rho);
* ``scheduler`` — the per-node policy.  Shared-queue policies
  (``global``/``das``/``pran``) get all ``cores_per_node`` cores as one
  pool and pack against *fractional* demand-quantile weights;
  partitioned-family policies (``partitioned``/``rt-opex``/``cloudiq``)
  reserve whole cores per cell, so they pack against the *integral*
  ceiling of the same weights (floored at two cores per cell, the
  minimum the partitioned activation pattern needs to overlap
  consecutive subframes) and each node runs with
  ``cores_per_node // cells`` dedicated cores per cell — the
  fleet-level cost of integral reservations made visible;
* ``placer`` — greedy first-fit-decreasing vs the exact MILP
  (:mod:`repro.placement.optimal`), with the greedy-vs-optimal node
  gap reported per ``(cores_per_node, load, scheduler)`` triple.

Every grid point is one :class:`~repro.experiments.base.WorkUnit`
(``--jobs`` fans the grid out; all fleet parameters ride in
``WorkUnit.params`` and therefore in the result-cache key), and the
serial driver runs the identical units in order, so serial and
parallel runs are byte-identical.

The answer the sweep produces: *how many nodes do N cells need at
load rho under each scheduler and each placer* — the ROADMAP's
fleet-scale target — plus the deadline-miss rate actually realized on
the provisioned fleet.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.fleet import fleet_summary, node_summary
from repro.analysis.report import Table
from repro.constants import SUBFRAME_US
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.placement import (
    demand_weights,
    optimal_place_by_weights,
    place_by_weights,
    placement_gap,
)
from repro.placement.pool import NodePlacement
from repro.sched import CRanConfig, SubframeJob, build_workload, run_scheduler
from repro.workload.traces import (
    BasestationTraceConfig,
    CellularTraceGenerator,
    default_basestation_configs,
)

EXPERIMENT_ID = "ext-fleet"

#: Option defaults: a 2x2x2x2 grid (node size x load x scheduler x
#: placer) over a mid-sized fleet; ``--fleet-cells 100`` and up is the
#: ROADMAP-scale run.
DEFAULT_CELLS = "48"
DEFAULT_NODES = "8,12"
DEFAULT_LOADS = "0.8,1.0"
DEFAULT_SCHEDULERS = "rt-opex,global"
DEFAULT_PLACER = "both"

#: Provisioning quantile for placement weights (matches ext-pooling).
PLACEMENT_QUANTILE = 0.999
#: Fixed RTT/2 for the fleet runs (the paper's mid-range point).
_RTT_US = 500.0
#: Core floor per partitioned-family cell: the ``index % cores_per_bs``
#: activation pattern needs >= 2 cores to overlap consecutive subframes
#: of one cell, so single-core cells are never provisioned.
MIN_PARTITIONED_CORES = 2

#: Shared-queue schedulers pool all node cores behind one queue and can
#: pack cells fractionally; the partitioned family reserves whole cores
#: per cell.
SHARED_QUEUE_SCHEDULERS = ("das", "global", "pran")
PARTITIONED_SCHEDULERS = ("cloudiq", "partitioned", "rt-opex")
_KNOWN_SCHEDULERS = SHARED_QUEUE_SCHEDULERS + PARTITIONED_SCHEDULERS

_PLACERS = ("greedy", "opt")


# -- option parsing (shared by the CLI validation and the driver) -------------

def parse_fleet_cells(spec: str) -> int:
    try:
        cells = int(spec)
    except ValueError:
        raise ValueError(f"--fleet-cells must be an integer, got {spec!r}")
    if cells < 1:
        raise ValueError(f"--fleet-cells must be >= 1, got {cells}")
    return cells


def parse_nodes(spec: str) -> List[int]:
    """``"8,12"`` -> ``[8, 12]`` cores per node (the node-size axis)."""
    values: List[int] = []
    for part in spec.split(","):
        try:
            cores = int(part.strip())
        except ValueError:
            raise ValueError(f"--nodes entries must be integers, got {part.strip()!r}")
        if cores < 1:
            raise ValueError(f"--nodes entries must be >= 1, got {cores}")
        if cores in values:
            raise ValueError(f"--nodes lists cores-per-node {cores} twice")
        values.append(cores)
    if not values:
        raise ValueError("--nodes must name at least one cores-per-node value")
    return values


def parse_loads(spec: str) -> List[float]:
    values: List[float] = []
    for part in spec.split(","):
        try:
            load = float(part.strip())
        except ValueError:
            raise ValueError(f"load entries must be numbers, got {part.strip()!r}")
        if not 0.0 < load <= 2.0:
            raise ValueError(f"load multipliers must be in (0, 2], got {load}")
        if load in values:
            raise ValueError(f"load axis lists {load} twice")
        values.append(load)
    if not values:
        raise ValueError("load axis must name at least one multiplier")
    return values


def parse_schedulers(spec: str) -> List[str]:
    values: List[str] = []
    for part in spec.split(","):
        name = part.strip()
        if name not in _KNOWN_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {name!r}; known: {', '.join(_KNOWN_SCHEDULERS)}"
            )
        if name in values:
            raise ValueError(f"scheduler axis lists {name!r} twice")
        values.append(name)
    if not values:
        raise ValueError("scheduler axis must name at least one scheduler")
    return values


def parse_placer(spec: str) -> List[str]:
    if spec == "both":
        return list(_PLACERS)
    if spec in _PLACERS:
        return [spec]
    raise ValueError(f"--placer must be one of greedy, opt, both; got {spec!r}")


def _fleet_subframes(scale: float) -> int:
    """Subframes per cell: a tenth of the single-node trace length.

    Fleet grid points multiply the workload by the cell count *and* the
    grid size, so each point runs a shorter window; the floor keeps the
    0.999 placement quantile meaningful at small scales.
    """
    return max(240, scaled_subframes(scale) // 10)


# -- fleet workload -----------------------------------------------------------

def _fleet_configs(num_cells: int, load: float) -> List[BasestationTraceConfig]:
    """Cycle the 4-cell evaluation mix across the fleet, scaled by rho."""
    base = default_basestation_configs()
    return [
        dataclasses.replace(
            base[i % len(base)],
            mean=min(0.98, base[i % len(base)].mean * load),
        )
        for i in range(num_cells)
    ]


def _fleet_jobs(
    num_cells: int, load: float, num_subframes: int, seed: int
) -> List[SubframeJob]:
    configs = _fleet_configs(num_cells, load)
    loads = CellularTraceGenerator(configs, seed=seed).generate(num_subframes)
    cfg = CRanConfig(num_basestations=num_cells, transport_latency_us=_RTT_US)
    return build_workload(cfg, num_subframes, seed=seed, loads=loads)


def _placement_weights(
    jobs: Sequence[SubframeJob], scheduler: str
) -> Tuple[Dict[int, float], bool]:
    """Per-cell packing weights and whether they were made integral.

    Shared-queue nodes multiplex cells over one pool, so the fractional
    demand quantile is the right additive weight.  Partitioned-family
    nodes dedicate whole cores per cell, so each cell's footprint is
    the integral ceiling of its quantile, floored at
    :data:`MIN_PARTITIONED_CORES`: the partitioned activation pattern
    (``slot = index % cores_per_bs``) needs at least two cores per cell
    to overlap consecutive subframes, so a node hosting k cells must
    satisfy ``k <= cores_per_node // 2`` — which the two-core floor
    guarantees through the capacity constraint alone.
    """
    weights = demand_weights(jobs, PLACEMENT_QUANTILE)
    if scheduler in SHARED_QUEUE_SCHEDULERS:
        return weights, False
    return {
        bs: float(max(MIN_PARTITIONED_CORES, math.ceil(w)))
        for bs, w in sorted(weights.items())
    }, True


def _place(
    weights: Mapping[int, float], cores_per_node: int, placer: str
) -> Tuple[NodePlacement, Dict[str, object]]:
    """Run one placer; the solver dict is empty for the greedy path."""
    if placer == "greedy":
        return place_by_weights(weights, cores_per_node), {}
    optimal = optimal_place_by_weights(weights, cores_per_node)
    solver = {
        "optimal": optimal.optimal,
        "lower_bound": optimal.lower_bound,
        "solver_gap": optimal.solver_gap,
        "bnb_nodes": optimal.bnb_nodes,
    }
    return optimal.placement, solver


def _node_config(scheduler: str, num_cells: int, cores_per_node: int) -> CRanConfig:
    if scheduler in SHARED_QUEUE_SCHEDULERS:
        return CRanConfig(
            num_basestations=num_cells,
            num_cores=cores_per_node,
            transport_latency_us=_RTT_US,
        )
    return CRanConfig(
        num_basestations=num_cells,
        cores_per_bs=max(1, cores_per_node // num_cells),
        transport_latency_us=_RTT_US,
    )


def _localize(jobs: Sequence[SubframeJob], cells: Sequence[int]) -> List[SubframeJob]:
    """Renumber a node's cells to 0..k-1 so per-node core maps are dense.

    The rebuilt jobs reuse the globally drawn work/noise unchanged —
    placement must never perturb the workload (paired methodology).
    """
    local_of = {bs: i for i, bs in enumerate(sorted(cells))}
    picked = [job for job in jobs if job.subframe.bs_id in local_of]
    return [
        dataclasses.replace(
            job,
            subframe=dataclasses.replace(
                job.subframe, bs_id=local_of[job.subframe.bs_id]
            ),
        )
        for job in picked
    ]


def _run_grid_point(
    num_cells: int,
    cores_per_node: int,
    load: float,
    scheduler: str,
    placer: str,
    num_subframes: int,
    seed: int,
) -> Dict[str, object]:
    jobs = _fleet_jobs(num_cells, load, num_subframes, seed)
    weights, integral = _placement_weights(jobs, scheduler)
    placement, solver = _place(weights, cores_per_node, placer)

    horizon_us = num_subframes * SUBFRAME_US
    nodes: List[Dict[str, object]] = []
    for node in range(placement.node_count):
        cells = placement.basestations_on(node)
        local_jobs = _localize(jobs, cells)
        config = _node_config(scheduler, len(cells), cores_per_node)
        result = run_scheduler(scheduler, config, local_jobs, seed=seed)
        nodes.append(node_summary(result, cells, horizon_us))

    rollup = fleet_summary(nodes, cores_per_node)
    return {
        "cells": num_cells,
        "cores_per_node": cores_per_node,
        "load": load,
        "scheduler": scheduler,
        "placer": placer,
        "num_subframes": num_subframes,
        "weights_integral": integral,
        "weight_sum": sum(weights[bs] for bs in sorted(weights)),
        "solver": solver,
        "nodes": nodes,
        **rollup,
    }


# -- driver + sweep decomposition --------------------------------------------

def _units(scale: float, seed: int, options: Dict[str, str]) -> List[WorkUnit]:
    num_cells = parse_fleet_cells(options.get("fleet_cells", DEFAULT_CELLS))
    node_sizes = parse_nodes(options.get("nodes", DEFAULT_NODES))
    loads = parse_loads(options.get("loads", DEFAULT_LOADS))
    schedulers = parse_schedulers(options.get("schedulers", DEFAULT_SCHEDULERS))
    placers = parse_placer(options.get("placer", DEFAULT_PLACER))
    num_subframes = _fleet_subframes(scale)
    units: List[WorkUnit] = []
    for cores_per_node in node_sizes:
        for load in loads:
            for scheduler in schedulers:
                for placer in placers:
                    units.append(
                        WorkUnit(
                            experiment_id=EXPERIMENT_ID,
                            key=(
                                f"cores={cores_per_node}:load={load:g}"
                                f":sched={scheduler}:placer={placer}"
                            ),
                            params={
                                "fleet_cells": num_cells,
                                "cores_per_node": cores_per_node,
                                "load": load,
                                "scheduler": scheduler,
                                "placer": placer,
                                "num_subframes": num_subframes,
                            },
                            seed=seed,
                        )
                    )
    return units


def _run_unit(unit: WorkUnit) -> UnitResult:
    params = unit.params
    num_cells = int(params["fleet_cells"])
    num_subframes = int(params["num_subframes"])
    data = _run_grid_point(
        num_cells=num_cells,
        cores_per_node=int(params["cores_per_node"]),
        load=float(params["load"]),
        scheduler=str(params["scheduler"]),
        placer=str(params["placer"]),
        num_subframes=num_subframes,
        seed=unit.seed,
    )
    return {"data": data, "events": num_cells * num_subframes}


def _triple_key(point: Mapping[str, object]) -> str:
    return (
        f"cores={int(point['cores_per_node'])}"
        f",load={float(point['load']):g}"
        f",sched={point['scheduler']}"
    )


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    del scale, seed  # everything needed rides in the unit results
    grid = [dict(r["data"]) for r in results]
    if not grid:
        raise ValueError("ext-fleet produced no grid points")

    # Pair greedy/opt node counts per (cores, load, scheduler) triple.
    nodes_by_placer: Dict[str, Dict[str, int]] = {}
    for point in grid:
        nodes_by_placer.setdefault(_triple_key(point), {})[
            str(point["placer"])
        ] = int(point["node_count"])
    gaps: Dict[str, float] = {}
    for key in sorted(nodes_by_placer):
        counts = nodes_by_placer[key]
        if "greedy" in counts and "opt" in counts:
            gaps[key] = placement_gap(counts["greedy"], counts["opt"])

    num_cells = int(grid[0]["cells"])
    num_subframes = int(grid[0]["num_subframes"])
    table = Table(
        [
            "cores/node", "load", "scheduler", "placer",
            "nodes", "cores", "miss rate", "util", "gap vs opt",
        ],
        title=(
            f"Fleet placement sweep ({num_cells} cells, "
            f"{num_subframes} subframes/cell, RTT/2={_RTT_US:.0f}us, "
            f"q={PLACEMENT_QUANTILE})"
        ),
    )
    for point in grid:
        gap = gaps.get(_triple_key(point), math.nan)
        table.add_row(
            [
                int(point["cores_per_node"]),
                float(point["load"]),
                str(point["scheduler"]),
                str(point["placer"]),
                int(point["node_count"]),
                int(point["cores_total"]),
                float(point["miss_rate"]),
                float(point["util_mean"]),
                gap if str(point["placer"]) == "greedy" else math.nan,
            ]
        )

    note_lines = []
    if gaps:
        worst = max(sorted(gaps), key=lambda k: gaps[k])
        note_lines.append(
            f"greedy-vs-optimal node gap: max {gaps[worst]:.1%} at [{worst}]"
        )
    note_lines.append(
        "partitioned-family points pack integral per-cell core "
        "reservations; shared-queue points pack fractional demand quantiles"
    )
    data: Dict[str, object] = {
        "cells": num_cells,
        "num_subframes": num_subframes,
        "quantile": PLACEMENT_QUANTILE,
        "grid": grid,
        "gaps": gaps,
    }
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title="Fleet placement sweep",
        text=table.render() + "\n" + "\n".join(note_lines),
        data=data,
    )


@register(
    EXPERIMENT_ID,
    "Fleet-scale placement sweep, greedy vs optimal (extension)",
    options=("fleet_cells", "nodes", "loads", "schedulers", "placer"),
)
def run(
    scale: float,
    seed: int,
    fleet_cells: str = DEFAULT_CELLS,
    nodes: str = DEFAULT_NODES,
    loads: str = DEFAULT_LOADS,
    schedulers: str = DEFAULT_SCHEDULERS,
    placer: str = DEFAULT_PLACER,
) -> ExperimentOutput:
    options = {
        "fleet_cells": fleet_cells,
        "nodes": nodes,
        "loads": loads,
        "schedulers": schedulers,
        "placer": placer,
    }
    units = _units(scale, seed, options)
    results = [_run_unit(unit) for unit in units]
    return _combine(results, scale, seed)


attach_sweep(
    EXPERIMENT_ID,
    SweepSpec(units=_units, run_unit=_run_unit, combine=_combine, takes_options=True),
)
