"""Fig. 16: scheduling gaps and the migrations that fill them.

Left panel: the CDF of idle gaps the partitioned schedule leaves on each
core (the paper: for RTT/2 < 500 us, gaps exceed 500 us for ~60% of
subframes).  Right panel: the fraction of subframes for which RT-OPEX
migrates FFT and decode subtasks as RTT/2 grows — decode migrations
(large subtasks, clipped by the shrinking deadline) fall away while the
small FFT subtasks keep migrating.

The gap distribution is computed from the *trace*, not the records: the
partitioned run is captured with ``capture_trace=("gap",)`` and the CDF
comes from :func:`repro.analysis.tracestats.gap_cdf` — the figure and
the observability pipeline can no longer drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.analysis.tracestats import gap_cdf
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler

RTTS = (400.0, 500.0, 600.0, 700.0)


def _cdf_tail_fraction(xs: np.ndarray, ps: np.ndarray, threshold_us: float) -> float:
    """``P(gap > threshold)`` read off an empirical CDF, exactly.

    ``ps[i]`` is the fraction of samples ``<= xs[i]``, so the tail is
    one minus the CDF at the last sample not exceeding the threshold —
    count-based, hence bit-identical to ``np.mean(samples > t)``.
    """
    if xs.size == 0:
        return 0.0
    idx = int(np.searchsorted(xs, threshold_us, side="right"))
    return 1.0 - (float(ps[idx - 1]) if idx > 0 else 0.0)


@register("fig16", "Partitioned gaps and RT-OPEX migrations vs RTT/2")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    gap_rows = []
    migration_rows = []
    data: dict = {"rtt_us": list(RTTS)}
    gap_tail, fft_frac, dec_frac, dec_heavy_frac = [], [], [], []

    donor_windows = []
    for rtt in RTTS:
        cfg = CRanConfig(transport_latency_us=rtt)
        jobs = build_workload(cfg, num_subframes, seed=seed)
        part = run_scheduler("partitioned", cfg, jobs, capture_trace=("gap",))
        gap_xs, gap_ps = gap_cdf(part.trace_run)
        tail = _cdf_tail_fraction(gap_xs, gap_ps, 500.0)
        median_gap = float(np.median(gap_xs)) if gap_xs.size else float("nan")
        gap_tail.append(tail)
        # The window a *donor* can actually use shrinks with RTT: its
        # own deadline clips the helpers' free time (sec. 4.3 "the gaps
        # get narrower").  Estimated per subframe as the budget left
        # when its decode stage starts.
        windows = [
            max(0.0, cfg.processing_budget_us - (j.work.task("fft").serial_duration_us
                + j.work.task("demod").serial_duration_us + j.noise_us))
            for j in jobs
        ]
        donor_windows.append(float(np.median(windows)))
        gap_rows.append([rtt, median_gap, tail, donor_windows[-1]])

        opex = run_scheduler("rt-opex", cfg, jobs)
        fft_frac.append(opex.migration_fraction("fft"))
        dec_frac.append(opex.migration_fraction("decode"))
        # Decode migrations of the heavy subframes (MCS >= 24) are the
        # deadline-saving ones; their share shrinks as the budget tightens.
        heavy = [r for r in opex.records if r.mcs >= 24]
        moved = sum(
            m.num_subtasks for r in heavy for m in r.migrations if m.task == "decode"
        )
        possible = sum(len(r.iterations) for r in heavy)
        dec_heavy_frac.append(moved / possible if possible else 0.0)
        migration_rows.append([rtt, fft_frac[-1], dec_frac[-1], dec_heavy_frac[-1]])

    table_g = Table(
        ["RTT/2 (us)", "median gap (us)", "P(gap > 500us)", "median donor window (us)"],
        title="Fig. 16 left (reproduced): partitioned gaps and donor windows",
    )
    for row in gap_rows:
        table_g.add_row(row)
    table_m = Table(
        ["RTT/2 (us)", "frac SF w/ FFT migration", "frac SF w/ decode migration",
         "decode subtasks migrated (MCS>=24)"],
        title="Fig. 16 right (reproduced): RT-OPEX migrations",
    )
    for row in migration_rows:
        table_m.add_row(row)

    data.update(
        {
            "donor_window_us": donor_windows,
            "gap_tail_500us": gap_tail,
            "fft_migration_fraction": fft_frac,
            "decode_migration_fraction": dec_frac,
            "decode_heavy_subtask_fraction": dec_heavy_frac,
        }
    )
    return ExperimentOutput(
        experiment_id="fig16",
        title="Gaps and migrations",
        text=table_g.render() + "\n\n" + table_m.render(),
        data=data,
    )
