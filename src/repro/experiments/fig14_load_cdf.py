"""Fig. 14: per-basestation load distribution (CDF).

The paper estimates each of four towers' loads by energy correlation
and plots the normalized-load CDFs.  We regenerate the four CDFs from
the trace model and verify they fan out (stochastically ordered) the
way the measured cells do.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.workload.traces import CellularTraceGenerator


@register("fig14", "Basestation load distribution (CDF)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    generator = CellularTraceGenerator(seed=seed)
    traces = generator.generate(num_subframes)

    points = np.linspace(0.0, 1.0, 11)
    table = Table(
        ["load"] + [f"BS {i + 1}" for i in range(traces.shape[0])],
        title=f"Fig. 14 (reproduced): CDF over {num_subframes} subframes",
    )
    cdfs = []
    for i in range(traces.shape[0]):
        sorted_t = np.sort(traces[i])
        cdfs.append(np.searchsorted(sorted_t, points, side="right") / sorted_t.size)
    for j, p in enumerate(points):
        table.add_row([float(p)] + [float(cdfs[i][j]) for i in range(traces.shape[0])])
    means = traces.mean(axis=1)
    note = "mean loads: " + ", ".join(f"BS{i + 1}={m:.2f}" for i, m in enumerate(means))
    return ExperimentOutput(
        experiment_id="fig14",
        title="Load CDFs",
        text=table.render() + "\n" + note,
        data={
            "points": points.tolist(),
            "cdfs": [c.tolist() for c in cdfs],
            "means": means.tolist(),
        },
    )
