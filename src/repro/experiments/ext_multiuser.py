"""Extension: multi-user subframes (the paper's "realistic scenario").

Sec. 4.2 calls the single-user / 100%-PRB evaluation "a conservative
scenario": multiple users mean more, smaller decode subtasks, which
should give RT-OPEX *more* migration opportunities.  The authors could
not find decodable multi-user traces; the simulator is not so
constrained.  This experiment offers byte-identical traffic through
single-user and multi-user (up to 4 users) task granularities and
compares the schedulers at a stressed operating point.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.workload.multiuser import build_multiuser_workload
from repro.workload.traces import CellularTraceGenerator


@register("ext-multiuser", "Single- vs multi-user subframes (extension)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = max(1000, scaled_subframes(scale) // 2)
    rtt = 700.0
    cfg = CRanConfig(transport_latency_us=rtt)
    loads = CellularTraceGenerator(seed=seed).generate(num_subframes)[: cfg.num_basestations]
    single = build_workload(cfg, num_subframes, seed=seed, loads=loads)
    multi = build_multiuser_workload(cfg, num_subframes, seed=seed, loads=loads)

    table = Table(
        ["workload", "partitioned miss", "rt-opex miss", "decode subtasks migrated"],
        title=f"Single vs multi-user, RTT/2={rtt:.0f}us ({num_subframes} subframes/BS)",
    )
    data = {}
    for label, jobs in (("single-user", single), ("multi-user", multi)):
        part = run_scheduler("partitioned", cfg, jobs, seed=seed)
        opex = run_scheduler("rt-opex", cfg, jobs, seed=seed)
        migrated = opex.migration_counts()["decode"]
        table.add_row([label, part.miss_rate(), opex.miss_rate(), migrated])
        data[label] = {
            "partitioned": part.miss_rate(),
            "rt-opex": opex.miss_rate(),
            "decode_migrated": migrated,
        }
    note = (
        "finer multi-user decode granularity packs migration windows "
        "better — the single-user evaluation understates RT-OPEX's gain"
    )
    return ExperimentOutput(
        experiment_id="ext-multiuser",
        title="Multi-user subframes",
        text=table.render() + "\n" + note,
        data=data,
    )
