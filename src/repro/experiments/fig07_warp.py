"""Fig. 7: one-way WARP transport latency vs number of antennas.

The paper's testbed measurement: radios on 1 GbE aggregated into the
GPP's 10 GbE port.  Anchors: ~620 us maximum at 5 MHz x 16 radios,
~0.9 ms at 10 MHz x 8, above 1 ms at 10 MHz x 16 — hence at most 8
antennas at 10 MHz before queueing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register
from repro.lte.grid import GridConfig
from repro.transport.warp import WarpTransportModel


@register("fig7", "One-way WARP transport latency vs antennas")
def run(scale: float, seed: int) -> ExperimentOutput:
    del scale
    rng = np.random.default_rng(seed)
    model = WarpTransportModel()
    antennas = [1, 2, 4, 8, 12, 16]
    bandwidths = [5.0, 10.0, 20.0]
    table = Table(
        ["antennas"] + [f"{bw:g} MHz (us)" for bw in bandwidths],
        title="Fig. 7 (reproduced): max one-way latency",
    )
    series = {bw: [] for bw in bandwidths}
    for n in antennas:
        row = [n]
        for bw in bandwidths:
            grid = GridConfig(bw)
            # Max over a batch of jittered draws, as the paper plots maxima.
            latency = max(model.draw(grid, n, rng) for _ in range(50))
            row.append(latency)
            series[bw].append(latency)
        table.add_row(row)
    limits = {
        bw: WarpTransportModel().max_supported_antennas(GridConfig(bw)) for bw in bandwidths
    }
    note = "max antennas without queueing: " + ", ".join(
        f"{bw:g} MHz -> {n}" for bw, n in limits.items()
    )
    return ExperimentOutput(
        experiment_id="fig7",
        title="WARP transport latency",
        text=table.render() + "\n" + note,
        data={
            "series": {str(k): v for k, v in series.items()},
            "limits": {str(k): v for k, v in limits.items()},
        },
    )
