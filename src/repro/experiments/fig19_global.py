"""Fig. 19: the global scheduler as the core count varies.

Left: deadline-miss rate for 2-16 cores at RTT/2 = 500 us — improves
steeply until ~8 cores, then saturates and even worsens (cache
thrashing).  Right: the MCS-27 processing-time distribution for 8 vs 16
cores — with 16 cores a noticeable fraction of subframes runs ~80 us
longer because almost every dispatch lands on a cold cache.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler

CORE_SWEEP = (2, 4, 6, 8, 12, 16)


@register("fig19", "Global scheduler vs number of cores")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    base_cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(base_cfg, num_subframes, seed=seed)

    miss_rates = []
    results = {}
    for cores in CORE_SWEEP:
        cfg = CRanConfig(transport_latency_us=500.0, num_cores=cores)
        res = run_scheduler("global", cfg, jobs)
        results[cores] = res
        miss_rates.append(res.miss_rate())

    table_l = Table(
        ["cores", "miss rate"],
        title=f"Fig. 19 left (reproduced): global miss rate vs cores, {num_subframes} subframes/BS",
    )
    for cores, rate in zip(CORE_SWEEP, miss_rates):
        table_l.add_row([cores, rate])

    # The paper plots the distribution for MCS 27; at our calibration
    # those subframes are all deadline-terminated (degenerate
    # distribution), so the highest still-decodable class, MCS 24, shows
    # the cache-thrash shift instead.
    table_r = Table(
        ["cores", "MCS-24 p50 (us)", "MCS-24 p90 (us)", "mean cache penalty (us)"],
        title="Fig. 19 right (reproduced): high-MCS processing time, 8 vs 16 cores",
    )
    dist = {}
    for cores in (8, 16):
        res = results[cores]
        times = res.processing_times(mcs=24)
        penalties = np.array([r.cache_penalty_us for r in res.records])
        p50 = float(np.median(times)) if times.size else float("nan")
        p90 = float(np.percentile(times, 90)) if times.size else float("nan")
        table_r.add_row([cores, p50, p90, float(penalties.mean())])
        dist[cores] = {"p50": p50, "p90": p90, "mean_penalty": float(penalties.mean())}

    return ExperimentOutput(
        experiment_id="fig19",
        title="Global scheduler scaling",
        text=table_l.render() + "\n\n" + table_r.render(),
        data={"cores": list(CORE_SWEEP), "miss_rates": miss_rates, "high_mcs": {str(k): v for k, v in dist.items()}},
    )
