"""Fig. 19: the global scheduler as the core count varies.

Left: deadline-miss rate for 2-16 cores at RTT/2 = 500 us — improves
steeply until ~8 cores, then saturates and even worsens (cache
thrashing).  Right: the MCS-27 processing-time distribution for 8 vs 16
cores — with 16 cores a noticeable fraction of subframes runs ~80 us
longer because almost every dispatch lands on a cold cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import Table
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.sched import CRanConfig, build_workload, run_scheduler

CORE_SWEEP = (2, 4, 6, 8, 12, 16)

#: Core counts whose high-MCS distribution the right panel compares.
_DIST_CORES = (8, 16)


def _high_mcs_stats(res) -> Dict[str, float]:
    # The paper plots the distribution for MCS 27; at our calibration
    # those subframes are all deadline-terminated (degenerate
    # distribution), so the highest still-decodable class, MCS 24, shows
    # the cache-thrash shift instead.
    times = res.processing_times(mcs=24)
    penalties = np.array([r.cache_penalty_us for r in res.records])
    p50 = float(np.median(times)) if times.size else float("nan")
    p90 = float(np.percentile(times, 90)) if times.size else float("nan")
    return {"p50": p50, "p90": p90, "mean_penalty": float(penalties.mean())}


def _render(
    miss_rates: List[float],
    dist: Dict[int, Dict[str, float]],
    num_subframes: int,
) -> ExperimentOutput:
    table_l = Table(
        ["cores", "miss rate"],
        title=f"Fig. 19 left (reproduced): global miss rate vs cores, {num_subframes} subframes/BS",
    )
    for cores, rate in zip(CORE_SWEEP, miss_rates):
        table_l.add_row([cores, rate])

    table_r = Table(
        ["cores", "MCS-24 p50 (us)", "MCS-24 p90 (us)", "mean cache penalty (us)"],
        title="Fig. 19 right (reproduced): high-MCS processing time, 8 vs 16 cores",
    )
    for cores in _DIST_CORES:
        d = dist[cores]
        table_r.add_row([cores, d["p50"], d["p90"], d["mean_penalty"]])

    return ExperimentOutput(
        experiment_id="fig19",
        title="Global scheduler scaling",
        text=table_l.render() + "\n\n" + table_r.render(),
        data={
            "cores": list(CORE_SWEEP),
            "miss_rates": miss_rates,
            "high_mcs": {str(k): v for k, v in dist.items()},
        },
    )


@register("fig19", "Global scheduler vs number of cores")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    base_cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(base_cfg, num_subframes, seed=seed)

    miss_rates = []
    dist: Dict[int, Dict[str, float]] = {}
    for cores in CORE_SWEEP:
        cfg = CRanConfig(transport_latency_us=500.0, num_cores=cores)
        res = run_scheduler("global", cfg, jobs)
        miss_rates.append(res.miss_rate())
        if cores in _DIST_CORES:
            dist[cores] = _high_mcs_stats(res)
    return _render(miss_rates, dist, num_subframes)


# -- sweep decomposition: one unit per core count ----------------------------

def _units(scale: float, seed: int) -> List[WorkUnit]:
    num_subframes = scaled_subframes(scale)
    return [
        WorkUnit(
            experiment_id="fig19",
            key=f"cores={cores}",
            params={"cores": cores, "num_subframes": num_subframes},
            seed=seed,
        )
        for cores in CORE_SWEEP
    ]


def _run_unit(unit: WorkUnit) -> UnitResult:
    cores = int(unit.params["cores"])
    num_subframes = int(unit.params["num_subframes"])
    base_cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(base_cfg, num_subframes, seed=unit.seed)
    cfg = CRanConfig(transport_latency_us=500.0, num_cores=cores)
    res = run_scheduler("global", cfg, jobs)
    stats: Optional[Dict[str, float]] = (
        _high_mcs_stats(res) if cores in _DIST_CORES else None
    )
    return {
        "data": {"miss_rate": res.miss_rate(), "high_mcs": stats},
        "events": num_subframes,
    }


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    miss_rates = [r["data"]["miss_rate"] for r in results]
    dist = {
        int(cores): dict(r["data"]["high_mcs"])
        for cores, r in zip(CORE_SWEEP, results)
        if r["data"]["high_mcs"] is not None
    }
    return _render(miss_rates, dist, scaled_subframes(scale))


attach_sweep("fig19", SweepSpec(units=_units, run_unit=_run_unit, combine=_combine))
