"""Extension: co-scheduling downlink Tx encodes with uplink decodes.

The paper evaluates uplink in isolation ("We restrict our attention to
uplink processing", sec. 2) but its own Fig. 8 shows the Tx timeline
sharing the node.  This extension co-schedules one Tx encode job per
basestation per subframe with the standard uplink workload and measures
what the extra load does to each scheduler:

* partitioned absorbs Tx easily (the encode fits the pre-arrival slot
  of the opposite core) but its Rx misses stay where they were;
* RT-OPEX keeps its advantage, yet its miss rate degrades relative to
  the Tx-free run because Tx jobs occupy — and preempt migrations out
  of — the gaps it harvests.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler
from repro.workload.downlink import build_tx_jobs


def _rx_miss_rate(result) -> float:
    rx = [r for r in result.records if len(r.iterations) > 0]
    if not rx:
        return 0.0
    return sum(1 for r in rx if r.missed or r.dropped) / len(rx)


def _tx_miss_rate(result) -> float:
    tx = [r for r in result.records if len(r.iterations) == 0]
    if not tx:
        return 0.0
    return sum(1 for r in tx if r.missed or r.dropped) / len(tx)


@register("ext-txload", "Uplink miss rates with co-scheduled Tx encodes (extension)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = max(1000, scaled_subframes(scale) // 2)
    rtt = 550.0
    cfg = CRanConfig(transport_latency_us=rtt)
    rx_jobs = build_workload(cfg, num_subframes, seed=seed)
    tx_jobs = build_tx_jobs(cfg, num_subframes, seed=seed)

    table = Table(
        ["scheduler", "Rx miss (UL only)", "Rx miss (UL+DL)", "Tx miss", "decode migrations"],
        title=f"Tx-aware co-scheduling, RTT/2={rtt:.0f}us ({num_subframes} subframes/BS)",
    )
    data = {}
    for name in ("partitioned", "rt-opex"):
        alone = run_scheduler(name, cfg, rx_jobs, seed=seed)
        mixed = run_scheduler(name, cfg, list(rx_jobs) + list(tx_jobs), seed=seed)
        migrations = (
            mixed.migration_counts()["decode"] if name == "rt-opex" else 0
        )
        table.add_row(
            [name, _rx_miss_rate(alone), _rx_miss_rate(mixed), _tx_miss_rate(mixed), migrations]
        )
        data[name] = {
            "rx_alone": _rx_miss_rate(alone),
            "rx_mixed": _rx_miss_rate(mixed),
            "tx_mixed": _tx_miss_rate(mixed),
            "decode_migrations": migrations,
        }
    note = (
        "Tx encodes squeeze the scheduling gaps: RT-OPEX keeps its lead "
        "but loses part of its migration headroom."
    )
    return ExperimentOutput(
        experiment_id="ext-txload",
        title="Tx-aware co-scheduling",
        text=table.render() + "\n" + note,
        data=data,
    )
