"""Extension: mixed-service traffic classes under all six schedulers.

The paper's workload is one service class against one 2 ms budget.
This experiment opens the ROADMAP's mixed-service axis: URLLC / eMBB /
mMTC share the cell (per the ``--classes`` spec), each class carrying
its own packet delay budget and burstiness profile, and every scheduler
— the paper's five plus the delay-aware ``das`` baseline — runs over
the identical mixed workload.

Reported per scheduler: the overall miss rate, a per-class miss-rate
rollup, per-class response-time summaries, and per-class *lateness*
CDFs (``finish - deadline``; the mass left of zero is the class's
deadline-hit probability), downsampled to fixed quantile points so the
output stays JSON-native and cache-friendly.

Decomposed through :class:`~repro.experiments.base.SweepSpec` — one
unit per scheduler — so ``--jobs`` fans the six runs out; the classes
spec rides in each unit's params and is therefore part of the result
cache key.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.analysis.report import Table
from repro.analysis.stats import summarize
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.sched import CRanConfig, run_scheduler
from repro.workload.classes import DEFAULT_MIXED_SPEC, parse_class_spec
from repro.workload.mixed import build_mixed_workload

_SCHEDULERS = ("pran", "cloudiq", "partitioned", "global", "rt-opex", "das")
#: Shared-queue schedulers honour ``num_cores``; 8 matches the paper's
#: global-scheduler operating point.
_SHARED_QUEUE_CORES = 8
_RTT_US = 500.0
#: Quantile grid the per-class lateness CDFs are downsampled to.
_CDF_POINTS = 41


def _configs() -> Dict[str, CRanConfig]:
    base = CRanConfig(transport_latency_us=_RTT_US)
    pooled = CRanConfig(transport_latency_us=_RTT_US, num_cores=_SHARED_QUEUE_CORES)
    return {name: (pooled if name in ("global", "das") else base) for name in _SCHEDULERS}


def _lateness_cdf(lateness: np.ndarray) -> Dict[str, List[float]]:
    """Quantile-sampled CDF of ``finish - deadline`` (negative = early)."""
    if lateness.size == 0:
        return {"xs": [], "ps": []}
    ps = np.linspace(0.0, 1.0, _CDF_POINTS)
    xs = np.quantile(lateness, ps)
    return {"xs": [float(x) for x in xs], "ps": [float(p) for p in ps]}


def _run_one(name: str, num_subframes: int, seed: int, classes: str) -> Dict[str, object]:
    mix = parse_class_spec(classes)
    cfg = _configs()[name]
    jobs = build_mixed_workload(cfg, num_subframes, mix=mix, seed=seed)
    result = run_scheduler(name, cfg, jobs, seed=seed)

    by_class: Dict[str, Dict[str, object]] = {}
    for service, records in result.records_by_class().items():
        misses = sum(1 for r in records if r.missed or r.dropped)
        resp = np.asarray([
            r.response_time_us for r in records
            if not r.dropped and not math.isnan(r.finish_us)
        ])
        lateness = np.asarray([
            r.finish_us - r.deadline_us for r in records
            if not math.isnan(r.finish_us)
        ])
        by_class[service] = {
            "subframes": len(records),
            "miss_rate": misses / len(records),
            "budget_us": mix.by_name(service).delay_budget_us,
            "response": summarize(resp),
            "lateness_cdf": _lateness_cdf(lateness),
        }
    return {
        "scheduler_name": result.scheduler_name,
        "classes": mix.spec(),
        "miss_rate": result.miss_rate(),
        "by_class": by_class,
    }


def _render(
    rows: Dict[str, Dict[str, object]], num_subframes: int, classes: str
) -> ExperimentOutput:
    mix = parse_class_spec(classes)
    class_names = list(mix.names)
    table = Table(
        ["scheduler", "overall miss"] + [f"{c} miss" for c in class_names],
        title=(
            f"Mixed-service classes ({mix.spec()}): "
            f"{num_subframes} subframes/BS, RTT/2={_RTT_US:.0f}us"
        ),
    )
    data: Dict[str, object] = {"classes": mix.spec(), "schedulers": {}}
    for name in _SCHEDULERS:
        row = rows[name]
        by_class = row["by_class"]
        table.add_row(
            [str(row["scheduler_name"]), row["miss_rate"]]
            + [
                by_class[c]["miss_rate"] if c in by_class else math.nan
                for c in class_names
            ]
        )
        data["schedulers"][name] = {
            "scheduler_name": row["scheduler_name"],
            "miss_rate": row["miss_rate"],
            "by_class": by_class,
        }
    note = (
        "per-class budgets: "
        + ", ".join(f"{c.name}={c.delay_budget_us:g}us" for c in mix.classes)
    )
    return ExperimentOutput(
        experiment_id="ext_mixed",
        title="Mixed-service traffic classes",
        text=table.render() + "\n" + note,
        data=data,
    )


@register("ext_mixed", "Mixed-service traffic classes (extension)", options=("classes",))
def run(scale: float, seed: int, classes: str = DEFAULT_MIXED_SPEC) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale) // 2
    rows = {
        name: _run_one(name, num_subframes, seed, classes) for name in _SCHEDULERS
    }
    return _render(rows, num_subframes, classes)


# -- sweep decomposition: one unit per scheduler ------------------------------

def _units(scale: float, seed: int, options: Dict[str, str]) -> List[WorkUnit]:
    classes = options.get("classes", DEFAULT_MIXED_SPEC)
    parse_class_spec(classes)  # fail fast, before any unit is submitted
    num_subframes = scaled_subframes(scale) // 2
    return [
        WorkUnit(
            experiment_id="ext_mixed",
            key=f"scheduler={name}",
            params={
                "scheduler": name,
                "num_subframes": num_subframes,
                "classes": classes,
            },
            seed=seed,
        )
        for name in _SCHEDULERS
    ]


def _run_unit(unit: WorkUnit) -> UnitResult:
    num_subframes = int(unit.params["num_subframes"])
    row = _run_one(
        str(unit.params["scheduler"]),
        num_subframes,
        unit.seed,
        str(unit.params["classes"]),
    )
    return {"data": row, "events": num_subframes}


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    rows = {
        name: dict(r["data"]) for name, r in zip(_SCHEDULERS, results)
    }
    classes = str(rows[_SCHEDULERS[0]]["classes"])
    return _render(rows, scaled_subframes(scale) // 2, classes)


attach_sweep(
    "ext_mixed",
    SweepSpec(units=_units, run_unit=_run_unit, combine=_combine, takes_options=True),
)
