"""Table 2, made executable: quantitative comparison of C-RAN schedulers.

The paper's Table 2 compares related approaches qualitatively
(migration? dynamic resources? granularity).  With PRAN-like and
CloudIQ-like baselines implemented (see ``repro.sched.pran`` /
``repro.sched.cloudiq``), this reproduction can also compare them
*quantitatively* on the paper's own workload: deadline-miss rate, ACK
rate, and mean processing time at RTT/2 = 500 us.

All five baselines are instrumented, so ``--trace`` on this experiment
yields one timeline per scheduler — the side-by-side view of how each
policy occupies the same core budget.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.report import Table
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.sched import CRanConfig, build_workload, run_scheduler

#: Qualitative rows copied from the paper's Table 2.
QUALITATIVE = {
    "pran": ("Yes", "Dynamic", "Subtask"),
    "cloudiq": ("No", "Fixed", "Task"),
    "partitioned": ("No", "Fixed", "Task"),
    "global": ("No", "Fixed", "Task"),
    "rt-opex": ("Yes", "Fixed/Dynamic", "Subtask"),
}


_SCHEDULERS = ("pran", "cloudiq", "partitioned", "global", "rt-opex")


def _run_one(name: str, num_subframes: int, seed: int) -> Tuple[str, Dict[str, float]]:
    """One baseline over the standard trace: (display name, summary)."""
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)
    run_cfg = cfg if name != "global" else CRanConfig(
        transport_latency_us=500.0, num_cores=8
    )
    result = run_scheduler(name, run_cfg, jobs, seed=seed)
    return result.scheduler_name, result.summary()


def _render(
    rows: Dict[str, Tuple[str, Dict[str, float]]], num_subframes: int
) -> ExperimentOutput:
    table = Table(
        ["scheduler", "migration", "resources", "granularity",
         "miss rate", "ACK rate", "mean Trxproc (us)"],
        title=f"Table 2 (reproduced + quantified): {num_subframes} subframes/BS, RTT/2=500us",
    )
    data = {}
    for name in _SCHEDULERS:
        display_name, summary = rows[name]
        mig, res, gran = QUALITATIVE[name]
        table.add_row(
            [display_name, mig, res, gran,
             summary["miss_rate"], summary["ack_rate"], summary["mean_proc_us"]]
        )
        data[name] = summary
    return ExperimentOutput(
        experiment_id="table2",
        title="Scheduler comparison",
        text=table.render(),
        data=data,
    )


@register("table2", "Qualitative + quantitative scheduler comparison")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)

    rows: Dict[str, Tuple[str, Dict[str, float]]] = {}
    for name in _SCHEDULERS:
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=500.0, num_cores=8
        )
        result = run_scheduler(name, run_cfg, jobs, seed=seed)
        rows[name] = (result.scheduler_name, result.summary())
    return _render(rows, num_subframes)


# -- sweep decomposition: one unit per baseline ------------------------------

def _units(scale: float, seed: int) -> List[WorkUnit]:
    num_subframes = scaled_subframes(scale)
    return [
        WorkUnit(
            experiment_id="table2",
            key=f"scheduler={name}",
            params={"scheduler": name, "num_subframes": num_subframes},
            seed=seed,
        )
        for name in _SCHEDULERS
    ]


def _run_unit(unit: WorkUnit) -> UnitResult:
    num_subframes = int(unit.params["num_subframes"])
    display_name, summary = _run_one(
        str(unit.params["scheduler"]), num_subframes, unit.seed
    )
    return {
        "data": {"scheduler_name": display_name, "summary": summary},
        "events": num_subframes,
    }


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    rows = {
        name: (str(r["data"]["scheduler_name"]), dict(r["data"]["summary"]))
        for name, r in zip(_SCHEDULERS, results)
    }
    return _render(rows, scaled_subframes(scale))


attach_sweep("table2", SweepSpec(units=_units, run_unit=_run_unit, combine=_combine))
