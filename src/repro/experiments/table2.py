"""Table 2, made executable: quantitative comparison of C-RAN schedulers.

The paper's Table 2 compares related approaches qualitatively
(migration? dynamic resources? granularity).  With PRAN-like and
CloudIQ-like baselines implemented (see ``repro.sched.pran`` /
``repro.sched.cloudiq``), this reproduction can also compare them
*quantitatively* on the paper's own workload: deadline-miss rate, ACK
rate, and mean processing time at RTT/2 = 500 us.
"""

from __future__ import annotations

from repro.analysis.report import Table
from repro.experiments.base import ExperimentOutput, register, scaled_subframes
from repro.sched import CRanConfig, build_workload, run_scheduler

#: Qualitative rows copied from the paper's Table 2.
QUALITATIVE = {
    "pran": ("Yes", "Dynamic", "Subtask"),
    "cloudiq": ("No", "Fixed", "Task"),
    "partitioned": ("No", "Fixed", "Task"),
    "global": ("No", "Fixed", "Task"),
    "rt-opex": ("Yes", "Fixed/Dynamic", "Subtask"),
}


@register("table2", "Qualitative + quantitative scheduler comparison")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)

    table = Table(
        ["scheduler", "migration", "resources", "granularity",
         "miss rate", "ACK rate", "mean Trxproc (us)"],
        title=f"Table 2 (reproduced + quantified): {num_subframes} subframes/BS, RTT/2=500us",
    )
    data = {}
    for name in ("pran", "cloudiq", "partitioned", "global", "rt-opex"):
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=500.0, num_cores=8
        )
        result = run_scheduler(name, run_cfg, jobs, seed=seed)
        summary = result.summary()
        mig, res, gran = QUALITATIVE[name]
        table.add_row(
            [result.scheduler_name, mig, res, gran,
             summary["miss_rate"], summary["ack_rate"], summary["mean_proc_us"]]
        )
        data[name] = summary
    return ExperimentOutput(
        experiment_id="table2",
        title="Scheduler comparison",
        text=table.render(),
        data=data,
    )
