"""Fig. 3: processing-time variability of the uplink chain.

Four panels:

* (a) total time vs MCS for each iteration count (N = 2) — the 2.8x
  spread (0.5 ms at MCS 0 to 1.4 ms at MCS 27 with two iterations);
* (b) total time vs MCS at different SNRs (N = 2) — dropping from 20 dB
  to 10 dB adds >50% for mid/high MCS via extra iterations;
* (c) total time vs number of antennas — +169 us per antenna;
* (d) the distribution of the model error E next to the cyclictest
  stress benchmark, showing E is platform- (not model-) driven.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.analysis.stats import summarize, tail_fraction
from repro.experiments.base import ExperimentOutput, register
from repro.lte.mcs import max_mcs, modulation_order, subcarrier_load
from repro.timing.iterations import IterationModel
from repro.timing.model import LinearTimingModel
from repro.timing.platform import CyclictestEmulator, PlatformNoiseModel


@register("fig3", "Processing time vs iterations / SNR / antennas; error distribution")
def run(scale: float, seed: int) -> ExperimentOutput:
    rng = np.random.default_rng(seed)
    model = LinearTimingModel()
    iters_model = IterationModel(max_iterations=4)
    sections = []
    data: dict = {}

    # (a) vs iterations, N = 2.
    table_a = Table(
        ["MCS"] + [f"L={l} (us)" for l in range(1, 5)],
        title="Fig. 3(a): total processing time vs MCS per iteration count (N=2)",
    )
    panel_a = {}
    for mcs in range(0, max_mcs() + 1, 3):
        row = [mcs]
        for l in range(1, 5):
            t = model.total_time(2, modulation_order(mcs), subcarrier_load(mcs), l)
            row.append(t)
            panel_a.setdefault(l, []).append(t)
        table_a.add_row(row)
    sections.append(table_a.render())
    data["vs_iterations"] = panel_a

    # (b) vs SNR: expected time with the iteration model, N = 2.
    snrs = [10.0, 20.0, 30.0]
    table_b = Table(
        ["MCS"] + [f"SNR={int(s)}dB (us)" for s in snrs],
        title="Fig. 3(b): expected processing time vs MCS per SNR (N=2)",
    )
    panel_b = {}
    for mcs in range(0, max_mcs() + 1, 3):
        row = [mcs]
        for snr in snrs:
            mean_l = iters_model.mean_iterations(mcs, snr)
            t = model.total_time(2, modulation_order(mcs), subcarrier_load(mcs), mean_l)
            row.append(t)
            panel_b.setdefault(snr, []).append(t)
        table_b.add_row(row)
    sections.append(table_b.render())
    data["vs_snr"] = {str(k): v for k, v in panel_b.items()}

    # (c) vs antennas at a fixed post-processing SNR.
    table_c = Table(
        ["antennas", "MCS 13 (us)", "MCS 27 (us)"],
        title="Fig. 3(c): processing time vs number of antennas (L=2)",
    )
    panel_c = []
    for n in (1, 2, 4):
        t13 = model.total_time(n, modulation_order(13), subcarrier_load(13), 2)
        t27 = model.total_time(n, modulation_order(27), subcarrier_load(27), 2)
        table_c.add_row([n, t13, t27])
        panel_c.append((n, t13, t27))
    sections.append(table_c.render())
    data["vs_antennas"] = panel_c

    # (d) platform error vs cyclictest benchmark.
    samples = max(5000, int(1_000_000 * scale))
    noise = PlatformNoiseModel().draw(rng, samples)
    cyclictest = CyclictestEmulator().run(rng, samples)
    table_d = Table(
        ["distribution", "mean", "p99", "p99.9", "max", "P(>150us)", "P(>400us)"],
        title="Fig. 3(d): model error E vs cyclictest latency (us)",
    )
    for label, arr in (("model error E", noise), ("cyclictest", cyclictest)):
        s = summarize(arr)
        table_d.add_row(
            [label, s["mean"], s["p99"], s["p999"], s["max"],
             tail_fraction(arr, 150.0), tail_fraction(arr, 400.0)]
        )
    sections.append(table_d.render())
    data["error"] = summarize(noise)
    data["cyclictest"] = summarize(cyclictest)
    data["error_p999"] = float(np.percentile(noise, 99.9))

    return ExperimentOutput(
        experiment_id="fig3",
        title="Processing-time variability",
        text="\n\n".join(sections),
        data=data,
    )
