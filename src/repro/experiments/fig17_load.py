"""Fig. 17: deadline-miss rate vs offered load at RTT/2 = 500 us.

The paper fixes RTT/2 = 500 us and "show[s] the deadline-miss
performance for different subframe loads (corresponding to different
MCS values)": we run each scheduler once over the standard trace and
report the per-MCS (per-Mbps) miss-rate breakdown.  Expected shape: all
schedulers saturate toward certain misses at the top loads, while
RT-OPEX holds the 1e-2 threshold up to a meaningfully higher load — the
paper measures ~15% (31 vs 27 Mbps).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import Table
from repro.experiments.base import (
    ExperimentOutput,
    SweepSpec,
    UnitResult,
    WorkUnit,
    attach_sweep,
    register,
    scaled_subframes,
)
from repro.lte.mcs import throughput_mbps
from repro.sched import CRanConfig, build_workload, run_scheduler

#: Minimum subframes in an MCS bucket for its rate to be reported.
MIN_BUCKET = 200

_SCHEDULERS = ("partitioned", "global", "rt-opex")


def threshold_load(miss_by_mbps: Dict[float, float], threshold: float = 1e-2) -> float:
    """Highest offered load whose bucket stays at or below the threshold.

    Walks the buckets in increasing load and stops at the first breach,
    so an isolated quiet bucket beyond the knee does not count.
    """
    supported = 0.0
    for mbps in sorted(miss_by_mbps):
        if miss_by_mbps[mbps] <= threshold:
            supported = mbps
        else:
            break
    return supported


def _run_one(name: str, num_subframes: int, seed: int):
    """One scheduler over the standard trace: (per-MCS miss rates, counts)."""
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)
    counts: Dict[int, int] = {}
    for job in jobs:
        counts[job.subframe.grant.mcs] = counts.get(job.subframe.grant.mcs, 0) + 1
    run_cfg = cfg if name != "global" else CRanConfig(
        transport_latency_us=500.0, num_cores=8
    )
    result = run_scheduler(name, run_cfg, jobs, seed=seed)
    return result.miss_rate_by_mcs(), counts


def _render(
    by_mcs: Dict[str, Dict[int, float]],
    counts: Dict[int, int],
    num_subframes: int,
) -> ExperimentOutput:
    reported = sorted(m for m, c in counts.items() if c >= MIN_BUCKET)
    table = Table(
        ["MCS", "load (Mbps)", "subframes", "partitioned", "global-8", "rt-opex"],
        title=f"Fig. 17 (reproduced): per-load miss rate, {num_subframes} subframes/BS",
    )
    mbps_axis: List[float] = []
    series: Dict[str, List[float]] = {n: [] for n in _SCHEDULERS}
    for mcs in reported:
        mbps = throughput_mbps(mcs)
        mbps_axis.append(mbps)
        row = [mcs, mbps, counts[mcs]]
        for name in _SCHEDULERS:
            rate = by_mcs[name].get(mcs, 0.0)
            series[name].append(rate)
            row.append(rate)
        table.add_row(row)

    supported = {
        name: threshold_load(dict(zip(mbps_axis, series[name]))) for name in _SCHEDULERS
    }
    note = "load supported at 1e-2 miss threshold: " + ", ".join(
        f"{n}={v:.1f} Mbps" for n, v in supported.items()
    )
    return ExperimentOutput(
        experiment_id="fig17",
        title="Miss rate vs offered load",
        text=table.render() + "\n" + note,
        data={"mbps": mbps_axis, **series, "supported": supported, "counts": counts},
    )


@register("fig17", "Deadline-miss rate vs offered load (RTT/2 = 500 us)")
def run(scale: float, seed: int) -> ExperimentOutput:
    num_subframes = scaled_subframes(scale)
    cfg = CRanConfig(transport_latency_us=500.0)
    jobs = build_workload(cfg, num_subframes, seed=seed)
    counts: Dict[int, int] = {}
    for job in jobs:
        counts[job.subframe.grant.mcs] = counts.get(job.subframe.grant.mcs, 0) + 1

    by_mcs: Dict[str, Dict[int, float]] = {}
    for name in _SCHEDULERS:
        run_cfg = cfg if name != "global" else CRanConfig(
            transport_latency_us=500.0, num_cores=8
        )
        by_mcs[name] = run_scheduler(name, run_cfg, jobs, seed=seed).miss_rate_by_mcs()
    return _render(by_mcs, counts, num_subframes)


# -- sweep decomposition: one unit per scheduler -----------------------------
#
# All units share the single RTT/2 = 500 us workload, so each rebuilds it
# from the same seed (the paired-comparison methodology): redundant work
# bought for scheduler-level parallelism.

def _units(scale: float, seed: int) -> List[WorkUnit]:
    num_subframes = scaled_subframes(scale)
    return [
        WorkUnit(
            experiment_id="fig17",
            key=f"scheduler={name}",
            params={"scheduler": name, "num_subframes": num_subframes},
            seed=seed,
        )
        for name in _SCHEDULERS
    ]


def _run_unit(unit: WorkUnit) -> UnitResult:
    num_subframes = int(unit.params["num_subframes"])
    by_mcs, counts = _run_one(str(unit.params["scheduler"]), num_subframes, unit.seed)
    return {
        "data": {
            "by_mcs": {str(m): rate for m, rate in by_mcs.items()},
            "counts": {str(m): c for m, c in counts.items()},
        },
        "events": num_subframes,
    }


def _combine(results: List[UnitResult], scale: float, seed: int) -> ExperimentOutput:
    by_mcs = {
        name: {int(m): float(rate) for m, rate in r["data"]["by_mcs"].items()}
        for name, r in zip(_SCHEDULERS, results)
    }
    counts = {int(m): int(c) for m, c in results[0]["data"]["counts"].items()}
    return _render(by_mcs, counts, scaled_subframes(scale))


attach_sweep("fig17", SweepSpec(units=_units, run_unit=_run_unit, combine=_combine))
